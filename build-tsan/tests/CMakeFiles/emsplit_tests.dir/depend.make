# Empty dependencies file for emsplit_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_async_determinism.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_async_determinism.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_async_determinism.cpp.o.d"
  "/root/repo/tests/test_batched_io.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_batched_io.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_batched_io.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_histogram_extra.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_histogram_extra.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_histogram_extra.cpp.o.d"
  "/root/repo/tests/test_intermixed.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_intermixed.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_intermixed.cpp.o.d"
  "/root/repo/tests/test_linear_splitters.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_linear_splitters.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_linear_splitters.cpp.o.d"
  "/root/repo/tests/test_merge_and_range.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_merge_and_range.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_merge_and_range.cpp.o.d"
  "/root/repo/tests/test_multi_partition.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_multi_partition.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_multi_partition.cpp.o.d"
  "/root/repo/tests/test_multi_select.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_multi_select.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_multi_select.cpp.o.d"
  "/root/repo/tests/test_partitioning.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_partitioning.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_partitioning.cpp.o.d"
  "/root/repo/tests/test_phase_profile.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_phase_profile.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_phase_profile.cpp.o.d"
  "/root/repo/tests/test_range_writer.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_range_writer.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_range_writer.cpp.o.d"
  "/root/repo/tests/test_sketch_and_variants.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_sketch_and_variants.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_sketch_and_variants.cpp.o.d"
  "/root/repo/tests/test_sort.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_sort.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_sort.cpp.o.d"
  "/root/repo/tests/test_sort_variants.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_sort_variants.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_sort_variants.cpp.o.d"
  "/root/repo/tests/test_spec_and_types.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_spec_and_types.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_spec_and_types.cpp.o.d"
  "/root/repo/tests/test_splitters.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_splitters.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_splitters.cpp.o.d"
  "/root/repo/tests/test_substrate.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_substrate.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_substrate.cpp.o.d"
  "/root/repo/tests/test_top_k_and_sizes.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_top_k_and_sizes.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_top_k_and_sizes.cpp.o.d"
  "/root/repo/tests/test_verify_and_edges.cpp" "tests/CMakeFiles/emsplit_tests.dir/test_verify_and_edges.cpp.o" "gcc" "tests/CMakeFiles/emsplit_tests.dir/test_verify_and_edges.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/emsplit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bulk_load_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bulk_load_index.dir/bulk_load_index.cpp.o"
  "CMakeFiles/bulk_load_index.dir/bulk_load_index.cpp.o.d"
  "bulk_load_index"
  "bulk_load_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_load_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

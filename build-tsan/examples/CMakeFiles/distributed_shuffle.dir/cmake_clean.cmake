file(REMOVE_RECURSE
  "CMakeFiles/distributed_shuffle.dir/distributed_shuffle.cpp.o"
  "CMakeFiles/distributed_shuffle.dir/distributed_shuffle.cpp.o.d"
  "distributed_shuffle"
  "distributed_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

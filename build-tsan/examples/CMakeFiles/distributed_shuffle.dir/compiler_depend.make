# Empty compiler generated dependencies file for distributed_shuffle.
# This may be replaced when dependencies are built.

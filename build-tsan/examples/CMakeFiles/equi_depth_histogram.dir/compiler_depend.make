# Empty compiler generated dependencies file for equi_depth_histogram.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equi_depth_histogram.dir/equi_depth_histogram.cpp.o"
  "CMakeFiles/equi_depth_histogram.dir/equi_depth_histogram.cpp.o.d"
  "equi_depth_histogram"
  "equi_depth_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equi_depth_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

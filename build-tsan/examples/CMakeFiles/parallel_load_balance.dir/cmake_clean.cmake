file(REMOVE_RECURSE
  "CMakeFiles/parallel_load_balance.dir/parallel_load_balance.cpp.o"
  "CMakeFiles/parallel_load_balance.dir/parallel_load_balance.cpp.o.d"
  "parallel_load_balance"
  "parallel_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

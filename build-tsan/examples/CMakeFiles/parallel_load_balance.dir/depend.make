# Empty dependencies file for parallel_load_balance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/percentile_monitor.dir/percentile_monitor.cpp.o"
  "CMakeFiles/percentile_monitor.dir/percentile_monitor.cpp.o.d"
  "percentile_monitor"
  "percentile_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percentile_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

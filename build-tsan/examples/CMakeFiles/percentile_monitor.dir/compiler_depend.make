# Empty compiler generated dependencies file for percentile_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/emsplit.dir/em/block_device.cpp.o"
  "CMakeFiles/emsplit.dir/em/block_device.cpp.o.d"
  "CMakeFiles/emsplit.dir/em/io_pipeline.cpp.o"
  "CMakeFiles/emsplit.dir/em/io_pipeline.cpp.o.d"
  "CMakeFiles/emsplit.dir/em/io_stats.cpp.o"
  "CMakeFiles/emsplit.dir/em/io_stats.cpp.o.d"
  "CMakeFiles/emsplit.dir/em/memory_budget.cpp.o"
  "CMakeFiles/emsplit.dir/em/memory_budget.cpp.o.d"
  "CMakeFiles/emsplit.dir/util/workload.cpp.o"
  "CMakeFiles/emsplit.dir/util/workload.cpp.o.d"
  "libemsplit.a"
  "libemsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/block_device.cpp" "src/CMakeFiles/emsplit.dir/em/block_device.cpp.o" "gcc" "src/CMakeFiles/emsplit.dir/em/block_device.cpp.o.d"
  "/root/repo/src/em/io_pipeline.cpp" "src/CMakeFiles/emsplit.dir/em/io_pipeline.cpp.o" "gcc" "src/CMakeFiles/emsplit.dir/em/io_pipeline.cpp.o.d"
  "/root/repo/src/em/io_stats.cpp" "src/CMakeFiles/emsplit.dir/em/io_stats.cpp.o" "gcc" "src/CMakeFiles/emsplit.dir/em/io_stats.cpp.o.d"
  "/root/repo/src/em/memory_budget.cpp" "src/CMakeFiles/emsplit.dir/em/memory_budget.cpp.o" "gcc" "src/CMakeFiles/emsplit.dir/em/memory_budget.cpp.o.d"
  "/root/repo/src/util/workload.cpp" "src/CMakeFiles/emsplit.dir/util/workload.cpp.o" "gcc" "src/CMakeFiles/emsplit.dir/util/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for emsplit.
# This may be replaced when dependencies are built.

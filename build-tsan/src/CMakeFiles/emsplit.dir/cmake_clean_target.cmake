file(REMOVE_RECURSE
  "libemsplit.a"
)

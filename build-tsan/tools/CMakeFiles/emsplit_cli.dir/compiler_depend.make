# Empty compiler generated dependencies file for emsplit_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/emsplit_cli.dir/emsplit_cli.cpp.o"
  "CMakeFiles/emsplit_cli.dir/emsplit_cli.cpp.o.d"
  "emsplit"
  "emsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsplit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_partitioning_left.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_left.dir/bench_partitioning_left.cpp.o"
  "CMakeFiles/bench_partitioning_left.dir/bench_partitioning_left.cpp.o.d"
  "bench_partitioning_left"
  "bench_partitioning_left.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_left.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_sort.dir/bench_vs_sort.cpp.o"
  "CMakeFiles/bench_vs_sort.dir/bench_vs_sort.cpp.o.d"
  "bench_vs_sort"
  "bench_vs_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_vs_sort.
# This may be replaced when dependencies are built.

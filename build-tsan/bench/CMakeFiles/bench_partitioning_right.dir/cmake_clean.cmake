file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_right.dir/bench_partitioning_right.cpp.o"
  "CMakeFiles/bench_partitioning_right.dir/bench_partitioning_right.cpp.o.d"
  "bench_partitioning_right"
  "bench_partitioning_right.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_partitioning_right.
# This may be replaced when dependencies are built.

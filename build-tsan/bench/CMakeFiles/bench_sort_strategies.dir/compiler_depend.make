# Empty compiler generated dependencies file for bench_sort_strategies.
# This may be replaced when dependencies are built.

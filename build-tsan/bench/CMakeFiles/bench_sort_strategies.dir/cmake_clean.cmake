file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_strategies.dir/bench_sort_strategies.cpp.o"
  "CMakeFiles/bench_sort_strategies.dir/bench_sort_strategies.cpp.o.d"
  "bench_sort_strategies"
  "bench_sort_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_multiselect_vs_multipartition.dir/bench_multiselect_vs_multipartition.cpp.o"
  "CMakeFiles/bench_multiselect_vs_multipartition.dir/bench_multiselect_vs_multipartition.cpp.o.d"
  "bench_multiselect_vs_multipartition"
  "bench_multiselect_vs_multipartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiselect_vs_multipartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_multiselect_vs_multipartition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_splitters_right.dir/bench_splitters_right.cpp.o"
  "CMakeFiles/bench_splitters_right.dir/bench_splitters_right.cpp.o.d"
  "bench_splitters_right"
  "bench_splitters_right.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splitters_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

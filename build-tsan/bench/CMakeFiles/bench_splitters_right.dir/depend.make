# Empty dependencies file for bench_splitters_right.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_splitters_left.
# This may be replaced when dependencies are built.

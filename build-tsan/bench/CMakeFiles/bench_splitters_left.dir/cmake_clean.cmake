file(REMOVE_RECURSE
  "CMakeFiles/bench_splitters_left.dir/bench_splitters_left.cpp.o"
  "CMakeFiles/bench_splitters_left.dir/bench_splitters_left.cpp.o.d"
  "bench_splitters_left"
  "bench_splitters_left.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splitters_left.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

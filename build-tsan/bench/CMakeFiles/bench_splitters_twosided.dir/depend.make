# Empty dependencies file for bench_splitters_twosided.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_splitters_twosided.dir/bench_splitters_twosided.cpp.o"
  "CMakeFiles/bench_splitters_twosided.dir/bench_splitters_twosided.cpp.o.d"
  "bench_splitters_twosided"
  "bench_splitters_twosided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splitters_twosided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_paging_vs_explicit.dir/bench_paging_vs_explicit.cpp.o"
  "CMakeFiles/bench_paging_vs_explicit.dir/bench_paging_vs_explicit.cpp.o.d"
  "bench_paging_vs_explicit"
  "bench_paging_vs_explicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paging_vs_explicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_paging_vs_explicit.
# This may be replaced when dependencies are built.

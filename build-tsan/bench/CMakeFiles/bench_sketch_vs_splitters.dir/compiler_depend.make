# Empty compiler generated dependencies file for bench_sketch_vs_splitters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sketch_vs_splitters.dir/bench_sketch_vs_splitters.cpp.o"
  "CMakeFiles/bench_sketch_vs_splitters.dir/bench_sketch_vs_splitters.cpp.o.d"
  "bench_sketch_vs_splitters"
  "bench_sketch_vs_splitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_vs_splitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_intermixed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_intermixed.dir/bench_intermixed.cpp.o"
  "CMakeFiles/bench_intermixed.dir/bench_intermixed.cpp.o.d"
  "bench_intermixed"
  "bench_intermixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intermixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_partitioning_twosided.
# This may be replaced when dependencies are built.

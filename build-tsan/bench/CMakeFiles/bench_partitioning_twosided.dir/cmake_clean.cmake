file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_twosided.dir/bench_partitioning_twosided.cpp.o"
  "CMakeFiles/bench_partitioning_twosided.dir/bench_partitioning_twosided.cpp.o.d"
  "bench_partitioning_twosided"
  "bench_partitioning_twosided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_twosided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

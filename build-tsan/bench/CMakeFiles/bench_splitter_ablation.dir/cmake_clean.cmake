file(REMOVE_RECURSE
  "CMakeFiles/bench_splitter_ablation.dir/bench_splitter_ablation.cpp.o"
  "CMakeFiles/bench_splitter_ablation.dir/bench_splitter_ablation.cpp.o.d"
  "bench_splitter_ablation"
  "bench_splitter_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splitter_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_anatomy.dir/bench_cost_anatomy.cpp.o"
  "CMakeFiles/bench_cost_anatomy.dir/bench_cost_anatomy.cpp.o.d"
  "bench_cost_anatomy"
  "bench_cost_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

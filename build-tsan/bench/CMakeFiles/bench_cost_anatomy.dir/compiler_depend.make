# Empty compiler generated dependencies file for bench_cost_anatomy.
# This may be replaced when dependencies are built.

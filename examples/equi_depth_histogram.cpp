// equi_depth_histogram — the paper's second motivating application.
//
//   ./equi_depth_histogram [n] [buckets]
//
// Build a (nearly) equi-depth histogram of a large on-disk column and use it
// to answer selectivity estimates.  With slack, the bucket boundaries come
// from approximate K-splitters and construction undercuts the exact quantile
// computation.  The SplitterIndex keeps the partition resident: histograms
// at any coarser k regroup the index buckets with zero further I/O, and
// exact ranks cost one bucket scan instead of an estimate.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"
#include "service/splitter_index.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);
  const std::uint64_t buckets =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  auto host = make_workload(Workload::kUniform, n, /*seed=*/3);
  EmVector<Record> data = materialize<Record>(ctx, host);

  std::printf("building %" PRIu64 "-bucket splitter indexes over %zu "
              "records\n\n",
              buckets, n);
  std::printf("%12s %12s %12s %12s\n", "slack", "build_ios", "min_bucket",
              "max_bucket");

  SplitterIndex<Record> idx;
  for (const double slack : {0.0, 0.9, 3.0}) {
    dev.reset_stats();
    idx = SplitterIndex<Record>::build(ctx, data, buckets, slack);
    std::uint64_t lo = ~0ULL, hi = 0;
    for (std::size_t j = 0; j + 1 < idx.bounds().size(); ++j) {
      const auto s = idx.bounds()[j + 1] - idx.bounds()[j];
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::printf("%12.2f %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n", slack,
                dev.stats().total(), lo, hi);
  }

  // Coarser histograms regroup the resident routing table: zero I/O.
  std::printf("\nderived histograms from the slack=3.0 index:\n");
  for (const std::uint64_t k : {std::uint64_t{4}, std::uint64_t{16}, buckets}) {
    dev.reset_stats();
    const auto h = idx.histogram(k);
    std::printf("  k=%-3" PRIu64 " -> %zu buckets, %" PRIu64
                " device I/Os\n",
                k, h.value.buckets(), dev.stats().total());
  }

  // Use the last histogram as a query estimator, and the index itself for
  // the exact answer the estimator approximates.
  std::printf("\nselectivity at the slack=3.0 boundaries:\n");
  const auto hist = idx.histogram(buckets).value;
  auto sorted_host = host;
  std::sort(sorted_host.begin(), sorted_host.end());
  for (const double frac : {0.10, 0.50, 0.90}) {
    const auto i = static_cast<std::size_t>(frac * static_cast<double>(n));
    const Record probe = sorted_host[i];
    const auto est = hist.estimate_rank(probe);
    const auto exact = idx.rank(probe);
    std::printf("  true rank %8zu  estimate %8" PRIu64 " (err %.2f%% of N)"
                "  exact %8" PRIu64 " in %" PRIu64 " I/Os\n",
                i + 1, est,
                100.0 *
                    (est > i + 1 ? static_cast<double>(est - i - 1)
                                 : static_cast<double>(i + 1 - est)) /
                    static_cast<double>(n),
                exact.value, exact.io.reads);
    if (exact.value != i + 1) {
      std::printf("  !! exact rank disagrees with the oracle\n");
      return 1;
    }
  }
  return 0;
}

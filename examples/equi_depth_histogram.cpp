// equi_depth_histogram — the paper's second motivating application.
//
//   ./equi_depth_histogram [n] [buckets]
//
// Build a (nearly) equi-depth histogram of a large on-disk column and use it
// to answer selectivity estimates, comparing construction cost at several
// slack levels.  With slack, the bucket boundaries come from approximate
// K-splitters and construction undercuts both the exact quantile computation
// and the trivial sort.
#include <cinttypes>
#include <cstdio>

#include "apps/histogram.hpp"
#include "core/api.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);
  const std::uint64_t buckets =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  auto host = make_workload(Workload::kUniform, n, /*seed=*/3);
  EmVector<Record> data = materialize<Record>(ctx, host);

  std::printf("building %" PRIu64 "-bucket equi-depth histograms over %zu "
              "records\n\n",
              buckets, n);
  std::printf("%12s %12s %12s %12s\n", "slack", "build_ios", "min_bucket",
              "max_bucket");

  EquiDepthHistogram<Record> hist;
  for (const double slack : {0.0, 0.9, 3.0}) {
    dev.reset_stats();
    hist = build_equi_depth_histogram<Record>(ctx, data, buckets, slack);
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const auto s : hist.sizes) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::printf("%12.2f %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n", slack,
                dev.stats().total(), lo, hi);
  }

  // Use the last histogram as a query estimator.
  std::printf("\nselectivity estimates from the slack=3.0 histogram:\n");
  auto sorted_host = host;
  std::sort(sorted_host.begin(), sorted_host.end());
  for (const double frac : {0.10, 0.50, 0.90}) {
    const auto idx = static_cast<std::size_t>(frac * static_cast<double>(n));
    const Record probe = sorted_host[idx];
    const auto est = hist.estimate_rank(probe);
    std::printf("  key at true rank %8zu -> estimated rank %8" PRIu64
                "  (err %.2f%% of N)\n",
                idx + 1, est,
                100.0 *
                    (est > idx + 1 ? static_cast<double>(est - idx - 1)
                                   : static_cast<double>(idx + 1 - est)) /
                    static_cast<double>(n));
  }
  return 0;
}

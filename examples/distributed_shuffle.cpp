// distributed_shuffle — the paper's motivating scenario, end to end.
//
//   ./distributed_shuffle [n] [machines]
//
// A coordinator holds N records and K worker machines.  Goal: a globally
// sorted dataset, produced in parallel.  The EM way: the coordinator runs
// approximate K-partitioning (cheap, roughly balanced), ships each machine
// its contiguous piece, every machine sorts locally (small N/K inputs often
// need fewer passes!), and concatenation is free because partitions respect
// the global order.  Compared against the coordinator sorting everything
// itself.
//
// Every machine is its own simulated device + memory budget, so the
// printed numbers are each participant's true external-memory cost, and
// the parallel makespan is the slowest machine.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 21);
  const std::uint64_t k =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  constexpr std::size_t kBlock = 4096;
  constexpr std::size_t kMem = 1u << 18;  // 256 KiB per participant

  // --- Coordinator: partition into K roughly balanced pieces. -------------
  MemoryBlockDevice coord_dev(kBlock);
  Context coord(coord_dev, kMem);
  auto host = make_workload(Workload::kUniform, n, 123);
  auto data = materialize<Record>(coord, host);

  coord_dev.reset_stats();
  const ApproxSpec spec{.k = k, .a = n / (2 * k), .b = 2 * n / k};
  auto parts = approx_partitioning<Record>(coord, data, spec);
  const auto partition_ios = coord_dev.stats().total();

  // --- Workers: each sorts its piece on its own machine. ------------------
  std::uint64_t worst_worker = 0, total_worker = 0;
  std::vector<std::vector<Record>> sorted_pieces;
  for (std::uint64_t w = 0; w < k; ++w) {
    const auto lo = static_cast<std::size_t>(parts.bounds[w]);
    const auto hi = static_cast<std::size_t>(parts.bounds[w + 1]);
    // "Ship" the piece: read it off the coordinator...
    std::vector<Record> piece;
    piece.reserve(hi - lo);
    {
      StreamReader<Record> r(parts.data, lo, hi);
      while (!r.done()) piece.push_back(r.next());
    }
    // ...and sort it on the worker's own hardware.
    MemoryBlockDevice worker_dev(kBlock);
    Context worker(worker_dev, kMem);
    auto local = materialize<Record>(worker, piece);
    worker_dev.reset_stats();
    auto sorted = external_sort<Record>(worker, local);
    worst_worker = std::max(worst_worker, worker_dev.stats().total());
    total_worker += worker_dev.stats().total();
    sorted_pieces.push_back(to_host(sorted));
  }

  // --- The monolithic alternative. ----------------------------------------
  coord_dev.reset_stats();
  auto mono = external_sort<Record>(coord, data);
  const auto mono_ios = coord_dev.stats().total();

  // --- Verify: concatenated worker outputs == the monolithic sort. --------
  std::vector<Record> combined;
  combined.reserve(n);
  for (const auto& p : sorted_pieces) {
    combined.insert(combined.end(), p.begin(), p.end());
  }
  const bool correct = combined == to_host(mono);

  std::printf("distributed shuffle of %zu records over %" PRIu64
              " machines (loads in [N/2K, 2N/K]):\n\n",
              n, k);
  std::printf("  coordinator partition:        %8" PRIu64 " I/Os\n",
              partition_ios);
  std::printf("  slowest worker local sort:    %8" PRIu64 " I/Os\n",
              worst_worker);
  std::printf("  parallel makespan (sum):      %8" PRIu64 " I/Os\n",
              partition_ios + worst_worker);
  std::printf("  all workers combined:         %8" PRIu64 " I/Os\n",
              total_worker);
  std::printf("  monolithic coordinator sort:  %8" PRIu64 " I/Os\n\n",
              mono_ios);
  std::printf("  makespan speedup vs monolithic: %.2fx\n",
              static_cast<double>(mono_ios) /
                  static_cast<double>(partition_ios + worst_worker));
  std::printf("  global order check: %s\n", correct ? "OK" : "FAILED");
  return correct ? 0 : 1;
}

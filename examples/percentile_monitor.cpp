// percentile_monitor — batched order statistics over an on-disk log.
//
//   ./percentile_monitor [n]
//
// A latency log too large for memory needs its p50/p90/p99/p99.9 every
// reporting period.  Computing each percentile with its own selection pass
// re-reads the log once per statistic; Theorem 4's multi-selection answers
// all of them in one linear-I/O batch.  This example measures both, plus the
// sort-the-log strawman.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  // Zipfian "latencies": a few hot values plus a long tail.
  auto host = make_workload(Workload::kZipfian, n, /*seed=*/11,
                            ctx.block_records<Record>(), /*distinct=*/100000);
  EmVector<Record> log = materialize<Record>(ctx, host);

  const std::vector<double> percentiles{0.50, 0.90, 0.99, 0.999};
  std::vector<std::uint64_t> ranks;
  for (const double p : percentiles) {
    ranks.push_back(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p * static_cast<double>(n))));
  }

  dev.reset_stats();
  auto batched = multi_select<Record>(ctx, log, ranks);
  const auto batched_ios = dev.stats().total();

  dev.reset_stats();
  auto one_by_one = naive_multi_select<Record>(ctx, log, ranks);
  const auto naive_ios = dev.stats().total();

  dev.reset_stats();
  auto via_sort = sort_multi_select<Record>(ctx, log, ranks);
  const auto sort_ios = dev.stats().total();

  std::printf("percentiles over %zu log records:\n\n", n);
  for (std::size_t i = 0; i < percentiles.size(); ++i) {
    std::printf("  p%-5g = %" PRIu64 "\n", 100 * percentiles[i],
                batched[i].key);
    if (batched[i] != one_by_one[i] || batched[i] != via_sort[i]) {
      std::printf("  !! methods disagree at p%g\n", 100 * percentiles[i]);
      return 1;
    }
  }
  std::printf("\nI/O cost:  batched multi-selection %8" PRIu64
              "\n           one selection per rank  %8" PRIu64
              "\n           sort the whole log      %8" PRIu64 "\n",
              batched_ios, naive_ios, sort_ios);
  return 0;
}

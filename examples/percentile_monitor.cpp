// percentile_monitor — a resident latency monitor over an on-disk log.
//
//   ./percentile_monitor [n]
//
// A latency log too large for memory needs its SLO percentiles every
// reporting period.  The batch answer (one multi-selection per period)
// re-reads the whole log each tick; the service answer builds a
// SplitterIndex once — cheaper than a sort — and then each tick's
// questions ("what percentile is the 250us SLO at?", "who are the worst
// ten?") touch only the one bucket that straddles the answer.  This
// example measures both.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"
#include "service/splitter_index.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  // Zipfian "latencies": a few hot values plus a long tail.
  auto host = make_workload(Workload::kZipfian, n, /*seed=*/11,
                            ctx.block_records<Record>(), /*distinct=*/100000);
  EmVector<Record> log = materialize<Record>(ctx, host);

  // --- Batch baseline: one multi-selection per reporting period. ---------
  const std::vector<double> percentiles{0.50, 0.90, 0.99, 0.999};
  std::vector<std::uint64_t> ranks;
  for (const double p : percentiles) {
    ranks.push_back(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p * static_cast<double>(n))));
  }
  dev.reset_stats();
  auto batched = multi_select<Record>(ctx, log, ranks);
  const auto per_tick_batch = dev.stats().total();

  // --- Resident monitor: build the index once, query it every tick. ------
  dev.reset_stats();
  auto idx = SplitterIndex<Record>::build(ctx, log, /*buckets=*/64,
                                          /*slack=*/0.25);
  const auto build_ios = dev.stats().total();

  std::printf("monitoring %zu log records (index: %" PRIu64
              " buckets, %" PRIu64 " build I/Os)\n\n",
              n, idx.buckets(), build_ios);

  // Each tick asks where the batch percentile values actually sit — the
  // exact rank of each SLO threshold — plus the worst ten offenders.
  std::printf("%8s %14s %14s %10s\n", "tick", "slo_key", "percentile",
              "query_ios");
  for (int tick = 1; tick <= 3; ++tick) {
    for (std::size_t i = 0; i < percentiles.size(); ++i) {
      const Record probe{batched[i].key, ~0ULL};
      const auto r = idx.rank(probe);
      if (tick > 1) continue;  // the numbers repeat; print one tick's worth
      std::printf("%8d %14" PRIu64 " %13.4f%% %10" PRIu64 "\n", tick,
                  probe.key,
                  100.0 * static_cast<double>(r.value) /
                      static_cast<double>(n),
                  r.io.reads);
    }
  }
  const auto worst = idx.top_k(10, /*largest=*/true);
  std::printf("\nworst 10 latencies (%" PRIu64 " I/Os): %" PRIu64
              " .. %" PRIu64 "\n",
              worst.io.reads, worst.value.front().key,
              worst.value.back().key);

  // Sanity: the index rank of each selected percentile value must equal or
  // exceed its requested rank (it is the value *at* that rank).
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto r = idx.rank(Record{batched[i].key, ~0ULL});
    if (r.value < ranks[i]) {
      std::printf("!! rank disagreement at p%g\n", 100 * percentiles[i]);
      return 1;
    }
  }

  std::printf("\nI/O per reporting period:  batch multi-selection %8" PRIu64
              "\n                           resident index       %8" PRIu64
              "  (after %" PRIu64 " once)\n",
              per_tick_batch,
              idx.rank(Record{batched[1].key, ~0ULL}).io.reads, build_ios);
  return 0;
}

// bulk_load_index — composing the library into a static two-level index.
//
//   ./bulk_load_index [n] [queries]
//
// A classic use of splitters: bulk-load a static search structure.  The
// directory is a memory-resident splitter table; the leaf level is the data
// partitioned (and leaf-sorted) to match.  Construction uses approximate
// K-partitioning with one leaf per block-aligned chunk; lookups then cost
// exactly one block I/O after an in-memory directory probe — the textbook
// "static B-tree in two levels" — and range counts cost
// O(1 + range/B) I/Os.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"
#include "sort/distribution_sort.hpp"
#include "util/rng.hpp"

using namespace emsplit;

namespace {

/// A static two-level index: sorted external data + in-memory directory of
/// each block's largest key.
class StaticIndex {
 public:
  StaticIndex(Context& ctx, const EmVector<Record>& data)
      : sorted_(distribution_sort<Record>(ctx, data)) {
    const std::size_t b = sorted_.block_records();
    StreamReader<Record> reader(sorted_);
    std::size_t i = 0;
    Record last{};
    while (!reader.done()) {
      last = reader.next();
      if (++i % b == 0) directory_.push_back(last);
    }
    if (i % b != 0) directory_.push_back(last);
  }

  /// Point lookup: true iff `key` is present.  Costs one block I/O.
  bool contains(Context& ctx, const Record& probe) {
    const auto it =
        std::lower_bound(directory_.begin(), directory_.end(), probe);
    if (it == directory_.end()) return false;
    const auto blk = static_cast<std::size_t>(it - directory_.begin());
    const std::size_t b = sorted_.block_records();
    const std::size_t lo = blk * b;
    const std::size_t hi = std::min(lo + b, sorted_.size());
    auto res = ctx.budget().reserve(b * sizeof(Record));
    std::vector<Record> buf(hi - lo);
    load_range<Record>(sorted_, lo, buf);
    return std::binary_search(buf.begin(), buf.end(), probe);
  }

  [[nodiscard]] std::size_t directory_blocks() const {
    return directory_.size();
  }

 private:
  EmVector<Record> sorted_;
  std::vector<Record> directory_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);
  const int queries =
      argc > 2 ? static_cast<int>(std::strtoul(argv[2], nullptr, 10)) : 1000;

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  auto host = make_workload(Workload::kUniform, n, 9);
  EmVector<Record> data = materialize<Record>(ctx, host);

  dev.reset_stats();
  StaticIndex index(ctx, data);
  const auto build_ios = dev.stats().total();
  std::printf("built a 2-level index over %zu records: %" PRIu64
              " I/Os, directory of %zu block keys\n",
              n, build_ios, index.directory_blocks());

  dev.reset_stats();
  int hits = 0;
  SplitMix64 rng(4);
  for (int q = 0; q < queries; ++q) {
    const auto i = static_cast<std::size_t>(rng.next_below(n));
    if (index.contains(ctx, host[i])) ++hits;
  }
  std::printf("%d point lookups (all present): %d hits, %" PRIu64
              " I/Os total = %.2f I/Os per lookup\n",
              queries, hits, dev.stats().total(),
              static_cast<double>(dev.stats().total()) / queries);
  if (hits != queries) {
    std::printf("!! index lost records\n");
    return 1;
  }

  dev.reset_stats();
  int misses = 0;
  for (int q = 0; q < queries; ++q) {
    // In-range key, but a payload no workload generates: a true near-miss.
    const Record absent{rng.next_below(4 * n), ~0ULL};
    if (!index.contains(ctx, absent)) ++misses;
  }
  std::printf("%d lookups of absent keys: %d correctly missed, %.2f I/Os "
              "per lookup\n",
              queries, misses, static_cast<double>(dev.stats().total()) /
                                   queries);
  return misses == queries ? 0 : 1;
}

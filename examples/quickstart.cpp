// quickstart — the five-minute tour of emsplit.
//
//   ./quickstart [n]
//
// Builds a dataset on a simulated block device, then runs each of the
// library's headline operations once, printing what it cost in block I/Os
// and what a full external sort would have cost instead.
#include <cinttypes>
#include <cstdio>

#include "core/api.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);

  // A machine with 4 KiB blocks (256 records) and 1 MiB of memory.
  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 20);
  std::printf("machine: B = %zu records/block, M = %zu records, N = %zu\n",
              ctx.block_records<Record>(), ctx.mem_records<Record>(), n);

  // Put N random records on the device.
  auto host = make_workload(Workload::kUniform, n, /*seed=*/42);
  EmVector<Record> data = materialize<Record>(ctx, host);

  const auto scan = (n + ctx.block_records<Record>() - 1) /
                    ctx.block_records<Record>();

  // --- 1. Single rank selection: the median, in O(N/B). -------------------
  dev.reset_stats();
  const Record median = select_rank<Record>(ctx, data, n / 2);
  std::printf("\nmedian key = %" PRIu64 "  [%" PRIu64 " I/Os, scan = %zu]\n",
              median.key, dev.stats().total(), scan);

  // --- 2. Multi-selection: all percentiles at once (Theorem 4). -----------
  std::vector<std::uint64_t> ranks;
  for (std::size_t p = 1; p < 100; ++p) ranks.push_back(p * n / 100);
  dev.reset_stats();
  auto percentiles = multi_select<Record>(ctx, data, ranks);
  std::printf("p01/p50/p99 keys = %" PRIu64 "/%" PRIu64 "/%" PRIu64
              "  [%" PRIu64 " I/Os for all 99 ranks]\n",
              percentiles.front().key, percentiles[49].key,
              percentiles.back().key, dev.stats().total());

  // --- 3. Approximate K-splitters: sublinear when [a, b] is loose. --------
  const ApproxSpec loose{.k = 16, .a = 32, .b = n};  // right-grounded
  dev.reset_stats();
  auto splitters = approx_splitters<Record>(ctx, data, loose);
  std::printf("16 splitters, buckets >= 32: [%" PRIu64
              " I/Os — sublinear! scan would be %zu]\n",
              dev.stats().total(), scan);
  auto check = verify_splitters<Record>(data, splitters, loose);
  std::printf("verifier: %s\n", check.ok ? "OK" : check.reason.c_str());

  // --- 4. Approximate K-partitioning: physical, ordered, bounded sizes. ---
  const ApproxSpec balanced{.k = 16, .a = n / 64, .b = n / 4};
  dev.reset_stats();
  auto parts = approx_partitioning<Record>(ctx, data, balanced);
  std::printf("\n16 partitions with sizes in [N/64, N/4]: [%" PRIu64 " I/Os]\n",
              dev.stats().total());
  std::printf("partition sizes:");
  for (std::size_t i = 0; i < parts.partitions(); ++i) {
    std::printf(" %" PRIu64, parts.partition_size(i));
  }
  std::printf("\n");

  // --- 5. The baseline everything is compared against. --------------------
  dev.reset_stats();
  auto sorted = external_sort<Record>(ctx, data);
  std::printf("\nfull external sort: [%" PRIu64 " I/Os] — the baseline "
              "every specialized cost above compares against\n",
              dev.stats().total());
  return 0;
}

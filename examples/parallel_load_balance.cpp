// parallel_load_balance — the paper's first motivating application.
//
//   ./parallel_load_balance [n] [machines]
//
// A coordinator must ship N ordered records to K worker machines so each
// worker owns a contiguous key range (range-partitioned parallel join,
// sharded index build, ...).  Perfect balance costs Θ((N/B) log_{M/B} K)
// I/Os; tolerating a few percent of imbalance is strictly cheaper.  This
// example sweeps the tolerance and prints the cost/imbalance trade-off the
// paper's Theorem 6 promises.
#include <cinttypes>
#include <cstdio>

#include "apps/load_balance.hpp"
#include "core/api.hpp"

using namespace emsplit;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 20);
  const std::uint64_t machines =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;

  MemoryBlockDevice dev(4096);
  Context ctx(dev, 1u << 18);
  auto host = make_workload(Workload::kZipfian, n, /*seed=*/7,
                            ctx.block_records<Record>(), /*distinct=*/4096);
  EmVector<Record> data = materialize<Record>(ctx, host);

  std::printf("distributing %zu records to %" PRIu64
              " machines (skewed keys)\n\n",
              n, machines);
  std::printf("%12s %12s %12s %12s %12s\n", "tolerance", "ios", "min_load",
              "max_load", "imbalance");

  for (const double tol : {0.0, 0.5, 0.9, 2.0, 7.0}) {
    dev.reset_stats();
    auto plan = balance_load<Record>(ctx, data, machines, tol);
    std::printf("%12.2f %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12.3f\n",
                tol, dev.stats().total(), plan.min_load, plan.max_load,
                plan.imbalance());
  }

  dev.reset_stats();
  auto sorted = external_sort<Record>(ctx, data);
  std::printf("\n(for scale: a full sort costs %" PRIu64 " I/Os)\n",
              dev.stats().total());
  return 0;
}

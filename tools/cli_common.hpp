// cli_common.hpp — the emsplit CLI's machine plumbing, shared by commands.
//
// Everything here used to live inline in emsplit_cli.cpp; the serve/query
// commands (the resident splitter service) need the same Options parsing and
// Machine assembly as the batch commands, so the plumbing moved into its own
// translation unit.  The contract is unchanged: global options describe a
// simulated machine (device backend, budget, cache, journal, trace), and
// make_machine() assembles it with the destruction order the substrate
// requires (journal before device, cache unhooked before context).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "em/block_cache.hpp"
#include "em/checkpoint.hpp"
#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "util/record.hpp"
#include "util/workload.hpp"

namespace emsplit::cli {

struct Options {
  std::size_t block_bytes = 4096;
  std::size_t mem_bytes = 1 << 20;
  std::string backend = "mem";
  std::size_t cache_blocks = 0;
  std::size_t threads = 1;
  std::size_t sort_shards = 1;
  std::size_t workers = 0;
  std::size_t kill_worker = 0;
  std::uint64_t kill_round = 0;
  std::size_t hang_worker = 0;
  std::uint64_t hang_round = 0;
  std::size_t corrupt_worker = 0;
  std::uint64_t corrupt_round = 0;
  std::uint64_t max_worker_retries = 0;
  double worker_timeout = 0.0;
  std::uint64_t degrade_after = 0;
  std::size_t mem_workers = 1;
  std::size_t shards = 1;
  std::size_t stripe_blocks = 8;
  std::size_t batch_blocks = 1;
  std::size_t queue_depth = 0;
  bool async = false;
  std::string trace_path;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_backoff_us = 0;
  bool checksums = false;
  std::string checkpoint_dir;
  std::uint64_t crash_after = 0;
};

/// The simulated machine one command runs on.  Destruction order matters:
/// the journal returns its extents to the device, so it must die first —
/// members are declared device, journal, context and destroyed in reverse.
/// The destructor flushes the `--trace` log (every pass has completed by
/// then, and the context is still alive during the destructor body).
struct Machine {
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<CheckpointJournal> journal;
  std::unique_ptr<Context> ctx;
  // After ctx: the cache must die first (it releases chunks back to the
  // context's budget in its destructor).
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<PassTraceLog> trace;
  std::string trace_path;

  Machine() = default;
  Machine(Machine&&) = default;
  Machine& operator=(Machine&&) = default;
  ~Machine();
};

Machine make_machine(const Options& opt);

[[noreturn]] void usage(const char* why = nullptr);

/// Parse the leading `--option=value` run of argv; returns the index of the
/// first non-option argument (the subcommand).  Exits via usage() on a bad
/// option.
int parse_global_options(int argc, char** argv, Options& opt);

std::uint64_t parse_u64(const char* s, const char* what);

std::vector<Record> read_file(const std::string& path);
void write_file(const std::string& path, const std::vector<Record>& v);

Workload parse_workload(const std::string& name);

void print_cost(const Context& ctx, std::size_t n);

}  // namespace emsplit::cli

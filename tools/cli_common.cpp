// cli_common.cpp — Options parsing, Machine assembly, shared helpers.

#include "cli_common.hpp"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "em/sharded_device.hpp"
#include "em/uring_device.hpp"

namespace emsplit::cli {

Machine::~Machine() {
  if (ctx != nullptr && cache != nullptr) ctx->set_block_cache(nullptr);
  // The journal destructor returns its still-owned extents to the device,
  // and deallocation drops the freed blocks' checksum entries — snapshot
  // the sidecars first so an interrupted run's journaled blocks stay
  // verifiable on resume.  (On a completed run the journal owns nothing,
  // the table is empty, and the flush removes the sidecar files.)
  if (journal != nullptr && dev != nullptr) {
    if (auto* sh = dynamic_cast<ShardedBlockDevice*>(dev.get())) {
      sh->flush_member_sidecars();
    }
  }
  if (trace != nullptr && !trace_path.empty() &&
      !write_pass_trace_jsonl(*trace, trace_path)) {
    std::fprintf(stderr, "warning: could not write trace file %s\n",
                 trace_path.c_str());
  }
}

namespace {

std::unique_ptr<BlockDevice> make_member(const Options& opt,
                                         const std::string& name) {
  // Crash-recoverable runs keep the device file (and re-adopt its blocks on
  // the next start); otherwise file-backed backends use a private scratch
  // file removed on exit.
  const bool persist = !opt.checkpoint_dir.empty();
  const std::string path =
      persist ? opt.checkpoint_dir + "/" + name
              : "/tmp/emsplit." + std::to_string(::getpid()) + "." + name;
  if (opt.backend == "uring") {
    return std::make_unique<UringBlockDevice>(
        path, opt.block_bytes, UringBlockDevice::tuned(opt.queue_depth),
        /*keep_file=*/persist, /*preserve_contents=*/persist);
  }
  if (opt.backend == "file" || persist) {
    return std::make_unique<FileBlockDevice>(path, opt.block_bytes,
                                             /*keep_file=*/persist,
                                             /*preserve_contents=*/persist);
  }
  return std::make_unique<MemoryBlockDevice>(opt.block_bytes);
}

}  // namespace

Machine make_machine(const Options& opt) {
  Machine m;
  if (opt.backend == "uring") {
    // Capability note on stderr so stdout stays byte-identical across hosts
    // (backend choice is geometry, never output).
    std::fprintf(stderr, "[backend] uring: %s\n",
                 UringBlockDevice::uring_supported()
                     ? "native io_uring ring"
                     : "fallback (io_uring unavailable; positional I/O)");
  }
  if (opt.shards > 1) {
    // D-disk machine: one member device per shard behind a striping facade.
    // With --checkpoint-dir each member persists as its own file, and when
    // checksums are on the facade's per-member checksum maps persist too
    // (".ssums" sidecars next to each member file): a restarted run resumes
    // with corruption detection intact instead of starting unverified.
    std::vector<std::unique_ptr<BlockDevice>> members;
    std::vector<std::string> sidecars;
    members.reserve(opt.shards);
    const bool persist = !opt.checkpoint_dir.empty();
    for (std::size_t d = 0; d < opt.shards; ++d) {
      const std::string name = "device.shard" + std::to_string(d) + ".bin";
      members.push_back(make_member(opt, name));
      sidecars.push_back((persist ? opt.checkpoint_dir + "/" + name
                                  : "/tmp/emsplit." +
                                        std::to_string(::getpid()) + "." +
                                        name) +
                         ".ssums");
    }
    auto sharded = std::make_unique<ShardedBlockDevice>(std::move(members),
                                                        opt.stripe_blocks);
    if (persist && opt.checksums) {
      sharded->set_member_sidecars(std::move(sidecars), /*preserve=*/true);
    }
    m.dev = std::move(sharded);
  } else {
    m.dev = make_member(opt, "device.bin");
  }
  m.dev->set_checksums(opt.checksums);
  m.ctx = std::make_unique<Context>(*m.dev, opt.mem_bytes);
  m.ctx->set_io_tuning(IoTuning{opt.batch_blocks, opt.queue_depth, opt.async});
  m.ctx->set_cpu_tuning(CpuTuning{opt.threads, opt.sort_shards});
  WorkerTuning wt;
  wt.workers = opt.workers;
  wt.kill_worker = opt.kill_worker;
  wt.kill_round = opt.kill_round;
  wt.hang_worker = opt.hang_worker;
  wt.hang_round = opt.hang_round;
  wt.corrupt_worker = opt.corrupt_worker;
  wt.corrupt_round = opt.corrupt_round;
  wt.max_worker_retries = opt.max_worker_retries;
  wt.worker_timeout = opt.worker_timeout;
  wt.degrade_after = opt.degrade_after;
  wt.mem_workers = opt.mem_workers;
  m.ctx->set_worker_tuning(wt);
  FaultPolicy policy;
  policy.max_retries = opt.fault_retries;
  policy.backoff = std::chrono::microseconds(opt.fault_backoff_us);
  m.ctx->set_fault_policy(policy);
  if (opt.cache_blocks > 0) {
    m.cache = std::make_unique<BlockCache>(m.ctx->budget(), opt.block_bytes,
                                           opt.cache_blocks);
    if (!m.cache->enabled()) {
      std::fprintf(stderr,
                   "warning: block cache disabled (budget declined the first "
                   "chunk; shrink --cache-blocks or grow --mem-bytes)\n");
    }
    m.ctx->set_block_cache(m.cache.get());
  }
  if (!opt.checkpoint_dir.empty()) {
    m.journal = std::make_unique<CheckpointJournal>(
        *m.dev, opt.checkpoint_dir + "/journal.ckpt");
    m.journal->restore_device();
    m.ctx->set_checkpoint(m.journal.get());
    if (opt.crash_after > 0) {
      m.journal->set_crash_after_publishes(opt.crash_after);
    }
  }
  if (!opt.trace_path.empty()) {
    m.trace = std::make_unique<PassTraceLog>();
    m.trace_path = opt.trace_path;
    m.ctx->set_pass_trace(m.trace.get());
  }
  return m;
}

[[noreturn]] void usage(const char* why) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr,
               "usage: emsplit [--block-bytes=N] [--mem-bytes=N]"
               " [--threads=N] [--sort-shards=N]\n"
               "               [--workers=W] [--kill-worker=W:R]"
               " [--hang-worker=W:R] [--corrupt-frame=W:R]\n"
               "               [--max-worker-retries=N] [--worker-timeout=S]"
               " [--degrade-after=N] [--mem-workers=N]\n"
               "               [--backend=mem|file|uring] [--cache-blocks=N]\n"
               "               [--shards=D] [--stripe-blocks=N]"
               " [--batch-blocks=N] [--queue-depth=N] [--async=on|off]\n"
               "               [--trace=FILE] [--fault-policy=R[:BACKOFF_US]]"
               " [--checksums=on|off]\n"
               "               [--checkpoint-dir=DIR] [--crash-after-pass=N]"
               " <command>\n"
               "  gen       <file> <n> [workload] [seed]   create a dataset\n"
               "  sort      <in> <out>                     external sort\n"
               "  dsort     <in> <out>                     distribution sort\n"
               "  select    <file> <rank> [rank ...]       multi-selection\n"
               "  splitters <file> <K> <a> <b>             approximate K-splitters\n"
               "  partition <in> <out> <K> <a> <b>         approximate K-partitioning\n"
               "  histogram <file> <buckets> [slack]       nearly equi-depth histogram\n"
               "  info      <file>                         dataset summary\n"
               "  serve     <file> <socket> [--buckets=K] [--slack=F] [--queue-wait=S]\n"
               "            [--listen=host:port] [--bucket-cache-blocks=N]\n"
               "                                           resident splitter service\n"
               "  query     <target> [--repeat=N] [--pipeline] <REQUEST...>\n"
               "                                           service client; <target> is\n"
               "                                           a socket path or host:port\n"
               "            requests: RANK <key> | RANGE <lo> <hi> | HIST <k>\n"
               "                      TOPK <k> [MIN] | STATS | EPOCH | REFRESH |"
               " SHUTDOWN\n"
               "workloads: uniform sorted reverse few_distinct organ_pipe zipfian"
               " block_striped\n");
  std::exit(2);
}

std::uint64_t parse_u64(const char* s, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "error: bad %s: '%s'\n", what, s);
    std::exit(2);
  }
  return v;
}

std::vector<Record> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  const auto bytes = static_cast<std::size_t>(in.tellg());
  if (bytes % sizeof(Record) != 0) {
    std::fprintf(stderr, "error: %s is not a whole number of records\n",
                 path.c_str());
    std::exit(1);
  }
  std::vector<Record> v(bytes / sizeof(Record));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(bytes));
  return v;
}

void write_file(const std::string& path, const std::vector<Record>& v) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(Record)));
}

Workload parse_workload(const std::string& name) {
  for (const Workload w : all_workloads()) {
    if (to_string(w) == name) return w;
  }
  std::fprintf(stderr, "error: unknown workload '%s'\n", name.c_str());
  std::exit(2);
}

void print_cost(const Context& ctx, std::size_t n) {
  const auto scan =
      (n + ctx.block_records<Record>() - 1) / ctx.block_records<Record>();
  const IoStats io = ctx.io();
  std::printf("[cost] %" PRIu64 " block I/Os (reads %" PRIu64 ", writes %"
              PRIu64 ")",
              io.total(), io.reads, io.writes);
  // Retries and resumed passes print only when nonzero: the default output
  // stays byte-identical across thread counts and fault-free runs.
  if (io.retries > 0) {
    std::printf(" + %" PRIu64 " transient retries", io.retries);
  }
  if (io.worker_retries > 0) {
    std::printf(" + %" PRIu64 " re-executed worker I/Os", io.worker_retries);
  }
  if (io.cache_hits > 0) {
    std::printf(" (%" PRIu64 " served from cache)", io.cache_hits);
  }
  const CheckpointJournal* journal = ctx.checkpoint();
  if (journal != nullptr && journal->resumed_passes() > 0) {
    std::printf(" (resumed %" PRIu64 " journaled passes)",
                journal->resumed_passes());
  }
  std::printf("; one scan = %zu; peak memory %zu / %zu bytes\n", scan,
              ctx.budget().peak(), ctx.budget().capacity());
}

int parse_global_options(int argc, char** argv, Options& opt) {
  int i = 1;
  for (; i < argc && std::strncmp(argv[i], "--", 2) == 0; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--block-bytes=", 0) == 0) {
      opt.block_bytes = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "block-bytes"));
    } else if (arg.rfind("--mem-bytes=", 0) == 0) {
      opt.mem_bytes =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 12, "mem-bytes"));
    } else if (arg.rfind("--backend=", 0) == 0) {
      opt.backend = arg.substr(10);
      if (opt.backend != "mem" && opt.backend != "file" &&
          opt.backend != "uring") {
        usage("--backend takes mem|file|uring");
      }
    } else if (arg.rfind("--cache-blocks=", 0) == 0) {
      opt.cache_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 15, "cache-blocks"));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 10, "threads"));
    } else if (arg.rfind("--sort-shards=", 0) == 0) {
      opt.sort_shards = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "sort-shards"));
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 10, "workers"));
    } else if (arg.rfind("--kill-worker=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--kill-worker takes W:R");
      opt.kill_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "kill-worker worker"));
      opt.kill_round =
          parse_u64(spec.substr(colon + 1).c_str(), "kill-worker round");
      if (opt.kill_round == 0) usage("--kill-worker round is 1-based");
    } else if (arg.rfind("--hang-worker=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--hang-worker takes W:R");
      opt.hang_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "hang-worker worker"));
      opt.hang_round =
          parse_u64(spec.substr(colon + 1).c_str(), "hang-worker round");
      if (opt.hang_round == 0) usage("--hang-worker round is 1-based");
    } else if (arg.rfind("--corrupt-frame=", 0) == 0) {
      const std::string spec = arg.substr(16);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--corrupt-frame takes W:R");
      opt.corrupt_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "corrupt-frame worker"));
      opt.corrupt_round =
          parse_u64(spec.substr(colon + 1).c_str(), "corrupt-frame round");
      if (opt.corrupt_round == 0) usage("--corrupt-frame round is 1-based");
    } else if (arg.rfind("--max-worker-retries=", 0) == 0) {
      opt.max_worker_retries =
          parse_u64(arg.c_str() + 21, "max-worker-retries");
    } else if (arg.rfind("--worker-timeout=", 0) == 0) {
      char* end = nullptr;
      opt.worker_timeout = std::strtod(arg.c_str() + 17, &end);
      if (end == arg.c_str() + 17 || *end != '\0' || opt.worker_timeout < 0) {
        usage("--worker-timeout takes seconds >= 0");
      }
    } else if (arg.rfind("--degrade-after=", 0) == 0) {
      opt.degrade_after = parse_u64(arg.c_str() + 16, "degrade-after");
    } else if (arg.rfind("--mem-workers=", 0) == 0) {
      opt.mem_workers = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "mem-workers"));
      if (opt.mem_workers == 0) usage("--mem-workers must be positive");
    } else if (arg.rfind("--shards=", 0) == 0) {
      opt.shards =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 9, "shards"));
      if (opt.shards == 0) usage("--shards must be positive");
    } else if (arg.rfind("--stripe-blocks=", 0) == 0) {
      opt.stripe_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 16, "stripe-blocks"));
      if (opt.stripe_blocks == 0) usage("--stripe-blocks must be positive");
    } else if (arg.rfind("--batch-blocks=", 0) == 0) {
      opt.batch_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 15, "batch-blocks"));
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      opt.queue_depth = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "queue-depth"));
    } else if (arg.rfind("--async=", 0) == 0) {
      const std::string v = arg.substr(8);
      if (v == "on") {
        opt.async = true;
      } else if (v == "off") {
        opt.async = false;
      } else {
        usage("--async takes on|off");
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_path = arg.substr(8);
      if (opt.trace_path.empty()) usage("--trace needs a path");
    } else if (arg.rfind("--fault-policy=", 0) == 0) {
      const std::string spec = arg.substr(15);
      const std::size_t colon = spec.find(':');
      opt.fault_retries =
          parse_u64(spec.substr(0, colon).c_str(), "fault-policy retries");
      if (colon != std::string::npos) {
        opt.fault_backoff_us =
            parse_u64(spec.substr(colon + 1).c_str(), "fault-policy backoff");
      }
    } else if (arg.rfind("--checksums=", 0) == 0) {
      const std::string v = arg.substr(12);
      if (v == "on") {
        opt.checksums = true;
      } else if (v == "off") {
        opt.checksums = false;
      } else {
        usage("--checksums takes on|off");
      }
    } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      opt.checkpoint_dir = arg.substr(17);
      if (opt.checkpoint_dir.empty()) usage("--checkpoint-dir needs a path");
    } else if (arg.rfind("--crash-after-pass=", 0) == 0) {
      opt.crash_after = parse_u64(arg.c_str() + 19, "crash-after-pass");
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return i;
}

}  // namespace emsplit::cli

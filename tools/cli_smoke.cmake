# Drives the CLI end to end: generate -> info -> splitters -> partition ->
# sort -> select -> histogram, failing on any non-zero exit.
file(MAKE_DIRECTORY ${WORKDIR})
function(run)
  execute_process(COMMAND ${CLI} ${ARGV}
    WORKING_DIRECTORY ${WORKDIR} RESULT_VARIABLE rc OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emsplit ${ARGV} failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

run(gen data.bin 50000 zipfian 7)
run(info data.bin)
run(splitters data.bin 8 1000 50000)
run(partition data.bin parts.bin 8 1000 50000)
run(sort data.bin sorted.bin)
run(select data.bin 1 25000 50000)
run(histogram data.bin 10 0.5)

# A bad spec must fail cleanly.
execute_process(COMMAND ${CLI} splitters data.bin 8 999999 50000
  WORKING_DIRECTORY ${WORKDIR} RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "infeasible spec unexpectedly succeeded")
endif()

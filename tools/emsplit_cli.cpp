// emsplit — command-line front end for the library.
//
// Operates on flat binary files of 16-byte records (little-endian u64 key,
// u64 payload).  Data is staged onto a simulated block device so every run
// reports the exact external-memory I/O cost alongside its results — the
// tool doubles as a cost explorer for the paper's algorithms.
//
//   emsplit gen       <file> <n> [workload] [seed]
//   emsplit sort      <in> <out>
//   emsplit dsort     <in> <out>
//   emsplit select    <file> <rank> [rank ...]
//   emsplit splitters <file> <K> <a> <b>
//   emsplit partition <in> <out> <K> <a> <b>
//   emsplit histogram <file> <buckets> [slack]
//   emsplit info      <file>
//   emsplit serve     <file> <socket> [--buckets=K] [--slack=F]
//                     [--queue-wait=S] [--listen=host:port]
//                     [--bucket-cache-blocks=N]
//   emsplit query     <target> [--repeat=N] [--pipeline] <REQUEST...>
//
// Global options (before the subcommand) describe the simulated machine —
// see tools/cli_common.cpp (usage()) or docs/cli.md for the full list; the
// parsing and Machine assembly live there, shared by every command.
//
// serve keeps a SplitterIndex resident and answers the line protocol on a
// Unix-domain socket (RANK / RANGE / HIST / TOPK / STATS / EPOCH / REFRESH /
// SHUTDOWN); --listen=host:port opens the same protocol on TCP beside it
// (port 0 binds an ephemeral port, reported on the readiness line), and
// --bucket-cache-blocks gives each epoch a decoded-bucket cache.  query is
// the thin client: <target> is a Unix socket path, or host:port for TCP;
// --repeat=N sends the request N times and --pipeline sends them all before
// reading any reply (the server answers batches against one pinned
// snapshot).  With --checkpoint-dir the service's epoch publishes are
// crash-consistent: kill it mid-refresh, restart, and it serves the last
// published epoch (the CI smoke leg's assertion).
//
// --threads is pure execution width: for any value, the reported I/O cost
// and the output bytes are identical (the determinism contract in
// docs/model.md).  --sort-shards changes the in-memory sort geometry, but
// record order is total, so outputs still match bit-for-bit.  --shards /
// --stripe-blocks / --batch-blocks / --queue-depth / --async are likewise
// output-transparent: striping and batching are geometry, never output
// (docs/model.md, "Sharded devices and the D-disk model").  Transient
// retries never change the base I/O counts either — `[cost]` reports them
// separately (docs/model.md, "Failure model, retries, and recovery").
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/histogram.hpp"
#include "cli_common.hpp"
#include "core/api.hpp"
#include "em/file_io.hpp"
#include "service/server.hpp"

namespace {

using namespace emsplit;
using namespace emsplit::cli;

int cmd_gen(const Options&, int argc, char** argv) {
  if (argc < 2) usage("gen needs <file> <n>");
  const std::string path = argv[0];
  const auto n = static_cast<std::size_t>(parse_u64(argv[1], "n"));
  const Workload w = argc > 2 ? parse_workload(argv[2]) : Workload::kUniform;
  const std::uint64_t seed = argc > 3 ? parse_u64(argv[3], "seed") : 42;
  write_file(path, make_workload(w, n, seed));
  std::printf("wrote %zu records (%s, seed %" PRIu64 ") to %s\n", n,
              to_string(w).c_str(), seed, path.c_str());
  return 0;
}

int cmd_info(const Options& opt, int argc, char** argv) {
  if (argc < 1) usage("info needs <file>");
  auto host = read_file(argv[0]);
  std::printf("%s: %zu records (%zu bytes)\n", argv[0], host.size(),
              host.size() * sizeof(Record));
  if (!host.empty()) {
    auto mm = std::minmax_element(host.begin(), host.end());
    std::printf("  key range [%" PRIu64 ", %" PRIu64 "], sorted: %s\n",
                mm.first->key, mm.second->key,
                std::is_sorted(host.begin(), host.end()) ? "yes" : "no");
  }
  std::printf("  machine model: B = %zu bytes/block, M = %zu bytes\n",
              opt.block_bytes, opt.mem_bytes);
  return 0;
}

int cmd_sort(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("sort needs <in> <out>");
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  // Streamed in block-sized pieces: the dataset never has to fit in host
  // memory, matching the library's own discipline.
  auto data = import_file<Record>(ctx, argv[0]);
  m.dev->reset_stats();
  auto sorted = external_sort<Record>(ctx, data);
  print_cost(ctx, data.size());
  export_file<Record>(sorted, argv[1]);
  std::printf("sorted %zu records -> %s\n", data.size(), argv[1]);
  return 0;
}

int cmd_dsort(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("dsort needs <in> <out>");
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = import_file<Record>(ctx, argv[0]);
  m.dev->reset_stats();
  auto sorted = distribution_sort<Record>(ctx, data);
  print_cost(ctx, data.size());
  export_file<Record>(sorted, argv[1]);
  std::printf("sorted %zu records -> %s\n", data.size(), argv[1]);
  return 0;
}

int cmd_select(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("select needs <file> and at least one rank");
  auto host = read_file(argv[0]);
  std::vector<std::uint64_t> ranks;
  for (int i = 1; i < argc; ++i) ranks.push_back(parse_u64(argv[i], "rank"));
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto got = multi_select<Record>(ctx, data, ranks);
  print_cost(ctx, host.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::printf("rank %" PRIu64 ": key=%" PRIu64 " payload=%" PRIu64 "\n",
                ranks[i], got[i].key, got[i].payload);
  }
  return 0;
}

int cmd_splitters(const Options& opt, int argc, char** argv) {
  if (argc < 4) usage("splitters needs <file> <K> <a> <b>");
  auto host = read_file(argv[0]);
  const ApproxSpec spec{.k = parse_u64(argv[1], "K"),
                        .a = parse_u64(argv[2], "a"),
                        .b = parse_u64(argv[3], "b")};
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto splitters = approx_splitters<Record>(ctx, data, spec);
  print_cost(ctx, host.size());
  auto check = verify_splitters<Record>(data, splitters, spec);
  if (!check.ok) {
    std::fprintf(stderr, "INTERNAL ERROR: invalid output: %s\n",
                 check.reason.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < splitters.size(); ++i) {
    std::printf("s%-4zu key=%-20" PRIu64 " bucket_size=%" PRIu64 "\n", i + 1,
                splitters[i].key, check.sizes[i]);
  }
  std::printf("(last bucket size %" PRIu64 "; all within [%" PRIu64 ", %"
              PRIu64 "])\n",
              check.sizes.back(), spec.a, spec.b);
  return 0;
}

int cmd_partition(const Options& opt, int argc, char** argv) {
  if (argc < 5) usage("partition needs <in> <out> <K> <a> <b>");
  auto host = read_file(argv[0]);
  const ApproxSpec spec{.k = parse_u64(argv[2], "K"),
                        .a = parse_u64(argv[3], "a"),
                        .b = parse_u64(argv[4], "b")};
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto result = approx_partitioning<Record>(ctx, data, spec);
  print_cost(ctx, host.size());
  auto check =
      verify_partitioning<Record>(data, result.data, result.bounds, spec);
  if (!check.ok) {
    std::fprintf(stderr, "INTERNAL ERROR: invalid output: %s\n",
                 check.reason.c_str());
    return 1;
  }
  export_file<Record>(result.data, argv[1]);
  std::printf("partition bounds:");
  for (const auto b : result.bounds) std::printf(" %" PRIu64, b);
  std::printf("\nwrote %zu records -> %s\n", host.size(), argv[1]);
  return 0;
}

int cmd_histogram(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("histogram needs <file> <buckets>");
  auto host = read_file(argv[0]);
  const std::uint64_t buckets = parse_u64(argv[1], "buckets");
  const double slack = argc > 2 ? std::strtod(argv[2], nullptr) : 0.0;
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto h = build_equi_depth_histogram<Record>(ctx, data, buckets, slack);
  print_cost(ctx, host.size());
  std::printf("%-6s %-20s %s\n", "bucket", "upper_key", "count");
  for (std::size_t i = 0; i < h.buckets(); ++i) {
    if (i < h.boundaries.size()) {
      std::printf("%-6zu %-20" PRIu64 " %" PRIu64 "\n", i,
                  h.boundaries[i].key, h.sizes[i]);
    } else {
      std::printf("%-6zu %-20s %" PRIu64 "\n", i, "+inf", h.sizes[i]);
    }
  }
  return 0;
}

int cmd_serve(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("serve needs <file> <socket>");
  SplitterServer::Config cfg;
  cfg.source_path = argv[0];
  const std::string socket_path = argv[1];
  cfg.state_dir = opt.checkpoint_dir;
  std::string listen_host;
  int listen_port = -1;  // -1 = no TCP front end
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--buckets=", 0) == 0) {
      cfg.buckets = parse_u64(arg.c_str() + 10, "buckets");
      if (cfg.buckets == 0) usage("--buckets must be positive");
    } else if (arg.rfind("--slack=", 0) == 0) {
      cfg.slack = std::strtod(arg.c_str() + 8, nullptr);
      if (cfg.slack < 0) usage("--slack must be >= 0");
    } else if (arg.rfind("--queue-wait=", 0) == 0) {
      cfg.queue_wait = std::strtod(arg.c_str() + 13, nullptr);
      if (cfg.queue_wait < 0) usage("--queue-wait must be >= 0");
    } else if (arg.rfind("--bucket-cache-blocks=", 0) == 0) {
      cfg.bucket_cache_blocks =
          parse_u64(arg.c_str() + 22, "bucket-cache-blocks");
    } else if (arg.rfind("--listen=", 0) == 0) {
      const std::string hp = arg.substr(9);
      const auto colon = hp.rfind(':');
      if (colon == std::string::npos) usage("--listen needs host:port");
      listen_host = hp.substr(0, colon);
      const std::uint64_t port = parse_u64(hp.c_str() + colon + 1, "port");
      if (port > 65535) usage("--listen port out of range");
      listen_port = static_cast<int>(port);
    } else {
      usage(("unknown serve option " + arg).c_str());
    }
  }
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  SplitterServer server(ctx, cfg);
  server.start();
  std::printf("[serve] epoch %" PRIu64 " %s: %" PRIu64 " records, %" PRIu64
              " buckets\n",
              server.epoch(), server.recovered() ? "recovered" : "built",
              server.size(), cfg.buckets);
  std::thread tcp_thread;
  if (listen_port >= 0) {
    tcp_thread = std::thread([&] {
      try {
        server.serve_tcp(listen_host, static_cast<std::uint16_t>(listen_port));
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        server.stop();
      }
    });
    // Wait for the listener to bind so the readiness line reports the real
    // port (--listen=host:0 binds an ephemeral one).
    for (int spin = 0; spin < 400 && server.tcp_port() == 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (server.tcp_port() != 0) {
      std::printf("[serve] listening on tcp %s:%u\n",
                  listen_host.empty() ? "0.0.0.0" : listen_host.c_str(),
                  static_cast<unsigned>(server.tcp_port()));
    }
  }
  std::printf("[serve] listening on %s\n", socket_path.c_str());
  std::fflush(stdout);  // readiness marker: scripts wait for this line
  server.serve_unix(socket_path);
  server.stop();  // SHUTDOWN on either front end winds down the other
  if (tcp_thread.joinable()) tcp_thread.join();
  // Trace: the machine's pass rows (build/refresh passes) first, then the
  // query rows appended into the same JSON-lines file — trace_view.py
  // renders the mix.  Cleared so the Machine destructor doesn't re-truncate.
  if (m.trace != nullptr && !m.trace_path.empty()) {
    if (!write_pass_trace_jsonl(*m.trace, m.trace_path) ||
        !append_query_trace_jsonl(server.trace(), m.trace_path)) {
      std::fprintf(stderr, "warning: could not write trace file %s\n",
                   m.trace_path.c_str());
    }
    m.trace_path.clear();
  }
  print_cost(ctx, static_cast<std::size_t>(server.size()));
  std::printf("[serve] epoch %" PRIu64 ": served %" PRIu64 " queries, shed %"
              PRIu64 "\n",
              server.epoch(), server.served(), server.shed());
  return 0;
}

/// Connect to a query target: host:port (contains ':', no '/') dials TCP,
/// anything else is a Unix-domain socket path.  Returns -1 on failure.
int connect_target(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon != std::string::npos && target.find('/') == std::string::npos) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    std::uint64_t port = 0;
    try {
      port = parse_u64(target.c_str() + colon + 1, "port");
    } catch (...) {
      return -1;
    }
    if (port == 0 || port > 65535) return -1;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    std::string host = target.substr(0, colon);
    if (host.empty() || host == "localhost" || host == "*") host = "127.0.0.1";
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (target.size() >= sizeof(addr.sun_path)) usage("socket path too long");
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", target.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int cmd_query(const Options&, int argc, char** argv) {
  if (argc < 2) usage("query needs <target> <REQUEST...>");
  const std::string target = argv[0];
  std::uint64_t repeat = 1;
  bool pipeline = false;
  std::vector<std::string> words;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--repeat=", 0) == 0) {
      repeat = parse_u64(arg.c_str() + 9, "repeat");
      if (repeat == 0) usage("--repeat must be positive");
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else {
      words.push_back(arg);
    }
  }
  if (words.empty()) usage("query needs a REQUEST");
  std::string line;
  for (std::size_t w = 0; w < words.size(); ++w) {
    if (w > 0) line += ' ';
    line += words[w];
  }
  line += '\n';
  const std::string& word = words[0];

  const int fd = connect_target(target);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n", target.c_str());
    return 1;
  }
  std::FILE* f = ::fdopen(fd, "r+");
  if (f == nullptr) {
    ::close(fd);
    return 1;
  }

  // Reply grammar: one status line; HIST / TOPK stream more until END.
  // Returns 0 = OK, 3 = SHED (structured admission reject), 1 = error.
  const auto read_reply = [&](bool print) {
    char buf[4096];
    if (std::fgets(buf, sizeof(buf), f) == nullptr) return 1;
    if (print) std::fputs(buf, stdout);
    int rc = 1;
    if (std::strncmp(buf, "OK", 2) == 0) {
      rc = 0;
    } else if (std::strncmp(buf, "SHED", 4) == 0) {
      rc = 3;
    }
    if (rc == 0 && (word == "HIST" || word == "TOPK")) {
      while (std::fgets(buf, sizeof(buf), f) != nullptr) {
        if (print) std::fputs(buf, stdout);
        if (std::strcmp(buf, "END\n") == 0) break;
      }
    }
    return rc;
  };

  const bool print_replies = repeat == 1;
  std::uint64_t ok = 0, shed = 0, err = 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (pipeline) {
    // Pipelined mode: every request on the wire before any reply is read —
    // the server parses them as one batch and answers in request order.
    for (std::uint64_t i = 0; i < repeat; ++i) std::fputs(line.c_str(), f);
    std::fflush(f);
    for (std::uint64_t i = 0; i < repeat; ++i) {
      switch (read_reply(print_replies)) {
        case 0: ++ok; break;
        case 3: ++shed; break;
        default: ++err; break;
      }
    }
  } else {
    for (std::uint64_t i = 0; i < repeat; ++i) {
      std::fputs(line.c_str(), f);
      std::fflush(f);
      switch (read_reply(print_replies)) {
        case 0: ++ok; break;
        case 3: ++shed; break;
        default: ++err; break;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fclose(f);  // closes fd too
  if (repeat > 1) {
    std::printf("[query] %" PRIu64 " requests (%s): ok=%" PRIu64 " shed=%"
                PRIu64 " err=%" PRIu64 " seconds=%.6f qps=%.0f\n",
                repeat, pipeline ? "pipelined" : "serial", ok, shed, err,
                seconds, seconds > 0 ? static_cast<double>(repeat) / seconds
                                     : 0.0);
  }
  if (err > 0) return 1;
  if (shed > 0) return 3;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const int i = parse_global_options(argc, argv, opt);
  if (i >= argc) usage();
  const std::string cmd = argv[i];
  const int rest = argc - i - 1;
  char** rest_argv = argv + i + 1;
  try {
    if (cmd == "gen") return cmd_gen(opt, rest, rest_argv);
    if (cmd == "info") return cmd_info(opt, rest, rest_argv);
    if (cmd == "sort") return cmd_sort(opt, rest, rest_argv);
    if (cmd == "dsort") return cmd_dsort(opt, rest, rest_argv);
    if (cmd == "select") return cmd_select(opt, rest, rest_argv);
    if (cmd == "splitters") return cmd_splitters(opt, rest, rest_argv);
    if (cmd == "partition") return cmd_partition(opt, rest, rest_argv);
    if (cmd == "histogram") return cmd_histogram(opt, rest, rest_argv);
    if (cmd == "serve") return cmd_serve(opt, rest, rest_argv);
    if (cmd == "query") return cmd_query(opt, rest, rest_argv);
  } catch (const WorkerDied& e) {
    // Distinct exit code so scripted kill-and-resume runs (CI) can tell a
    // injected worker death from an ordinary failure.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 137;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}

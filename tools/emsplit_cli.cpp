// emsplit — command-line front end for the library.
//
// Operates on flat binary files of 16-byte records (little-endian u64 key,
// u64 payload).  Data is staged onto a simulated block device so every run
// reports the exact external-memory I/O cost alongside its results — the
// tool doubles as a cost explorer for the paper's algorithms.
//
//   emsplit gen       <file> <n> [workload] [seed]
//   emsplit sort      <in> <out>
//   emsplit dsort     <in> <out>
//   emsplit select    <file> <rank> [rank ...]
//   emsplit splitters <file> <K> <a> <b>
//   emsplit partition <in> <out> <K> <a> <b>
//   emsplit histogram <file> <buckets> [slack]
//   emsplit info      <file>
//
// Global options (before the subcommand):
//   --block-bytes=N        simulated block size                [default 4096]
//   --mem-bytes=N          simulated memory budget             [default 1048576]
//   --backend=mem|file|uring
//                          physical backend: in-memory pages, positional
//                          file I/O, or the io_uring write-behind ring
//                          (gracefully falls back to positional I/O when
//                          io_uring is unavailable)            [default mem]
//   --cache-blocks=N       shared block cache capacity in blocks, charged
//                          against --mem-bytes (0 = no cache)  [default 0]
//   --threads=N            CPU worker threads                  [default 1]
//   --sort-shards=N        in-memory sort shard geometry       [default 1]
//   --workers=W            cooperating worker processes for dsort /
//                          partition (0 = classic single-process path;
//                          forked when the backend is fork-safe, inline
//                          otherwise)                          [default 0]
//   --kill-worker=W:R      test hook: worker W dies at the start of
//                          distributed round R (pairs with
//                          --checkpoint-dir to exercise resume)
//   --hang-worker=W:R      test hook: worker W finishes round R's work but
//                          never sends its frame (needs --worker-timeout)
//   --corrupt-frame=W:R    test hook: worker W's round-R result frame has a
//                          byte flipped after its checksum is computed
//   --max-worker-retries=N re-execute a failed worker's units up to N times
//                          per round instead of aborting the pass
//                                                              [default 0]
//   --worker-timeout=S     per-round deadline in seconds for forked workers;
//                          a worker with no complete frame by then is
//                          SIGKILLed and treated as a crash (0 = none)
//   --degrade-after=N      after N worker failures, re-plan remaining rounds
//                          at half the workers (0 = never)     [default 0]
//   --mem-workers=N        budget each distributed worker M/N bytes (plans
//                          shrink accordingly; any --workers=W with W <= N
//                          keeps aggregate worker memory <= M) [default 1]
//   --shards=D             stripe the device over D member devices
//                          (RAID-0, the EM model's D-disk extension)
//                                                              [default 1]
//   --stripe-blocks=N      blocks per stripe unit on a sharded device
//                                                              [default 8]
//   --batch-blocks=N       blocks per stream device call       [default 1]
//   --queue-depth=N        extra in-flight batches per stream  [default 0]
//   --async=on|off         background I/O worker               [default off]
//   --trace=FILE           per-pass trace rows as JSON-lines (I/Os, bytes,
//                          wall time, per-shard breakdown, balance)
//   --fault-policy=R[:US]  retry transient device faults up to R times,
//                          first backoff US microseconds       [default 0]
//   --checksums=on|off     per-block corruption detection      [default off]
//   --checkpoint-dir=DIR   crash-recoverable runs: a file-backed device and
//                          a pass-boundary journal live in DIR; rerunning
//                          the identical command resumes from the last
//                          completed pass (sort / dsort / partition / select)
//   --crash-after-pass=N   test hook: exit abruptly after N checkpoint
//                          publishes (simulates SIGKILL mid-run)
//
// --threads is pure execution width: for any value, the reported I/O cost
// and the output bytes are identical (the determinism contract in
// docs/model.md).  --sort-shards changes the in-memory sort geometry, but
// record order is total, so outputs still match bit-for-bit.  --shards /
// --stripe-blocks / --batch-blocks / --queue-depth / --async are likewise
// output-transparent: striping and batching are geometry, never output
// (docs/model.md, "Sharded devices and the D-disk model").  Transient
// retries never change the base I/O counts either — `[cost]` reports them
// separately (docs/model.md, "Failure model, retries, and recovery").
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "core/api.hpp"
#include "em/block_cache.hpp"
#include "em/checkpoint.hpp"
#include "em/file_io.hpp"
#include "em/uring_device.hpp"

namespace {

using namespace emsplit;

struct Options {
  std::size_t block_bytes = 4096;
  std::size_t mem_bytes = 1 << 20;
  std::string backend = "mem";
  std::size_t cache_blocks = 0;
  std::size_t threads = 1;
  std::size_t sort_shards = 1;
  std::size_t workers = 0;
  std::size_t kill_worker = 0;
  std::uint64_t kill_round = 0;
  std::size_t hang_worker = 0;
  std::uint64_t hang_round = 0;
  std::size_t corrupt_worker = 0;
  std::uint64_t corrupt_round = 0;
  std::uint64_t max_worker_retries = 0;
  double worker_timeout = 0.0;
  std::uint64_t degrade_after = 0;
  std::size_t mem_workers = 1;
  std::size_t shards = 1;
  std::size_t stripe_blocks = 8;
  std::size_t batch_blocks = 1;
  std::size_t queue_depth = 0;
  bool async = false;
  std::string trace_path;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_backoff_us = 0;
  bool checksums = false;
  std::string checkpoint_dir;
  std::uint64_t crash_after = 0;
};

/// The simulated machine one command runs on.  Destruction order matters:
/// the journal returns its extents to the device, so it must die first —
/// members are declared device, journal, context and destroyed in reverse.
/// The destructor flushes the `--trace` log (every pass has completed by
/// then, and the context is still alive during the destructor body).
struct Machine {
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<CheckpointJournal> journal;
  std::unique_ptr<Context> ctx;
  // After ctx: the cache must die first (it releases chunks back to the
  // context's budget in its destructor).
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<PassTraceLog> trace;
  std::string trace_path;

  Machine() = default;
  Machine(Machine&&) = default;
  Machine& operator=(Machine&&) = default;
  ~Machine() {
    if (ctx != nullptr && cache != nullptr) ctx->set_block_cache(nullptr);
    // The journal destructor returns its still-owned extents to the device,
    // and deallocation drops the freed blocks' checksum entries — snapshot
    // the sidecars first so an interrupted run's journaled blocks stay
    // verifiable on resume.  (On a completed run the journal owns nothing,
    // the table is empty, and the flush removes the sidecar files.)
    if (journal != nullptr && dev != nullptr) {
      if (auto* sh = dynamic_cast<ShardedBlockDevice*>(dev.get())) {
        sh->flush_member_sidecars();
      }
    }
    if (trace != nullptr && !trace_path.empty() &&
        !write_pass_trace_jsonl(*trace, trace_path)) {
      std::fprintf(stderr, "warning: could not write trace file %s\n",
                   trace_path.c_str());
    }
  }
};

std::unique_ptr<BlockDevice> make_member(const Options& opt,
                                         const std::string& name) {
  // Crash-recoverable runs keep the device file (and re-adopt its blocks on
  // the next start); otherwise file-backed backends use a private scratch
  // file removed on exit.
  const bool persist = !opt.checkpoint_dir.empty();
  const std::string path =
      persist ? opt.checkpoint_dir + "/" + name
              : "/tmp/emsplit." + std::to_string(::getpid()) + "." + name;
  if (opt.backend == "uring") {
    return std::make_unique<UringBlockDevice>(
        path, opt.block_bytes, UringBlockDevice::tuned(opt.queue_depth),
        /*keep_file=*/persist, /*preserve_contents=*/persist);
  }
  if (opt.backend == "file" || persist) {
    return std::make_unique<FileBlockDevice>(path, opt.block_bytes,
                                             /*keep_file=*/persist,
                                             /*preserve_contents=*/persist);
  }
  return std::make_unique<MemoryBlockDevice>(opt.block_bytes);
}

Machine make_machine(const Options& opt) {
  Machine m;
  if (opt.backend == "uring") {
    // Capability note on stderr so stdout stays byte-identical across hosts
    // (backend choice is geometry, never output).
    std::fprintf(stderr, "[backend] uring: %s\n",
                 UringBlockDevice::uring_supported()
                     ? "native io_uring ring"
                     : "fallback (io_uring unavailable; positional I/O)");
  }
  if (opt.shards > 1) {
    // D-disk machine: one member device per shard behind a striping facade.
    // With --checkpoint-dir each member persists as its own file, and when
    // checksums are on the facade's per-member checksum maps persist too
    // (".ssums" sidecars next to each member file): a restarted run resumes
    // with corruption detection intact instead of starting unverified.
    std::vector<std::unique_ptr<BlockDevice>> members;
    std::vector<std::string> sidecars;
    members.reserve(opt.shards);
    const bool persist = !opt.checkpoint_dir.empty();
    for (std::size_t d = 0; d < opt.shards; ++d) {
      const std::string name = "device.shard" + std::to_string(d) + ".bin";
      members.push_back(make_member(opt, name));
      sidecars.push_back((persist ? opt.checkpoint_dir + "/" + name
                                  : "/tmp/emsplit." +
                                        std::to_string(::getpid()) + "." +
                                        name) +
                         ".ssums");
    }
    auto sharded = std::make_unique<ShardedBlockDevice>(std::move(members),
                                                        opt.stripe_blocks);
    if (persist && opt.checksums) {
      sharded->set_member_sidecars(std::move(sidecars), /*preserve=*/true);
    }
    m.dev = std::move(sharded);
  } else {
    m.dev = make_member(opt, "device.bin");
  }
  m.dev->set_checksums(opt.checksums);
  m.ctx = std::make_unique<Context>(*m.dev, opt.mem_bytes);
  m.ctx->set_io_tuning(IoTuning{opt.batch_blocks, opt.queue_depth, opt.async});
  m.ctx->set_cpu_tuning(CpuTuning{opt.threads, opt.sort_shards});
  WorkerTuning wt;
  wt.workers = opt.workers;
  wt.kill_worker = opt.kill_worker;
  wt.kill_round = opt.kill_round;
  wt.hang_worker = opt.hang_worker;
  wt.hang_round = opt.hang_round;
  wt.corrupt_worker = opt.corrupt_worker;
  wt.corrupt_round = opt.corrupt_round;
  wt.max_worker_retries = opt.max_worker_retries;
  wt.worker_timeout = opt.worker_timeout;
  wt.degrade_after = opt.degrade_after;
  wt.mem_workers = opt.mem_workers;
  m.ctx->set_worker_tuning(wt);
  FaultPolicy policy;
  policy.max_retries = opt.fault_retries;
  policy.backoff = std::chrono::microseconds(opt.fault_backoff_us);
  m.ctx->set_fault_policy(policy);
  if (opt.cache_blocks > 0) {
    m.cache = std::make_unique<BlockCache>(m.ctx->budget(), opt.block_bytes,
                                           opt.cache_blocks);
    if (!m.cache->enabled()) {
      std::fprintf(stderr,
                   "warning: block cache disabled (budget declined the first "
                   "chunk; shrink --cache-blocks or grow --mem-bytes)\n");
    }
    m.ctx->set_block_cache(m.cache.get());
  }
  if (!opt.checkpoint_dir.empty()) {
    m.journal = std::make_unique<CheckpointJournal>(
        *m.dev, opt.checkpoint_dir + "/journal.ckpt");
    m.journal->restore_device();
    m.ctx->set_checkpoint(m.journal.get());
    if (opt.crash_after > 0) {
      m.journal->set_crash_after_publishes(opt.crash_after);
    }
  }
  if (!opt.trace_path.empty()) {
    m.trace = std::make_unique<PassTraceLog>();
    m.trace_path = opt.trace_path;
    m.ctx->set_pass_trace(m.trace.get());
  }
  return m;
}

[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr,
               "usage: emsplit [--block-bytes=N] [--mem-bytes=N]"
               " [--threads=N] [--sort-shards=N]\n"
               "               [--workers=W] [--kill-worker=W:R]"
               " [--hang-worker=W:R] [--corrupt-frame=W:R]\n"
               "               [--max-worker-retries=N] [--worker-timeout=S]"
               " [--degrade-after=N] [--mem-workers=N]\n"
               "               [--backend=mem|file|uring] [--cache-blocks=N]\n"
               "               [--shards=D] [--stripe-blocks=N]"
               " [--batch-blocks=N] [--queue-depth=N] [--async=on|off]\n"
               "               [--trace=FILE] [--fault-policy=R[:BACKOFF_US]]"
               " [--checksums=on|off]\n"
               "               [--checkpoint-dir=DIR] [--crash-after-pass=N]"
               " <command>\n"
               "  gen       <file> <n> [workload] [seed]   create a dataset\n"
               "  sort      <in> <out>                     external sort\n"
               "  dsort     <in> <out>                     distribution sort\n"
               "  select    <file> <rank> [rank ...]       multi-selection\n"
               "  splitters <file> <K> <a> <b>             approximate K-splitters\n"
               "  partition <in> <out> <K> <a> <b>         approximate K-partitioning\n"
               "  histogram <file> <buckets> [slack]       nearly equi-depth histogram\n"
               "  info      <file>                         dataset summary\n"
               "workloads: uniform sorted reverse few_distinct organ_pipe zipfian"
               " block_striped\n");
  std::exit(2);
}

std::uint64_t parse_u64(const char* s, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "error: bad %s: '%s'\n", what, s);
    std::exit(2);
  }
  return v;
}

std::vector<Record> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  const auto bytes = static_cast<std::size_t>(in.tellg());
  if (bytes % sizeof(Record) != 0) {
    std::fprintf(stderr, "error: %s is not a whole number of records\n",
                 path.c_str());
    std::exit(1);
  }
  std::vector<Record> v(bytes / sizeof(Record));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(bytes));
  return v;
}

void write_file(const std::string& path, const std::vector<Record>& v) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(Record)));
}

Workload parse_workload(const std::string& name) {
  for (const Workload w : all_workloads()) {
    if (to_string(w) == name) return w;
  }
  std::fprintf(stderr, "error: unknown workload '%s'\n", name.c_str());
  std::exit(2);
}

void print_cost(const Context& ctx, std::size_t n) {
  const auto scan =
      (n + ctx.block_records<Record>() - 1) / ctx.block_records<Record>();
  const IoStats io = ctx.io();
  std::printf("[cost] %" PRIu64 " block I/Os (reads %" PRIu64 ", writes %"
              PRIu64 ")",
              io.total(), io.reads, io.writes);
  // Retries and resumed passes print only when nonzero: the default output
  // stays byte-identical across thread counts and fault-free runs.
  if (io.retries > 0) {
    std::printf(" + %" PRIu64 " transient retries", io.retries);
  }
  if (io.worker_retries > 0) {
    std::printf(" + %" PRIu64 " re-executed worker I/Os", io.worker_retries);
  }
  if (io.cache_hits > 0) {
    std::printf(" (%" PRIu64 " served from cache)", io.cache_hits);
  }
  const CheckpointJournal* journal = ctx.checkpoint();
  if (journal != nullptr && journal->resumed_passes() > 0) {
    std::printf(" (resumed %" PRIu64 " journaled passes)",
                journal->resumed_passes());
  }
  std::printf("; one scan = %zu; peak memory %zu / %zu bytes\n", scan,
              ctx.budget().peak(), ctx.budget().capacity());
}

int cmd_gen(const Options&, int argc, char** argv) {
  if (argc < 2) usage("gen needs <file> <n>");
  const std::string path = argv[0];
  const auto n = static_cast<std::size_t>(parse_u64(argv[1], "n"));
  const Workload w = argc > 2 ? parse_workload(argv[2]) : Workload::kUniform;
  const std::uint64_t seed = argc > 3 ? parse_u64(argv[3], "seed") : 42;
  write_file(path, make_workload(w, n, seed));
  std::printf("wrote %zu records (%s, seed %" PRIu64 ") to %s\n", n,
              to_string(w).c_str(), seed, path.c_str());
  return 0;
}

int cmd_info(const Options& opt, int argc, char** argv) {
  if (argc < 1) usage("info needs <file>");
  auto host = read_file(argv[0]);
  std::printf("%s: %zu records (%zu bytes)\n", argv[0], host.size(),
              host.size() * sizeof(Record));
  if (!host.empty()) {
    auto mm = std::minmax_element(host.begin(), host.end());
    std::printf("  key range [%" PRIu64 ", %" PRIu64 "], sorted: %s\n",
                mm.first->key, mm.second->key,
                std::is_sorted(host.begin(), host.end()) ? "yes" : "no");
  }
  std::printf("  machine model: B = %zu bytes/block, M = %zu bytes\n",
              opt.block_bytes, opt.mem_bytes);
  return 0;
}

int cmd_sort(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("sort needs <in> <out>");
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  // Streamed in block-sized pieces: the dataset never has to fit in host
  // memory, matching the library's own discipline.
  auto data = import_file<Record>(ctx, argv[0]);
  m.dev->reset_stats();
  auto sorted = external_sort<Record>(ctx, data);
  print_cost(ctx, data.size());
  export_file<Record>(sorted, argv[1]);
  std::printf("sorted %zu records -> %s\n", data.size(), argv[1]);
  return 0;
}

int cmd_dsort(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("dsort needs <in> <out>");
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = import_file<Record>(ctx, argv[0]);
  m.dev->reset_stats();
  auto sorted = distribution_sort<Record>(ctx, data);
  print_cost(ctx, data.size());
  export_file<Record>(sorted, argv[1]);
  std::printf("sorted %zu records -> %s\n", data.size(), argv[1]);
  return 0;
}

int cmd_select(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("select needs <file> and at least one rank");
  auto host = read_file(argv[0]);
  std::vector<std::uint64_t> ranks;
  for (int i = 1; i < argc; ++i) ranks.push_back(parse_u64(argv[i], "rank"));
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto got = multi_select<Record>(ctx, data, ranks);
  print_cost(ctx, host.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::printf("rank %" PRIu64 ": key=%" PRIu64 " payload=%" PRIu64 "\n",
                ranks[i], got[i].key, got[i].payload);
  }
  return 0;
}

int cmd_splitters(const Options& opt, int argc, char** argv) {
  if (argc < 4) usage("splitters needs <file> <K> <a> <b>");
  auto host = read_file(argv[0]);
  const ApproxSpec spec{.k = parse_u64(argv[1], "K"),
                        .a = parse_u64(argv[2], "a"),
                        .b = parse_u64(argv[3], "b")};
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto splitters = approx_splitters<Record>(ctx, data, spec);
  print_cost(ctx, host.size());
  auto check = verify_splitters<Record>(data, splitters, spec);
  if (!check.ok) {
    std::fprintf(stderr, "INTERNAL ERROR: invalid output: %s\n",
                 check.reason.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < splitters.size(); ++i) {
    std::printf("s%-4zu key=%-20" PRIu64 " bucket_size=%" PRIu64 "\n", i + 1,
                splitters[i].key, check.sizes[i]);
  }
  std::printf("(last bucket size %" PRIu64 "; all within [%" PRIu64 ", %"
              PRIu64 "])\n",
              check.sizes.back(), spec.a, spec.b);
  return 0;
}

int cmd_partition(const Options& opt, int argc, char** argv) {
  if (argc < 5) usage("partition needs <in> <out> <K> <a> <b>");
  auto host = read_file(argv[0]);
  const ApproxSpec spec{.k = parse_u64(argv[2], "K"),
                        .a = parse_u64(argv[3], "a"),
                        .b = parse_u64(argv[4], "b")};
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto result = approx_partitioning<Record>(ctx, data, spec);
  print_cost(ctx, host.size());
  auto check =
      verify_partitioning<Record>(data, result.data, result.bounds, spec);
  if (!check.ok) {
    std::fprintf(stderr, "INTERNAL ERROR: invalid output: %s\n",
                 check.reason.c_str());
    return 1;
  }
  export_file<Record>(result.data, argv[1]);
  std::printf("partition bounds:");
  for (const auto b : result.bounds) std::printf(" %" PRIu64, b);
  std::printf("\nwrote %zu records -> %s\n", host.size(), argv[1]);
  return 0;
}

int cmd_histogram(const Options& opt, int argc, char** argv) {
  if (argc < 2) usage("histogram needs <file> <buckets>");
  auto host = read_file(argv[0]);
  const std::uint64_t buckets = parse_u64(argv[1], "buckets");
  const double slack = argc > 2 ? std::strtod(argv[2], nullptr) : 0.0;
  Machine m = make_machine(opt);
  Context& ctx = *m.ctx;
  auto data = materialize<Record>(ctx, host);
  m.dev->reset_stats();
  auto h = build_equi_depth_histogram<Record>(ctx, data, buckets, slack);
  print_cost(ctx, host.size());
  std::printf("%-6s %-20s %s\n", "bucket", "upper_key", "count");
  for (std::size_t i = 0; i < h.buckets(); ++i) {
    if (i < h.boundaries.size()) {
      std::printf("%-6zu %-20" PRIu64 " %" PRIu64 "\n", i,
                  h.boundaries[i].key, h.sizes[i]);
    } else {
      std::printf("%-6zu %-20s %" PRIu64 "\n", i, "+inf", h.sizes[i]);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int i = 1;
  for (; i < argc && std::strncmp(argv[i], "--", 2) == 0; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--block-bytes=", 0) == 0) {
      opt.block_bytes = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "block-bytes"));
    } else if (arg.rfind("--mem-bytes=", 0) == 0) {
      opt.mem_bytes =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 12, "mem-bytes"));
    } else if (arg.rfind("--backend=", 0) == 0) {
      opt.backend = arg.substr(10);
      if (opt.backend != "mem" && opt.backend != "file" &&
          opt.backend != "uring") {
        usage("--backend takes mem|file|uring");
      }
    } else if (arg.rfind("--cache-blocks=", 0) == 0) {
      opt.cache_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 15, "cache-blocks"));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 10, "threads"));
    } else if (arg.rfind("--sort-shards=", 0) == 0) {
      opt.sort_shards = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "sort-shards"));
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 10, "workers"));
    } else if (arg.rfind("--kill-worker=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--kill-worker takes W:R");
      opt.kill_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "kill-worker worker"));
      opt.kill_round =
          parse_u64(spec.substr(colon + 1).c_str(), "kill-worker round");
      if (opt.kill_round == 0) usage("--kill-worker round is 1-based");
    } else if (arg.rfind("--hang-worker=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--hang-worker takes W:R");
      opt.hang_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "hang-worker worker"));
      opt.hang_round =
          parse_u64(spec.substr(colon + 1).c_str(), "hang-worker round");
      if (opt.hang_round == 0) usage("--hang-worker round is 1-based");
    } else if (arg.rfind("--corrupt-frame=", 0) == 0) {
      const std::string spec = arg.substr(16);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) usage("--corrupt-frame takes W:R");
      opt.corrupt_worker = static_cast<std::size_t>(
          parse_u64(spec.substr(0, colon).c_str(), "corrupt-frame worker"));
      opt.corrupt_round =
          parse_u64(spec.substr(colon + 1).c_str(), "corrupt-frame round");
      if (opt.corrupt_round == 0) usage("--corrupt-frame round is 1-based");
    } else if (arg.rfind("--max-worker-retries=", 0) == 0) {
      opt.max_worker_retries =
          parse_u64(arg.c_str() + 21, "max-worker-retries");
    } else if (arg.rfind("--worker-timeout=", 0) == 0) {
      char* end = nullptr;
      opt.worker_timeout = std::strtod(arg.c_str() + 17, &end);
      if (end == arg.c_str() + 17 || *end != '\0' || opt.worker_timeout < 0) {
        usage("--worker-timeout takes seconds >= 0");
      }
    } else if (arg.rfind("--degrade-after=", 0) == 0) {
      opt.degrade_after = parse_u64(arg.c_str() + 16, "degrade-after");
    } else if (arg.rfind("--mem-workers=", 0) == 0) {
      opt.mem_workers = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "mem-workers"));
      if (opt.mem_workers == 0) usage("--mem-workers must be positive");
    } else if (arg.rfind("--shards=", 0) == 0) {
      opt.shards =
          static_cast<std::size_t>(parse_u64(arg.c_str() + 9, "shards"));
      if (opt.shards == 0) usage("--shards must be positive");
    } else if (arg.rfind("--stripe-blocks=", 0) == 0) {
      opt.stripe_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 16, "stripe-blocks"));
      if (opt.stripe_blocks == 0) usage("--stripe-blocks must be positive");
    } else if (arg.rfind("--batch-blocks=", 0) == 0) {
      opt.batch_blocks = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 15, "batch-blocks"));
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      opt.queue_depth = static_cast<std::size_t>(
          parse_u64(arg.c_str() + 14, "queue-depth"));
    } else if (arg.rfind("--async=", 0) == 0) {
      const std::string v = arg.substr(8);
      if (v == "on") {
        opt.async = true;
      } else if (v == "off") {
        opt.async = false;
      } else {
        usage("--async takes on|off");
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_path = arg.substr(8);
      if (opt.trace_path.empty()) usage("--trace needs a path");
    } else if (arg.rfind("--fault-policy=", 0) == 0) {
      const std::string spec = arg.substr(15);
      const std::size_t colon = spec.find(':');
      opt.fault_retries =
          parse_u64(spec.substr(0, colon).c_str(), "fault-policy retries");
      if (colon != std::string::npos) {
        opt.fault_backoff_us =
            parse_u64(spec.substr(colon + 1).c_str(), "fault-policy backoff");
      }
    } else if (arg.rfind("--checksums=", 0) == 0) {
      const std::string v = arg.substr(12);
      if (v == "on") {
        opt.checksums = true;
      } else if (v == "off") {
        opt.checksums = false;
      } else {
        usage("--checksums takes on|off");
      }
    } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      opt.checkpoint_dir = arg.substr(17);
      if (opt.checkpoint_dir.empty()) usage("--checkpoint-dir needs a path");
    } else if (arg.rfind("--crash-after-pass=", 0) == 0) {
      opt.crash_after = parse_u64(arg.c_str() + 19, "crash-after-pass");
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (i >= argc) usage();
  const std::string cmd = argv[i];
  ++i;
  try {
    if (cmd == "gen") return cmd_gen(opt, argc - i, argv + i);
    if (cmd == "info") return cmd_info(opt, argc - i, argv + i);
    if (cmd == "sort") return cmd_sort(opt, argc - i, argv + i);
    if (cmd == "dsort") return cmd_dsort(opt, argc - i, argv + i);
    if (cmd == "select") return cmd_select(opt, argc - i, argv + i);
    if (cmd == "splitters") return cmd_splitters(opt, argc - i, argv + i);
    if (cmd == "partition") return cmd_partition(opt, argc - i, argv + i);
    if (cmd == "histogram") return cmd_histogram(opt, argc - i, argv + i);
  } catch (const WorkerDied& e) {
    // Distinct exit code so scripted kill-and-resume runs (CI) can tell a
    // injected worker death from an ordinary failure.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 137;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}

#!/usr/bin/env python3
"""Render a trace file (`--trace=FILE` JSON lines) as a span table.

Every engine-run pass emits one JSON object per line (see pass_trace_json in
em/pass_engine.cpp).  This tool lays the passes out as a timeline — one row
per pass with a proportional span bar — plus the columns that explain where
the cost went: logical I/Os, cache hit rate, the pass's in-memory high-water
mark, and the shard balance factor (max member share x D; 1.0 = perfectly
even striping).  Distributed passes (run under --workers=W) additionally
list one indented sub-row per worker: its share of the pass's I/O, its busy
seconds, and how long it waited at the closing barrier for the slowest
peer.  Traces written before the worker layer existed simply lack the
"workers" key and render exactly as before.

The splitter service appends QueryTrace rows to the same file (see
query_trace_json in service/splitter_index.cpp); they lead with a "query"
key where pass rows lead with "job".  Query rows are aggregated into a
per-kind summary below the pass timeline: request count, admission
breakdown, logical reads, cache hit rate, and p50/p99 service latency.
Below that, a per-epoch summary shows each served epoch's query count,
p50/p99 latency, bucket-cache hit rate (bucket_hits / reads) and summed
admission queueing — traces written before the bucket cache existed simply
lack the "bucket_hits" key and render a "-" hit rate.  A file with only
pass rows renders exactly as before; a file with only query rows skips the
timeline.

Usage:
    tools/trace_view.py [FILE] [--width=40]

FILE defaults to stdin, so both work:
    emsplit sort -n 1M --trace=trace.jsonl && tools/trace_view.py trace.jsonl
    emsplit sort -n 1M --trace=/dev/stdout | tools/trace_view.py

Exit status: 0 = rendered, 2 = bad input.
"""

import json
import sys


def human_bytes(n):
    if n <= 0:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or unit == "TiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}TiB"


def load_rows(stream):
    rows = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise ValueError(f"line {lineno}: {e}") from e
    return rows


def hit_rate(row):
    hits = int(row.get("cache_hits", 0))
    misses = int(row.get("cache_misses", 0))
    if hits + misses == 0:
        return "-"
    return f"{100.0 * hits / (hits + misses):.0f}%"


def span_bar(start, dur, total, width):
    """A proportional [start, start+dur) bar on a `width`-char timeline."""
    if total <= 0:
        return "." * width
    lo = round(width * start / total)
    hi = max(lo + 1, round(width * (start + dur) / total))
    hi = min(hi, width)
    return "." * lo + "#" * (hi - lo) + "." * (width - hi)


def percentile(sorted_vals, frac):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_vals:
        return 0.0
    i = max(0, min(len(sorted_vals) - 1,
                   int(round(frac * (len(sorted_vals) - 1)))))
    return sorted_vals[i]


def render_queries(rows, out=sys.stdout):
    """Aggregate QueryTrace rows into a per-kind summary table."""
    by_kind = {}
    for r in rows:
        by_kind.setdefault(str(r.get("query", "?")), []).append(r)

    print(f"  {'query':<10} {'n':>6} {'admit':>6} {'shed':>5} {'err':>5} "
          f"{'reads':>9} {'hit%':>5} {'p50 ms':>8} {'p99 ms':>8}  epochs",
          file=out)
    for kind, qrows in sorted(by_kind.items()):
        admit = sum(1 for r in qrows
                    if r.get("admission") in ("admit", "queued"))
        shed = sum(1 for r in qrows if r.get("admission") == "shed")
        err = sum(1 for r in qrows if r.get("admission") == "error")
        reads = sum(int(r.get("reads", 0)) for r in qrows)
        hits = sum(int(r.get("cache_hits", 0)) for r in qrows)
        misses = sum(int(r.get("cache_misses", 0)) for r in qrows)
        hit = f"{100.0 * hits / (hits + misses):.0f}%" if hits + misses \
            else "-"
        lat = sorted(float(r.get("seconds", 0)) for r in qrows
                     if r.get("admission") in ("admit", "queued"))
        p50 = 1e3 * percentile(lat, 0.50)
        p99 = 1e3 * percentile(lat, 0.99)
        epochs = sorted({int(r.get("epoch", 0)) for r in qrows})
        span = (f"{epochs[0]}" if len(epochs) == 1
                else f"{epochs[0]}-{epochs[-1]}") if epochs else "-"
        print(f"  {kind:<10} {len(qrows):>6} {admit:>6} {shed:>5} {err:>5} "
              f"{reads:>9} {hit:>5} {p50:>8.3f} {p99:>8.3f}  {span}",
              file=out)

    total = len(rows)
    served = sum(1 for r in rows
                 if r.get("admission") in ("admit", "queued"))
    print(f"  {total} query row(s), {served} served, "
          f"{total - served} rejected", file=out)


def render_epochs(rows, out=sys.stdout):
    """Per-epoch query summary.  The bucket_hits key is newer than the
    query-row format; older traces render a '-' hit rate via the default."""
    by_epoch = {}
    for r in rows:
        by_epoch.setdefault(int(r.get("epoch", 0)), []).append(r)
    print(f"  {'epoch':<6} {'n':>6} {'p50 ms':>8} {'p99 ms':>8} "
          f"{'bhit%':>6} {'queue s':>8}", file=out)
    for epoch, qrows in sorted(by_epoch.items()):
        lat = sorted(float(r.get("seconds", 0)) for r in qrows
                     if r.get("admission") in ("admit", "queued"))
        p50 = 1e3 * percentile(lat, 0.50)
        p99 = 1e3 * percentile(lat, 0.99)
        reads = sum(int(r.get("reads", 0)) for r in qrows)
        bhits = sum(int(r.get("bucket_hits", 0)) for r in qrows)
        bhit = f"{100.0 * bhits / reads:.0f}%" if reads else "-"
        queue = sum(float(r.get("queue_seconds", 0)) for r in qrows)
        print(f"  {epoch:<6} {len(qrows):>6} {p50:>8.3f} {p99:>8.3f} "
              f"{bhit:>6} {queue:>8.3f}", file=out)


def render(rows, width, out=sys.stdout):
    timed = [r for r in rows if not r.get("resumed", False)]
    total = sum(float(r.get("seconds", 0)) for r in timed)
    total_io = sum(int(r.get("reads", 0)) + int(r.get("writes", 0))
                   for r in timed)

    header = (f"  {'#':>2} {'job/pass':<28} {'reads':>9} {'writes':>9} "
              f"{'hit%':>5} {'hwm':>9} {'bal':>5} {'secs':>8}  "
              f"timeline ({total:.3f}s total)")
    print(header, file=out)
    start = 0.0
    for r in rows:
        # Pass labels usually embed the job prefix already ("dsort/partition"
        # under job "dsort"); only prepend when they don't.
        job, label = r.get("job", "?"), r.get("pass", "?")
        name = label if label.startswith(job) else f"{job}/{label}"
        if len(name) > 28:
            name = name[:27] + "…"
        if r.get("resumed", False):
            print(f"  {r.get('index', 0):>2} {name:<28} "
                  f"{'-':>9} {'-':>9} {'-':>5} {'-':>9} {'-':>5} {'-':>8}  "
                  f"[resumed from checkpoint]", file=out)
            continue
        secs = float(r.get("seconds", 0))
        balance = r.get("balance", 1.0)
        bal = f"{balance:.2f}" if r.get("shards") else "-"
        bar = span_bar(start, secs, total, width)
        print(f"  {r.get('index', 0):>2} {name:<28} "
              f"{int(r.get('reads', 0)):>9} {int(r.get('writes', 0)):>9} "
              f"{hit_rate(r):>5} {human_bytes(int(r.get('hwm_bytes', 0))):>9} "
              f"{bal:>5} {secs:>8.3f}  {bar}", file=out)
        for w in r.get("workers", []):
            wname = f"└ worker {int(w.get('id', 0))}"
            wait = float(w.get("barrier_seconds", 0.0))
            print(f"     {wname:<28} "
                  f"{int(w.get('reads', 0)):>9} {int(w.get('writes', 0)):>9} "
                  f"{'-':>5} {'-':>9} {'-':>5} "
                  f"{float(w.get('seconds', 0.0)):>8.3f}  "
                  f"barrier wait {wait:.3f}s", file=out)
        start += secs

    shards = max((len(r.get("shards", [])) for r in rows), default=0)
    workers = max((len(r.get("workers", [])) for r in rows), default=0)
    tail = f"  {len(rows)} pass(es), {total_io} logical I/Os, {total:.3f}s"
    if shards:
        tail += f", {shards} shard(s)"
    if workers:
        tail += f", {workers} worker(s)"
    resumed = sum(1 for r in rows if r.get("resumed", False))
    if resumed:
        tail += f", {resumed} resumed"
    print(tail, file=out)


def main(argv):
    path = None
    width = 40
    for arg in argv[1:]:
        if arg.startswith("--width="):
            width = max(10, int(arg.split("=", 1)[1]))
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-") and arg != "-":
            print(f"trace_view: unknown flag {arg!r}", file=sys.stderr)
            return 2
        else:
            path = arg

    try:
        if path is None or path == "-":
            rows = load_rows(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as f:
                rows = load_rows(f)
    except (OSError, ValueError) as e:
        print(f"trace_view: cannot read {path or 'stdin'}: {e}",
              file=sys.stderr)
        return 2

    if not rows:
        print("trace_view: no trace rows")
        return 0
    passes = [r for r in rows if "query" not in r]
    queries = [r for r in rows if "query" in r]
    if passes:
        render(passes, width)
    if queries:
        if passes:
            print()
        render_queries(queries)
        print()
        render_epochs(queries)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

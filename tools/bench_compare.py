#!/usr/bin/env python3
"""Compare the two most recent entries of a bench trajectory file.

BENCH_wallclock.json accumulates one labelled entry per bench invocation
(see JsonEmitter::append_entry).  This tool diffs the latest entry against
the one before it, matching rows on (op, mode), and fails (exit 1) when any
matched row regresses in wall-clock time by more than --threshold while
performing the *same* number of I/Os.  Rows whose I/O counts differ are a
geometry change, not a perf regression — they are reported and skipped, as
are rows present in only one entry.

Usage:
    tools/bench_compare.py [FILE] [--threshold=0.10]

Exit status: 0 = no regression (including "fewer than two entries"),
1 = at least one regression, 2 = bad input.
"""

import json
import sys


def load_entries(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):  # legacy single-entry file
        doc = [doc]
    if not isinstance(doc, list):
        raise ValueError("expected a JSON array of bench entries")
    return doc


def row_key(row):
    return (row.get("op", "?"), row.get("mode", "?"))


def main(argv):
    path = "BENCH_wallclock.json"
    threshold = 0.10
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            print(f"bench_compare: unknown flag {arg!r}", file=sys.stderr)
            return 2
        else:
            path = arg

    try:
        entries = load_entries(path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return 2

    if len(entries) < 2:
        print(f"bench_compare: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
              f"in {path}; nothing to compare")
        return 0

    old, new = entries[-2], entries[-1]
    old_rows = {row_key(r): r for r in old.get("rows", [])}
    new_rows = {row_key(r): r for r in new.get("rows", [])}
    print(f"bench_compare: '{old.get('label', '?')}' -> '{new.get('label', '?')}' "
          f"(threshold {threshold:.0%})")
    print(f"  {'op':<16} {'mode':<10} {'old s':>9} {'new s':>9} {'delta':>8}  note")

    regressions = 0
    skipped = 0
    for key in sorted(set(old_rows) | set(new_rows)):
        op, mode = key
        o, n = old_rows.get(key), new_rows.get(key)
        if o is None or n is None:
            which = "old" if n is None else "new"
            print(f"  {op:<16} {mode:<10} {'-':>9} {'-':>9} {'-':>8}  "
                  f"skipped: only in {which} entry")
            skipped += 1
            continue
        os_, ns_ = float(o.get("seconds", 0)), float(n.get("seconds", 0))
        delta = (ns_ - os_) / os_ if os_ > 0 else 0.0
        if o.get("ios") != n.get("ios"):
            print(f"  {op:<16} {mode:<10} {os_:>9.3f} {ns_:>9.3f} {delta:>+7.1%}  "
                  f"skipped: ios changed {o.get('ios')} -> {n.get('ios')}")
            skipped += 1
            continue
        note = ""
        if delta > threshold:
            note = "REGRESSION"
            regressions += 1
        print(f"  {op:<16} {mode:<10} {os_:>9.3f} {ns_:>9.3f} {delta:>+7.1%}  {note}")

    if skipped:
        print(f"bench_compare: {skipped} row(s) skipped (geometry change or unmatched)")
    if regressions:
        print(f"bench_compare: {regressions} regression(s) beyond {threshold:.0%} "
              f"at equal I/Os", file=sys.stderr)
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Compare the two most recent entries of a bench trajectory file.

BENCH_wallclock.json accumulates one labelled entry per bench invocation
(see JsonEmitter::append_entry).  This tool diffs the latest entry against
the one before it, matching rows on (op, mode), and fails (exit 1) when any
matched row regresses in wall-clock time by more than --threshold while
performing the *same* number of I/Os.  Rows whose I/O counts differ are a
geometry change, not a perf regression — they are reported and skipped, as
are rows present in only one entry.

With --backends the tool gates the backend matrix instead: in the latest
entry, every native-uring row must run the same logical I/O count as the
same-op batched/async rows (backend choice is geometry, never output) and
must beat the *same entry's* async wall-clock for that op — the io_uring
ring replaces the positional write-behind pipeline, so it has to pay for
itself against that baseline measured in the same run, under the same
machine weather (a cross-entry wall-clock comparison would ratchet every
appended entry against the fastest machine ever recorded; cross-entry
drift is the default gate's job).  Rows with a block cache attached
(cache_blocks > 0) must report cache_hits > 0.  On kernels without
io_uring (uring_native false) the wall-clock gate is waived and only the
geometry and cache-hit checks bind.  The "uring-direct" leg runs its own
O_DIRECT-aligned block geometry and is probe-gated, so it is reported but
exempt from both the geometry and wall-clock gates.

With --workers the tool gates the multi-process legs of the latest entry:
for every op with workersN rows, all of them must report identical logical
I/O counts AND identical output checksums (W is geometry, never output —
both are hard failures at any threshold), and each workersN row's
wall-clock must stay within --threshold of the same op's workers1 row (on
a single-core host the distributed path cannot win wall-clock; the gate
only forbids it costing more than coordination overhead should).

With --supervision the tool gates the supervised legs of the latest entry:
every "<mode>+sup" row (the round supervisor armed — poll-driven drain,
frame checksums, retry budget — with zero faults injected) must match its
unsupervised "<mode>" sibling's logical I/O count and output checksum
exactly, report worker_retries = 0 (nothing was re-executed), and stay
within --threshold of the sibling's wall-clock: supervision at zero faults
is pure bookkeeping, never a tax.

With --service the tool gates the resident-server legs of the latest entry
(op == "service"): every leg answers the same fixed query mix, so all legs
must report identical per-query I/O sums and identical answer checksums
(clients, backend and cache are load and geometry, never output — hard
failures at any threshold), no leg may shed a query or fail a check
(shed == 0, ok true), cache-backed legs must report cache_hits > 0 —
likewise bucket_cache_blocks > 0 legs must report bucket_hits > 0 — and
every leg's wall-clock must stay within --threshold of the single-client
file baseline (clients == 1, file backend, no cache, no bucket cache, no
pipelined batch; on a single-core host concurrency cannot win, the gate
only forbids contention costing more than scheduling overhead should).
Legs on a fallback uring backend (uring_native false) keep the hard gates
but waive the wall-clock check.

Usage:
    tools/bench_compare.py [FILE] [--threshold=0.10] [--backends]
                           [--workers] [--supervision] [--service]

Exit status: 0 = no regression (including "fewer than two entries"),
1 = at least one regression, 2 = bad input.
"""

import json
import sys


def load_entries(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):  # legacy single-entry file
        doc = [doc]
    if not isinstance(doc, list):
        raise ValueError("expected a JSON array of bench entries")
    return doc


def row_key(row):
    return (row.get("op", "?"), row.get("mode", "?"))


def backend_gate(entries):
    """Gate the latest entry's backend matrix (see module docstring)."""
    new = entries[-1]
    new_rows = new.get("rows", [])
    print(f"bench_compare: backend gate on '{new.get('label', '?')}'")

    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        print(f"  FAIL {msg}", file=sys.stderr)

    by_op = {}
    for r in new_rows:
        by_op.setdefault(r.get("op", "?"), []).append(r)

    checked = 0
    for op, rows in sorted(by_op.items()):
        uring = [r for r in rows if r.get("backend") == "uring"]
        if not uring:
            continue
        ref = {r.get("mode"): r for r in rows
               if r.get("mode") in ("batched", "async")}
        for r in uring:
            mode = r.get("mode", "?")
            if mode == "uring-direct":
                # Own block geometry + probe-gated: report, don't gate.
                print(f"  note {op}/{mode}: O_DIRECT "
                      f"{'engaged' if r.get('direct_io') else 'refused'} "
                      f"({float(r.get('seconds', 0)):.3f}s at "
                      f"{r.get('ios')} ios); informational only")
                continue
            checked += 1
            # Geometry: backend choice must not move a single logical I/O.
            for ref_mode, ref_row in sorted(ref.items()):
                if r.get("ios") != ref_row.get("ios"):
                    fail(f"{op}/{mode}: ios {r.get('ios')} != "
                         f"{ref_mode} ios {ref_row.get('ios')}")
            # Cache rows must actually hit (the counters are live, so zero
            # means the cache never served a block).
            if r.get("cache_blocks", 0) > 0 and r.get("cache_hits", 0) <= 0:
                fail(f"{op}/{mode}: cache_blocks="
                     f"{r.get('cache_blocks')} but cache_hits=0")
            # Wall-clock: native ring must beat the same entry's async
            # baseline — same run, same machine weather, so the check is
            # deterministic on a committed trajectory file.
            if not r.get("uring_native", False):
                print(f"  note {op}/{mode}: fallback backend "
                      f"(uring_native false); wall-clock gate waived")
                continue
            base = ref.get("async")
            if base is None or base.get("ios") != r.get("ios"):
                print(f"  note {op}/{mode}: no same-entry async baseline "
                      f"at equal ios; wall-clock gate skipped")
                continue
            bs, ns = float(base.get("seconds", 0)), float(r.get("seconds", 0))
            verdict = "ok" if ns < bs else "FAIL"
            print(f"  {verdict:>4} {op}/{mode}: {ns:.3f}s vs async "
                  f"{bs:.3f}s at {r.get('ios')} ios")
            if ns >= bs:
                fail(f"{op}/{mode}: {ns:.3f}s not below same-entry "
                     f"async {bs:.3f}s")

    if checked == 0:
        print("bench_compare: no uring rows in the latest entry",
              file=sys.stderr)
        return 1
    if failures:
        print(f"bench_compare: backend gate failed ({failures} check(s))",
              file=sys.stderr)
        return 1
    print(f"bench_compare: backend gate passed ({checked} uring row(s))")
    return 0


def workers_gate(entries, threshold):
    """Gate the latest entry's workersN legs (see module docstring)."""
    new = entries[-1]
    rows = [r for r in new.get("rows", [])
            if str(r.get("mode", "")).startswith("workers")]
    print(f"bench_compare: workers gate on '{new.get('label', '?')}' "
          f"(threshold {threshold:.0%})")

    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        print(f"  FAIL {msg}", file=sys.stderr)

    by_op = {}
    for r in rows:
        by_op.setdefault(r.get("op", "?"), []).append(r)

    checked = 0
    for op, wrows in sorted(by_op.items()):
        base = next((r for r in wrows if r.get("mode") == "workers1"), None)
        if base is None:
            fail(f"{op}: workersN rows but no workers1 baseline")
            continue
        bs = float(base.get("seconds", 0))
        for r in sorted(wrows, key=lambda r: r.get("mode", "")):
            mode = r.get("mode", "?")
            checked += 1
            # Hard gates: W is geometry, never output.
            if r.get("ios") != base.get("ios"):
                fail(f"{op}/{mode}: ios {r.get('ios')} != workers1 "
                     f"ios {base.get('ios')}")
            if r.get("checksum") != base.get("checksum"):
                fail(f"{op}/{mode}: checksum diverged from workers1")
            if mode == "workers1":
                print(f"    ok {op}/{mode}: baseline {bs:.3f}s at "
                      f"{base.get('ios')} ios")
                continue
            ns = float(r.get("seconds", 0))
            if bs > 0 and ns > bs * (1.0 + threshold):
                fail(f"{op}/{mode}: {ns:.3f}s exceeds workers1 "
                     f"{bs:.3f}s by more than {threshold:.0%}")
            else:
                print(f"    ok {op}/{mode}: {ns:.3f}s vs workers1 "
                      f"{bs:.3f}s at equal ios")

    if checked == 0:
        print("bench_compare: no workersN rows in the latest entry",
              file=sys.stderr)
        return 1
    if failures:
        print(f"bench_compare: workers gate failed ({failures} check(s))",
              file=sys.stderr)
        return 1
    print(f"bench_compare: workers gate passed ({checked} row(s))")
    return 0


def supervision_gate(entries, threshold):
    """Gate the latest entry's supervised legs (see module docstring)."""
    new = entries[-1]
    rows = new.get("rows", [])
    print(f"bench_compare: supervision gate on '{new.get('label', '?')}' "
          f"(threshold {threshold:.0%})")

    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        print(f"  FAIL {msg}", file=sys.stderr)

    checked = 0
    for r in rows:
        mode = str(r.get("mode", ""))
        if not mode.endswith("+sup"):
            continue
        op = r.get("op", "?")
        base_mode = mode[:-len("+sup")]
        base = next((b for b in rows
                     if b.get("op") == op and b.get("mode") == base_mode),
                    None)
        if base is None:
            fail(f"{op}/{mode}: no unsupervised '{base_mode}' sibling")
            continue
        checked += 1
        # Hard gates: supervision is bookkeeping, never geometry or output.
        if r.get("ios") != base.get("ios"):
            fail(f"{op}/{mode}: ios {r.get('ios')} != {base_mode} "
                 f"ios {base.get('ios')}")
        if r.get("checksum") != base.get("checksum"):
            fail(f"{op}/{mode}: checksum diverged from {base_mode}")
        if r.get("worker_retries", 0) != 0:
            fail(f"{op}/{mode}: worker_retries="
                 f"{r.get('worker_retries')} with no faults injected")
        bs, ns = float(base.get("seconds", 0)), float(r.get("seconds", 0))
        if bs > 0 and ns > bs * (1.0 + threshold):
            fail(f"{op}/{mode}: {ns:.3f}s exceeds {base_mode} "
                 f"{bs:.3f}s by more than {threshold:.0%}")
        else:
            print(f"    ok {op}/{mode}: {ns:.3f}s vs {base_mode} "
                  f"{bs:.3f}s at equal ios, worker_retries=0")

    if checked == 0:
        print("bench_compare: no +sup rows in the latest entry",
              file=sys.stderr)
        return 1
    if failures:
        print(f"bench_compare: supervision gate failed "
              f"({failures} check(s))", file=sys.stderr)
        return 1
    print(f"bench_compare: supervision gate passed ({checked} row(s))")
    return 0


def service_gate(entries, threshold):
    """Gate the latest entry's service legs (see module docstring)."""
    new = entries[-1]
    rows = [r for r in new.get("rows", []) if r.get("op") == "service"]
    print(f"bench_compare: service gate on '{new.get('label', '?')}' "
          f"(threshold {threshold:.0%})")

    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        print(f"  FAIL {msg}", file=sys.stderr)

    if not rows:
        print("bench_compare: no service rows in the latest entry",
              file=sys.stderr)
        return 1

    base = next((r for r in rows
                 if r.get("clients") == 1 and r.get("backend") == "file"
                 and r.get("cache_blocks", 0) == 0
                 and r.get("bucket_cache_blocks", 0) == 0
                 and r.get("batch", 0) == 0), None)
    if base is None:
        fail("no single-client file baseline leg")
        base = rows[0]
    bs = float(base.get("seconds", 0))

    checked = 0
    for r in rows:
        mode = r.get("mode", "?")
        checked += 1
        # Hard gates: every leg answers the same mix with the same reads
        # and the same bytes, and serves all of it.
        if r.get("ios") != base.get("ios"):
            fail(f"service/{mode}: ios {r.get('ios')} != baseline "
                 f"ios {base.get('ios')}")
        if r.get("checksum") != base.get("checksum"):
            fail(f"service/{mode}: answer checksum diverged from baseline")
        if r.get("shed", 0) != 0:
            fail(f"service/{mode}: shed {r.get('shed')} query(ies)")
        if not r.get("ok", False):
            fail(f"service/{mode}: in-binary check failed (ok false)")
        if r.get("cache_blocks", 0) > 0 and r.get("cache_hits", 0) <= 0:
            fail(f"service/{mode}: cache_blocks="
                 f"{r.get('cache_blocks')} but cache_hits=0")
        if (r.get("bucket_cache_blocks", 0) > 0
                and r.get("bucket_hits", 0) <= 0):
            fail(f"service/{mode}: bucket_cache_blocks="
                 f"{r.get('bucket_cache_blocks')} but bucket_hits=0")
        if r is base:
            print(f"    ok service/{mode}: baseline {bs:.3f}s "
                  f"({float(r.get('qps', 0)):.0f} qps, "
                  f"p99 {1e3 * float(r.get('p99_seconds', 0)):.3f}ms)")
            continue
        if r.get("backend") == "uring" and not r.get("uring_native", False):
            print(f"  note service/{mode}: fallback backend "
                  f"(uring_native false); wall-clock gate waived")
            continue
        ns = float(r.get("seconds", 0))
        if bs > 0 and ns > bs * (1.0 + threshold):
            fail(f"service/{mode}: {ns:.3f}s exceeds baseline "
                 f"{bs:.3f}s by more than {threshold:.0%}")
        else:
            print(f"    ok service/{mode}: {ns:.3f}s vs baseline {bs:.3f}s "
                  f"({float(r.get('qps', 0)):.0f} qps, "
                  f"p99 {1e3 * float(r.get('p99_seconds', 0)):.3f}ms)")

    if failures:
        print(f"bench_compare: service gate failed ({failures} check(s))",
              file=sys.stderr)
        return 1
    print(f"bench_compare: service gate passed ({checked} row(s))")
    return 0


def main(argv):
    path = "BENCH_wallclock.json"
    threshold = 0.10
    backends = False
    workers = False
    supervision = False
    service = False
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--backends":
            backends = True
        elif arg == "--workers":
            workers = True
        elif arg == "--supervision":
            supervision = True
        elif arg == "--service":
            service = True
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            print(f"bench_compare: unknown flag {arg!r}", file=sys.stderr)
            return 2
        else:
            path = arg

    try:
        entries = load_entries(path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return 2

    if backends or workers or supervision or service:
        if not entries:
            print(f"bench_compare: no entries in {path}", file=sys.stderr)
            return 2
        rc = 0
        if backends:
            rc = backend_gate(entries) or rc
        if workers:
            rc = workers_gate(entries, threshold) or rc
        if supervision:
            rc = supervision_gate(entries, threshold) or rc
        if service:
            rc = service_gate(entries, threshold) or rc
        return rc

    if len(entries) < 2:
        print(f"bench_compare: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
              f"in {path}; nothing to compare")
        return 0

    old, new = entries[-2], entries[-1]
    old_rows = {row_key(r): r for r in old.get("rows", [])}
    new_rows = {row_key(r): r for r in new.get("rows", [])}
    print(f"bench_compare: '{old.get('label', '?')}' -> '{new.get('label', '?')}' "
          f"(threshold {threshold:.0%})")
    print(f"  {'op':<16} {'mode':<10} {'old s':>9} {'new s':>9} {'delta':>8}  note")

    regressions = 0
    skipped = 0
    for key in sorted(set(old_rows) | set(new_rows)):
        op, mode = key
        o, n = old_rows.get(key), new_rows.get(key)
        if o is None or n is None:
            which = "old" if n is None else "new"
            print(f"  {op:<16} {mode:<10} {'-':>9} {'-':>9} {'-':>8}  "
                  f"skipped: only in {which} entry")
            skipped += 1
            continue
        os_, ns_ = float(o.get("seconds", 0)), float(n.get("seconds", 0))
        delta = (ns_ - os_) / os_ if os_ > 0 else 0.0
        if o.get("ios") != n.get("ios"):
            print(f"  {op:<16} {mode:<10} {os_:>9.3f} {ns_:>9.3f} {delta:>+7.1%}  "
                  f"skipped: ios changed {o.get('ios')} -> {n.get('ios')}")
            skipped += 1
            continue
        note = ""
        if delta > threshold:
            note = "REGRESSION"
            regressions += 1
        print(f"  {op:<16} {mode:<10} {os_:>9.3f} {ns_:>9.3f} {delta:>+7.1%}  {note}")

    if skipped:
        print(f"bench_compare: {skipped} row(s) skipped (geometry change or unmatched)")
    if regressions:
        print(f"bench_compare: {regressions} regression(s) beyond {threshold:.0%} "
              f"at equal I/Os", file=sys.stderr)
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

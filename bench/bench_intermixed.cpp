// E8 — L-intermixed selection linearity (Lemma 6).
//
// Claim: O(|D|/B) I/Os for any L up to Θ(M) concurrent groups.  We sweep
// |D| at fixed L and L at fixed |D|; measured/( |D|/B ) must stay in a
// constant band — in particular it must NOT grow with L.
#include "bench_util.hpp"

#include "select/intermixed.hpp"
#include "util/rng.hpp"

namespace emsplit::bench {
namespace {

void run_instance(Env& env, std::size_t l, std::size_t total,
                  std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Grouped<Record>> data(total);
  std::vector<std::uint64_t> counts(l, 0);
  for (std::size_t i = 0; i < total; ++i) {
    const std::uint64_t grp = i < l ? i : rng.next_below(l);  // all non-empty
    data[i] = Grouped<Record>{Record{.key = rng.next(), .payload = i}, grp};
    ++counts[grp];
  }
  for (std::size_t i = total; i > 1; --i) {
    std::swap(data[i - 1], data[rng.next_below(i)]);
  }
  std::vector<std::uint64_t> ranks(l);
  for (std::size_t grp = 0; grp < l; ++grp) {
    ranks[grp] = 1 + rng.next_below(counts[grp]);
  }

  auto d = materialize<Grouped<Record>>(env.ctx, data);
  const double db = static_cast<double>(total) /
                    static_cast<double>(env.ctx.block_records<Grouped<Record>>());
  const std::uint64_t ios = measure(env, [&] {
    auto got = intermixed_select<Record>(env.ctx, std::move(d), ranks);
  });
  print_row({static_cast<double>(l), static_cast<double>(total),
             static_cast<double>(ios), db,
             static_cast<double>(ios) / db});
}

void run() {
  const Geometry g{.block_bytes = 4096, .mem_blocks = 64};
  Env env(g);
  print_header("E8: L-intermixed selection (Lemma 6)",
               "O(|D|/B) I/Os regardless of L (up to Theta(M) groups)", g);
  std::printf("# max groups for this geometry: %zu\n",
              intermixed_max_groups<Record>(env.ctx));
  print_columns({"L", "|D|", "measured", "|D|/B", "ratio"});

  std::printf("# sweep |D| at L = 64:\n");
  for (std::size_t total : {1u << 15, 1u << 17, 1u << 19, 1u << 21}) {
    run_instance(env, 64, total, total);
  }
  std::printf("# sweep L at |D| = 2^19:\n");
  for (std::size_t l : {1u, 4u, 16u, 64u, 256u}) {
    if (l > intermixed_max_groups<Record>(env.ctx)) break;
    run_instance(env, l, 1u << 19, l * 7 + 1);
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

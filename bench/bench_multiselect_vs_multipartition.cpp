// E7 — the Theorem 4 separation: multi-selection vs multi-partition.
//
// The paper's central theory story: multi-selection costs
// Θ((N/B) lg_{M/B}(K/B)) while multi-partition costs Θ((N/B) lg_{M/B} K) —
// strictly separated for small K (where lg(K/B) clamps to 1 but lg K does
// not), converging for large K.  We sweep K, solve both problems at
// quantile ranks, and also run the repeated-quickselect strawman
// (O(K N/B)) for small K to show why batching matters.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  auto host = make_workload(Workload::kUniform, n, 31415, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const std::uint64_t sort_cost = measure(env, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });

  print_header("E7: multi-selection vs multi-partition (Theorem 4)",
               "(N/B) lg_{M/B}(K/B)  vs  (N/B) lg_{M/B} K — separation at "
               "small K, same at large K",
               g);
  std::printf("# N = %zu, measured sort = %llu\n", n,
              static_cast<unsigned long long>(sort_cost));
  print_columns({"K", "msel_ios", "msel_form", "mpart_ios", "mpart_form",
                 "mpart/msel", "naive_ios"});

  for (std::uint64_t k :
       {2u, 8u, 32u, 128u, 512u, 2048u, 8192u, 32768u, 131072u}) {
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i <= k; ++i) ranks.push_back(i * n / k);
    std::vector<std::uint64_t> split_ranks(ranks.begin(), ranks.end() - 1);

    std::vector<Record> sel;
    const std::uint64_t msel = measure(env, [&] {
      sel = multi_select<Record>(env.ctx, input, ranks);
    });
    MultiPartitionResult<Record> part;
    const std::uint64_t mpart = measure(env, [&] {
      part = multi_partition<Record>(env.ctx, input, split_ranks);
    });
    // The strawman is only affordable for small K.
    double naive = -1.0;
    if (k <= 32) {
      naive = static_cast<double>(measure(env, [&] {
        auto v = naive_multi_select<Record>(env.ctx, input, ranks);
      }));
    }

    const double msf = multi_select_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(k));
    const double mpf = multi_partition_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(k));
    print_row({static_cast<double>(k), static_cast<double>(msel), msf,
               static_cast<double>(mpart), mpf,
               static_cast<double>(mpart) / static_cast<double>(msel),
               naive});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E4 — right-grounded approximate K-partitioning.
//
// Claim (Theorem 6 + §3): O(N/B + (aK/B) lg_{M/B} min{K, aK/B}) I/Os, with
// an Ω(N/B) lower bound (every element must be placed).  We sweep a and K;
// the measured cost should track max(scan, formula) and stay well below the
// sort baseline whenever aK << N.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  auto host = make_workload(Workload::kUniform, n, 2024, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const std::uint64_t sort_cost = measure(env, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });

  print_header("E4: right-grounded K-partitioning",
               "O(N/B + (aK/B) lg_{M/B} min{K, aK/B}), lower bound Omega(N/B)",
               g);
  const double nb = static_cast<double>(n) / static_cast<double>(env.b());
  std::printf("# N = %zu, scan N/B = %.0f, measured sort = %llu\n", n, nb,
              static_cast<unsigned long long>(sort_cost));
  print_columns({"a", "K", "aK", "measured", "formula", "ratio", "vs_sort"});

  auto one = [&](std::uint64_t a, std::uint64_t k) {
    const ApproxSpec spec{.k = k, .a = a, .b = n};
    ApproxPartitioning<Record> result;
    const std::uint64_t ios = measure(env, [&] {
      result = approx_partitioning<Record>(env.ctx, input, spec);
    });
    auto check =
        verify_partitioning<Record>(input, result.data, result.bounds, spec);
    if (!check.ok) {
      std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
      return;
    }
    const double f = partitioning_right_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(k),
        static_cast<double>(a));
    print_row({static_cast<double>(a), static_cast<double>(k),
               static_cast<double>(a * k), static_cast<double>(ios), f,
               static_cast<double>(ios) / f,
               static_cast<double>(ios) / static_cast<double>(sort_cost)});
  };

  std::printf("# sweep a at K = 64:\n");
  for (std::uint64_t a : {1u, 16u, 256u, 4096u, 32768u}) one(a, 64);
  std::printf("# sweep K at a = 64:\n");
  for (std::uint64_t k : {4u, 64u, 1024u, 16384u}) one(64, k);
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

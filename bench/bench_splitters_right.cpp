// E1 — right-grounded approximate K-splitters.
//
// Claim (Theorems 1 + 5): Θ((1 + aK/B) lg_{M/B}(K/B)) I/Os — *sublinear*
// whenever aK << N.  We sweep a at fixed K and K at fixed a, report the
// measured-to-formula ratio (shape: roughly constant), and print the full
// scan N/B and the measured sort baseline to expose the sublinear gap.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;  // 2M records = 32 MiB of data
  auto host = make_workload(Workload::kUniform, n, /*seed=*/1234, env.b());
  auto input = materialize<Record>(env.ctx, host);

  print_header("E1: right-grounded K-splitters",
               "Theta((1 + aK/B) lg_{M/B}(K/B)) — sublinear when aK << N", g);
  const double nb = static_cast<double>(n) / static_cast<double>(env.b());
  const std::uint64_t sort_cost = measure(env, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });
  std::printf("# full scan N/B = %.0f, measured sort = %llu\n", nb,
              static_cast<unsigned long long>(sort_cost));
  print_columns({"a", "K", "aK", "measured", "formula", "ratio", "vs_scan"});

  auto one = [&](std::uint64_t a, std::uint64_t k) {
    const ApproxSpec spec{.k = k, .a = a, .b = n};
    std::uint64_t ios = 0;
    std::vector<Record> splitters;
    ios = measure(env, [&] {
      splitters = approx_splitters<Record>(env.ctx, input, spec);
    });
    auto check = verify_splitters<Record>(input, splitters, spec);
    if (!check.ok) {
      std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
      return;
    }
    const double f = splitters_right_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(k),
        static_cast<double>(a));
    print_row({static_cast<double>(a), static_cast<double>(k),
               static_cast<double>(a * k), static_cast<double>(ios), f,
               static_cast<double>(ios) / f,
               static_cast<double>(ios) / nb});
  };

  std::printf("# sweep a at K = 64:\n");
  for (std::uint64_t a : {2u, 8u, 32u, 128u, 512u, 2048u, 8192u, 32768u}) {
    one(a, 64);
  }
  std::printf("# sweep K at a = 16:\n");
  for (std::uint64_t k : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    one(16, k);
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E14 — the practitioner's baseline: one-pass quantile sketch vs
// approximate K-splitters.
//
// For the paper's equi-depth-histogram motivation, what practice typically
// deploys is a streaming quantile summary: one scan, memory-resident, but
// only soft bucket guarantees.  This bench quantifies the trade-off the
// paper's algorithms buy: hard [a, b] guarantees at a (bounded) extra I/O
// cost.  Columns report construction I/Os and the realized min/max bucket
// sizes for K buckets.
#include "bench_util.hpp"

#include "baselines/quantile_sketch.hpp"

#include <algorithm>

namespace emsplit::bench {
namespace {

struct Quality {
  std::uint64_t min_bucket = ~0ULL;
  std::uint64_t max_bucket = 0;
};

Quality bucket_quality(const std::vector<Record>& host,
                       const std::vector<Record>& splitters) {
  auto sorted = host;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint64_t> sizes(splitters.size() + 1, 0);
  std::size_t j = 0;
  for (const auto& e : sorted) {
    while (j < splitters.size() && splitters[j] < e) ++j;
    ++sizes[j];
  }
  Quality q;
  for (const auto s : sizes) {
    q.min_bucket = std::min(q.min_bucket, s);
    q.max_bucket = std::max(q.max_bucket, s);
  }
  return q;
}

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  const std::uint64_t k = 128;
  auto host = make_workload(Workload::kZipfian, n, 31, env.b(),
                            /*distinct=*/1 << 18);
  auto input = materialize<Record>(env.ctx, host);

  print_header(
      "E14: quantile sketch vs approximate K-splitters",
      "hard [a, b] guarantees vs one-pass soft guarantees (K buckets)", g);
  std::printf("# N = %zu, K = %llu, ideal bucket = %llu (zipfian keys)\n", n,
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(n / k));
  print_columns({"method", "ios", "min_bucket", "max_bucket", "hard_guar"});

  auto row = [&](const char* label, std::uint64_t ios,
                 const std::vector<Record>& splitters, bool hard) {
    const auto q = bucket_quality(host, splitters);
    std::printf("  %-26s", label);
    print_row({static_cast<double>(ios), static_cast<double>(q.min_bucket),
               static_cast<double>(q.max_bucket), hard ? 1.0 : 0.0});
  };

  {
    std::vector<Record> qs;
    const auto ios = measure(env, [&] {
      auto sketch = sketch_vector<Record>(env.ctx, input);
      qs = sketch.quantiles(k);
    });
    row("one-pass sketch", ios, qs, false);
  }
  {
    std::vector<Record> s;
    const ApproxSpec spec{.k = k, .a = n / (4 * k), .b = 4 * n / k};
    const auto ios = measure(env, [&] {
      s = approx_splitters<Record>(env.ctx, input, spec);
    });
    row("splitters [N/4K, 4N/K]", ios, s, true);
  }
  {
    std::vector<Record> s;
    const ApproxSpec spec{.k = k, .a = n / k, .b = n / k};
    const auto ios = measure(env, [&] {
      s = approx_splitters<Record>(env.ctx, input, spec);
    });
    row("exact quantiles (a=b=N/K)", ios, s, true);
  }
  {
    std::vector<Record> s;
    const auto ios = measure(env, [&] {
      s = sort_splitters<Record>(env.ctx, input,
                                 {.k = k, .a = 0, .b = n});
    });
    row("full sort", ios, s, true);
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E15 — cost anatomy: where do the constants come from?
//
// EXPERIMENTS.md cites per-level constants (~4-5 scan-equivalents per
// recursion level, intermixed-selection recursion ~8-11x its input) to
// explain where measured costs sit relative to the formulas.  This bench
// substantiates those numbers: it attaches a PhaseProfile and prints the
// exclusive per-phase I/O breakdown of each main operation.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void report(const char* what, const PhaseProfile& profile,
            std::uint64_t total, double scan) {
  std::printf("%s (total %llu I/Os = %.2f scans):\n", what,
              static_cast<unsigned long long>(total),
              static_cast<double>(total) / scan);
  std::uint64_t attributed = 0;
  for (const auto& [label, ios] : profile.rows()) {
    std::printf("    %-28s %10llu  (%5.1f%%, %.2f scans)\n", label.c_str(),
                static_cast<unsigned long long>(ios.total()),
                100.0 * static_cast<double>(ios.total()) /
                    static_cast<double>(total),
                static_cast<double>(ios.total()) / scan);
    attributed += ios.total();
  }
  if (attributed < total) {
    std::printf("    %-28s %10llu  (%5.1f%%)\n", "(unattributed)",
                static_cast<unsigned long long>(total - attributed),
                100.0 * static_cast<double>(total - attributed) /
                    static_cast<double>(total));
  }
  std::printf("\n");
}

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  auto host = make_workload(Workload::kUniform, n, 2718, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const double scan = static_cast<double>(n) / static_cast<double>(env.b());

  print_header("E15: cost anatomy (exclusive per-phase I/O attribution)",
               "explains the constants reported in EXPERIMENTS.md", g);
  std::printf("# N = %zu, one scan = %.0f blocks\n\n", n, scan);

  PhaseProfile profile;
  profile.attach(env.dev);
  env.ctx.set_profile(&profile);

  {
    profile.reset();
    const auto ios = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input);
    });
    report("external_sort", profile, ios, scan);
  }
  {
    profile.reset();
    const auto ios = measure(env, [&] {
      [[maybe_unused]] auto v = select_rank<Record>(env.ctx, input, n / 2);
    });
    report("select_rank (median)", profile, ios, scan);
  }
  {
    profile.reset();
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i <= 64; ++i) ranks.push_back(i * n / 65);
    const auto ios = measure(env, [&] {
      auto v = multi_select<Record>(env.ctx, input, ranks);
    });
    report("multi_select (K = 64)", profile, ios, scan);
  }
  {
    profile.reset();
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i < 64; ++i) ranks.push_back(i * n / 64);
    const auto ios = measure(env, [&] {
      auto r = multi_partition<Record>(env.ctx, input, ranks);
    });
    report("multi_partition (K = 64)", profile, ios, scan);
  }
  {
    profile.reset();
    const ApproxSpec spec{.k = 64, .a = 64, .b = n / 8};
    const auto ios = measure(env, [&] {
      auto r = approx_partitioning<Record>(env.ctx, input, spec);
    });
    report("approx_partitioning 2-sided", profile, ios, scan);
  }

  env.ctx.set_profile(nullptr);
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

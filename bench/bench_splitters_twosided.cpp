// E3 — two-sided approximate K-splitters.
//
// Claim (Theorems 1 + 2 + 5): Θ((aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB)))
// I/Os.  We sweep an (a, b) grid at fixed N, K and report the measured cost
// against the combined formula; the cheap-guard regimes (a >= N/2K or
// b <= 2N/K) and the general regime are both exercised.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  const std::uint64_t k = 128;
  auto host = make_workload(Workload::kUniform, n, 99, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const std::uint64_t sort_cost = measure(env, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });

  print_header(
      "E3: two-sided K-splitters",
      "Theta((aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB)))", g);
  std::printf("# N = %zu, K = %llu, N/K = %llu, measured sort = %llu\n", n,
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(n / k),
              static_cast<unsigned long long>(sort_cost));
  print_columns(
      {"a", "b", "regime", "measured", "formula", "ratio", "vs_sort"});

  for (std::uint64_t a : {1u, 64u, 1024u, 4096u, 12288u}) {
    for (std::uint64_t bb :
         {static_cast<std::uint64_t>(n) / k, 2 * n / k, 8 * n / k, 64 * n / k,
          static_cast<std::uint64_t>(n) / 2}) {
      if (a > n / k || bb < (n + k - 1) / k) continue;
      const ApproxSpec spec{.k = k, .a = a, .b = bb};
      std::vector<Record> splitters;
      const std::uint64_t ios = measure(env, [&] {
        splitters = approx_splitters<Record>(env.ctx, input, spec);
      });
      auto check = verify_splitters<Record>(input, splitters, spec);
      if (!check.ok) {
        std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
        continue;
      }
      // Regime flag: 1 = cheap guard (exact quantile), 0 = general path.
      const bool guard = a * 2 * k >= n || bb * k <= 2 * n;
      const double f = splitters_two_sided_ios(
          static_cast<double>(n), static_cast<double>(env.m()),
          static_cast<double>(env.b()), static_cast<double>(k),
          static_cast<double>(a), static_cast<double>(bb));
      print_row({static_cast<double>(a), static_cast<double>(bb),
                 guard ? 1.0 : 0.0, static_cast<double>(ios), f,
                 static_cast<double>(ios) / f,
                 static_cast<double>(ios) / static_cast<double>(sort_cost)});
    }
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

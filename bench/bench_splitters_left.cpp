// E2 — left-grounded approximate K-splitters.
//
// Claim (Theorems 2 + 5): Θ((N/B) lg_{M/B}(N/(bB))) I/Os.  We sweep b from
// N/K up to N/2 at fixed K (cost falls as b grows: fewer mandatory cuts),
// and sweep N at fixed b/N ratio (cost scales like a scan times the log).
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  print_header("E2: left-grounded K-splitters",
               "Theta((N/B) lg_{M/B}(N/(bB)))", g);
  print_columns({"N", "K", "b", "measured", "formula", "ratio", "vs_sort"});

  auto one = [&](std::size_t n, std::uint64_t k, std::uint64_t bb,
                 Env& env, const EmVector<Record>& input,
                 std::uint64_t sort_cost) {
    const ApproxSpec spec{.k = k, .a = 0, .b = bb};
    std::vector<Record> splitters;
    const std::uint64_t ios = measure(env, [&] {
      splitters = approx_splitters<Record>(env.ctx, input, spec);
    });
    auto check = verify_splitters<Record>(input, splitters, spec);
    if (!check.ok) {
      std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
      return;
    }
    const double f = splitters_left_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(k),
        static_cast<double>(bb));
    print_row({static_cast<double>(n), static_cast<double>(k),
               static_cast<double>(bb), static_cast<double>(ios), f,
               static_cast<double>(ios) / f,
               static_cast<double>(ios) / static_cast<double>(sort_cost)});
  };

  {
    Env env(g);
    const std::size_t n = 1u << 21;
    auto host = make_workload(Workload::kUniform, n, 77, env.b());
    auto input = materialize<Record>(env.ctx, host);
    const std::uint64_t sort_cost = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input);
    });
    std::printf("# sweep b at N = %zu, K = 512 (measured sort = %llu):\n", n,
                static_cast<unsigned long long>(sort_cost));
    for (std::uint64_t bb :
         {n / 512, n / 128, n / 32, n / 8, n / 4, n / 2}) {
      one(n, 512, bb, env, input, sort_cost);
    }
  }

  std::printf("# sweep N at K = 256, b = N/64:\n");
  for (std::size_t n : {1u << 17, 1u << 18, 1u << 19, 1u << 20, 1u << 21}) {
    Env env(g);
    auto host = make_workload(Workload::kUniform, n, 78, env.b());
    auto input = materialize<Record>(env.ctx, host);
    const std::uint64_t sort_cost = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input);
    });
    one(n, 256, n / 64, env, input, sort_cost);
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E12 — measured cost between the paper's lower and upper bounds.
//
// The paper's other half is lower bounds (Theorems 1-3).  They cannot be
// "run", but they can be *placed*: for each problem variant we evaluate the
// lower-bound formula, the upper-bound formula, and the measured cost on
// the hard-instance family Π_hard (block-striped workload, the permutation
// family from the paper's own proofs) — the measurement must land between
// the two bands (up to the implementation constant), and must not collapse
// toward zero on the adversarial input.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 20;
  // The paper's hard family: stripe i of every block smaller than stripe
  // i+1, random within stripes.
  auto host = make_workload(Workload::kBlockStriped, n, 1337, env.b());
  auto input = materialize<Record>(env.ctx, host);

  print_header("E12: measured cost vs the paper's lower bounds",
               "lower <= measured/const <= upper on the hard family Pi_hard",
               g);
  const double dn = static_cast<double>(n);
  const double m = static_cast<double>(env.m());
  const double b = static_cast<double>(env.b());
  print_columns({"case", "lower", "measured", "upper", "meas/lower"});

  auto row = [&](const char* label, double lower, std::uint64_t measured,
                 double upper) {
    std::printf("  %-28s", label);
    print_row({lower, static_cast<double>(measured), upper,
               static_cast<double>(measured) / std::max(1.0, lower)});
  };

  {
    // Theorem 1: right-grounded splitters, Omega((1 + aK/B) lg(K/B)).
    const std::uint64_t k = 64, a = 512;
    const ApproxSpec spec{.k = k, .a = a, .b = n};
    const auto ios = measure(env, [&] {
      auto s = approx_splitters<Record>(env.ctx, input, spec);
      auto c = verify_splitters<Record>(input, s, spec);
      if (!c.ok) std::printf("!! INVALID: %s\n", c.reason.c_str());
    });
    const double lo = (1.0 + static_cast<double>(a * k) / b) *
                      lg_clamped(m / b, static_cast<double>(k) / b);
    row("Thm1 splitters right", lo, ios,
        splitters_right_ios(dn, m, b, 64, 512));
  }
  {
    // Theorem 2: left-grounded splitters, Omega((N/B) lg(N/(bB))).
    const std::uint64_t bb = n / 64;
    const ApproxSpec spec{.k = 256, .a = 0, .b = bb};
    const auto ios = measure(env, [&] {
      auto s = approx_splitters<Record>(env.ctx, input, spec);
      auto c = verify_splitters<Record>(input, s, spec);
      if (!c.ok) std::printf("!! INVALID: %s\n", c.reason.c_str());
    });
    const double lo = (dn / b) * lg_clamped(m / b, dn / (static_cast<double>(bb) * b));
    row("Thm2 splitters left", lo, ios,
        splitters_left_ios(dn, m, b, 256, static_cast<double>(bb)));
  }
  {
    // Theorem 3: left-grounded partitioning, Omega((N/B) lg min{N/b, N/B}).
    const std::uint64_t bb = n / 64;
    const ApproxSpec spec{.k = 64, .a = 0, .b = bb};
    const auto ios = measure(env, [&] {
      auto r = approx_partitioning<Record>(env.ctx, input, spec);
      auto c = verify_partitioning<Record>(input, r.data, r.bounds, spec);
      if (!c.ok) std::printf("!! INVALID: %s\n", c.reason.c_str());
    });
    const double lo = partitioning_left_ios(dn, m, b, static_cast<double>(bb));
    row("Thm3 partitioning left", lo, ios, lo);
  }
  {
    // Right-grounded partitioning: Omega(N/B) — must see every record.
    const ApproxSpec spec{.k = 64, .a = 16, .b = n};
    const auto ios = measure(env, [&] {
      auto r = approx_partitioning<Record>(env.ctx, input, spec);
      auto c = verify_partitioning<Record>(input, r.data, r.bounds, spec);
      if (!c.ok) std::printf("!! INVALID: %s\n", c.reason.c_str());
    });
    row("Sec3 partitioning right", dn / b, ios,
        partitioning_right_ios(dn, m, b, 64, 16));
  }
  {
    // Lemma 5 via sorting: precise K-partitioning with K = N/B must cost
    // Omega((N/B) lg (N/B)) — i.e. as much as sorting (we run K = N/2^12
    // to keep the run short; the formula scales accordingly).
    const std::uint64_t k = n >> 12;
    const auto ios = measure(env, [&] {
      auto r = precise_partition<Record>(env.ctx, input, k);
    });
    const double lo = (dn / b) * lg_clamped(m / b, static_cast<double>(k));
    row("Lemma5 precise partition", lo, ios,
        multi_partition_ios(dn, m, b, static_cast<double>(k)));
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

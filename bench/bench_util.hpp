// bench_util.hpp — shared infrastructure for the experiment binaries.
//
// Every experiment binary (E1..E11, see DESIGN.md §3) measures *exact* I/O
// counts on a MemoryBlockDevice and prints one table: the sweep parameters,
// the measured I/Os, the value of the paper's bound formula, their ratio
// (shape validation: the ratio must stay within a constant band across the
// sweep), and reference costs (full scan, full sort).  EXPERIMENTS.md
// records these tables against the paper's claims.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace emsplit::bench {

// ---------------------------------------------------------------------------
// Machine-readable artifacts.  Benches that feed the perf trajectory emit a
// flat JSON file — {"bench": "...", "rows": [{...}, ...]} — numbers, bools
// and strings only, so downstream tooling needs no real JSON parser quirks.
// ---------------------------------------------------------------------------

class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : out_("{\"bench\": \"" + std::move(bench_name) + "\", \"rows\": [") {}

  void begin_row() {
    if (!first_row_) out_ += ", ";
    first_row_ = false;
    first_field_ = true;
    out_ += "{";
  }
  void field(const char* key, const std::string& v) {
    raw_field(key);
    out_ += '"';
    out_ += v;
    out_ += '"';
  }
  void field(const char* key, double v) {
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", v);
    raw_field(key);
    out_ += num;
  }
  void field(const char* key, std::uint64_t v) {
    raw_field(key);
    out_ += std::to_string(v);
  }
  void field(const char* key, bool v) {
    raw_field(key);
    out_ += v ? "true" : "false";
  }
  /// Splice pre-serialized JSON (an array or object) in as the field value.
  /// The caller owns validity; used for nested structures like per-pass
  /// trace rows, which the flat field() overloads cannot express.
  void field_json(const char* key, const std::string& raw) {
    raw_field(key);
    out_ += raw;
  }
  void end_row() { out_ += "}"; }

  /// Write the document to `path`; returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    return write_doc(path, out_ + "]}\n");
  }

  /// Append the document as one `label`-tagged entry of a top-level JSON
  /// array at `path`, preserving every earlier entry — the trajectory file
  /// accumulates one entry per PR / bench invocation instead of being
  /// overwritten.  A legacy single-object file (the pre-append format)
  /// becomes the array's first entry; a missing file a fresh one-entry
  /// array.  Returns false on I/O failure.
  [[nodiscard]] bool append_entry(const std::string& path,
                                  const std::string& label) const {
    std::string entry = "{\"label\": \"";
    entry += label;
    entry += "\", ";
    entry += out_.c_str() + 1;  // drop the leading '{' of the document
    entry += "]}";
    std::string doc;
    std::string prev = slurp(path);
    while (!prev.empty() &&
           (prev.back() == '\n' || prev.back() == ' ')) {
      prev.pop_back();
    }
    if (!prev.empty() && prev.front() == '[' && prev.back() == ']') {
      doc = prev.substr(0, prev.size() - 1);
      if (doc.find('{') != std::string::npos) doc += ", ";
      doc += entry;
      doc += "]\n";
    } else if (!prev.empty() && prev.front() == '{' && prev.back() == '}') {
      doc = "[" + prev + ", " + entry + "]\n";
    } else {
      doc = "[" + entry + "]\n";
    }
    return write_doc(path, doc);
  }

 private:
  static bool write_doc(const std::string& path, const std::string& doc) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

  static std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return {};
    std::string s;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, got);
    std::fclose(f);
    return s;
  }

  // Appends, not operator+ chains: sequential += sidesteps a GCC 12
  // -Werror=restrict false positive in inlined basic_string concatenation.
  void raw_field(const char* key) {
    if (!first_field_) out_ += ", ";
    first_field_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\": ";
  }

  std::string out_;
  bool first_row_ = true;
  bool first_field_ = true;
};

/// Machine geometry for one experiment.
struct Geometry {
  std::size_t block_bytes = 4096;  ///< B = 256 records of 16 bytes
  std::size_t mem_blocks = 32;     ///< M = 8192 records (131072 bytes)

  [[nodiscard]] std::size_t mem_bytes() const {
    return block_bytes * mem_blocks;
  }
};

/// A device + context pair for one measurement run.
struct Env {
  explicit Env(const Geometry& g)
      : dev(g.block_bytes), ctx(dev, g.mem_bytes()) {}

  MemoryBlockDevice dev;
  Context ctx;

  [[nodiscard]] std::size_t b() const { return ctx.block_records<Record>(); }
  [[nodiscard]] std::size_t m() const { return ctx.mem_records<Record>(); }
};

/// Measure the I/Os of `fn` on a fresh stats window.
template <typename Fn>
std::uint64_t measure(Env& env, Fn&& fn) {
  env.dev.reset_stats();
  env.ctx.budget().reset_peak();
  fn();
  return env.dev.stats().total();
}

inline void print_header(const char* exp_id, const char* claim,
                         const Geometry& g) {
  const double b = static_cast<double>(g.block_bytes) / sizeof(Record);
  const double m = static_cast<double>(g.mem_bytes()) / sizeof(Record);
  std::printf("# %s\n# claim: %s\n", exp_id, claim);
  std::printf("# geometry: B = %.0f records/block, M = %.0f records (M/B = %.0f)\n",
              b, m, m / b);
}

inline void print_columns(const std::vector<std::string>& cols) {
  std::printf("#");
  for (const auto& c : cols) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void print_row(const std::vector<double>& vals) {
  std::printf(" ");
  for (const double v : vals) {
    if (v == std::floor(v) && std::fabs(v) < 1e12) {
      std::printf(" %12.0f", v);
    } else {
      std::printf(" %12.3f", v);
    }
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// The paper's bound formulas (Table 1), in I/O units.  lg_x(y) follows the
// paper's convention lg = max{1, log}.
// ---------------------------------------------------------------------------

using formulas::lg_clamped;
using formulas::sort_ios;

/// E1 upper bound: (1 + aK/B) lg_{M/B}(K/B).
inline double splitters_right_ios(double n, double m, double b, double k,
                                  double a) {
  (void)n;
  return (1.0 + a * k / b) * lg_clamped(m / b, k / b);
}

/// E2: (N/B) lg_{M/B}(N/(bB)).
inline double splitters_left_ios(double n, double m, double b, double k,
                                 double bb) {
  (void)k;
  return (n / b) * lg_clamped(m / b, n / (bb * b));
}

/// E3: (aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB)).
inline double splitters_two_sided_ios(double n, double m, double b, double k,
                                      double a, double bb) {
  return splitters_right_ios(n, m, b, k, a) +
         splitters_left_ios(n, m, b, k, bb);
}

/// E4: N/B + (aK/B) lg_{M/B} min{K, aK/B}.
inline double partitioning_right_ios(double n, double m, double b, double k,
                                     double a) {
  return n / b +
         (a * k / b) * lg_clamped(m / b, std::min(k, a * k / b));
}

/// E5: (N/B) lg_{M/B} min{N/b', N/B}.
inline double partitioning_left_ios(double n, double m, double b, double bb) {
  return (n / b) * lg_clamped(m / b, std::min(n / bb, n / b));
}

/// E6: sum of the right and left shapes.
inline double partitioning_two_sided_ios(double n, double m, double b,
                                         double k, double a, double bb) {
  return (a * k / b) * lg_clamped(m / b, std::min(k, a * k / b)) +
         partitioning_left_ios(n, m, b, bb);
}

/// Theorem 4: (N/B) lg_{M/B}(K/B).
inline double multi_select_ios(double n, double m, double b, double k) {
  return (n / b) * lg_clamped(m / b, k / b);
}

/// Aggarwal–Vitter: (N/B) lg_{M/B} K.
inline double multi_partition_ios(double n, double m, double b, double k) {
  return (n / b) * lg_clamped(m / b, k);
}

}  // namespace emsplit::bench

// E13 — ablation: deterministic recursive sampler vs randomized reservoir
// splitters.
//
// The multi-selection base case (and multi-partition's cut selection) rests
// on the linear-splitters engine.  DESIGN.md calls out the design choice:
// the deterministic recursive sampler (proven bucket bound, ~1.67 scans
// with writes) versus a one-scan reservoir sample (high-probability bound,
// no writes).  This bench measures both costs and both *actual* max-bucket
// qualities across workload shapes.
#include "bench_util.hpp"

#include "select/sampled_splitters.hpp"

#include <algorithm>

namespace emsplit::bench {
namespace {

std::uint64_t max_bucket(const std::vector<Record>& host,
                         const std::vector<Record>& splitters) {
  auto sorted = host;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint64_t> sizes(splitters.size() + 1, 0);
  std::size_t j = 0;
  for (const auto& e : sorted) {
    while (j < splitters.size() && splitters[j] < e) ++j;
    ++sizes[j];
  }
  return *std::max_element(sizes.begin(), sizes.end());
}

void run() {
  const Geometry g{};
  print_header("E13: splitter-engine ablation",
               "deterministic recursive sampler vs one-scan reservoir sample",
               g);
  const std::size_t n = 1u << 20;
  std::printf("# N = %zu; ideal bucket ~ 4N/M = %zu records\n", n,
              4 * n / (g.mem_bytes() / sizeof(Record)));
  print_columns({"workload", "det_ios", "det_maxbkt", "det_bound", "rnd_ios",
                 "rnd_maxbkt", "rnd_bound"});

  for (const Workload w : all_workloads()) {
    Env env(g);
    auto host = make_workload(w, n, 99, env.b());
    auto input = materialize<Record>(env.ctx, host);

    LinearSplittersResult<Record> det;
    const auto det_ios = measure(env, [&] {
      det = linear_splitters<Record>(env.ctx, input);
    });
    LinearSplittersResult<Record> rnd;
    const auto rnd_ios = measure(env, [&] {
      rnd = sampled_splitters<Record>(env.ctx, input, /*seed=*/4242);
    });

    std::printf("  %-14s", to_string(w).c_str());
    print_row({static_cast<double>(det_ios),
               static_cast<double>(max_bucket(host, det.splitters)),
               static_cast<double>(det.bucket_bound),
               static_cast<double>(rnd_ios),
               static_cast<double>(max_bucket(host, rnd.splitters)),
               static_cast<double>(rnd.bucket_bound)});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E11 — the §3 reduction, measured.
//
// Claim: precise (N/b)-partitioning = left-grounded approximate
// K-partitioning + O(N/B) stitch.  We sweep b and report the approximate
// cost, the end-to-end reduction cost, the stitch overhead in scan units
// (must be O(1) scans), and the direct precise_partition cost for reference.
#include "bench_util.hpp"

#include "partition/reduction.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 20;
  auto host = make_workload(Workload::kUniform, n, 1618, env.b());
  auto input = materialize<Record>(env.ctx, host);

  print_header("E11: precise partitioning via the Section-3 reduction",
               "reduction total = F(N, K, b) + O(N/B)", g);
  const double nb = static_cast<double>(n) / static_cast<double>(env.b());
  std::printf("# N = %zu, scan N/B = %.0f\n", n, nb);
  print_columns({"b", "N/b", "approx_ios", "reduce_ios", "stitch/scan",
                 "direct_ios"});

  for (std::uint64_t bb : {n / 4096, n / 512, n / 64, n / 8}) {
    const std::uint64_t parts = n / bb;
    const std::uint64_t approx = measure(env, [&] {
      auto r = approx_partitioning<Record>(env.ctx, input,
                                           {.k = parts, .a = 0, .b = bb});
    });
    ApproxPartitioning<Record> reduced;
    const std::uint64_t total = measure(env, [&] {
      reduced = precise_partition_via_reduction<Record>(env.ctx, input, bb);
    });
    const ApproxSpec exact{.k = parts, .a = bb, .b = bb};
    auto check =
        verify_partitioning<Record>(input, reduced.data, reduced.bounds, exact);
    if (!check.ok) {
      std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
      continue;
    }
    const std::uint64_t direct = measure(env, [&] {
      auto r = precise_partition<Record>(env.ctx, input, parts);
    });
    print_row({static_cast<double>(bb), static_cast<double>(parts),
               static_cast<double>(approx), static_cast<double>(total),
               (static_cast<double>(total) - static_cast<double>(approx)) / nb,
               static_cast<double>(direct)});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

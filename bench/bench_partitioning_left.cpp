// E5 — left-grounded approximate K-partitioning.
//
// Claim (Theorems 3 + 6): Θ((N/B) lg_{M/B} min{N/b, N/B}) I/Os.  We sweep b
// (larger b => fewer mandatory cuts => cheaper) and N; the win over sorting
// grows as b grows.
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{};
  Env env(g);
  const std::size_t n = 1u << 21;
  const std::uint64_t k = 1024;
  auto host = make_workload(Workload::kUniform, n, 555, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const std::uint64_t sort_cost = measure(env, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });

  print_header("E5: left-grounded K-partitioning",
               "Theta((N/B) lg_{M/B} min{N/b, N/B})", g);
  std::printf("# N = %zu, K = %llu, measured sort = %llu\n", n,
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(sort_cost));
  print_columns({"b", "N/b", "measured", "formula", "ratio", "vs_sort"});

  for (std::uint64_t bb : {n / k, n / 256, n / 64, n / 16, n / 4, n / 2}) {
    const ApproxSpec spec{.k = k, .a = 0, .b = bb};
    ApproxPartitioning<Record> result;
    const std::uint64_t ios = measure(env, [&] {
      result = approx_partitioning<Record>(env.ctx, input, spec);
    });
    auto check =
        verify_partitioning<Record>(input, result.data, result.bounds, spec);
    if (!check.ok) {
      std::printf("!! INVALID OUTPUT: %s\n", check.reason.c_str());
      continue;
    }
    const double f = partitioning_left_ios(
        static_cast<double>(n), static_cast<double>(env.m()),
        static_cast<double>(env.b()), static_cast<double>(bb));
    print_row({static_cast<double>(bb),
               static_cast<double>(n) / static_cast<double>(bb),
               static_cast<double>(ios), f, static_cast<double>(ios) / f,
               static_cast<double>(ios) / static_cast<double>(sort_cost)});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E10 — wall-clock sanity on a real file-backed device.
//
// The shape experiments (E1-E9, E11) count I/Os exactly on the RAM-backed
// simulator.  This binary repeats representative operations on a real file
// through FileBlockDevice and reports wall-clock time via google-benchmark,
// confirming that the I/O counts translate monotonically into time on an
// actual storage stack (page cache included — we measure the syscall path,
// not a cold spindle).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/api.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 4096;
constexpr std::size_t kMemBlocks = 64;

std::string bench_path(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/emsplit_bench_" + tag +
         ".bin";
}

void BM_FileScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("scan"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 1);
  auto data = materialize<Record>(ctx, host);
  for (auto _ : state) {
    StreamReader<Record> r(data);
    std::uint64_t sum = 0;
    while (!r.done()) sum += r.next().key;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FileScan)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileExternalSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("sort"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 2);
  auto data = materialize<Record>(ctx, host);
  for (auto _ : state) {
    auto sorted = external_sort<Record>(ctx, data);
    benchmark::DoNotOptimize(sorted.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FileExternalSort)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileSplittersRight(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("right"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 3);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 16, .b = n};
  for (auto _ : state) {
    auto s = approx_splitters<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_FileSplittersRight)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileSplittersTwoSided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("two"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 4);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 64, .b = n / 8};
  for (auto _ : state) {
    auto s = approx_splitters<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_FileSplittersTwoSided)->Arg(1 << 18)->Arg(1 << 20);

void BM_FilePartitioningLeft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("pleft"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 5);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 0, .b = n / 8};
  for (auto _ : state) {
    auto r = approx_partitioning<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(r.bounds.size());
  }
}
BENCHMARK(BM_FilePartitioningLeft)->Arg(1 << 18)->Arg(1 << 20);

}  // namespace
}  // namespace emsplit

BENCHMARK_MAIN();

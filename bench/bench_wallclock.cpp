// E10 — wall-clock sanity on a real file-backed device.
//
// The shape experiments (E1-E9, E11) count I/Os exactly on the RAM-backed
// simulator.  This binary repeats representative operations on a real file
// through FileBlockDevice and reports wall-clock time, confirming that the
// I/O counts translate monotonically into time on an actual storage stack
// (page cache included — we measure the syscall path, not a cold spindle).
//
// Part 1 is the batching/async comparison: external sort and multi-partition
// run under three I/O tunings — sync (the classic one-block-per-call path),
// batched (multi-block device calls), and batched+async (read-ahead/write-
// behind on the background worker) — on a small-block geometry where per-call
// overhead dominates, i.e. where the EM model's "count block transfers"
// abstraction is furthest from syscall reality.  Results go to stdout and to
// BENCH_wallclock.json for trajectory tracking.  The tunings keep the merge
// fan-in above the run count, so all three modes perform identical I/O
// totals and the speedup is purely per-call overhead and overlap.  Sharded
// legs (shard1/2/4) repeat the async tuning through a ShardedBlockDevice
// striped over D file-backed members: logical I/Os and checksums must not
// move, and each trajectory row carries the per-pass trace (with per-shard
// counters and balance) from its final rep.  The uring legs swap the backend
// for UringBlockDevice (write-behind ring, grouped submission) at the same
// tuning — another pure-geometry change — and the dsort / multi_select ops
// add cache-tagged legs where a budget-charged BlockCache serves re-read
// extents from memory (hits are logged but never change logical I/O counts).
//
// Part 2 keeps the original google-benchmark microbenches on the 4 KiB
// geometry.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "em/block_cache.hpp"
#include "em/file_io.hpp"
#include "em/uring_device.hpp"
#include "service/server.hpp"

namespace emsplit {
namespace {

std::string bench_path(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/emsplit_bench_" + tag +
         ".bin";
}

// ---------------------------------------------------------------------------
// Part 1: sync vs batched vs async on FileBlockDevice.
// ---------------------------------------------------------------------------

// Small blocks so the seed's one-syscall-per-block cost dominates: 1M records
// of 16 bytes over 64-byte blocks is ~260k blocks, >1M syscalls per sort on
// the sync path.  M = 4096 blocks keeps every mode at one merge pass
// (runs ~= 65, fan-in >= 127 at stream_blocks() = 32, the largest tuning
// below).
constexpr std::size_t kCmpBlockBytes = 64;
constexpr std::size_t kCmpMemBlocks = 4096;

// Default 1M records; BENCH_WALLCLOCK_RECORDS overrides for CI smoke runs
// where the full size would dominate the job's wall budget.
std::size_t cmp_records() {
  static const std::size_t n = [] {
    const char* env = std::getenv("BENCH_WALLCLOCK_RECORDS");
    if (env != nullptr && *env != '\0') {
      const unsigned long long v = std::strtoull(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{1} << 20;
  }();
  return n;
}

struct ModeSpec {
  const char* name;
  IoTuning tuning;
  CpuTuning cpu{1, 1};
  std::size_t shards = 0;        // 0 = plain FileBlockDevice; >= 1 = the
                                 // ShardedBlockDevice facade over D members
                                 // (D = 1 isolates facade dispatch overhead)
  std::size_t stripe_blocks = 8;
  const char* backend = "file";  // "file" | "uring" (backend is geometry:
                                 // logical I/Os and checksums cannot move)
  std::size_t cache_blocks = 0;  // > 0 attaches a BlockCache of that capacity
  std::size_t workers = 0;       // > 0 routes dsort/partition through the
                                 // multi-process distributed path (W is
                                 // geometry: every W must report identical
                                 // logical I/Os and output checksums)
  bool direct = false;           // probe O_DIRECT on the uring backend
                                 // (needs 512 | block_bytes; probe-gated —
                                 // falls back to buffered when refused)
  // Per-leg geometry overrides.  The worker legs need blocks big enough for
  // the distributed plan's edge/cut tables; the O_DIRECT leg needs a
  // 512-multiple block size.  Legs that override run their own geometry and
  // are exempt from the cross-leg determinism reference.
  std::size_t block_bytes = kCmpBlockBytes;
  std::size_t mem_blocks = kCmpMemBlocks;
  bool supervised = false;       // arm the round supervisor (retries + hang
                                 // deadline) on the worker leg; at zero
                                 // faults it must be pure bookkeeping —
                                 // same I/Os, same bytes, worker_retries 0
};

struct ModeResult {
  double seconds = 0;
  std::uint64_t ios = 0;
  std::uint64_t peak = 0;
  std::uint64_t checksum = 0;
  bool sorted = false;
  bool shard_sums_ok = true;     // shard_stats() partitions stats() exactly
  bool uring_native = false;     // ring engaged (vs positional fallback)
  bool direct_io = false;        // O_DIRECT probe accepted (uring backend)
  std::uint64_t cache_hits = 0;  // final rep's cache counters
  std::uint64_t cache_misses = 0;
  std::uint64_t worker_retries = 0;  // re-executed worker I/O (0 unless a
                                     // worker actually failed mid-round)
  std::string passes_json;       // JSON array of the final rep's trace rows
};

// Build the comparison device: shards = 0 is the plain file device the
// earlier legs always used; shards >= 1 puts the ShardedBlockDevice facade
// over D FileBlockDevice members, each its own file (the striping is
// geometry — every logical I/O, and therefore every checksum below, must
// be unchanged).  backend = "uring" swaps the positional-I/O file backend
// for the io_uring ring (write-behind slots, grouped submission) — also
// geometry, also output-invariant.
std::unique_ptr<BlockDevice> make_cmp_device(const char* tag,
                                             const ModeSpec& mode) {
  const bool uring = std::string(mode.backend) == "uring";
  const auto make_member = [&](const std::string& path)
      -> std::unique_ptr<BlockDevice> {
    if (uring) {
      // Bench ring geometry: submit_batch == write_behind so a write almost
      // never pays its own io_uring_enter — queued write SQEs ride along on
      // the next read's submit-and-wait enter (reads and writes alternate in
      // every pass here), and a pure write burst still amortizes one enter
      // over 16 transfers.
      UringBlockDevice::Tuning ring;
      ring.ring_entries = 64;
      ring.write_behind = 16;
      ring.submit_batch = 16;
      ring.direct = mode.direct;
      return std::make_unique<UringBlockDevice>(path, mode.block_bytes, ring);
    }
    return std::make_unique<FileBlockDevice>(path, mode.block_bytes);
  };
  if (mode.shards == 0) return make_member(bench_path(tag));
  std::vector<std::unique_ptr<BlockDevice>> members;
  members.reserve(mode.shards);
  for (std::size_t d = 0; d < mode.shards; ++d) {
    members.push_back(make_member(bench_path(tag) + "." + std::to_string(d)));
  }
  return std::make_unique<ShardedBlockDevice>(std::move(members),
                                              mode.stripe_blocks);
}

// Device + context + optional cache for one leg.  The cache charges the
// context's own budget (the scavenger contract): algorithm reservations
// push it out via the reclaimer, so peak() <= M still holds.
struct Rig {
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<Context> ctx;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<PassTraceLog> trace;  // heap: ctx holds its address

  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;
  ~Rig() {
    if (ctx != nullptr && cache != nullptr) ctx->set_block_cache(nullptr);
  }
};

Rig make_rig(const char* tag, const ModeSpec& mode) {
  Rig rig;
  rig.dev = make_cmp_device(tag, mode);
  rig.ctx =
      std::make_unique<Context>(*rig.dev, mode.mem_blocks * mode.block_bytes);
  rig.ctx->set_io_tuning(mode.tuning);
  rig.ctx->set_cpu_tuning(mode.cpu);
  WorkerTuning wt;
  wt.workers = mode.workers;
  if (mode.supervised) {
    // Supervision armed, zero faults injected: retries available, a generous
    // hang deadline (the poll loop replaces the blocking drain either way).
    wt.max_worker_retries = 2;
    wt.worker_timeout = 30.0;
  }
  rig.ctx->set_worker_tuning(wt);
  rig.trace = std::make_unique<PassTraceLog>();
  rig.ctx->set_pass_trace(rig.trace.get());
  if (mode.cache_blocks > 0) {
    rig.cache = std::make_unique<BlockCache>(
        rig.ctx->budget(), mode.block_bytes, mode.cache_blocks);
    rig.ctx->set_block_cache(rig.cache.get());
  }
  return rig;
}

const UringBlockDevice* rig_uring(Rig& rig, const ModeSpec& mode) {
  if (std::string(mode.backend) != "uring") return nullptr;
  if (mode.shards == 0) {
    return &static_cast<const UringBlockDevice&>(*rig.dev);
  }
  auto& facade = static_cast<ShardedBlockDevice&>(*rig.dev);
  return &static_cast<const UringBlockDevice&>(facade.member(0));
}

// Serialize the final rep's trace rows as a JSON array (one object per
// pass, same schema as --trace=FILE lines) for the trajectory entry.
std::string passes_to_json(const PassTraceLog& log) {
  std::string s = "[";
  bool first = true;
  for (const PassTrace& t : log.rows()) {
    if (!first) s += ",";
    first = false;
    s += pass_trace_json(t);
  }
  s += "]";
  return s;
}

// Per-shard counters must partition the facade totals exactly — the bench
// asserts the cheap half here; test_sharded_device.cpp holds the strict
// matrix.
bool shard_sums_match(const BlockDevice& dev) {
  const auto shards = dev.shard_stats();
  if (shards.empty()) return true;
  IoStats sum;
  for (const IoStats& s : shards) sum += s;
  const IoStats total = dev.stats();
  return sum.reads == total.reads && sum.writes == total.writes;
}

// Order-sensitive FNV-1a over the output records: equal checksums across
// modes certify bit-identical output, the cheap half of the determinism
// contract (test_parallel_determinism.cpp holds the strict version).
std::uint64_t checksum_em(EmVector<Record>& v) {
  StreamReader<Record> r(v);
  std::uint64_t h = 1469598103934665603ull;
  while (!r.done()) {
    const Record rec = r.next();
    h = (h ^ rec.key) * 1099511628211ull;
    h = (h ^ rec.payload) * 1099511628211ull;
  }
  return h;
}

// Shared best-of-3 measurement loop.  `body` runs the algorithm, calls
// `capture()` the moment the algorithm returns (stopping the clock and
// snapshotting the I/O counters — verification and checksum scans stay
// outside both), then fills the result's checksum / sorted fields.
template <typename Body>
ModeResult run_mode(const char* tag, const ModeSpec& mode,
                    std::uint64_t workload_seed, Body body) {
  Rig rig = make_rig(tag, mode);
  auto host = make_workload(Workload::kUniform, cmp_records(), workload_seed);
  auto data = materialize<Record>(*rig.ctx, host);
  ModeResult res;
  if (const UringBlockDevice* ring = rig_uring(rig, mode)) {
    res.uring_native = ring->native();
    res.direct_io = ring->direct_io();
  }
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3, verify untimed
    rig.dev->reset_stats();
    rig.ctx->budget().reset_peak();
    rig.trace->reset();
    const auto t0 = std::chrono::steady_clock::now();
    double secs = 0;
    const auto capture = [&] {
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      secs = dt.count();
      const IoStats stats = rig.dev->stats();
      res.ios = stats.base().total();
      res.cache_hits = stats.cache_hits;
      res.cache_misses = stats.cache_misses;
      res.worker_retries = stats.worker_retries;
    };
    body(*rig.ctx, data, res, capture);
    res.peak = rig.ctx->budget().peak();
    res.shard_sums_ok = shard_sums_match(*rig.dev);
    if (rep == 0 || secs < res.seconds) res.seconds = secs;
  }
  // The trace covers the algorithm's passes only (reset precedes the timed
  // call; verification I/O lands after the rows are recorded).
  res.passes_json = passes_to_json(*rig.trace);
  return res;
}

std::vector<std::uint64_t> cmp_ranks() {
  std::vector<std::uint64_t> ranks;
  for (std::uint64_t k = 1; k < 64; ++k) {
    ranks.push_back(k * (cmp_records() / 64));
  }
  return ranks;
}

ModeResult run_sort_mode(const ModeSpec& mode) {
  return run_mode("cmp_sort", mode, 42,
                  [](Context& ctx, EmVector<Record>& data, ModeResult& res,
                     const auto& capture) {
                    auto sorted = external_sort<Record>(ctx, data);
                    capture();
                    res.sorted = is_sorted_em<Record>(sorted);
                    res.checksum = checksum_em(sorted);
                  });
}

ModeResult run_partition_mode(const ModeSpec& mode) {
  return run_mode("cmp_part", mode, 43,
                  [](Context& ctx, EmVector<Record>& data, ModeResult& res,
                     const auto& capture) {
                    auto part = multi_partition<Record>(ctx, data, cmp_ranks());
                    capture();
                    res.sorted = part.bounds.size() == 65;
                    res.checksum = checksum_em(part.data);
                  });
}

// Distribution sort: the multi-pass sort whose recursion levels and in-place
// final pass re-read recently written extents — the cache's natural prey.
ModeResult run_dsort_mode(const ModeSpec& mode) {
  return run_mode("cmp_dsort", mode, 44,
                  [](Context& ctx, EmVector<Record>& data, ModeResult& res,
                     const auto& capture) {
                    auto sorted = distribution_sort<Record>(ctx, data);
                    capture();
                    res.sorted = is_sorted_em<Record>(sorted);
                    res.checksum = checksum_em(sorted);
                  });
}

// Multi-select re-scans a geometrically shrinking candidate set over the
// same immutable input: once the survivors fit in the cache, whole passes
// are served from memory.
ModeResult run_select_mode(const ModeSpec& mode) {
  return run_mode("cmp_select", mode, 45,
                  [](Context& ctx, EmVector<Record>& data, ModeResult& res,
                     const auto& capture) {
                    const auto answers =
                        multi_select<Record>(ctx, data, cmp_ranks());
                    capture();
                    res.sorted = answers.size() == 63;
                    std::uint64_t h = 1469598103934665603ull;
                    for (const Record& r : answers) {
                      h = (h ^ r.key) * 1099511628211ull;
                      h = (h ^ r.payload) * 1099511628211ull;
                    }
                    res.checksum = h;
                  });
}

// ---------------------------------------------------------------------------
// Service legs: the resident SplitterServer under a fixed query mix.
// ---------------------------------------------------------------------------

// One serving configuration.  The client count is load, never geometry: the
// fixed mix is partitioned round-robin across the clients, so every leg
// answers the same queries and must report the same per-query I/O sum and
// the same answer checksum (the service-side determinism contract, checked
// in-binary here and again by bench_compare.py --service).
struct ServiceLeg {
  const char* name;
  const char* backend;      // "file" | "uring"
  std::size_t clients = 1;  // concurrent in-process client threads
  std::size_t cache_blocks = 0;         // device-level block cache
  std::size_t bucket_cache_blocks = 0;  // per-epoch decoded-bucket cache
  std::size_t batch = 0;  // >0: pipelined — queries per query_batch() call
};

struct ServiceResult {
  double seconds = 0;       // best-of-3 wall for the full mix
  double p50 = 0;           // per-query latency percentiles (winning rep)
  double p99 = 0;
  std::uint64_t ios = 0;    // serial per-query I/O sum (deterministic)
  std::uint64_t checksum = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t bucket_hits = 0;  // timed passes' bucket-cache traffic
  std::uint64_t shed = 0;
  std::uint64_t epoch = 0;
  bool ok = true;
  bool uring_native = false;
};

// The fixed query mix: half ranks, a quarter ranges, the rest histograms and
// top-k in both directions, all derived deterministically from the workload.
std::vector<SplitterServer::Request> service_mix(
    const std::vector<Record>& host) {
  const std::size_t n = host.size();
  constexpr std::size_t kQueries = 512;
  std::vector<SplitterServer::Request> mix;
  mix.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    SplitterServer::Request q;
    // Standing workloads are skewed: the paper's motivating applications
    // (percentile monitors, histogram dashboards) poll the same ranks over
    // and over.  75% of probes revisit a 32-record hot set; the rest walk
    // the key space uniformly, so the bucket-cache legs face both a
    // cacheable core and a churning tail.
    const bool is_hot = (i % 8) < 6;
    const std::size_t ia = is_hot ? ((i * 13) % 32) * 9973 : i * 9973;
    const std::size_t ib =
        is_hot ? ((i * 29 + 3) % 32) * 31337 + 7 : i * 31337 + 7;
    const Record a = host[ia % n];
    const Record b = host[ib % n];
    switch (i % 8) {
      case 6:
        q.kind = QueryKind::kHistogram;
        q.k = 64;
        break;
      case 7:
        q.kind = QueryKind::kTopK;
        q.k = 32;
        q.largest = i % 16 == 7;
        break;
      case 4:
      case 5:
        q.kind = QueryKind::kRange;
        q.lo = std::min(a, b);
        q.hi = std::max(a, b);
        break;
      default:
        // Saturated payload: rank counts every record with the probed key.
        q.kind = QueryKind::kRank;
        q.lo = Record{a.key, ~0ULL};
        break;
    }
    mix.push_back(q);
  }
  return mix;
}

// Fold one reply's answer into the leg checksum (same FNV-1a the mode legs
// use): scalar value, top-k records, histogram boundaries and sizes.
void mix_reply_checksum(std::uint64_t& h, const SplitterServer::Reply& rep) {
  const auto fold = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  fold(rep.value);
  for (const Record& r : rep.records) {
    fold(r.key);
    fold(r.payload);
  }
  for (const Record& b : rep.hist.boundaries) {
    fold(b.key);
    fold(b.payload);
  }
  for (const std::uint64_t s : rep.hist.sizes) fold(s);
}

ServiceResult run_service_leg(const ServiceLeg& leg, const std::string& src,
                              const std::vector<SplitterServer::Request>& mix) {
  // 4 KiB blocks, M = 2048 blocks (the worker legs' geometry): at K = 256
  // buckets over 1M records a rank pays ~16 block reads per bucket scan.
  const IoTuning tuning{.batch_blocks = 32, .queue_depth = 0, .async = false};
  const ModeSpec mode{leg.name,    tuning, CpuTuning{1, 1}, 0,     8,
                      leg.backend, leg.cache_blocks, 0,     false, 4096,
                      2048};
  Rig rig = make_rig("cmp_service", mode);
  ServiceResult res;
  if (const UringBlockDevice* ring = rig_uring(rig, mode)) {
    res.uring_native = ring->native();
  }
  SplitterServer::Config scfg;
  scfg.source_path = src;
  scfg.buckets = 256;
  scfg.queue_wait = 0.25;
  scfg.bucket_cache_blocks = leg.bucket_cache_blocks;
  SplitterServer server(*rig.ctx, scfg);
  server.start();
  res.epoch = server.epoch();

  // Serial verification pass: per-query reads are geometry (cache and
  // bucket-cache hits are counted separately and base() strips them), so the
  // sum is the leg's logical I/O figure and the answer stream hashes to its
  // checksum.  The pass also warms the bucket cache, like production would.
  std::uint64_t h = 1469598103934665603ull;
  IoStats sum;
  for (const auto& q : mix) {
    const SplitterServer::Reply rep = server.query(q);
    res.ok = res.ok && rep.ok;
    sum += rep.io;
    res.cache_hits += rep.io.cache_hits;
    res.bucket_hits += rep.io.bucket_hits;
    mix_reply_checksum(h, rep);
  }
  res.ios = sum.base().total();
  res.checksum = h;

  // Timed passes: the same mix partitioned round-robin across the client
  // threads, best of 3; latency samples come from the winning rep.  Pipelined
  // legs (batch > 0) push their slice through query_batch() in chunks — one
  // pinned snapshot per chunk, the socket batch execution path.
  for (int rep_i = 0; rep_i < 3; ++rep_i) {
    std::vector<std::vector<double>> lat(leg.clients);
    std::atomic<bool> all_ok{true};
    std::atomic<std::uint64_t> pass_bucket_hits{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(leg.clients);
    for (std::size_t c = 0; c < leg.clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<SplitterServer::Request> slice;
        for (std::size_t i = c; i < mix.size(); i += leg.clients) {
          slice.push_back(mix[i]);
        }
        std::uint64_t bh = 0;
        if (leg.batch > 0) {
          for (std::size_t i = 0; i < slice.size(); i += leg.batch) {
            const std::vector<SplitterServer::Request> chunk(
                slice.begin() + static_cast<std::ptrdiff_t>(i),
                slice.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(i + leg.batch, slice.size())));
            for (const SplitterServer::Reply& rep :
                 server.query_batch(chunk, c + 1)) {
              if (!rep.ok) all_ok.store(false);
              lat[c].push_back(rep.seconds);
              bh += rep.io.bucket_hits;
            }
          }
        } else {
          for (const auto& q : slice) {
            const SplitterServer::Reply rep = server.query(q, c + 1);
            if (!rep.ok) all_ok.store(false);
            lat[c].push_back(rep.seconds);
            bh += rep.io.bucket_hits;
          }
        }
        pass_bucket_hits.fetch_add(bh);
      });
    }
    for (std::thread& t : clients) t.join();
    res.bucket_hits += pass_bucket_hits.load();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (!all_ok.load()) res.ok = false;
    if (rep_i == 0 || dt.count() < res.seconds) {
      res.seconds = dt.count();
      std::vector<double> all;
      for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      const auto pct = [&all](double f) {
        const auto i = static_cast<std::size_t>(
            f * static_cast<double>(all.size() - 1) + 0.5);
        return all[std::min(i, all.size() - 1)];
      };
      res.p50 = pct(0.50);
      res.p99 = pct(0.99);
    }
  }
  res.shed = server.shed();
  return res;
}

void run_service_bench(bench::JsonEmitter& json) {
  // The source column the server (re)builds from: a flat record file.
  const std::string src = bench_path("cmp_service_src");
  const auto host = make_workload(Workload::kUniform, cmp_records(), 46);
  {
    std::FILE* f = std::fopen(src.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s; service legs skipped\n",
                   src.c_str());
      return;
    }
    const std::size_t wrote =
        std::fwrite(host.data(), sizeof(Record), host.size(), f);
    std::fclose(f);
    if (wrote != host.size()) {
      std::remove(src.c_str());
      return;
    }
  }
  const auto mix = service_mix(host);

  // Half the 2048-block budget: the bucket cache's chunks are reclaim prey,
  // so a cache sized at the full budget would be shed by every engine
  // reservation and thrash instead of serving.
  constexpr std::size_t kServeCacheBlocks = 1024;
  constexpr std::size_t kServeBatch = 16;
  const ServiceLeg legs[] = {
      {"serve1", "file", 1, 0},
      {"serve4", "file", 4, 0},
      {"serve4+uring", "uring", 4, 0},
      {"serve4+cache", "uring", 4, kServeCacheBlocks},
      {"serve4+bcache", "file", 4, 0, kServeCacheBlocks},
      {"serve4+pipe", "file", 4, 0, 0, kServeBatch},
      {"serve4+pipe+bcache", "file", 4, 0, kServeCacheBlocks, kServeBatch},
  };

  std::printf(
      "# service: resident SplitterServer, %zu-query mix, K = 256 buckets, "
      "B = 4096 bytes, N = %zu records\n",
      mix.size(), cmp_records());
  std::printf("# %-16s %-18s %9s %9s %9s %12s %5s\n", "op", "mode", "qps",
              "p50 ms", "p99 ms", "ios", "shed");

  std::uint64_t ref_ios = 0;
  std::uint64_t ref_checksum = 0;
  bool first_leg = true;
  for (const ServiceLeg& leg : legs) {
    const ServiceResult r = run_service_leg(leg, src, mix);
    if (first_leg) {
      ref_ios = r.ios;
      ref_checksum = r.checksum;
      first_leg = false;
    }
    // Clients, backend and cache are load and geometry, never output: every
    // leg must answer the mix with the same logical reads and the same bytes.
    const bool deterministic =
        r.ios == ref_ios && r.checksum == ref_checksum;
    const double qps =
        r.seconds > 0 ? static_cast<double>(mix.size()) / r.seconds : 0.0;
    std::printf("  %-16s %-18s %9.0f %9.3f %9.3f %12llu %5llu%s%s\n",
                "service", leg.name, qps, 1e3 * r.p50, 1e3 * r.p99,
                static_cast<unsigned long long>(r.ios),
                static_cast<unsigned long long>(r.shed),
                r.ok ? "" : "  [CHECK FAILED]",
                deterministic ? "" : "  [DETERMINISM FAILED]");
    json.begin_row();
    json.field("op", std::string("service"));
    json.field("mode", std::string(leg.name));
    json.field("backend", std::string(leg.backend));
    json.field("uring_native", r.uring_native);
    json.field("clients", static_cast<std::uint64_t>(leg.clients));
    json.field("cache_blocks", static_cast<std::uint64_t>(leg.cache_blocks));
    json.field("cache_hits", r.cache_hits);
    json.field("bucket_cache_blocks",
               static_cast<std::uint64_t>(leg.bucket_cache_blocks));
    json.field("bucket_hits", r.bucket_hits);
    json.field("batch", static_cast<std::uint64_t>(leg.batch));
    json.field("buckets", std::uint64_t{256});
    json.field("queries", static_cast<std::uint64_t>(mix.size()));
    json.field("block_bytes", std::uint64_t{4096});
    json.field("mem_blocks", std::uint64_t{2048});
    json.field("records", static_cast<std::uint64_t>(cmp_records()));
    json.field("seconds", r.seconds);
    json.field("qps", qps);
    json.field("p50_seconds", r.p50);
    json.field("p99_seconds", r.p99);
    json.field("ios", r.ios);
    json.field("checksum", r.checksum);
    json.field("shed", r.shed);
    json.field("epoch", r.epoch);
    json.field("ok", r.ok && deterministic);
    json.end_row();
  }
  std::remove(src.c_str());
}

void run_mode_comparison() {
  // Tuning shorthands.  batched and async share stream_blocks() = 32, so
  // they run the same geometry (fan-in 127 over ~65 runs: one merge pass,
  // like sync's fan-in 4095) and identical I/O totals; only the issue path
  // differs.  The uring legs reuse the batched tuning verbatim — backend and
  // cache are the only deltas, so their logical I/Os and checksums must
  // equal the batched/async legs' exactly.
  const IoTuning kSync{.batch_blocks = 1, .queue_depth = 0, .async = false};
  const IoTuning kBatched{.batch_blocks = 32, .queue_depth = 0, .async = false};
  const IoTuning kAsync{.batch_blocks = 16, .queue_depth = 1, .async = true};
  constexpr std::size_t kCacheBlocks = 2048;  // half of M, scavenged

  const std::vector<ModeSpec> full_modes = {
      {"sync", kSync},
      {"batched", kBatched},
      {"async", kAsync},
      // CPU-parallel legs on top of the async pipeline: same stream geometry
      // as "async", so I/O totals and output checksums must match it exactly
      // for every thread count (the determinism contract).  sort_shards = 8
      // is geometry too, but record order is total, so even it cannot move
      // a byte.  On a single-core host these report honestly flat times.
      {"async+t2", kAsync, CpuTuning{2, 8}},
      {"async+t4", kAsync, CpuTuning{4, 8}},
      // Sharded legs: the async tuning striped over D file-backed members
      // with parallel member submission.  Striping is geometry, so logical
      // I/O totals and checksums must equal the async leg's exactly; on a
      // single-core container the wall-clock gain is honest page-cache
      // overlap, not spindle parallelism.  shard1 isolates the facade's
      // dispatch overhead (one member, same code path).
      // Stripe = batch = 16 blocks: every aligned batch covers exactly one
      // stripe, so sub-batch splitting adds no extra member calls and the
      // members alternate batch by batch (balance ~ 1).
      {"shard1", kAsync, CpuTuning{1, 1}, 1, 16},
      {"shard2", kAsync, CpuTuning{1, 1}, 2, 16},
      {"shard4", kAsync, CpuTuning{1, 1}, 4, 16},
      // The io_uring backend at the batched tuning: write-behind slots and
      // grouped submission replace one blocking pwrite per extent (batched
      // and async share stream geometry, so the determinism check against
      // the async reference still binds bit-for-bit).
      {"uring", kBatched, CpuTuning{1, 1}, 0, 8, "uring"},
      // O_DIRECT probe leg: the ring with page-cache bypass requested, on a
      // 512-byte block size (the alignment O_DIRECT demands) with the same
      // M in bytes.  Its own geometry => exempt from the cross-leg
      // determinism reference and from bench_compare's wall gates; when the
      // filesystem refuses the probe the leg degrades to the buffered ring
      // and reports direct_io = false.
      {"uring-direct", kBatched, CpuTuning{1, 1}, 0, 8, "uring", 0, 0, true,
       512, kCmpMemBlocks * kCmpBlockBytes / 512},
  };
  // The cache showcase ops (distribution sort's level-to-level re-reads,
  // multi-select's shrinking candidate re-scans) run a compact leg set:
  // the file baseline at batched geometry, the ring, and ring + cache.
  const std::vector<ModeSpec> cache_modes = {
      {"batched", kBatched},
      {"uring", kBatched, CpuTuning{1, 1}, 0, 8, "uring"},
      {"uring+cache", kBatched, CpuTuning{1, 1}, 0, 8, "uring", kCacheBlocks},
  };
  // Worker legs: the multi-process distributed path for the two ops that
  // route through it, at W = 1, 2, 4 forked workers on a 4 KiB block
  // geometry (the tiny-block geometry above starves the distributed plan's
  // edge/cut tables, so dist_supported would fall back to the classic
  // path and the legs would measure nothing).  W is geometry, never
  // output: all three legs must report identical logical I/Os and output
  // checksums — checked in-binary against the workers1 reference and again
  // by bench_compare.py --workers.
  const std::vector<ModeSpec> worker_modes = {
      {"workers1", kBatched, CpuTuning{1, 1}, 0, 8, "file", 0, 1, false,
       4096, 2048},
      {"workers2", kBatched, CpuTuning{1, 1}, 0, 8, "file", 0, 2, false,
       4096, 2048},
      {"workers4", kBatched, CpuTuning{1, 1}, 0, 8, "file", 0, 4, false,
       4096, 2048},
      // Supervision armed at zero faults: the poll-driven drain, per-frame
      // checksums and retry bookkeeping must cost nothing measurable —
      // identical I/Os and checksum to workers2, worker_retries = 0, and
      // wall-clock within bench_compare.py --supervision's threshold.
      {"workers2+sup", kBatched, CpuTuning{1, 1}, 0, 8, "file", 0, 2, false,
       4096, 2048, true},
  };

  struct OpSpec {
    const char* op;
    ModeResult (*run)(const ModeSpec&);
    const std::vector<ModeSpec>* modes;
    const char* ref_leg;  // geometry reference for the determinism check
  };
  const OpSpec ops[] = {
      {"external_sort", run_sort_mode, &full_modes, "async"},
      {"multi_partition", run_partition_mode, &full_modes, "async"},
      {"dsort", run_dsort_mode, &cache_modes, "batched"},
      {"multi_select", run_select_mode, &cache_modes, "batched"},
      {"dsort", run_dsort_mode, &worker_modes, "workers1"},
      {"multi_partition", run_partition_mode, &worker_modes, "workers1"},
  };

  bench::JsonEmitter json("wallclock");
  std::printf(
      "# E10a: sync vs batched vs async vs threads vs sharded vs uring(+cache), "
      "B = %zu bytes, M = %zu blocks, N = %zu records\n",
      kCmpBlockBytes, kCmpMemBlocks, cmp_records());
  std::printf("# %-16s %-11s %10s %12s %10s %9s %8s\n", "op", "mode", "secs",
              "ios", "peak/M", "hits", "speedup");

  for (const OpSpec& op : ops) {
    double base_secs = 0;
    std::uint64_t ref_ios = 0;
    std::uint64_t ref_checksum = 0;
    bool first_leg = true;
    for (const auto& mode : *op.modes) {
      const std::string name = mode.name;
      const ModeResult r = op.run(mode);
      if (first_leg) {
        base_secs = r.seconds;  // speedup baseline: the op's first leg
        first_leg = false;
      }
      if (name == op.ref_leg) {
        ref_ios = r.ios;
        ref_checksum = r.checksum;
      }
      // Every leg past the reference shares its stream geometry, so both
      // halves of the determinism contract are checkable right here: same
      // logical I/O total, same output bytes.  (uring legs run the batched
      // tuning; batched/async already match — see the tuning comment.)
      // Shard legs additionally require the per-shard counters to partition
      // the facade totals.
      const bool follows_ref =
          name.rfind("async+", 0) == 0 || name.rfind("shard", 0) == 0 ||
          name.rfind("workers", 0) == 0 ||
          (name.rfind("uring", 0) == 0 && name != "uring-direct");
      const bool deterministic =
          (!follows_ref ||
           (r.ios == ref_ios && r.checksum == ref_checksum)) &&
          r.shard_sums_ok;
      const double speedup = r.seconds > 0 ? base_secs / r.seconds : 0.0;
      const double peak_frac = static_cast<double>(r.peak) /
                               static_cast<double>(kCmpMemBlocks * kCmpBlockBytes);
      std::printf("  %-16s %-11s %10.3f %12llu %10.3f %9llu %7.2fx%s%s\n",
                  op.op, mode.name, r.seconds,
                  static_cast<unsigned long long>(r.ios), peak_frac,
                  static_cast<unsigned long long>(r.cache_hits), speedup,
                  r.sorted ? "" : "  [CHECK FAILED]",
                  deterministic ? "" : "  [DETERMINISM FAILED]");
      json.begin_row();
      json.field("op", std::string(op.op));
      json.field("mode", std::string(mode.name));
      json.field("backend", std::string(mode.backend));
      json.field("uring_native", r.uring_native);
      json.field("direct_io", r.direct_io);
      json.field("workers", static_cast<std::uint64_t>(mode.workers));
      json.field("supervised", mode.supervised);
      json.field("worker_retries", r.worker_retries);
      json.field("cache_blocks", static_cast<std::uint64_t>(mode.cache_blocks));
      json.field("cache_hits", r.cache_hits);
      json.field("cache_misses", r.cache_misses);
      json.field("batch_blocks", static_cast<std::uint64_t>(mode.tuning.batch_blocks));
      json.field("queue_depth", static_cast<std::uint64_t>(mode.tuning.queue_depth));
      json.field("async", mode.tuning.async);
      json.field("threads", static_cast<std::uint64_t>(mode.cpu.threads));
      json.field("sort_shards", static_cast<std::uint64_t>(mode.cpu.sort_shards));
      json.field("shards", static_cast<std::uint64_t>(mode.shards));
      json.field("stripe_blocks",
                 static_cast<std::uint64_t>(mode.shards > 0
                                                ? mode.stripe_blocks
                                                : std::size_t{0}));
      json.field("block_bytes", static_cast<std::uint64_t>(mode.block_bytes));
      json.field("mem_blocks", static_cast<std::uint64_t>(mode.mem_blocks));
      json.field("records", static_cast<std::uint64_t>(cmp_records()));
      json.field("seconds", r.seconds);
      json.field("ios", r.ios);
      json.field("peak_bytes", r.peak);
      json.field("checksum", r.checksum);
      json.field("speedup_vs_sync", speedup);
      json.field_json("passes", r.passes_json);
      json.end_row();
    }
  }
  // The service legs ride in the same trajectory entry: one bench run, one
  // labelled snapshot of both the batch ops and the resident server.
  run_service_bench(json);

  // Append a tagged entry so the trajectory file keeps every run; tag with
  // BENCH_LABEL (e.g. "pr4") when set, "dev" otherwise.
  const char* label = std::getenv("BENCH_LABEL");
  if (label == nullptr || *label == '\0') label = "dev";
  const char* out = "BENCH_wallclock.json";
  if (!json.append_entry(out, label)) {
    std::fprintf(stderr, "warning: could not write %s\n", out);
  } else {
    std::printf("# appended entry '%s' to %s\n", label, out);
  }
}

// ---------------------------------------------------------------------------
// Part 2: the original 4 KiB-geometry microbenches.
// ---------------------------------------------------------------------------

constexpr std::size_t kBlockBytes = 4096;
constexpr std::size_t kMemBlocks = 64;

void BM_FileScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("scan"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 1);
  auto data = materialize<Record>(ctx, host);
  for (auto _ : state) {
    StreamReader<Record> r(data);
    std::uint64_t sum = 0;
    while (!r.done()) sum += r.next().key;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FileScan)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileExternalSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("sort"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 2);
  auto data = materialize<Record>(ctx, host);
  for (auto _ : state) {
    auto sorted = external_sort<Record>(ctx, data);
    benchmark::DoNotOptimize(sorted.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FileExternalSort)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileExternalSortAsync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("sorta"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_io_tuning(
      IoTuning{.batch_blocks = 8, .queue_depth = 1, .async = true});
  auto host = make_workload(Workload::kUniform, n, 2);
  auto data = materialize<Record>(ctx, host);
  for (auto _ : state) {
    auto sorted = external_sort<Record>(ctx, data);
    benchmark::DoNotOptimize(sorted.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FileExternalSortAsync)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileSplittersRight(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("right"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 3);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 16, .b = n};
  for (auto _ : state) {
    auto s = approx_splitters<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_FileSplittersRight)->Arg(1 << 18)->Arg(1 << 20);

void BM_FileSplittersTwoSided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("two"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 4);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 64, .b = n / 8};
  for (auto _ : state) {
    auto s = approx_splitters<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_FileSplittersTwoSided)->Arg(1 << 18)->Arg(1 << 20);

void BM_FilePartitioningLeft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FileBlockDevice dev(bench_path("pleft"), kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  auto host = make_workload(Workload::kUniform, n, 5);
  auto data = materialize<Record>(ctx, host);
  const ApproxSpec spec{.k = 64, .a = 0, .b = n / 8};
  for (auto _ : state) {
    auto r = approx_partitioning<Record>(ctx, data, spec);
    benchmark::DoNotOptimize(r.bounds.size());
  }
}
BENCHMARK(BM_FilePartitioningLeft)->Arg(1 << 18)->Arg(1 << 20);

}  // namespace
}  // namespace emsplit

int main(int argc, char** argv) {
  emsplit::run_mode_comparison();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E16 — why EM algorithms manage their own buffers: LRU paging vs explicit
// streaming.
//
// The PagedArray substrate presents the disk as demand-paged virtual memory
// (what mmap or a naive buffer pool gives you).  This bench measures three
// access patterns against their explicit-EM counterparts:
//
//   * sequential aggregate  — paging is FINE (equal to the scan),
//   * in-place quicksort    — paging pays the fan-out penalty: quicksort's
//     partition passes are sequential, so it does not thrash outright, but
//     it recurses with fan-out 2 and therefore makes log2(N/M) passes where
//     the merge sort makes log_{M/B}(N/M) — the measured blowup is almost
//     exactly log2(M/B),
//   * point lookups, sorted — paging is fine again (few blocks per probe).
//
// The lesson is the founding premise of the EM model: I/O-efficiency comes
// from the algorithm's structure (fan-out Θ(M/B)), not from caching.
#include "bench_util.hpp"

#include "em/paged_array.hpp"
#include "util/rng.hpp"

#include <algorithm>

namespace emsplit::bench {
namespace {

/// Hoare-partition quicksort over a paged array (records accessed through
/// get/set; the pool does the I/O).  Depth-limited to keep worst cases off
/// the stack; the point is the fault pattern, not the pivot policy.
void paged_quicksort(PagedArray<Record>& arr, std::size_t lo, std::size_t hi) {
  while (hi - lo > 32) {
    const Record pivot = arr.get(lo + (hi - lo) / 2);
    std::size_t i = lo, j = hi - 1;
    while (i <= j) {
      while (arr.get(i) < pivot) ++i;
      while (pivot < arr.get(j)) --j;
      if (i <= j) {
        const Record a = arr.get(i), b = arr.get(j);
        arr.set(i, b);
        arr.set(j, a);
        ++i;
        if (j-- == 0) break;
      }
    }
    if (j + 1 - lo < hi - i) {  // recurse small side, loop the large one
      if (j + 1 > lo) paged_quicksort(arr, lo, j + 1);
      lo = i;
    } else {
      if (hi > i) paged_quicksort(arr, i, hi);
      hi = j + 1;
    }
  }
  // Insertion sort for the tail keeps faults local.
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const Record v = arr.get(i);
    std::size_t j = i;
    while (j > lo && v < arr.get(j - 1)) {
      arr.set(j, arr.get(j - 1));
      --j;
    }
    arr.set(j, v);
  }
}

void run() {
  const Geometry g{.block_bytes = 4096, .mem_blocks = 16};
  print_header("E16: LRU paging vs explicit EM algorithms",
               "paging matches scans; paged quicksort pays log2 vs log_{M/B} passes", g);
  const std::size_t n = 1u << 18;  // quicksort-through-a-pager is slow: keep N modest
  std::printf("# N = %zu\n", n);
  print_columns({"pattern", "paged_ios", "explicit", "blowup"});

  Env env(g);
  auto host = make_workload(Workload::kUniform, n, 616, env.b());
  auto input = materialize<Record>(env.ctx, host);
  const std::size_t frames = env.m() / env.b() / 2;  // half of memory as pool

  {
    // Sequential aggregate.
    auto vec = materialize<Record>(env.ctx, host);
    std::uint64_t paged = 0, streamed = 0;
    {
      PagedArray<Record> arr(vec, frames);
      paged = measure(env, [&] {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n; ++i) sum += arr.get(i).key;
        if (sum == 42) std::printf("!");
      });
    }
    streamed = measure(env, [&] {
      StreamReader<Record> r(input);
      std::uint64_t sum = 0;
      while (!r.done()) sum += r.next().key;
      if (sum == 42) std::printf("!");
    });
    std::printf("  %-24s", "sequential aggregate");
    print_row({static_cast<double>(paged), static_cast<double>(streamed),
               static_cast<double>(paged) / static_cast<double>(streamed)});
  }
  {
    // Sorting.
    auto vec = materialize<Record>(env.ctx, host);
    std::uint64_t paged = 0;
    {
      PagedArray<Record> arr(vec, frames);
      paged = measure(env, [&] { paged_quicksort(arr, 0, n); });
    }
    const std::uint64_t merge = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input);
    });
    std::printf("  %-24s", "sort");
    print_row({static_cast<double>(paged), static_cast<double>(merge),
               static_cast<double>(paged) / static_cast<double>(merge)});
  }
  {
    // Point lookups on sorted data (binary search through the pager vs the
    // information-theoretic floor of blocks touched).
    auto sorted = external_sort<Record>(env.ctx, input);
    std::uint64_t paged = 0;
    {
      PagedArray<Record> arr(sorted, frames);
      paged = measure(env, [&] {
        SplitMix64 rng(9);
        for (int q = 0; q < 200; ++q) {
          const Record probe{rng.next_below(4 * n + 1), 0};
          std::size_t lo = 0, hi = n;
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (arr.get(mid) < probe) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
        }
      });
    }
    const double floor = 200.0 * std::log2(static_cast<double>(n) /
                                           static_cast<double>(env.b()));
    std::printf("  %-24s", "200 binary searches");
    print_row({static_cast<double>(paged), floor,
               static_cast<double>(paged) / floor});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

// E17 — sorting-substrate ablation: merge sort (chunk runs), merge sort
// (replacement-selection runs), distribution sort.
//
// All three are Θ((N/B) lg_{M/B}(N/B)); the constants and the
// workload-sensitivity differ.  Replacement selection shines on inputs with
// pre-existing order (one giant run on sorted data); distribution sort
// rides the multi-partition machinery and inherits its constants.  The
// baseline all experiments use is the chunk-run merge sort.
#include "bench_util.hpp"

#include "sort/distribution_sort.hpp"

namespace emsplit::bench {
namespace {

void run() {
  const Geometry g{.block_bytes = 4096, .mem_blocks = 8};
  print_header("E17: sorting-substrate ablation",
               "merge (chunk runs) vs merge (snow-plow runs) vs distribution",
               g);
  const std::size_t n = 1u << 20;
  std::printf("# N = %zu\n", n);
  print_columns({"workload", "merge_chunk", "merge_snowplow", "distribution"});

  for (const Workload w :
       {Workload::kUniform, Workload::kSorted, Workload::kReverse,
        Workload::kOrganPipe, Workload::kZipfian}) {
    Env env(g);
    auto host = make_workload(w, n, 1717, env.b());
    auto input = materialize<Record>(env.ctx, host);

    const auto chunk = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input);
      if (!is_sorted_em(s)) std::printf("!! chunk merge failed\n");
    });
    const auto snow = measure(env, [&] {
      auto s = external_sort<Record>(env.ctx, input, std::less<Record>(),
                                     RunStrategy::kReplacementSelection);
      if (!is_sorted_em(s)) std::printf("!! snow-plow merge failed\n");
    });
    const auto dist = measure(env, [&] {
      auto s = distribution_sort<Record>(env.ctx, input);
      if (!is_sorted_em(s)) std::printf("!! distribution failed\n");
    });
    std::printf("  %-14s", to_string(w).c_str());
    print_row({static_cast<double>(chunk), static_cast<double>(snow),
               static_cast<double>(dist)});
  }
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

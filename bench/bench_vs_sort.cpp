// E9 — everything vs the sort baseline: who wins, by what factor, where the
// gap closes.
//
// The paper's practical pitch in one table: for each problem variant we run
// the specialized algorithm and the sort-everything baseline on identical
// inputs and report the win factor.  Expected shape: large wins for
// right-grounded splitters (sublinear), solid wins for loose [a, b], and
// convergence toward 1x as [a, b] tightens to exact balance (where the
// problems genuinely cost as much as multi-partition).
#include "bench_util.hpp"

namespace emsplit::bench {
namespace {

struct Row {
  const char* label;
  std::uint64_t fast;
  std::uint64_t base;
};

void run() {
  const Geometry g{.block_bytes = 4096, .mem_blocks = 8};  // N >> M, M/B = 8
  Env env(g);
  const std::size_t n = 1u << 21;
  const std::uint64_t k = 64;
  auto host = make_workload(Workload::kUniform, n, 8086, env.b());
  auto input = materialize<Record>(env.ctx, host);

  print_header("E9: specialized algorithms vs the sort baseline",
               "win = sort_ios / specialized_ios per Table-1 row", g);
  std::printf("# N = %zu, K = %llu\n", n, static_cast<unsigned long long>(k));
  print_columns({"case", "fast_ios", "sort_ios", "win"});

  std::vector<Row> rows;
  auto run_case = [&](const char* label, const ApproxSpec& spec,
                      bool partitioning) {
    std::uint64_t fast = 0, base = 0;
    if (partitioning) {
      fast = measure(env, [&] {
        auto r = approx_partitioning<Record>(env.ctx, input, spec);
        auto c = verify_partitioning<Record>(input, r.data, r.bounds, spec);
        if (!c.ok) std::printf("!! INVALID %s: %s\n", label, c.reason.c_str());
      });
      base = measure(env, [&] {
        auto r = sort_partitioning<Record>(env.ctx, input, spec);
      });
    } else {
      fast = measure(env, [&] {
        auto s = approx_splitters<Record>(env.ctx, input, spec);
        auto c = verify_splitters<Record>(input, s, spec);
        if (!c.ok) std::printf("!! INVALID %s: %s\n", label, c.reason.c_str());
      });
      base = measure(env, [&] {
        auto s = sort_splitters<Record>(env.ctx, input, spec);
      });
    }
    std::printf("  %-34s", label);
    print_row({static_cast<double>(fast), static_cast<double>(base),
               static_cast<double>(base) / static_cast<double>(fast)});
  };

  std::printf("# splitters:\n");
  run_case("splitters right (a=16)", {.k = k, .a = 16, .b = n}, false);
  run_case("splitters left  (b=N/8)", {.k = k, .a = 0, .b = n / 8}, false);
  run_case("splitters 2-sided loose", {.k = k, .a = 64, .b = n / 8}, false);
  run_case("splitters 2-sided tight", {.k = k, .a = n / k - 64, .b = n / k + 64},
           false);
  run_case("splitters exact (a=b=N/K)", {.k = k, .a = n / k, .b = n / k},
           false);
  std::printf("# partitioning:\n");
  run_case("partitioning right (a=16)", {.k = k, .a = 16, .b = n}, true);
  run_case("partitioning left  (b=N/8)", {.k = k, .a = 0, .b = n / 8}, true);
  run_case("partitioning 2-sided loose", {.k = k, .a = 64, .b = n / 8}, true);
  run_case("partitioning exact (a=b=N/K)", {.k = k, .a = n / k, .b = n / k},
           true);
}

}  // namespace
}  // namespace emsplit::bench

int main() { emsplit::bench::run(); }

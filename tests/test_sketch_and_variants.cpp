// Tests for the sampled-splitters variant, the quantile sketch baseline and
// the duplicate-key adapter.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/quantile_sketch.hpp"
#include "select/multi_select.hpp"
#include "select/sampled_splitters.hpp"
#include "test_helpers.hpp"
#include "util/distinct_adapter.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

// ---------------------------------------------------------------------------
// sampled_splitters
// ---------------------------------------------------------------------------

class SampledSplittersTest : public testing::TestWithParam<Workload> {};

TEST_P(SampledSplittersTest, OneScanAndReasonableBuckets) {
  EmEnv env(256, 16);
  const std::size_t n = 40000;
  auto host = make_workload(GetParam(), n, 5, env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto result = sampled_splitters<Record>(env.ctx, input, /*seed=*/77);
  // Exactly one read-only scan.
  EXPECT_EQ(env.dev.stats().writes, 0u);
  EXPECT_EQ(env.dev.stats().reads,
            (n + env.ctx.block_records<Record>() - 1) /
                env.ctx.block_records<Record>());
  EXPECT_TRUE(std::is_sorted(result.splitters.begin(), result.splitters.end()));
  EXPECT_LE(result.splitters.size(), env.ctx.mem_records<Record>() / 4);

  auto sorted_ref = testutil::sorted_copy(host);
  const auto sizes = testutil::bucket_sizes(sorted_ref, result.splitters);
  const auto max_bucket = *std::max_element(sizes.begin(), sizes.end());
  // The whp bound holds on every workload we ship (seeds are fixed).
  EXPECT_LE(max_bucket, result.bucket_bound) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, SampledSplittersTest,
                         testing::ValuesIn(all_workloads()),
                         [](const auto& ti) { return to_string(ti.param); });

TEST(SampledSplittersTest, DeterministicInSeed) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 10000, 6);
  auto input = materialize<Record>(env.ctx, host);
  auto a = sampled_splitters<Record>(env.ctx, input, 1);
  auto b = sampled_splitters<Record>(env.ctx, input, 1);
  auto c = sampled_splitters<Record>(env.ctx, input, 2);
  EXPECT_EQ(a.splitters, b.splitters);
  EXPECT_NE(a.splitters, c.splitters);
}

TEST(SampledSplittersTest, TinyInputsAndEmpty) {
  EmEnv env(256, 32);
  {
    EmVector<Record> empty(env.ctx, 0);
    auto r = sampled_splitters<Record>(env.ctx, empty, 3);
    EXPECT_TRUE(r.splitters.empty());
  }
  auto host = make_workload(Workload::kUniform, 10, 7);
  auto input = materialize<Record>(env.ctx, host);
  auto r = sampled_splitters<Record>(env.ctx, input, 3);
  EXPECT_EQ(r.splitters.size(), 10u);  // reservoir keeps everything
  EXPECT_EQ(r.bucket_bound, 1u);
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

TEST(QuantileSketchTest, ExactWhileEverythingFitsOneBuffer) {
  EmEnv env(256, 64);
  QuantileSketch<Record> sketch(env.ctx, 256);
  std::vector<Record> host;
  for (std::size_t i = 0; i < 200; ++i) {
    host.push_back(Record{.key = 1000 - i, .payload = i});
    sketch.insert(host.back());
  }
  auto sorted_ref = testutil::sorted_copy(host);
  for (std::size_t i = 0; i < 200; i += 17) {
    EXPECT_EQ(sketch.estimate_rank(sorted_ref[i]), i + 1);
  }
}

TEST(QuantileSketchTest, RankErrorBoundedAfterCollapses) {
  EmEnv env(4096, 64);
  const std::size_t n = 200000;
  auto host = make_workload(Workload::kUniform, n, 8);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto sketch = sketch_vector<Record>(env.ctx, input);
  // One scan, no writes.
  EXPECT_EQ(env.dev.stats().writes, 0u);
  ASSERT_EQ(sketch.count(), n);

  auto sorted_ref = testutil::sorted_copy(host);
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < n; i += n / 97) {
    const auto est = sketch.estimate_rank(sorted_ref[i]);
    const auto real = static_cast<std::uint64_t>(i + 1);
    worst = std::max(worst, est > real ? est - real : real - est);
  }
  // Generous envelope: a few percent of N for this memory/size ratio.
  EXPECT_LE(worst, n / 20) << "worst rank error " << worst;
}

TEST(QuantileSketchTest, QuantilesAreRoughlyEquiDepth) {
  EmEnv env(4096, 64);
  const std::size_t n = 100000;
  auto host = make_workload(Workload::kZipfian, n, 9, 256, 50000);
  auto input = materialize<Record>(env.ctx, host);
  auto sketch = sketch_vector<Record>(env.ctx, input);
  const std::uint64_t parts = 20;
  auto qs = sketch.quantiles(parts);
  ASSERT_EQ(qs.size(), parts - 1);
  EXPECT_TRUE(std::is_sorted(qs.begin(), qs.end()));
  auto sorted_ref = testutil::sorted_copy(host);
  auto sizes = testutil::bucket_sizes(sorted_ref, qs);
  for (const auto s : sizes) {
    EXPECT_GE(s, n / parts / 3);
    EXPECT_LE(s, 3 * n / parts);
  }
}

TEST(QuantileSketchTest, RejectsBadParameters) {
  EmEnv env(256, 16);
  EXPECT_THROW(QuantileSketch<Record>(env.ctx, 1), std::invalid_argument);
  QuantileSketch<Record> s(env.ctx, 8);
  s.insert(Record{.key = 1, .payload = 0});
  EXPECT_THROW((void)s.quantiles(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DistinctAdapter: selection and splitters over heavy duplicates of a type
// whose own comparator has ties (raw uint64_t).
// ---------------------------------------------------------------------------

TEST(DistinctAdapterTest, TagUntagRoundTrip) {
  EmEnv env(256, 16);
  std::vector<std::uint64_t> host{5, 5, 5, 1, 1, 9};
  auto input = materialize<std::uint64_t>(env.ctx, host);
  auto tagged = tag_records<std::uint64_t>(env.ctx, input);
  ASSERT_EQ(tagged.size(), host.size());
  auto back = untag_records<std::uint64_t>(env.ctx, tagged);
  EXPECT_EQ(to_host(back), host);
  auto th = to_host(tagged);
  for (std::size_t i = 0; i < th.size(); ++i) {
    EXPECT_EQ(th[i].tag, i);
    EXPECT_EQ(th[i].value, host[i]);
  }
}

TEST(DistinctAdapterTest, SelectionOnMassiveDuplicates) {
  EmEnv env(256, 96);
  const std::size_t n = 20000;
  SplitMix64 rng(11);
  std::vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.next_below(3);  // only 3 distinct keys!
  auto input = materialize<std::uint64_t>(env.ctx, host);
  auto tagged = tag_records<std::uint64_t>(env.ctx, input);

  auto sorted_ref = host;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  using TL = TaggedLess<std::uint64_t>;
  for (const std::uint64_t r : {1ULL, 777ULL, 10000ULL, 19999ULL}) {
    const auto got = multi_select<Tagged<std::uint64_t>, TL>(
        env.ctx, tagged, {r}, TL{});
    EXPECT_EQ(got[0].value, sorted_ref[r - 1]) << "rank " << r;
  }
}

TEST(DistinctAdapterTest, AllEqualRecords) {
  // The degenerate multiset: every record identical.  Without tags this
  // would never shrink; with tags it is a plain total order.
  EmEnv env(256, 96);
  std::vector<std::uint64_t> host(5000, 42);
  auto input = materialize<std::uint64_t>(env.ctx, host);
  auto tagged = tag_records<std::uint64_t>(env.ctx, input);
  using TL = TaggedLess<std::uint64_t>;
  const auto got = multi_select<Tagged<std::uint64_t>, TL>(
      env.ctx, tagged, {1, 2500, 5000}, TL{});
  for (const auto& g : got) EXPECT_EQ(g.value, 42u);
  // Stable semantics: rank i is the record from input position i-1.
  EXPECT_EQ(got[0].tag, 0u);
  EXPECT_EQ(got[1].tag, 2499u);
  EXPECT_EQ(got[2].tag, 4999u);
}

}  // namespace
}  // namespace emsplit

// Tests for the top-K app and the sizes-based multi-partition interface.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/top_k.hpp"
#include "partition/multi_partition.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(TopKTest, LargestAndSmallestMatchOracle) {
  EmEnv env(256, 16);
  const std::size_t n = 20000;
  auto host = make_workload(Workload::kUniform, n, 13);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);

  for (const std::uint64_t k : {1ULL, 7ULL, 100ULL, 5000ULL, 20000ULL}) {
    auto top = to_host(top_k_largest<Record>(env.ctx, input, k));
    std::sort(top.begin(), top.end());
    const std::vector<Record> expect_top(
        sorted_ref.end() - static_cast<std::ptrdiff_t>(k), sorted_ref.end());
    EXPECT_EQ(top, expect_top) << "largest k=" << k;

    auto bot = to_host(top_k_smallest<Record>(env.ctx, input, k));
    std::sort(bot.begin(), bot.end());
    const std::vector<Record> expect_bot(
        sorted_ref.begin(), sorted_ref.begin() + static_cast<std::ptrdiff_t>(k));
    EXPECT_EQ(bot, expect_bot) << "smallest k=" << k;
  }
}

TEST(TopKTest, LinearIosIndependentOfK) {
  EmEnv env(256, 16);
  const std::size_t n = 100000;
  auto host = make_workload(Workload::kUniform, n, 14);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto a = top_k_largest<Record>(env.ctx, input, 10);
  const auto small_k = env.dev.stats().total();
  env.dev.reset_stats();
  auto b = top_k_largest<Record>(env.ctx, input, n / 2);
  const auto big_k = env.dev.stats().total();
  // Cost is dominated by the selection + filter scans, not K: allow the
  // larger output write plus selection jitter (the intermixed instance size
  // depends on which bucket the rank lands in).
  const auto scan = n / env.ctx.block_records<Record>();
  EXPECT_LE(small_k, 10 * scan);
  EXPECT_LE(big_k, small_k + 2 * scan);
}

TEST(TopKTest, RejectsBadK) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 15);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)top_k_largest<Record>(env.ctx, input, 0),
               std::invalid_argument);
  EXPECT_THROW((void)top_k_largest<Record>(env.ctx, input, 101),
               std::invalid_argument);
}

TEST(MultiPartitionSizesTest, SizesInterfaceMatchesRanks) {
  EmEnv env(256, 16);
  const std::size_t n = 10000;
  auto host = make_workload(Workload::kUniform, n, 16);
  auto input = materialize<Record>(env.ctx, host);
  auto by_sizes =
      multi_partition_sizes<Record>(env.ctx, input, {1000, 2500, 4000});
  EXPECT_EQ(by_sizes.bounds,
            (std::vector<std::uint64_t>{0, 1000, 3500, 7500, n}));
  auto sorted_ref = testutil::sorted_copy(host);
  auto data = to_host(by_sizes.data);
  for (std::size_t i = 0; i + 1 < by_sizes.bounds.size(); ++i) {
    std::vector<Record> part(
        data.begin() + static_cast<std::ptrdiff_t>(by_sizes.bounds[i]),
        data.begin() + static_cast<std::ptrdiff_t>(by_sizes.bounds[i + 1]));
    std::sort(part.begin(), part.end());
    const std::vector<Record> expect(
        sorted_ref.begin() + static_cast<std::ptrdiff_t>(by_sizes.bounds[i]),
        sorted_ref.begin() +
            static_cast<std::ptrdiff_t>(by_sizes.bounds[i + 1]));
    EXPECT_EQ(part, expect) << "partition " << i;
  }
}

TEST(MultiPartitionSizesTest, RejectsZeroAndOverflowSizes) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 17);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)multi_partition_sizes<Record>(env.ctx, input, {50, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)multi_partition_sizes<Record>(env.ctx, input, {60, 40}),
               std::invalid_argument);  // sums to n: empty last partition
}

}  // namespace
}  // namespace emsplit

// ShardedBlockDevice: striping is geometry, never output.
//
// The facade's contract (docs/model.md, "Sharded devices and the D-disk
// model"): for any member count D, stripe width, I/O tuning and thread
// count, every algorithm produces bit-identical output and identical
// *logical* IoStats to the same run on a single device — the stripe map
// only decides which member executes each transfer.  On top of that the
// facade must keep per-shard counters that partition its totals exactly,
// pass member faults through with the logical block range attached, and
// honor the whole fault/retry/checksum substrate of PR 3.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/sharded_device.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "select/multi_select.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/record.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 64;   // 4 records per block
constexpr std::size_t kMemBlocks = 256;   // M = 1024 records
constexpr std::size_t kRecords = 4096;    // N/M = 4: real multi-pass runs

std::unique_ptr<ShardedBlockDevice> make_sharded(std::size_t d,
                                                 std::size_t stripe_blocks) {
  std::vector<std::unique_ptr<BlockDevice>> members;
  members.reserve(d);
  for (std::size_t i = 0; i < d; ++i) {
    members.push_back(std::make_unique<MemoryBlockDevice>(kBlockBytes));
  }
  return std::make_unique<ShardedBlockDevice>(std::move(members),
                                              stripe_blocks);
}

std::vector<Record> workload(std::uint64_t seed) {
  return make_workload(Workload::kUniform, kRecords, seed);
}

// ---------------------------------------------------------------------------
// Placement: the stripe map is RAID-0 — stripe s lives on member s mod D at
// member-local stripe s / D.
// ---------------------------------------------------------------------------

TEST(ShardedDeviceTest, StripePlacementIsRoundRobin) {
  constexpr std::size_t kD = 3;
  constexpr std::size_t kStripe = 2;
  auto dev = make_sharded(kD, kStripe);
  constexpr std::uint64_t kBlocks = 13;  // not a multiple of D * stripe
  const auto range = dev->allocate(kBlocks);
  ASSERT_EQ(range.first, 0u);

  std::vector<std::byte> buf(kBlockBytes);
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    std::memset(buf.data(), static_cast<int>(b + 1), buf.size());
    dev->write(b, buf);
  }

  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    const std::uint64_t stripe = b / kStripe;
    const std::size_t member = stripe % kD;
    const std::uint64_t member_block =
        (stripe / kD) * kStripe + b % kStripe;
    ASSERT_LT(member_block, dev->member(member).size_blocks());
    dev->member(member).read(member_block, buf);
    EXPECT_EQ(std::to_integer<int>(buf[0]), static_cast<int>(b + 1))
        << "logical block " << b;
    EXPECT_EQ(std::to_integer<int>(buf[kBlockBytes - 1]),
              static_cast<int>(b + 1));
  }

  // Growth is balanced: member i holds ceil((stripes - i) / D) stripes.
  const std::uint64_t stripes = (kBlocks + kStripe - 1) / kStripe;
  for (std::size_t i = 0; i < kD; ++i) {
    const std::uint64_t my_stripes = (stripes + kD - 1 - i) / kD;
    EXPECT_EQ(dev->member(i).size_blocks(), my_stripes * kStripe)
        << "member " << i;
  }
}

// ---------------------------------------------------------------------------
// The determinism matrix: D x tuning x threads, for sort / multi-partition /
// multi-select, against a single MemoryBlockDevice at the same tuning.
// ---------------------------------------------------------------------------

struct AlgoResult {
  IoStats ios;                 // logical, retry-free
  std::uint64_t checksum = 0;  // FNV-1a over the output bytes
};

std::uint64_t fnv_records(const std::vector<Record>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Record& r : v) {
    h = (h ^ r.key) * 1099511628211ull;
    h = (h ^ r.payload) * 1099511628211ull;
  }
  return h;
}

enum class Algo { kSort, kPartition, kSelect };

AlgoResult run_algo(BlockDevice& dev, const IoTuning& tuning,
                    std::size_t threads, Algo algo) {
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_io_tuning(tuning);
  ctx.set_cpu_tuning(
      CpuTuning{threads, threads > 1 ? std::size_t{8} : std::size_t{1}});
  const auto host = workload(7);
  auto data = materialize<Record>(ctx, std::span<const Record>(host));
  dev.reset_stats();
  ctx.budget().reset_peak();
  AlgoResult res;
  switch (algo) {
    case Algo::kSort: {
      auto sorted = external_sort<Record>(ctx, data);
      res.checksum = fnv_records(to_host(sorted));
      break;
    }
    case Algo::kPartition: {
      std::vector<std::uint64_t> ranks;
      for (std::uint64_t r = 1; r < 16; ++r) ranks.push_back(r * kRecords / 16);
      auto part = multi_partition<Record>(ctx, data, ranks);
      res.checksum = fnv_records(to_host(part.data));
      break;
    }
    case Algo::kSelect: {
      std::vector<std::uint64_t> ranks;
      for (std::uint64_t r = 13; r < kRecords; r += 17) ranks.push_back(r);
      auto answers = multi_select<Record>(ctx, data, ranks);
      res.checksum = fnv_records(answers);
      break;
    }
  }
  EXPECT_LE(ctx.budget().peak(), ctx.budget().capacity());
  res.ios = dev.stats().base();
  return res;
}

TEST(ShardedDeterminismTest, MatrixMatchesSingleDevice) {
  struct Tuning {
    const char* name;
    IoTuning io;
  };
  const Tuning tunings[] = {
      {"sync", IoTuning{1, 0, false}},
      {"batched", IoTuning{8, 0, false}},
      {"async", IoTuning{4, 1, true}},
  };
  const std::size_t thread_counts[] = {1, 4};
  const Algo algos[] = {Algo::kSort, Algo::kPartition, Algo::kSelect};

  for (const Algo algo : algos) {
    for (const Tuning& t : tunings) {
      for (const std::size_t threads : thread_counts) {
        MemoryBlockDevice base(kBlockBytes);
        const AlgoResult want = run_algo(base, t.io, threads, algo);
        for (const std::size_t d : {1u, 2u, 3u, 4u}) {
          auto dev = make_sharded(d, /*stripe_blocks=*/4);
          const AlgoResult got = run_algo(*dev, t.io, threads, algo);
          EXPECT_EQ(got.checksum, want.checksum)
              << "algo " << static_cast<int>(algo) << " tuning " << t.name
              << " threads " << threads << " D " << d;
          EXPECT_EQ(got.ios, want.ios)
              << "algo " << static_cast<int>(algo) << " tuning " << t.name
              << " threads " << threads << " D " << d;

          // Per-shard counters partition the facade totals exactly.
          const auto shards = dev->shard_stats();
          ASSERT_EQ(shards.size(), d);
          IoStats sum;
          for (const IoStats& s : shards) sum += s;
          const IoStats total = dev->stats();
          EXPECT_EQ(sum.reads, total.reads);
          EXPECT_EQ(sum.writes, total.writes);
          EXPECT_EQ(sum.retries, total.retries);
        }
      }
    }
  }
}

// Serial vs parallel member submission is pure execution: identical output,
// identical logical and per-shard accounting.  (The constructor picks the
// default from the host's core count, so both paths are forced explicitly.)
TEST(ShardedDeterminismTest, ParallelSubmissionMatchesSerial) {
  const IoTuning tuning{4, 1, true};
  auto serial_dev = make_sharded(4, 4);
  serial_dev->set_parallel_io(false);
  ASSERT_FALSE(serial_dev->parallel_io());
  const AlgoResult serial = run_algo(*serial_dev, tuning, 1, Algo::kSort);
  const auto serial_shards = serial_dev->shard_stats();

  auto parallel_dev = make_sharded(4, 4);
  parallel_dev->set_parallel_io(true);
  ASSERT_TRUE(parallel_dev->parallel_io());
  const AlgoResult parallel = run_algo(*parallel_dev, tuning, 1, Algo::kSort);

  EXPECT_EQ(parallel.checksum, serial.checksum);
  EXPECT_EQ(parallel.ios, serial.ios);
  EXPECT_EQ(parallel_dev->shard_stats(), serial_shards);
}

// ---------------------------------------------------------------------------
// Observability: every PassTrace row on a sharded run carries per-shard
// deltas that partition the row's totals, and a balance ratio >= 1.
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, PassTraceRowsPartitionTotals) {
  auto dev = make_sharded(3, 4);
  Context ctx(*dev, kMemBlocks * kBlockBytes);
  PassTraceLog trace;
  ctx.set_pass_trace(&trace);
  const auto host = workload(11);
  auto data = materialize<Record>(ctx, std::span<const Record>(host));
  auto sorted = external_sort<Record>(ctx, data);
  ASSERT_EQ(sorted.size(), kRecords);

  ASSERT_FALSE(trace.rows().empty());
  for (const PassTrace& row : trace.rows()) {
    ASSERT_EQ(row.shard_io.size(), 3u) << row.pass;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t max_total = 0;
    for (const IoStats& s : row.shard_io) {
      reads += s.reads;
      writes += s.writes;
      max_total = std::max(max_total, s.total());
    }
    EXPECT_EQ(reads, row.io.reads) << row.pass;
    EXPECT_EQ(writes, row.io.writes) << row.pass;
    EXPECT_GE(row.balance, 1.0) << row.pass;
    if (row.io.total() > 0) {
      // balance = max * D / sum, so max I/Os reconstructs from the row.
      EXPECT_NEAR(row.balance,
                  static_cast<double>(max_total) * 3.0 /
                      static_cast<double>(row.io.total()),
                  1e-9)
          << row.pass;
    }
    // The JSON-lines form of the row is exactly what --trace=FILE writes.
    const std::string json = pass_trace_json(row);
    EXPECT_NE(json.find("\"shards\":[{"), std::string::npos);
    EXPECT_NE(json.find("\"balance\":"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Fault pass-through.
// ---------------------------------------------------------------------------

// A transient fault armed on one member is absorbed by the facade-forwarded
// retry policy; the retry is charged to the faulting shard alone and the
// run's base counts are unchanged.
TEST(ShardedFaultTest, MemberTransientFaultRetriesOnThatShard) {
  auto sort_on = [](ShardedBlockDevice& dev, bool arm) {
    Context ctx(dev, kMemBlocks * kBlockBytes);
    const auto host = workload(7);
    auto data = materialize<Record>(ctx, std::span<const Record>(host));
    dev.reset_stats();
    if (arm) {
      // Armed after materialize so the fault fires inside the sort passes
      // being accounted, not during data loading.
      dev.set_fault_policy(FaultPolicy{.max_retries = 3});
      dev.member(1).arm_fault(
          FaultSchedule::fail_then_succeed(/*remaining=*/50, /*times=*/2));
    }
    auto sorted = external_sort<Record>(ctx, data);
    return fnv_records(to_host(sorted));
  };

  auto ref_dev = make_sharded(3, 4);
  const std::uint64_t want = sort_on(*ref_dev, false);
  const IoStats want_ios = ref_dev->stats().base();

  auto dev = make_sharded(3, 4);
  const std::uint64_t got = sort_on(*dev, true);
  EXPECT_EQ(got, want);
  // base() strips retries: the re-issued blocks never double-count.
  EXPECT_EQ(dev->stats().base(), want_ios);

  const auto shards = dev->shard_stats();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].retries, 0u);
  EXPECT_EQ(shards[1].retries, 2u);
  EXPECT_EQ(shards[2].retries, 0u);
  EXPECT_EQ(dev->stats().retries, 2u);
}

// A transient fault armed on the *facade itself* (a logical fault with no
// member of its own) is retried by the facade's policy and *attributed*:
// locate() charges each retry to the shard owning the first block of the
// faulted request, so the per-shard rows keep partitioning the facade
// totals exactly — retries included.
TEST(ShardedFaultTest, FacadeArmedFaultAttributesRetryToOwningShard) {
  auto sort_on = [](ShardedBlockDevice& dev, bool arm) {
    Context ctx(dev, kMemBlocks * kBlockBytes);
    const auto host = workload(9);
    auto data = materialize<Record>(ctx, std::span<const Record>(host));
    dev.reset_stats();
    if (arm) {
      dev.set_fault_policy(FaultPolicy{.max_retries = 3});
      dev.arm_fault(
          FaultSchedule::fail_then_succeed(/*remaining=*/40, /*times=*/2));
    }
    auto sorted = external_sort<Record>(ctx, data);
    dev.disarm_fault();
    return fnv_records(to_host(sorted));
  };

  auto ref_dev = make_sharded(3, 4);
  const std::uint64_t want = sort_on(*ref_dev, false);
  const IoStats want_ios = ref_dev->stats().base();

  auto dev = make_sharded(3, 4);
  const std::uint64_t got = sort_on(*dev, true);
  EXPECT_EQ(got, want);
  // base() strips retries: the re-issued blocks never double-count.
  EXPECT_EQ(dev->stats().base(), want_ios);

  EXPECT_EQ(dev->stats().retries, 2u);
  const auto shards = dev->shard_stats();
  ASSERT_EQ(shards.size(), 3u);
  IoStats sum;
  for (const IoStats& s : shards) sum += s;
  EXPECT_EQ(sum.reads, dev->stats().reads);
  EXPECT_EQ(sum.writes, dev->stats().writes);
  EXPECT_EQ(sum.retries, dev->stats().retries);
  // Both retries hit the same logical request, so exactly one shard's row
  // carries the attributed pair.
  std::size_t carrying = 0;
  for (const IoStats& s : shards) carrying += s.retries != 0 ? 1 : 0;
  EXPECT_EQ(carrying, 1u);
}

// A permanent member fault escapes the facade as a DeviceFault that names
// the shard and carries the *logical* request range.
TEST(ShardedFaultTest, MemberPermanentFaultSurfacesLogicalRange) {
  auto dev = make_sharded(2, 2);
  const auto range = dev->allocate(8);
  std::vector<std::byte> buf(kBlockBytes);
  for (std::uint64_t b = 0; b < 8; ++b) dev->write(range.first + b, buf);

  dev->member(1).arm_fault(FaultSchedule::one_shot_after(0));
  std::vector<std::byte> out(4 * kBlockBytes);
  try {
    // Blocks [0, 4): stripes 0 (member 0) and 1 (member 1) — the member-1
    // sub-request faults on its first transfer.
    dev->read_blocks(0, 4, out);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& f) {
    EXPECT_FALSE(f.transient());
    EXPECT_NE(std::string(f.what()).find("shard 1"), std::string::npos)
        << f.what();
    EXPECT_STREQ(f.op(), "read_blocks");
    EXPECT_EQ(f.first_block(), 0u);
    EXPECT_EQ(f.block_count(), 4u);
    EXPECT_LE(f.completed(), 4u);
  }

  // The injector disarmed after firing: the same logical request now
  // succeeds — the facade state survived the member fault.
  EXPECT_NO_THROW(dev->read_blocks(0, 4, out));
}

// Facade-level checksums catch a bit flipped on a member: corrupt_bit routes
// through the stripe map, the next facade read throws CorruptBlock with the
// logical block id.
TEST(ShardedFaultTest, CorruptBitSurfacesThroughFacadeChecksums) {
  auto dev = make_sharded(3, 2);
  dev->set_checksums(true);
  const auto range = dev->allocate(6);
  std::vector<std::byte> buf(kBlockBytes, std::byte{0x5A});
  for (std::uint64_t b = 0; b < 6; ++b) dev->write(range.first + b, buf);

  const BlockId victim = 4;  // stripe 2 -> member 2, local block 0
  dev->corrupt_bit(victim, 17);
  std::vector<std::byte> out(kBlockBytes);
  EXPECT_NO_THROW(dev->read(victim - 1, out));
  try {
    dev->read(victim, out);
    FAIL() << "expected CorruptBlock";
  } catch (const CorruptBlock& c) {
    EXPECT_EQ(c.first_block(), victim);
  }
}

// The retirement invariant behind stats(): facade construction rejects
// member lists that could double-count (different block sizes, pre-used
// devices) so the per-shard partition stays exact by construction.
TEST(ShardedDeviceTest, ConstructorRejectsUnusableMembers) {
  {
    std::vector<std::unique_ptr<BlockDevice>> members;
    EXPECT_THROW(ShardedBlockDevice(std::move(members), 4),
                 std::invalid_argument);
  }
  {
    std::vector<std::unique_ptr<BlockDevice>> members;
    members.push_back(std::make_unique<MemoryBlockDevice>(64));
    members.push_back(std::make_unique<MemoryBlockDevice>(128));
    EXPECT_THROW(ShardedBlockDevice(std::move(members), 4),
                 std::invalid_argument);
  }
  {
    std::vector<std::unique_ptr<BlockDevice>> members;
    members.push_back(std::make_unique<MemoryBlockDevice>(64));
    members.push_back(std::make_unique<MemoryBlockDevice>(64));
    (void)members.front()->allocate(1);
    EXPECT_THROW(ShardedBlockDevice(std::move(members), 4),
                 std::invalid_argument);
  }
  {
    std::vector<std::unique_ptr<BlockDevice>> members;
    members.push_back(std::make_unique<MemoryBlockDevice>(64));
    EXPECT_THROW(ShardedBlockDevice(std::move(members), 0),
                 std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Persistent member sidecars: the facade's checksum table (logical ids)
// partitions by owning member into ".ssums" files on destruction and merges
// back on set_member_sidecars(), so end-to-end verification survives a
// process restart — including corruption that happened while the process
// was down.
// ---------------------------------------------------------------------------

TEST(ShardedSidecarTest, ChecksumsPersistAcrossSessions) {
  constexpr std::size_t kD = 3;
  constexpr std::size_t kStripe = 2;
  constexpr std::uint64_t kBlocks = 12;  // 6 stripes, 4 blocks per member
  std::vector<std::string> paths;
  std::vector<std::string> sidecars;
  for (std::size_t i = 0; i < kD; ++i) {
    paths.push_back(testing::TempDir() + "/ssums_member_" +
                    std::to_string(i) + ".bin");
    sidecars.push_back(paths.back() + ".ssums");
    std::remove(paths.back().c_str());
    std::remove(sidecars.back().c_str());
    std::remove((paths.back() + ".sums").c_str());
  }

  const auto open_session = [&](bool preserve_contents) {
    std::vector<std::unique_ptr<BlockDevice>> members;
    for (std::size_t i = 0; i < kD; ++i) {
      members.push_back(std::make_unique<FileBlockDevice>(
          paths[i], kBlockBytes, /*keep_file=*/true, preserve_contents));
    }
    auto dev =
        std::make_unique<ShardedBlockDevice>(std::move(members), kStripe);
    dev->set_member_sidecars(sidecars, /*preserve=*/true);
    dev->set_checksums(true);
    return dev;
  };

  // Session 1: write a patterned extent, then tear down — the facade
  // destructor persists each member's share of the checksum table.
  {
    auto dev = open_session(/*preserve_contents=*/false);
    const auto range = dev->allocate(kBlocks);
    ASSERT_EQ(range.first, 0u);
    std::vector<std::byte> buf(kBlockBytes);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      std::memset(buf.data(), static_cast<int>(b + 1), buf.size());
      dev->write(b, buf);
    }
  }
  for (const std::string& s : sidecars) {
    std::FILE* f = std::fopen(s.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "missing sidecar " << s;
    std::fclose(f);
  }

  // Session 2: reopen, reload sidecars, re-derive the (deterministic)
  // stripe map — every verified read still passes.
  {
    auto dev = open_session(/*preserve_contents=*/true);
    const auto range = dev->allocate(kBlocks);
    ASSERT_EQ(range.first, 0u);
    std::vector<std::byte> buf(kBlockBytes);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      ASSERT_NO_THROW(dev->read(b, buf)) << "block " << b;
      EXPECT_EQ(buf.front(), std::byte{static_cast<unsigned char>(b + 1)});
    }
  }

  // Corrupt logical block 4 (stripe 2 -> member 2, local block 0) directly
  // in the member file while no process holds it open.
  {
    std::FILE* f = std::fopen(paths[2].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  // Session 3: the persisted sums catch offline corruption on first touch.
  {
    auto dev = open_session(/*preserve_contents=*/true);
    (void)dev->allocate(kBlocks);
    std::vector<std::byte> buf(kBlockBytes);
    EXPECT_NO_THROW(dev->read(3, buf));
    try {
      dev->read(4, buf);
      FAIL() << "expected CorruptBlock from persisted sidecar sums";
    } catch (const CorruptBlock& c) {
      EXPECT_EQ(c.first_block(), 4u);
    }
  }

  for (std::size_t i = 0; i < kD; ++i) {
    std::remove(paths[i].c_str());
    std::remove(sidecars[i].c_str());
    std::remove((paths[i] + ".sums").c_str());
  }
}

// The CLI teardown order on an interrupted run: the checkpoint journal's
// destructor returns its still-owned extents to the device (dropping their
// checksum entries) *before* the device destructs.  An explicit
// flush_member_sidecars() snapshots the table first; the later deallocation
// and destructor must not erase the persisted record.
TEST(ShardedSidecarTest, FlushSurvivesLaterDeallocation) {
  constexpr std::size_t kD = 2;
  constexpr std::size_t kStripe = 2;
  constexpr std::uint64_t kBlocks = 8;
  std::vector<std::string> paths;
  std::vector<std::string> sidecars;
  for (std::size_t i = 0; i < kD; ++i) {
    paths.push_back(testing::TempDir() + "/flushsums_member_" +
                    std::to_string(i) + ".bin");
    sidecars.push_back(paths.back() + ".ssums");
    std::remove(paths.back().c_str());
    std::remove(sidecars.back().c_str());
    std::remove((paths.back() + ".sums").c_str());
  }

  const auto open_session = [&](bool preserve_contents) {
    std::vector<std::unique_ptr<BlockDevice>> members;
    for (std::size_t i = 0; i < kD; ++i) {
      members.push_back(std::make_unique<FileBlockDevice>(
          paths[i], kBlockBytes, /*keep_file=*/true, preserve_contents));
    }
    auto dev =
        std::make_unique<ShardedBlockDevice>(std::move(members), kStripe);
    dev->set_member_sidecars(sidecars, /*preserve=*/true);
    dev->set_checksums(true);
    return dev;
  };

  // Session 1: write, snapshot, then deallocate (the journal-dtor stand-in).
  {
    auto dev = open_session(/*preserve_contents=*/false);
    const auto range = dev->allocate(kBlocks);
    std::vector<std::byte> buf(kBlockBytes);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      std::memset(buf.data(), static_cast<int>(b + 7), buf.size());
      dev->write(b, buf);
    }
    dev->flush_member_sidecars();
    dev->deallocate(range);  // drops every entry from the live table
  }
  for (const std::string& s : sidecars) {
    std::FILE* f = std::fopen(s.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "sidecar erased after flush: " << s;
    std::fclose(f);
  }

  // Session 2: the snapshot is live — reads verify, corruption is caught.
  {
    std::FILE* f = std::fopen(paths[1].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);

    auto dev = open_session(/*preserve_contents=*/true);
    (void)dev->allocate(kBlocks);
    std::vector<std::byte> buf(kBlockBytes);
    EXPECT_NO_THROW(dev->read(0, buf));
    EXPECT_EQ(buf.front(), std::byte{7});
    // Logical block 2 = stripe 1 -> member 1, local block 0 (the flipped
    // byte).
    EXPECT_THROW(dev->read(2, buf), CorruptBlock);
  }

  for (std::size_t i = 0; i < kD; ++i) {
    std::remove(paths[i].c_str());
    std::remove(sidecars[i].c_str());
    std::remove((paths[i] + ".sums").c_str());
  }
}

}  // namespace
}  // namespace emsplit

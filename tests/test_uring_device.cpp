// UringBlockDevice: backend choice is geometry, never output.
//
// The PR-6 contract extends PR-5's: swapping the file backend for the
// io_uring backend (or its positional-I/O fallback) must leave every
// algorithm's output bytes and logical IoStats bit-identical at every
// tuning, thread count, and shard count — the ring only changes *when*
// syscalls happen, never what the device stores or charges.  The matrix
// here races FileBlockDevice against UringBlockDevice across
// sync/batched/async x threads {1,4} x D {1,4}; the remaining tests pin
// down the ring-specific hazards (write-behind ordering, oversized
// transfers, discard draining, persistence, O_DIRECT).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "em/context.hpp"
#include "em/sharded_device.hpp"
#include "em/stream.hpp"
#include "em/uring_device.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/record.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 64;   // 4 records per block
constexpr std::size_t kMemBlocks = 256;   // M = 1024 records
constexpr std::size_t kRecords = 4096;    // N/M = 4: real multi-pass runs

std::string temp_path(const char* tag) {
  static int counter = 0;
  return "/tmp/emsplit_uring_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter++) + "." + tag;
}

enum class Backend { kFile, kUring };

// One device of the requested backend, or a ShardedBlockDevice facade over
// D of them.  Each member gets its own scratch file, unlinked on destruction.
std::unique_ptr<BlockDevice> make_backend(Backend backend, std::size_t d,
                                          const IoTuning& tuning) {
  const auto make_member = [&](const std::string& path)
      -> std::unique_ptr<BlockDevice> {
    if (backend == Backend::kUring) {
      return std::make_unique<UringBlockDevice>(
          path, kBlockBytes, UringBlockDevice::tuned(tuning.queue_depth));
    }
    return std::make_unique<FileBlockDevice>(path, kBlockBytes);
  };
  if (d <= 1) return make_member(temp_path("solo"));
  std::vector<std::unique_ptr<BlockDevice>> members;
  members.reserve(d);
  for (std::size_t i = 0; i < d; ++i) {
    members.push_back(make_member(temp_path("member")));
  }
  return std::make_unique<ShardedBlockDevice>(std::move(members), 8);
}

std::uint64_t fnv_records(const std::vector<Record>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Record& r : v) {
    h = (h ^ r.key) * 1099511628211ull;
    h = (h ^ r.payload) * 1099511628211ull;
  }
  return h;
}

struct AlgoResult {
  IoStats ios;                 // logical, retry- and cache-free base counts
  std::uint64_t checksum = 0;  // FNV-1a over the output records
};

AlgoResult run_sort(BlockDevice& dev, const IoTuning& tuning,
                    std::size_t threads) {
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_io_tuning(tuning);
  ctx.set_cpu_tuning(
      CpuTuning{threads, threads > 1 ? std::size_t{8} : std::size_t{1}});
  const auto host = make_workload(Workload::kUniform, kRecords, 11);
  auto data = materialize<Record>(ctx, std::span<const Record>(host));
  dev.reset_stats();
  auto sorted = external_sort<Record>(ctx, data);
  AlgoResult res;
  res.ios = dev.stats().base();
  res.checksum = fnv_records(to_host(sorted));
  return res;
}

// ---------------------------------------------------------------------------
// The backend-equivalence matrix: file vs uring (native or fallback) across
// tuning x threads x D.  Both halves of the determinism contract at once:
// identical output bytes, identical logical IoStats.
// ---------------------------------------------------------------------------

TEST(UringDeviceTest, BackendEquivalenceMatrix) {
  const struct {
    const char* name;
    IoTuning tuning;
  } tunings[] = {
      {"sync", IoTuning{.batch_blocks = 1, .queue_depth = 0, .async = false}},
      {"batched",
       IoTuning{.batch_blocks = 8, .queue_depth = 0, .async = false}},
      {"async", IoTuning{.batch_blocks = 4, .queue_depth = 1, .async = true}},
  };
  for (const auto& t : tunings) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t d : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(std::string(t.name) + " threads=" +
                     std::to_string(threads) + " D=" + std::to_string(d));
        auto file_dev = make_backend(Backend::kFile, d, t.tuning);
        auto uring_dev = make_backend(Backend::kUring, d, t.tuning);
        const AlgoResult file_res = run_sort(*file_dev, t.tuning, threads);
        const AlgoResult uring_res = run_sort(*uring_dev, t.tuning, threads);
        EXPECT_EQ(file_res.checksum, uring_res.checksum);
        EXPECT_EQ(file_res.ios, uring_res.ios);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ring-specific behavior.
// ---------------------------------------------------------------------------

// Whether the ring engages or the constructor fell back to positional I/O,
// the device round-trips bytes per block and in bulk.
TEST(UringDeviceTest, RoundTripNativeOrFallback) {
  UringBlockDevice dev(temp_path("rt"), kBlockBytes);
  // native() may be true or false depending on the host; both are valid,
  // but the probe and the instance must agree in one direction: a native
  // ring implies io_uring support.
  if (dev.native()) {
    EXPECT_TRUE(UringBlockDevice::uring_supported());
  }

  const auto range = dev.allocate(64);
  std::vector<std::byte> buf(kBlockBytes);
  for (std::uint64_t b = 0; b < 64; ++b) {
    std::memset(buf.data(), static_cast<int>(b + 1), buf.size());
    dev.write(range.first + b, buf);
  }
  for (std::uint64_t b = 0; b < 64; ++b) {
    std::memset(buf.data(), 0, buf.size());
    dev.read(range.first + b, buf);
    EXPECT_EQ(std::to_integer<int>(buf[0]), static_cast<int>(b + 1));
    EXPECT_EQ(std::to_integer<int>(buf[kBlockBytes - 1]),
              static_cast<int>(b + 1));
  }

  // Bulk transfer across many blocks in one call.
  std::vector<std::byte> bulk(16 * kBlockBytes);
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bulk[i] = static_cast<std::byte>(i * 7 + 3);
  }
  dev.write_blocks(range.first, 16, bulk);
  std::vector<std::byte> got(bulk.size());
  dev.read_blocks(range.first, 16, got);
  EXPECT_EQ(bulk, got);

  EXPECT_EQ(dev.stats().reads, 64u + 16u);
  EXPECT_EQ(dev.stats().writes, 64u + 16u);
}

// A transfer larger than the write-behind slot capacity takes the chunked
// synchronous path; bytes must still round-trip exactly.
TEST(UringDeviceTest, OversizedTransferRoundTrip) {
  constexpr std::size_t kBigBlock = 4096;
  constexpr std::uint64_t kCount = 96;  // 384 KiB: well past the slot size
  UringBlockDevice dev(temp_path("big"), kBigBlock);
  const auto range = dev.allocate(kCount);
  std::vector<std::byte> buf(kCount * kBigBlock);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 2654435761u) >> 13);
  }
  dev.write_blocks(range.first, kCount, buf);
  std::vector<std::byte> got(buf.size());
  dev.read_blocks(range.first, kCount, got);
  EXPECT_EQ(buf, got);
}

// Write-after-write to the same blocks, then a read: the ring may reorder
// completions, but the device must drain the older write so the read sees
// the newest bytes (the RAW/WAW ordering rules).
TEST(UringDeviceTest, OverlappingWritesReadSeesNewest) {
  UringBlockDevice dev(temp_path("waw"), kBlockBytes);
  const auto range = dev.allocate(8);
  std::vector<std::byte> buf(8 * kBlockBytes);
  for (int round = 1; round <= 16; ++round) {
    std::memset(buf.data(), round, buf.size());
    dev.write_blocks(range.first, 8, buf);
  }
  // No drain in between: the last enqueued value must win.
  std::vector<std::byte> got(kBlockBytes);
  dev.read(range.first + 3, got);
  EXPECT_EQ(std::to_integer<int>(got[0]), 16);
}

// deallocate() drains in-flight writes into the freed extent (via
// do_discard), so recycling the blocks for a new extent can never be
// clobbered by a stale completion.
TEST(UringDeviceTest, DiscardDrainsInFlightWrites) {
  UringBlockDevice dev(temp_path("disc"), kBlockBytes);
  auto range = dev.allocate(32);
  std::vector<std::byte> buf(kBlockBytes);
  std::memset(buf.data(), 0x55, buf.size());
  for (std::uint64_t b = 0; b < 32; ++b) dev.write(range.first + b, buf);
  dev.deallocate(range);  // in-flight writes must drain, errors suppressed

  // The recycled extent behaves like fresh storage.
  range = dev.allocate(32);
  std::memset(buf.data(), 0x77, buf.size());
  dev.write(range.first, buf);
  std::memset(buf.data(), 0, buf.size());
  dev.read(range.first, buf);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x77);
}

// keep_file + preserve_contents: data and checksum sidecar survive the
// device object, exactly like FileBlockDevice's persistence contract.
TEST(UringDeviceTest, PersistsAcrossReopen) {
  const std::string path = temp_path("persist");
  std::vector<std::byte> buf(kBlockBytes);
  {
    UringBlockDevice dev(path, kBlockBytes, UringBlockDevice::tuned(0),
                         /*keep_file=*/true);
    dev.set_checksums(true);
    const auto range = dev.allocate(4);
    ASSERT_EQ(range.first, 0u);
    std::memset(buf.data(), 0x42, buf.size());
    dev.write(0, buf);
  }
  {
    UringBlockDevice dev(path, kBlockBytes, UringBlockDevice::tuned(0),
                         /*keep_file=*/true, /*preserve_contents=*/true);
    dev.set_checksums(true);
    // The allocator state does not live in the file; restore it the way a
    // checkpoint resume would.
    const BlockRange live{0, 4};
    dev.restore(4, std::span<const BlockRange>(&live, 1));
    std::memset(buf.data(), 0, buf.size());
    dev.read(0, buf);  // verifies against the reloaded sidecar
    EXPECT_EQ(std::to_integer<int>(buf[0]), 0x42);
  }
  // Final open without keep_file cleans up the scratch files.
  UringBlockDevice dev(path, kBlockBytes);
}

// O_DIRECT is opt-in and probed; whether or not the probe succeeds the
// device must round-trip bytes (bounce buffers, whole-block rounding,
// zero-filled tails are all internal).
TEST(UringDeviceTest, DirectModeRoundTrip) {
  constexpr std::size_t kBigBlock = 4096;
  UringBlockDevice dev(temp_path("direct"), kBigBlock,
                       UringBlockDevice::tuned(1, /*direct=*/true));
  const auto range = dev.allocate(16);
  std::vector<std::byte> buf(kBigBlock);
  for (std::uint64_t b = 0; b < 16; ++b) {
    std::memset(buf.data(), static_cast<int>(b + 100), buf.size());
    dev.write(range.first + b, buf);
  }
  for (std::uint64_t b = 0; b < 16; ++b) {
    std::memset(buf.data(), 0, buf.size());
    dev.read(range.first + b, buf);
    EXPECT_EQ(std::to_integer<int>(buf[0]), static_cast<int>(b + 100));
    EXPECT_EQ(std::to_integer<int>(buf[kBigBlock - 1]),
              static_cast<int>(b + 100));
  }
  // Partial-block transfer: the device span rule allows a short last block.
  std::vector<std::byte> part(kBigBlock / 2);
  std::memset(part.data(), 0x33, part.size());
  dev.write(range.first, part);
  std::memset(part.data(), 0, part.size());
  dev.read(range.first, part);
  EXPECT_EQ(std::to_integer<int>(part[0]), 0x33);
  EXPECT_EQ(std::to_integer<int>(part[part.size() - 1]), 0x33);
}

// The derived ring geometry follows queue_depth and respects the clamps.
TEST(UringDeviceTest, TunedGeometryFollowsQueueDepth) {
  const auto t0 = UringBlockDevice::tuned(0);
  EXPECT_EQ(t0.write_behind, 8u);
  EXPECT_EQ(t0.submit_batch, 4u);
  EXPECT_EQ(t0.ring_entries, 16u);
  const auto t1 = UringBlockDevice::tuned(1);
  EXPECT_EQ(t1.write_behind, 16u);
  const auto t9 = UringBlockDevice::tuned(9);
  EXPECT_EQ(t9.write_behind, 32u);  // clamped
  EXPECT_TRUE(UringBlockDevice::tuned(0, true).direct);
}

// The fault/checksum substrate is inherited: corruption injected into the
// backing store is detected on read when checksums are on.
TEST(UringDeviceTest, ChecksumsDetectCorruption) {
  UringBlockDevice dev(temp_path("sums"), kBlockBytes);
  dev.set_checksums(true);
  const auto range = dev.allocate(4);
  std::vector<std::byte> buf(kBlockBytes);
  std::memset(buf.data(), 0x11, buf.size());
  dev.write(range.first, buf);
  dev.corrupt_bit(range.first, 5);
  EXPECT_THROW(dev.read(range.first, buf), CorruptBlock);
}

}  // namespace
}  // namespace emsplit

// The CPU pool's core contract (the CpuTuning mirror of
// test_async_determinism.cpp): the thread count is pure execution width.
// For any number of threads, every algorithm produces bit-identical output
// and identical IoStats totals — parallel kernels are written as exact
// serial equivalents (group-ownership quintet formation, fixed-order
// partial reduction, position-slot classification), and sort-shard geometry
// is a separate knob that does not move with the thread count.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <vector>

#include "em/context.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "select/grouped.hpp"
#include "select/intermixed.hpp"
#include "sort/distribution_sort.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

struct Shape {
  const char* name;
  std::size_t block_bytes;
  std::size_t mem_blocks;
  std::size_t n;
  IoTuning io;
};

// One classic-geometry shape, and one whose batches are big enough
// (batch_blocks * block_records >= the scan grain) for the data-parallel
// batch kernels to actually dispatch to the pool.
const Shape kShapes[] = {
    {"classic", 128, 32, 20000, IoTuning{2, 1, false}},
    {"wide_batches", 512, 256, 60000, IoTuning{32, 1, true}},
};

// The CI matrix leg sets EMSPLIT_TEST_THREADS to pin the widest point of
// the sweep; locally it defaults to 4.
std::size_t max_threads() {
  if (const char* s = std::getenv("EMSPLIT_TEST_THREADS")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 4;
}

struct RunResult {
  IoStats ios;
  std::vector<Record> output;
};

template <typename Algo>
RunResult run_tuned(const Shape& shape, const CpuTuning& cpu, Algo&& algo) {
  testutil::EmEnv env(shape.block_bytes, shape.mem_blocks);
  env.ctx.set_io_tuning(shape.io);
  env.ctx.set_cpu_tuning(cpu);
  const auto data = make_workload(Workload::kUniform, shape.n, 20260806);
  EmVector<Record> input =
      materialize<Record>(env.ctx, std::span<const Record>(data));
  env.dev.reset_stats();
  env.ctx.budget().reset_peak();
  EmVector<Record> out = algo(env.ctx, input);
  RunResult r{env.dev.stats(), to_host(out)};
  // Per-thread scratch is budgeted (or skipped) like everything else:
  // parallelism never puts a run over M.
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity())
      << shape.name << " threads=" << cpu.threads;
  return r;
}

// Outputs and IoStats must match the serial default-geometry run for every
// thread count, at both default and sharded sort geometry.  (Record's
// operator<=> is a total order, so even the shard geometry cannot move the
// output — the sorted permutation is unique — and the shard merge pushes
// the identical record sequence, so I/O counts match too.)
template <typename Algo>
void expect_threads_transparent(const Shape& shape, Algo&& algo) {
  const RunResult base = run_tuned(shape, CpuTuning{1, 1}, algo);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    for (std::size_t threads = 1; threads <= max_threads(); threads *= 2) {
      const RunResult r = run_tuned(shape, CpuTuning{threads, shards}, algo);
      EXPECT_EQ(r.ios.reads, base.ios.reads)
          << shape.name << " threads=" << threads << " shards=" << shards;
      EXPECT_EQ(r.ios.writes, base.ios.writes)
          << shape.name << " threads=" << threads << " shards=" << shards;
      EXPECT_EQ(r.output == base.output, true)
          << shape.name << " threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParallelDeterminismTest, ExternalSortMatchesSerial) {
  for (const Shape& shape : kShapes) {
    expect_threads_transparent(shape,
                               [](Context& ctx, EmVector<Record>& input) {
                                 return external_sort<Record>(ctx, input);
                               });
  }
}

TEST(ParallelDeterminismTest, DistributionSortMatchesSerial) {
  for (const Shape& shape : kShapes) {
    expect_threads_transparent(shape,
                               [](Context& ctx, EmVector<Record>& input) {
                                 return distribution_sort<Record>(ctx, input);
                               });
  }
}

TEST(ParallelDeterminismTest, MultiPartitionMatchesSerial) {
  for (const Shape& shape : kShapes) {
    expect_threads_transparent(
        shape, [&](Context& ctx, EmVector<Record>& input) {
          std::vector<std::uint64_t> ranks;
          for (std::uint64_t r = 1; r < 16; ++r) {
            ranks.push_back(r * (shape.n / 16));
          }
          auto res = multi_partition<Record>(ctx, input, ranks);
          return std::move(res.data);
        });
  }
}

// Weak-order comparators (ties the comparator cannot see past) are exactly
// where a naive parallel sort would diverge.  With the shard geometry held
// fixed, the thread count still must not move a single byte.
TEST(ParallelDeterminismTest, WeakOrderComparatorStableAcrossThreads) {
  const auto key_only = [](const Record& a, const Record& b) {
    return a.key < b.key;
  };
  for (const Shape& shape : kShapes) {
    std::vector<RunResult> runs;
    for (std::size_t threads = 1; threads <= max_threads(); threads *= 2) {
      testutil::EmEnv env(shape.block_bytes, shape.mem_blocks);
      env.ctx.set_io_tuning(shape.io);
      env.ctx.set_cpu_tuning(CpuTuning{threads, 8});
      const auto data =
          make_workload(Workload::kFewDistinct, shape.n, 7, 64, 32);
      EmVector<Record> input =
          materialize<Record>(env.ctx, std::span<const Record>(data));
      env.dev.reset_stats();
      EmVector<Record> out = external_sort<Record>(env.ctx, input, key_only);
      runs.push_back({env.dev.stats(), to_host(out)});
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].ios.reads, runs[0].ios.reads) << shape.name;
      EXPECT_EQ(runs[i].ios.writes, runs[0].ios.writes) << shape.name;
      EXPECT_EQ(runs[i].output == runs[0].output, true)
          << shape.name << " run " << i;
    }
  }
}

TEST(ParallelDeterminismTest, IntermixedSelectMatchesSerial) {
  // Grouped<int> is 16 bytes — divides the block size, so the wide-batch
  // shape drives the data-parallel quintet/θ kernels through the pool.
  using G = Grouped<int>;
  const Shape shape{"wide_batches", 512, 256, 40000, IoTuning{32, 1, true}};
  const std::size_t l = 8;
  std::vector<G> data(shape.n);
  std::vector<std::uint64_t> sizes(l, 0);
  for (std::size_t i = 0; i < shape.n; ++i) {
    data[i] = G{int((i * 2654435761u) % 100000u), i % l};
    ++sizes[i % l];
  }
  std::vector<std::uint64_t> ranks(l);
  for (std::size_t g = 0; g < l; ++g) ranks[g] = (sizes[g] + 1) / 2;

  std::vector<int> base;
  IoStats base_ios{};
  for (std::size_t threads = 1; threads <= max_threads(); threads *= 2) {
    testutil::EmEnv env(shape.block_bytes, shape.mem_blocks);
    env.ctx.set_io_tuning(shape.io);
    env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
    EmVector<G> d = materialize<G>(env.ctx, std::span<const G>(data));
    env.dev.reset_stats();
    env.ctx.budget().reset_peak();
    const std::vector<int> got =
        intermixed_select<int>(env.ctx, std::move(d), ranks);
    EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity())
        << "threads=" << threads;
    if (threads == 1) {
      base = got;
      base_ios = env.dev.stats();
    } else {
      EXPECT_EQ(got, base) << "threads=" << threads;
      EXPECT_EQ(env.dev.stats().reads, base_ios.reads)
          << "threads=" << threads;
      EXPECT_EQ(env.dev.stats().writes, base_ios.writes)
          << "threads=" << threads;
    }
  }
}

// Tight memory: per-thread scratch must degrade to the serial path (via
// MemoryBudget::try_reserve) rather than blow the budget or throw.
TEST(ParallelDeterminismTest, TightBudgetFallsBackNotOver) {
  testutil::EmEnv env(128, 8);
  env.ctx.set_cpu_tuning(CpuTuning{4, 4});
  const auto data = make_workload(Workload::kUniform, 2000, 11);
  EmVector<Record> input =
      materialize<Record>(env.ctx, std::span<const Record>(data));
  env.ctx.budget().reset_peak();
  EmVector<Record> out = external_sort<Record>(env.ctx, input);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  EXPECT_EQ(to_host(out), testutil::sorted_copy(data));

  env.ctx.budget().reset_peak();
  EmVector<Record> out2 = distribution_sort<Record>(env.ctx, input);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  EXPECT_EQ(to_host(out2), testutil::sorted_copy(data));
}

TEST(ParallelDeterminismTest, CpuTuningValidation) {
  testutil::EmEnv env(128, 8);
  EXPECT_THROW(env.ctx.set_cpu_tuning(CpuTuning{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(env.ctx.set_cpu_tuning(CpuTuning{1, 0}),
               std::invalid_argument);
  EXPECT_EQ(env.ctx.cpu_pool(), nullptr);
  env.ctx.set_cpu_tuning(CpuTuning{3, 2});
  ASSERT_NE(env.ctx.cpu_pool(), nullptr);
  EXPECT_EQ(env.ctx.cpu_pool()->lanes(), 3u);
  env.ctx.set_cpu_tuning(CpuTuning{1, 1});
  EXPECT_EQ(env.ctx.cpu_pool(), nullptr);
}

}  // namespace
}  // namespace emsplit

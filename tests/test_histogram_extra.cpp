// Additional coverage for the application layer: histogram range estimates,
// load-balance statistics, and the quantile sketch under adversarial order.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/histogram.hpp"
#include "apps/load_balance.hpp"
#include "baselines/quantile_sketch.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(HistogramRangeTest, RangeEstimatesTrackTruth) {
  EmEnv env(256, 96);
  const std::size_t n = 30000;
  auto host = make_workload(Workload::kUniform, n, 41);
  auto data = materialize<Record>(env.ctx, host);
  auto h = build_equi_depth_histogram<Record>(env.ctx, data, 60, 0.2);
  auto sorted_ref = testutil::sorted_copy(host);
  const std::uint64_t max_bucket =
      *std::max_element(h.sizes.begin(), h.sizes.end());

  SplitMix64 rng(42);
  for (int t = 0; t < 100; ++t) {
    auto i = static_cast<std::size_t>(rng.next_below(n));
    auto j = static_cast<std::size_t>(rng.next_below(n));
    if (j < i) std::swap(i, j);
    const auto est = h.estimate_range(sorted_ref[i], sorted_ref[j]);
    const auto real = static_cast<std::uint64_t>(j - i);
    const auto err = est > real ? est - real : real - est;
    EXPECT_LE(err, 2 * max_bucket) << "range (" << i << ", " << j << "]";
  }
  // Degenerate/inverted ranges estimate zero-ish.
  EXPECT_EQ(h.estimate_range(sorted_ref[500], sorted_ref[500]), 0u);
  EXPECT_EQ(h.estimate_range(sorted_ref[900], sorted_ref[100]), 0u);
}

TEST(HistogramRangeTest, SingleBucketHistogram) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 500, 43);
  auto data = materialize<Record>(env.ctx, host);
  auto h = build_equi_depth_histogram<Record>(env.ctx, data, 1, 0.0);
  EXPECT_EQ(h.buckets(), 1u);
  EXPECT_TRUE(h.boundaries.empty());
  EXPECT_EQ(h.sizes[0], 500u);
}

TEST(LoadBalanceTest, StatisticsMatchBounds) {
  EmEnv env(256, 96);
  const std::size_t n = 12000;
  auto host = make_workload(Workload::kUniform, n, 44);
  auto data = materialize<Record>(env.ctx, host);
  auto plan = balance_load<Record>(env.ctx, data, 12, 0.25);
  // min/max must equal the realized partition extremes.
  std::uint64_t lo = ~0ULL, hi = 0, total = 0;
  for (std::size_t i = 0; i < plan.assignment.partitions(); ++i) {
    const auto s = plan.assignment.partition_size(i);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    total += s;
  }
  EXPECT_EQ(plan.min_load, lo);
  EXPECT_EQ(plan.max_load, hi);
  EXPECT_EQ(total, n);
  EXPECT_GE(plan.imbalance(), 1.0);
  EXPECT_LE(plan.imbalance(), 1.25 + 1e-9);
}

TEST(LoadBalanceTest, RejectsBadParameters) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 45);
  auto data = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)balance_load<Record>(env.ctx, data, 0),
               std::invalid_argument);
  EXPECT_THROW((void)balance_load<Record>(env.ctx, data, 101),
               std::invalid_argument);
  EXPECT_THROW((void)balance_load<Record>(env.ctx, data, 10, -0.1),
               std::invalid_argument);
}

class SketchOrderSweep : public testing::TestWithParam<Workload> {};

TEST_P(SketchOrderSweep, RankErrorStableAcrossArrivalOrders) {
  // Merge-collapse summaries can degrade on adversarial arrival orders;
  // verify the error envelope holds on every shipped shape.
  EmEnv env(4096, 64);
  const std::size_t n = 100000;
  auto host = make_workload(GetParam(), n, 46,
                            env.ctx.block_records<Record>());
  auto data = materialize<Record>(env.ctx, host);
  auto sketch = sketch_vector<Record>(env.ctx, data);
  auto sorted_ref = testutil::sorted_copy(host);
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < n; i += n / 53) {
    const auto est = sketch.estimate_rank(sorted_ref[i]);
    const auto real = static_cast<std::uint64_t>(i + 1);
    worst = std::max(worst, est > real ? est - real : real - est);
  }
  EXPECT_LE(worst, n / 16) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, SketchOrderSweep,
                         testing::ValuesIn(all_workloads()),
                         [](const auto& ti) { return to_string(ti.param); });

}  // namespace
}  // namespace emsplit

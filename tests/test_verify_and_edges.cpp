// Edge-case coverage: the verifiers' failure detectors, substrate corner
// cases, and an end-to-end integration run on the real file-backed device.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/api.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

// ---------------------------------------------------------------------------
// Verifier edge cases
// ---------------------------------------------------------------------------

TEST(VerifyEdgeTest, PartitioningNonMonotoneBounds) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kSorted, 100, 1);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 3, .a = 0, .b = 100};
  auto r = verify_partitioning<Record>(input, input, {0, 60, 40, 100}, spec);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("monotone"), std::string::npos);
}

TEST(VerifyEdgeTest, PartitioningEmptyPartitionsAreLegalWhenAIsZero) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kSorted, 100, 1);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 4, .a = 0, .b = 100};
  // Empty partitions at the front, middle and back.
  EXPECT_TRUE(verify_partitioning<Record>(input, input, {0, 0, 50, 50, 100},
                                          spec)
                  .ok);
  const ApproxSpec strict{.k = 4, .a = 1, .b = 100};
  EXPECT_FALSE(verify_partitioning<Record>(input, input, {0, 0, 50, 50, 100},
                                           strict)
                   .ok);
}

TEST(VerifyEdgeTest, SplittersEqualPairRejected) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kSorted, 100, 1);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 3, .a = 0, .b = 100};
  std::vector<Record> dup{host[10], host[10]};
  auto r = verify_splitters<Record>(input, dup, spec);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("increasing"), std::string::npos);
}

TEST(VerifyEdgeTest, BoundsMustCoverTheData) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kSorted, 100, 1);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 2, .a = 0, .b = 100};
  EXPECT_FALSE(verify_partitioning<Record>(input, input, {0, 50, 99}, spec).ok);
  EXPECT_FALSE(verify_partitioning<Record>(input, input, {1, 50, 100}, spec).ok);
}

// ---------------------------------------------------------------------------
// Substrate corner cases
// ---------------------------------------------------------------------------

TEST(SubstrateEdgeTest, RecordLargerThanBlockThrows) {
  MemoryBlockDevice dev(8);  // 8-byte blocks
  Context ctx(dev, 64);
  EXPECT_THROW((void)ctx.block_records<Record>(), std::invalid_argument);
  EXPECT_EQ(ctx.block_records<std::uint64_t>(), 1u);
}

TEST(SubstrateEdgeTest, ZeroCapacityVectorWorks) {
  EmEnv env(256, 8);
  EmVector<Record> v(env.ctx, 0);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.size_blocks(), 0u);
  StreamReader<Record> r(v);
  EXPECT_TRUE(r.done());
  StreamWriter<Record> w(v);
  w.finish();
  EXPECT_EQ(v.size(), 0u);
}

TEST(SubstrateEdgeTest, IoStatsStreamOutput) {
  IoStats s{.reads = 3, .writes = 4};
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "{reads=3, writes=4, total=7}");
}

TEST(SubstrateEdgeTest, RecordStreamOutput) {
  std::ostringstream os;
  os << Record{.key = 5, .payload = 9};
  EXPECT_EQ(os.str(), "(5,9)");
}

TEST(SubstrateEdgeTest, ReaderSkipToEndAndPosition) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kSorted, 100, 1);
  auto vec = materialize<Record>(env.ctx, host);
  StreamReader<Record> r(vec, 10, 90);
  EXPECT_EQ(r.position(), 10u);
  r.skip(80);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SubstrateEdgeTest, WorkloadRejectsBadParameters) {
  EXPECT_THROW((void)make_workload(Workload::kFewDistinct, 10, 1, 16, 0),
               std::invalid_argument);
  EXPECT_THROW((void)make_workload(Workload::kZipfian, 10, 1, 16, 0),
               std::invalid_argument);
  EXPECT_THROW((void)make_workload(Workload::kBlockStriped, 10, 1, 0),
               std::invalid_argument);
}

TEST(SubstrateEdgeTest, FileDeviceKeepFilePersists) {
  const std::string path = testing::TempDir() + "/emsplit_keep_test.bin";
  {
    FileBlockDevice dev(path, 256, /*keep_file=*/true);
    auto range = dev.allocate(1);
    std::vector<std::byte> buf(256, std::byte{0x5a});
    dev.write(range.first, buf);
  }
  // File survives the device.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  {
    FileBlockDevice dev(path, 256, /*keep_file=*/false);
    (void)dev.allocate(1);
  }
  f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);  // removed on destruction
}

TEST(SubstrateEdgeTest, ContextRequiresTwoBlocks) {
  MemoryBlockDevice dev(256);
  EXPECT_THROW(Context(dev, 511), std::invalid_argument);
  EXPECT_NO_THROW(Context(dev, 512));
}

// ---------------------------------------------------------------------------
// End-to-end on the real file-backed device
// ---------------------------------------------------------------------------

TEST(FileDeviceIntegrationTest, FullPipelineOnDisk) {
  const std::string path = testing::TempDir() + "/emsplit_integration.bin";
  FileBlockDevice dev(path, 4096);
  Context ctx(dev, 64 * 4096);
  const std::size_t n = 50000;
  auto host = make_workload(Workload::kZipfian, n, 33,
                            ctx.block_records<Record>(), 5000);
  auto data = materialize<Record>(ctx, host);

  // Selection, splitters, partitioning and sort — all against real file I/O.
  auto sorted_ref = testutil::sorted_copy(host);
  EXPECT_EQ(select_rank<Record>(ctx, data, n / 3), sorted_ref[n / 3 - 1]);

  const ApproxSpec spec{.k = 10, .a = 1000, .b = 20000};
  auto splitters = approx_splitters<Record>(ctx, data, spec);
  EXPECT_TRUE(verify_splitters<Record>(data, splitters, spec).ok);

  auto parts = approx_partitioning<Record>(ctx, data, spec);
  EXPECT_TRUE(
      verify_partitioning<Record>(data, parts.data, parts.bounds, spec).ok);

  auto sorted = external_sort<Record>(ctx, data);
  EXPECT_EQ(to_host(sorted), sorted_ref);
}

}  // namespace
}  // namespace emsplit

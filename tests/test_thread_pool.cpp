// Unit tests for the CPU worker pool (em/thread_pool.hpp) and the budget
// hooks parallel kernels use for per-thread scratch: every task runs exactly
// once, exceptions surface deterministically (smallest task index, like a
// serial left-to-right loop), and try_reserve degrades to "no scratch"
// instead of throwing when M is tight.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "em/memory_budget.hpp"
#include "em/thread_pool.hpp"

namespace emsplit {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  EXPECT_EQ(pool.lanes(), 4u);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run(8, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 36u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineInIndexOrder) {
  // workers = 0 is the degenerate pool: run() is a plain serial loop, so
  // task order is exactly index order.
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  pool.run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionWithSmallestTaskIndexWins) {
  // Every task at index >= 5 throws; all tasks still run, and the rethrown
  // exception is deterministically the smallest failing index — what a
  // serial left-to-right loop would have surfaced first.
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  try {
    pool.run(64, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i >= 5) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected a rethrown task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 5");
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, PoolSurvivesAFailedBatch) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.run(8, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 28u);
}

TEST(ThreadPoolTest, RunParallelWithoutPoolIsSerial) {
  std::vector<std::size_t> order;
  run_parallel(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Budget-aware per-thread scratch: MemoryBudget::try_reserve.
// ---------------------------------------------------------------------------

TEST(TryReserveTest, GrantsWithinCapacityAndCountsTowardPeak) {
  MemoryBudget budget(1000);
  auto r = budget.try_reserve(600);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->bytes(), 600u);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.peak(), 600u);
  r->release();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 600u);
}

TEST(TryReserveTest, DeclinesInsteadOfThrowingWhenFull) {
  MemoryBudget budget(1000);
  auto base = budget.reserve(800);
  EXPECT_FALSE(budget.try_reserve(201).has_value());
  EXPECT_EQ(budget.used(), 800u) << "a declined reserve must not leak";
  auto fits = budget.try_reserve(200);
  EXPECT_TRUE(fits.has_value());
}

}  // namespace
}  // namespace emsplit

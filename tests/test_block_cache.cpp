// BlockCache: budget-charged, pin-aware, and invisible to the cost model.
//
// The contract (em/block_cache.hpp): a cache hit is still a logical read —
// IoStats base counts of a cached run are bit-identical to the uncached run,
// and hits/misses/evictions only explain the wall clock.  Memory comes from
// a MemoryBudget the cache scavenges: pinned entries survive eviction and
// reclaim, a declined admission probe disables the cache permanently, and
// the registered reclaimer gives chunks back when the budget runs short.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "em/block_cache.hpp"
#include "em/context.hpp"
#include "em/memory_budget.hpp"
#include "em/stream.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/record.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 64;

std::vector<std::byte> pattern(std::size_t bytes, int seed) {
  std::vector<std::byte> v(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<std::byte>(seed * 31 + static_cast<int>(i));
  }
  return v;
}

// ---------------------------------------------------------------------------
// Unit level: the cache API against a dedicated budget.
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, CountersAreExact) {
  MemoryBudget budget(64 * kBlockBytes);
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 32,
                                      .max_entry_blocks = 8,
                                      .chunk_blocks = 8});
  ASSERT_TRUE(cache.enabled());

  // A written extent is inserted; a fully contained read is a hit counted
  // per block.
  const auto w = pattern(4 * kBlockBytes, 1);
  cache.note_write(10, 4, w);
  std::vector<std::byte> out(4 * kBlockBytes);
  EXPECT_TRUE(cache.read(10, 4, out));
  EXPECT_EQ(w, out);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 0u);

  // A sub-range entirely inside the resident entry is also a hit, served at
  // the right offset.
  std::vector<std::byte> sub(2 * kBlockBytes);
  EXPECT_TRUE(cache.read(11, 2, sub));
  EXPECT_EQ(0, std::memcmp(sub.data(), w.data() + kBlockBytes, sub.size()));
  EXPECT_EQ(cache.hits(), 6u);

  // Partial overlap is a miss (counted per block), not a partial serve.
  std::vector<std::byte> over(3 * kBlockBytes);
  EXPECT_FALSE(cache.read(12, 3, over));
  EXPECT_EQ(cache.misses(), 3u);

  cache.reset_counters();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(BlockCacheTest, ReadInsertPolicyIsSingleBlockOnly) {
  MemoryBudget budget(64 * kBlockBytes);
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 32,
                                      .max_entry_blocks = 8,
                                      .chunk_blocks = 8});
  ASSERT_TRUE(cache.enabled());

  // A single-block read miss is worth keeping (splitter/index accesses).
  const auto one = pattern(kBlockBytes, 2);
  cache.note_read(5, 1, one);
  std::vector<std::byte> out(kBlockBytes);
  EXPECT_TRUE(cache.read(5, 1, out));
  EXPECT_EQ(one, out);

  // A multi-block streaming miss is not inserted.
  const auto scan = pattern(4 * kBlockBytes, 3);
  cache.note_read(20, 4, scan);
  std::vector<std::byte> big(4 * kBlockBytes);
  EXPECT_FALSE(cache.read(20, 4, big));
}

TEST(BlockCacheTest, OversizedWritesBypassButInvalidate) {
  MemoryBudget budget(64 * kBlockBytes);
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 32,
                                      .max_entry_blocks = 4,
                                      .chunk_blocks = 8});
  ASSERT_TRUE(cache.enabled());

  cache.note_write(8, 2, pattern(2 * kBlockBytes, 4));
  std::vector<std::byte> out(2 * kBlockBytes);
  ASSERT_TRUE(cache.read(8, 2, out));

  // count > max_entry_blocks: not cached, but the stale resident copy of the
  // overlapped extent must drop (coherence).
  cache.note_write(6, 8, pattern(8 * kBlockBytes, 5));
  EXPECT_FALSE(cache.read(8, 2, out));
  std::vector<std::byte> big(8 * kBlockBytes);
  EXPECT_FALSE(cache.read(6, 8, big));
}

TEST(BlockCacheTest, PinnedEntriesSurviveEvictionPressure) {
  MemoryBudget budget(64 * kBlockBytes);
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 4,
                                      .max_entry_blocks = 4,
                                      .chunk_blocks = 4});
  ASSERT_TRUE(cache.enabled());

  // Pin before insert: the entry is born pinned.
  cache.pin(0, 1);
  const auto keep = pattern(kBlockBytes, 6);
  cache.note_write(0, 1, keep);

  // Flood far past capacity; only unpinned entries may be evicted.
  for (BlockId b = 1; b <= 16; ++b) {
    cache.note_write(b, 1, pattern(kBlockBytes, static_cast<int>(b)));
  }
  EXPECT_GT(cache.evictions(), 0u);
  std::vector<std::byte> out(kBlockBytes);
  EXPECT_TRUE(cache.read(0, 1, out));
  EXPECT_EQ(keep, out);
  EXPECT_LE(cache.resident_blocks(), 4u);

  // After unpinning, pressure may push it out like any LRU victim.
  cache.unpin(0, 1);
  for (BlockId b = 20; b < 28; ++b) {
    cache.note_write(b, 1, pattern(kBlockBytes, static_cast<int>(b)));
  }
  EXPECT_FALSE(cache.read(0, 1, out));
}

TEST(BlockCacheTest, DeclinedBudgetProbeDisablesPermanently) {
  // Capacity below one chunk: the admission probe is declined and every call
  // becomes a no-op.
  MemoryBudget budget(kBlockBytes);  // one block's worth — far below a chunk
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 64,
                                      .max_entry_blocks = 64,
                                      .chunk_blocks = 64});
  EXPECT_FALSE(cache.enabled());
  cache.note_write(0, 1, pattern(kBlockBytes, 7));
  std::vector<std::byte> out(kBlockBytes);
  EXPECT_FALSE(cache.read(0, 1, out));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // disabled: not even misses are charged
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BlockCacheTest, ReclaimerGivesBudgetBackUnderPressure) {
  // 128-block budget, cache capacity 64 blocks in 16-block chunks.
  MemoryBudget budget(128 * kBlockBytes);
  BlockCache cache(budget, kBlockBytes,
                   BlockCache::Tuning{.capacity_blocks = 64,
                                      .max_entry_blocks = 16,
                                      .chunk_blocks = 16});
  ASSERT_TRUE(cache.enabled());
  for (BlockId b = 0; b < 64; ++b) {
    cache.note_write(b, 1, pattern(kBlockBytes, static_cast<int>(b)));
  }
  EXPECT_EQ(cache.resident_blocks(), 64u);
  EXPECT_GE(budget.used(), 64 * kBlockBytes);

  // An algorithm reservation for the whole budget must succeed: the
  // registered reclaimer sheds entries and returns whole chunks.
  {
    auto all = budget.reserve(budget.capacity());
    EXPECT_EQ(all.bytes(), budget.capacity());
    EXPECT_LT(cache.resident_blocks(), 64u);
  }
  EXPECT_GT(cache.evictions(), 0u);

  // With the reservation gone the cache may scavenge its way back up.
  for (BlockId b = 100; b < 108; ++b) {
    cache.note_write(b, 1, pattern(kBlockBytes, static_cast<int>(b)));
  }
  std::vector<std::byte> out(kBlockBytes);
  EXPECT_TRUE(cache.read(107, 1, out));
}

// ---------------------------------------------------------------------------
// Integration: the cache behind a device, through Context.
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, HitIsStillALogicalRead) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 16 * kBlockBytes);
  MemoryBudget cache_budget(64 * kBlockBytes);
  BlockCache cache(cache_budget, kBlockBytes, 32);
  ctx.set_block_cache(&cache);

  const auto range = dev.allocate(8);
  std::vector<std::byte> buf(kBlockBytes);
  for (std::uint64_t b = 0; b < 8; ++b) {
    std::memset(buf.data(), static_cast<int>(b + 1), buf.size());
    dev.write(range.first + b, buf);
  }
  const IoStats before = dev.stats();
  for (std::uint64_t b = 0; b < 8; ++b) {
    dev.read(range.first + b, buf);
    EXPECT_EQ(std::to_integer<int>(buf[0]), static_cast<int>(b + 1));
  }
  const IoStats after = dev.stats();
  // All eight reads were served from the cache, yet all eight are charged as
  // logical reads: the base counts cannot tell a cached run from an uncached
  // one.
  EXPECT_EQ(after.reads - before.reads, 8u);
  EXPECT_EQ(after.cache_hits - before.cache_hits, 8u);
  EXPECT_EQ(after.cache_misses, before.cache_misses);
  ctx.set_block_cache(nullptr);
}

TEST(BlockCacheTest, CorruptionIsNotMaskedByResidentCopy) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 16 * kBlockBytes);
  MemoryBudget cache_budget(64 * kBlockBytes);
  BlockCache cache(cache_budget, kBlockBytes, 32);
  ctx.set_block_cache(&cache);
  dev.set_checksums(true);

  const auto range = dev.allocate(4);
  std::vector<std::byte> buf(kBlockBytes);
  std::memset(buf.data(), 0x11, buf.size());
  dev.write(range.first, buf);
  // The pristine copy is resident; corrupt_bit must drop it so the verifying
  // read sees the rotted backend bytes and trips the checksum.
  dev.corrupt_bit(range.first, 3);
  EXPECT_THROW(dev.read(range.first, buf), CorruptBlock);
  ctx.set_block_cache(nullptr);
}

TEST(BlockCacheTest, CachedSortIsBitIdenticalWithNonzeroHits) {
  constexpr std::size_t kMemBlocks = 256;
  constexpr std::size_t kRecords = 4096;  // N/M = 4: a real multi-pass sort
  const auto host = make_workload(Workload::kUniform, kRecords, 21);

  const auto run = [&](BlockCache* cache) {
    MemoryBlockDevice dev(kBlockBytes);
    Context ctx(dev, kMemBlocks * kBlockBytes);
    if (cache != nullptr) ctx.set_block_cache(cache);
    auto data = materialize<Record>(ctx, std::span<const Record>(host));
    dev.reset_stats();
    auto sorted = external_sort<Record>(ctx, data);
    const auto out = to_host(sorted);
    const IoStats stats = dev.stats();
    ctx.set_block_cache(nullptr);
    return std::pair<std::vector<Record>, IoStats>(out, stats);
  };

  // Dedicated cache budget: the sort's own reservations own the context M.
  MemoryBudget cache_budget(2048 * kBlockBytes);
  BlockCache cache(cache_budget, kBlockBytes, 2048);
  ASSERT_TRUE(cache.enabled());

  const auto [plain_out, plain_stats] = run(nullptr);
  const auto [cached_out, cached_stats] = run(&cache);

  EXPECT_EQ(plain_out, cached_out);
  EXPECT_EQ(plain_stats.base(), cached_stats.base());
  EXPECT_GT(cached_stats.cache_hits, 0u);
  EXPECT_EQ(plain_stats.cache_hits, 0u);
}

}  // namespace
}  // namespace emsplit

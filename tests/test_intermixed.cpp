// Tests for L-intermixed selection (paper §4.1).
#include <gtest/gtest.h>

#include <algorithm>

#include "em/stream.hpp"
#include "select/intermixed.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// Build an intermixed instance: `group_sizes[i]` random records per group,
/// shuffled together; `ranks[i]` drawn uniformly in [1, size].  Returns the
/// expected answers via a host-side oracle.
struct Instance {
  std::vector<Grouped<Record>> data;
  std::vector<std::uint64_t> ranks;
  std::vector<Record> expected;
};

Instance build_instance(const std::vector<std::size_t>& group_sizes,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  Instance inst;
  std::vector<std::vector<Record>> per_group(group_sizes.size());
  std::uint64_t uid = 0;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    for (std::size_t j = 0; j < group_sizes[g]; ++j) {
      const Record r{.key = rng.next_below(1000), .payload = uid++};
      per_group[g].push_back(r);
      inst.data.push_back(Grouped<Record>{r, g});
    }
  }
  // Shuffle the combined dataset so groups are thoroughly intermixed.
  for (std::size_t i = inst.data.size(); i > 1; --i) {
    std::swap(inst.data[i - 1], inst.data[rng.next_below(i)]);
  }
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    auto& v = per_group[g];
    std::sort(v.begin(), v.end());
    const std::uint64_t t = 1 + rng.next_below(v.size());
    inst.ranks.push_back(t);
    inst.expected.push_back(v[t - 1]);
  }
  return inst;
}

TEST(IntermixedTest, SingleGroupIsPlainSelection) {
  EmEnv env(256, 8);
  auto inst = build_instance({777}, 1);
  auto d = materialize<Grouped<Record>>(env.ctx, inst.data);
  auto got =
      intermixed_select<Record>(env.ctx, std::move(d), inst.ranks);
  EXPECT_EQ(got, inst.expected);
}

TEST(IntermixedTest, InMemoryBaseCase) {
  EmEnv env(256, 64);  // everything fits in M/3
  auto inst = build_instance({5, 9, 1, 30}, 2);
  auto d = materialize<Grouped<Record>>(env.ctx, inst.data);
  auto got =
      intermixed_select<Record>(env.ctx, std::move(d), inst.ranks);
  EXPECT_EQ(got, inst.expected);
}

struct IntermixedCase {
  std::size_t num_groups;
  std::size_t per_group;   // base size; actual sizes vary around it
  std::size_t mem_blocks;
  std::uint64_t seed;
};

class IntermixedSweep : public testing::TestWithParam<IntermixedCase> {};

TEST_P(IntermixedSweep, SelectsCorrectlyWithinBudgetAndLinearIos) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  const std::size_t max_groups = intermixed_max_groups<Record>(env.ctx);
  const std::size_t l = std::min(p.num_groups, max_groups);
  ASSERT_GE(l, 1u);
  SplitMix64 szrng(p.seed * 31 + 7);
  std::vector<std::size_t> sizes(l);
  for (auto& s : sizes) s = 1 + szrng.next_below(2 * p.per_group);
  auto inst = build_instance(sizes, p.seed);

  auto d = materialize<Grouped<Record>>(env.ctx, inst.data);
  const auto d_records = inst.data.size();
  env.dev.reset_stats();
  env.ctx.budget().reset_peak();

  auto got = intermixed_select<Record>(env.ctx, std::move(d), inst.ranks);

  EXPECT_EQ(got, inst.expected);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());

  // Lemma 6: O(|D|/B) I/Os.  Generous constant: every scan level reads and
  // writes, levels sum geometrically, plus rank spills.
  const double b = static_cast<double>(
      env.ctx.block_records<Grouped<Record>>());
  const double dsz = static_cast<double>(d_records);
  EXPECT_LE(static_cast<double>(env.dev.stats().total()),
            40.0 * (dsz / b + 1.0) + 64.0)
      << "groups=" << l << " |D|=" << d_records;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntermixedSweep,
    testing::Values(IntermixedCase{1, 2000, 8, 1},
                    IntermixedCase{2, 1500, 96, 2},
                    IntermixedCase{5, 800, 240, 3},
                    IntermixedCase{10, 500, 480, 4},
                    IntermixedCase{50, 300, 512, 5},
                    IntermixedCase{100, 200, 1024, 6},
                    IntermixedCase{4, 4000, 192, 7},
                    IntermixedCase{200, 150, 2048, 8}),
    [](const auto& ti) {
      return "g" + std::to_string(ti.param.num_groups) + "_s" +
             std::to_string(ti.param.per_group) + "_mb" +
             std::to_string(ti.param.mem_blocks);
    });

TEST(IntermixedTest, ExtremeRanksMinAndMax) {
  EmEnv env(256, 96);
  SplitMix64 rng(9);
  std::vector<Grouped<Record>> data;
  std::vector<Record> lo(2), hi(2);
  lo[0] = lo[1] = Record{.key = ~0ULL, .payload = ~0ULL};
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t j = 0; j < 3000; ++j) {
      const Record r{.key = rng.next(), .payload = j};
      data.push_back(Grouped<Record>{r, g});
      lo[g] = std::min(lo[g], r);
      hi[g] = std::max(hi[g], r);
    }
  }
  auto d = materialize<Grouped<Record>>(env.ctx, data);
  auto got = intermixed_select<Record>(env.ctx, std::move(d), {1, 3000});
  EXPECT_EQ(got[0], lo[0]);
  EXPECT_EQ(got[1], hi[1]);
}

TEST(IntermixedTest, RejectsTooManyGroups) {
  EmEnv env(256, 4);
  const std::size_t max_groups = intermixed_max_groups<Record>(env.ctx);
  std::vector<Grouped<Record>> data;
  std::vector<std::uint64_t> ranks(max_groups + 1, 1);
  for (std::size_t g = 0; g <= max_groups; ++g) {
    data.push_back(Grouped<Record>{Record{.key = g, .payload = 0}, g});
  }
  auto d = materialize<Grouped<Record>>(env.ctx, data);
  EXPECT_THROW(
      (void)intermixed_select<Record>(env.ctx, std::move(d), std::move(ranks)),
      std::invalid_argument);
}

TEST(IntermixedTest, RejectsBadGroupIdAndBadRank) {
  EmEnv env(256, 64);
  {
    std::vector<Grouped<Record>> data{
        Grouped<Record>{Record{.key = 1, .payload = 0}, 5}};  // group 5, L=1
    auto d = materialize<Grouped<Record>>(env.ctx, data);
    EXPECT_THROW((void)intermixed_select<Record>(env.ctx, std::move(d), {1}),
                 std::invalid_argument);
  }
  {
    std::vector<Grouped<Record>> data{
        Grouped<Record>{Record{.key = 1, .payload = 0}, 0}};
    auto d = materialize<Grouped<Record>>(env.ctx, data);
    EXPECT_THROW((void)intermixed_select<Record>(env.ctx, std::move(d), {2}),
                 std::invalid_argument);
  }
}

TEST(IntermixedTest, EmptyRankListReturnsEmpty) {
  EmEnv env(256, 8);
  EmVector<Grouped<Record>> d(env.ctx, 0);
  auto got = intermixed_select<Record>(env.ctx, std::move(d), {});
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace emsplit

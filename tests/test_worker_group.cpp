// Multi-worker execution layer: W is geometry, never output.
//
// The matrix test runs distribution_sort and multi_partition under every
// combination of worker count W in {1, 2, 4}, I/O tuning (sync, batched,
// async) and backend (memory -> inline workers, file -> forked workers) and
// asserts the whole contract at once: output bytes bit-identical across W,
// logical IoStats totals identical across W, and every distributed pass's
// per-worker trace rows partitioning that pass's I/O delta exactly.
//
// The kill tests arm WorkerTuning's crash injection so one worker dies at
// the start of a distributed round; with a journal attached the rerun must
// resume past the journaled passes (strictly cheaper than a cold run) and
// still produce bit-identical output -- in both execution modes (a thrown
// WorkerDied inline, an _exit(137) child under fork).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "dist/dist_plan.hpp"
#include "em/checkpoint.hpp"
#include "em/pass_engine.hpp"
#include "em/worker_group.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::sorted_copy;

// Geometry under which dist_supported holds for both operations: 128-byte
// blocks (8 records), 256 blocks of memory, 6000 records => 5 formation
// runs and ~12 splitters, comfortably inside the planning-table caps.
constexpr std::size_t kBlockBytes = 128;
constexpr std::size_t kMemBlocks = 256;
constexpr std::size_t kRecords = 6000;

const std::vector<std::uint64_t> kRanks{1234, 3000, 4567};

struct Tuning {
  const char* name;
  IoTuning io;
};

const Tuning kTunings[] = {
    {"sync", {1, 0, false}},
    {"batched", {4, 0, false}},
    {"async", {2, 2, true}},
};

std::vector<Record> dump(const EmVector<Record>& v) {
  std::vector<Record> out;
  out.reserve(v.size());
  StreamReader<Record> r(v);
  while (!r.done()) out.push_back(r.next());
  return out;
}

/// Every distributed pass row carries exactly W worker rows whose reads,
/// writes and retries sum to the row's own delta -- the per-worker analogue
/// of the sharded-device partition check.
void check_worker_rows(const PassTraceLog& trace, std::size_t W,
                       const std::string& tag) {
  std::size_t dist_rows = 0;
  for (const PassTrace& row : trace.rows()) {
    if (row.worker_io.empty()) continue;
    if (row.resumed) continue;  // replayed rows carry no fresh worker work
    ++dist_rows;
    ASSERT_EQ(row.worker_io.size(), W) << tag << " " << row.pass;
    IoStats sum;
    for (const PassWorkerIo& wio : row.worker_io) sum += wio.io;
    EXPECT_EQ(sum.reads, row.io.reads) << tag << " " << row.pass;
    EXPECT_EQ(sum.writes, row.io.writes) << tag << " " << row.pass;
    EXPECT_EQ(sum.retries, row.io.retries) << tag << " " << row.pass;
  }
  EXPECT_GT(dist_rows, 0u) << tag << ": no distributed pass recorded";
}

struct LegResult {
  std::vector<Record> bytes;
  IoStats io;
  std::vector<std::uint64_t> bounds;  // partition only
};

/// One (backend, tuning, W, op) leg.  `file_path` empty selects the memory
/// backend (inline workers); otherwise a FileBlockDevice (forked workers).
LegResult run_leg(const std::string& file_path, const IoTuning& io,
                  std::size_t W, bool partition,
                  const std::vector<Record>& host) {
  MemoryBlockDevice mem_dev(kBlockBytes);
  std::unique_ptr<FileBlockDevice> file_dev;
  BlockDevice* dev = &mem_dev;
  if (!file_path.empty()) {
    std::remove(file_path.c_str());
    file_dev = std::make_unique<FileBlockDevice>(file_path, kBlockBytes);
    dev = file_dev.get();
  }
  Context ctx(*dev, kMemBlocks * kBlockBytes);
  ctx.set_io_tuning(io);
  ctx.set_worker_tuning({W});
  PassTraceLog trace;
  ctx.set_pass_trace(&trace);

  auto input = materialize<Record>(ctx, std::span<const Record>(host));
  EXPECT_TRUE(dist::dist_supported<Record>(ctx, kRecords, partition ? 3 : 0))
      << "geometry drifted: the distributed path no longer engages";

  LegResult leg;
  dev->reset_stats();
  if (partition) {
    auto res = multi_partition<Record>(ctx, input, kRanks);
    leg.io = dev->stats().base();
    leg.bytes = dump(res.data);
    leg.bounds = res.bounds;
    // Spans flagged sorted must actually be sorted runs of the output.
    for (const auto& s : res.spans) {
      if (!s.sorted) continue;
      const auto lo = leg.bytes.begin() + static_cast<std::ptrdiff_t>(s.lo);
      const auto hi = leg.bytes.begin() + static_cast<std::ptrdiff_t>(s.hi);
      EXPECT_TRUE(std::is_sorted(lo, hi));
    }
  } else {
    auto out = distribution_sort<Record>(ctx, input);
    leg.io = dev->stats().base();
    leg.bytes = dump(out);
  }
  check_worker_rows(trace, W,
                    std::string(partition ? "mpart" : "dsort") + "/W=" +
                        std::to_string(W));
  ctx.set_pass_trace(nullptr);
  return leg;
}

class WorkerTransparency : public ::testing::TestWithParam<bool> {};

TEST_P(WorkerTransparency, OutputAndIoInvariantAcrossW) {
  const bool use_file = GetParam();
  const auto host = make_workload(Workload::kUniform, kRecords, 71);
  const auto sorted_ref = sorted_copy(host);

  for (const Tuning& t : kTunings) {
    for (const bool partition : {false, true}) {
      const std::string tag = std::string(use_file ? "file/" : "mem/") +
                              t.name + (partition ? "/mpart" : "/dsort");
      LegResult ref;
      bool have_ref = false;
      for (const std::size_t W : {1u, 2u, 4u}) {
        const std::string path =
            use_file ? testing::TempDir() + "/wg_" + t.name +
                           (partition ? "_p_" : "_s_") + std::to_string(W) +
                           ".dev"
                     : std::string();
        LegResult leg = run_leg(path, t.io, W, partition, host);
        if (!path.empty()) std::remove(path.c_str());

        if (!partition) {
          // The distributed sort is a *sort*: equal to the oracle, which
          // also forces bit-identity across W (records are totally ordered).
          ASSERT_EQ(leg.bytes, sorted_ref) << tag << " W=" << W;
        } else {
          ASSERT_EQ(leg.bounds.front(), 0u) << tag;
          ASSERT_EQ(leg.bounds.back(), kRecords) << tag;
          // Each requested rank is realized exactly: the prefix below it is
          // the multiset of the smallest r records.
          for (const std::uint64_t r : kRanks) {
            std::vector<Record> prefix(
                leg.bytes.begin(),
                leg.bytes.begin() + static_cast<std::ptrdiff_t>(r));
            std::sort(prefix.begin(), prefix.end());
            ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(),
                                   sorted_ref.begin()))
                << tag << " W=" << W << " rank " << r;
          }
        }
        if (!have_ref) {
          ref = std::move(leg);
          have_ref = true;
          continue;
        }
        // W is geometry, never output: bytes and logical I/O both invariant.
        ASSERT_EQ(leg.bytes, ref.bytes) << tag << " W diverged the bytes";
        ASSERT_EQ(leg.io.reads, ref.io.reads) << tag;
        ASSERT_EQ(leg.io.writes, ref.io.writes) << tag;
        if (partition) {
          ASSERT_EQ(leg.bounds, ref.bounds) << tag;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, WorkerTransparency, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "ForkedFile"
                                                   : "InlineMemory";
                         });

// ---------------------------------------------------------------------------
// Crash injection: a worker killed mid-job leaves a resumable journal, and
// the rerun repays only the interrupted pass onward.

TEST(WorkerGroupKill, InlineWorkerDiesAndJobResumes) {
  const auto host = make_workload(Workload::kUniform, kRecords, 72);
  const auto sorted_ref = sorted_copy(host);

  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_worker_tuning({2});
  auto input = materialize<Record>(ctx, std::span<const Record>(host));

  // Uninterrupted reference cost for the repay comparison.
  dev.reset_stats();
  { auto ref = distribution_sort<Record>(ctx, input); }
  const std::uint64_t ref_total = dev.stats().total();

  const std::string jpath = testing::TempDir() + "/wg_kill_inline.ckpt";
  std::remove(jpath.c_str());
  {
    CheckpointJournal journal(dev, jpath);
    ctx.set_checkpoint(&journal);

    // Worker 0 dies at the start of round 2 (the first selection round --
    // run formation has already been journaled as pass 1).
    ctx.set_worker_tuning({2, 0, 2});
    bool died = false;
    try {
      auto out = distribution_sort<Record>(ctx, input);
    } catch (const WorkerDied& e) {
      died = true;
      EXPECT_EQ(e.worker(), 0u);
    }
    ASSERT_TRUE(died) << "kill hook never fired";
    ASSERT_GT(journal.owned_blocks(), 0u)
        << "formation pass was not journaled before the kill";

    // Disarm and rerun: resumes at pass 1, repays strictly less than a cold
    // run, and the output is still the oracle.
    ctx.set_worker_tuning({2});
    dev.reset_stats();
    auto out = distribution_sort<Record>(ctx, input);
    const std::uint64_t resumed_total = dev.stats().total();
    EXPECT_GE(journal.resumed_passes(), 1u);
    EXPECT_LT(resumed_total, ref_total);
    EXPECT_EQ(dump(out), sorted_ref);
    EXPECT_EQ(journal.owned_blocks(), 0u);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(jpath.c_str());
}

TEST(WorkerGroupKill, ForkedWorkerDiesAndJobResumes) {
  const auto host = make_workload(Workload::kUniform, kRecords, 73);
  const auto sorted_ref = sorted_copy(host);

  const std::string dev_path = testing::TempDir() + "/wg_kill_forked.dev";
  std::remove(dev_path.c_str());
  FileBlockDevice dev(dev_path, kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_worker_tuning({4});
  auto input = materialize<Record>(ctx, std::span<const Record>(host));

  dev.reset_stats();
  { auto ref = distribution_sort<Record>(ctx, input); }
  const std::uint64_t ref_total = dev.stats().total();

  const std::string jpath = testing::TempDir() + "/wg_kill_forked.ckpt";
  std::remove(jpath.c_str());
  {
    CheckpointJournal journal(dev, jpath);
    ctx.set_checkpoint(&journal);

    // Worker 3 _exit(137)s at the start of round 2; the coordinator turns
    // the missing frame into WorkerDied after absorbing the other workers'
    // stats deltas.
    ctx.set_worker_tuning({4, 3, 2});
    bool died = false;
    try {
      auto out = distribution_sort<Record>(ctx, input);
    } catch (const WorkerDied& e) {
      died = true;
      EXPECT_EQ(e.worker(), 3u);
    }
    ASSERT_TRUE(died) << "kill hook never fired";
    ASSERT_GT(journal.owned_blocks(), 0u);

    // Resume under a *different* worker count: the fingerprint and the
    // journaled extents are W-free, so any W may finish the job.
    ctx.set_worker_tuning({2});
    dev.reset_stats();
    auto out = distribution_sort<Record>(ctx, input);
    const std::uint64_t resumed_total = dev.stats().total();
    EXPECT_GE(journal.resumed_passes(), 1u);
    EXPECT_LT(resumed_total, ref_total);
    EXPECT_EQ(dump(out), sorted_ref);
    EXPECT_EQ(journal.owned_blocks(), 0u);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(jpath.c_str());
  std::remove(dev_path.c_str());
}

// ---------------------------------------------------------------------------
// The forked/inline decision itself: a file device forks, a memory device
// (whose pages are copy-on-write) must fall back to inline execution.

TEST(WorkerGroupMode, ForkRequiresForkSafeDevice) {
  MemoryBlockDevice mem_dev(kBlockBytes);
  Context mem_ctx(mem_dev, kMemBlocks * kBlockBytes);
  mem_ctx.set_worker_tuning({2});
  WorkerGroup inline_group(mem_ctx);
  EXPECT_FALSE(inline_group.forked());
  EXPECT_EQ(inline_group.workers(), 2u);

  const std::string dev_path = testing::TempDir() + "/wg_mode.dev";
  std::remove(dev_path.c_str());
  FileBlockDevice file_dev(dev_path, kBlockBytes);
  Context file_ctx(file_dev, kMemBlocks * kBlockBytes);
  file_ctx.set_worker_tuning({2});
  WorkerGroup forked_group(file_ctx);
  EXPECT_TRUE(forked_group.forked());

  // Checksums force inline: the sidecar state is parent-private.
  file_dev.set_checksums(true);
  WorkerGroup checksummed_group(file_ctx);
  EXPECT_FALSE(checksummed_group.forked());
  std::remove(dev_path.c_str());
}

}  // namespace
}  // namespace emsplit

// Multi-worker execution layer: W is geometry, never output.
//
// The matrix test runs distribution_sort and multi_partition under every
// combination of worker count W in {1, 2, 4}, I/O tuning (sync, batched,
// async) and backend (memory, file and io_uring -- all fork-safe since the
// memory device moved to MAP_SHARED arenas -- plus memory with workers
// forced inline via EMSPLIT_WORKERS_INLINE) and asserts the whole contract
// at once: output bytes bit-identical across W, logical IoStats totals
// identical across W, and every distributed pass's per-worker trace rows
// partitioning that pass's I/O delta exactly.
//
// The kill tests arm WorkerTuning's crash injection so one worker dies at
// the start of a distributed round; with a journal attached the rerun must
// resume past the journaled passes (strictly cheaper than a cold run) and
// still produce bit-identical output -- in both execution modes (a thrown
// WorkerDied inline, an _exit(137) child under fork).
//
// The supervision tests drive WorkerGroup's round supervisor directly with
// custom bodies: crash / hang / corrupt-frame injections recover via inline
// re-execution (bounded retries, worker_retries attribution, structured
// SupervisionEvents), retries exhaust into WorkerDied, elastic degradation
// halves the group between rounds, and the M/mem_workers memory partition
// bounds every child's reported budget peak.  End-to-end sweeps over whole
// jobs live in test_fault_sweep.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <cstdlib>

#include "core/api.hpp"
#include "dist/dist_plan.hpp"
#include "em/checkpoint.hpp"
#include "em/pass_engine.hpp"
#include "em/uring_device.hpp"
#include "em/worker_group.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::sorted_copy;

/// Scoped EMSPLIT_WORKERS_INLINE=1: every device is fork-safe now, so the
/// inline execution path only runs when explicitly forced.
struct InlineWorkersGuard {
  InlineWorkersGuard() { ::setenv("EMSPLIT_WORKERS_INLINE", "1", 1); }
  ~InlineWorkersGuard() { ::unsetenv("EMSPLIT_WORKERS_INLINE"); }
};

// Geometry under which dist_supported holds for both operations: 128-byte
// blocks (8 records), 256 blocks of memory, 6000 records => 5 formation
// runs and ~12 splitters, comfortably inside the planning-table caps.
constexpr std::size_t kBlockBytes = 128;
constexpr std::size_t kMemBlocks = 256;
constexpr std::size_t kRecords = 6000;

const std::vector<std::uint64_t> kRanks{1234, 3000, 4567};

struct Tuning {
  const char* name;
  IoTuning io;
};

const Tuning kTunings[] = {
    {"sync", {1, 0, false}},
    {"batched", {4, 0, false}},
    {"async", {2, 2, true}},
};

std::vector<Record> dump(const EmVector<Record>& v) {
  std::vector<Record> out;
  out.reserve(v.size());
  StreamReader<Record> r(v);
  while (!r.done()) out.push_back(r.next());
  return out;
}

/// Every distributed pass row carries exactly W worker rows whose reads,
/// writes and retries sum to the row's own delta -- the per-worker analogue
/// of the sharded-device partition check.
void check_worker_rows(const PassTraceLog& trace, std::size_t W,
                       const std::string& tag) {
  std::size_t dist_rows = 0;
  for (const PassTrace& row : trace.rows()) {
    if (row.worker_io.empty()) continue;
    if (row.resumed) continue;  // replayed rows carry no fresh worker work
    ++dist_rows;
    ASSERT_EQ(row.worker_io.size(), W) << tag << " " << row.pass;
    IoStats sum;
    for (const PassWorkerIo& wio : row.worker_io) sum += wio.io;
    EXPECT_EQ(sum.reads, row.io.reads) << tag << " " << row.pass;
    EXPECT_EQ(sum.writes, row.io.writes) << tag << " " << row.pass;
    EXPECT_EQ(sum.retries, row.io.retries) << tag << " " << row.pass;
    EXPECT_EQ(sum.worker_retries, row.io.worker_retries)
        << tag << " " << row.pass;
  }
  EXPECT_GT(dist_rows, 0u) << tag << ": no distributed pass recorded";
}

struct LegResult {
  std::vector<Record> bytes;
  IoStats io;
  std::vector<std::uint64_t> bounds;  // partition only
};

/// The execution-mode matrix: every backend forks by default (they are all
/// fork-safe), and kMemInline pins the legacy inline path via the env knob.
enum class WorkerBackend { kMemInline, kMem, kFile, kUring };

constexpr const char* backend_name(WorkerBackend b) {
  switch (b) {
    case WorkerBackend::kMemInline: return "InlineMemory";
    case WorkerBackend::kMem: return "ForkedMemory";
    case WorkerBackend::kFile: return "ForkedFile";
    default: return "ForkedUring";
  }
}

/// One (backend, tuning, W, op) leg.  `file_path` names the backing file for
/// the file/uring backends (unused for memory).
LegResult run_leg(WorkerBackend backend, const std::string& file_path,
                  const IoTuning& io, std::size_t W, bool partition,
                  const std::vector<Record>& host) {
  std::unique_ptr<InlineWorkersGuard> inline_guard;
  if (backend == WorkerBackend::kMemInline) {
    inline_guard = std::make_unique<InlineWorkersGuard>();
  }
  std::unique_ptr<BlockDevice> owned;
  switch (backend) {
    case WorkerBackend::kMemInline:
    case WorkerBackend::kMem:
      owned = std::make_unique<MemoryBlockDevice>(kBlockBytes);
      break;
    case WorkerBackend::kFile:
      std::remove(file_path.c_str());
      owned = std::make_unique<FileBlockDevice>(file_path, kBlockBytes);
      break;
    case WorkerBackend::kUring:
      std::remove(file_path.c_str());
      owned = std::make_unique<UringBlockDevice>(
          file_path, kBlockBytes, UringBlockDevice::tuned(io.queue_depth));
      break;
  }
  BlockDevice* dev = owned.get();
  Context ctx(*dev, kMemBlocks * kBlockBytes);
  ctx.set_io_tuning(io);
  ctx.set_worker_tuning({W});
  PassTraceLog trace;
  ctx.set_pass_trace(&trace);

  auto input = materialize<Record>(ctx, std::span<const Record>(host));
  EXPECT_TRUE(dist::dist_supported<Record>(ctx, kRecords, partition ? 3 : 0))
      << "geometry drifted: the distributed path no longer engages";

  LegResult leg;
  dev->reset_stats();
  if (partition) {
    auto res = multi_partition<Record>(ctx, input, kRanks);
    leg.io = dev->stats().base();
    leg.bytes = dump(res.data);
    leg.bounds = res.bounds;
    // Spans flagged sorted must actually be sorted runs of the output.
    for (const auto& s : res.spans) {
      if (!s.sorted) continue;
      const auto lo = leg.bytes.begin() + static_cast<std::ptrdiff_t>(s.lo);
      const auto hi = leg.bytes.begin() + static_cast<std::ptrdiff_t>(s.hi);
      EXPECT_TRUE(std::is_sorted(lo, hi));
    }
  } else {
    auto out = distribution_sort<Record>(ctx, input);
    leg.io = dev->stats().base();
    leg.bytes = dump(out);
  }
  check_worker_rows(trace, W,
                    std::string(partition ? "mpart" : "dsort") + "/W=" +
                        std::to_string(W));
  ctx.set_pass_trace(nullptr);
  return leg;
}

class WorkerTransparency : public ::testing::TestWithParam<WorkerBackend> {};

TEST_P(WorkerTransparency, OutputAndIoInvariantAcrossW) {
  const WorkerBackend backend = GetParam();
  const auto host = make_workload(Workload::kUniform, kRecords, 71);
  const auto sorted_ref = sorted_copy(host);

  for (const Tuning& t : kTunings) {
    for (const bool partition : {false, true}) {
      const std::string tag = std::string(backend_name(backend)) + "/" +
                              t.name + (partition ? "/mpart" : "/dsort");
      LegResult ref;
      bool have_ref = false;
      for (const std::size_t W : {1u, 2u, 4u}) {
        const std::string path = testing::TempDir() + "/wg_" + t.name +
                                 (partition ? "_p_" : "_s_") +
                                 std::to_string(W) + ".dev";
        LegResult leg = run_leg(backend, path, t.io, W, partition, host);
        std::remove(path.c_str());

        if (!partition) {
          // The distributed sort is a *sort*: equal to the oracle, which
          // also forces bit-identity across W (records are totally ordered).
          ASSERT_EQ(leg.bytes, sorted_ref) << tag << " W=" << W;
        } else {
          ASSERT_EQ(leg.bounds.front(), 0u) << tag;
          ASSERT_EQ(leg.bounds.back(), kRecords) << tag;
          // Each requested rank is realized exactly: the prefix below it is
          // the multiset of the smallest r records.
          for (const std::uint64_t r : kRanks) {
            std::vector<Record> prefix(
                leg.bytes.begin(),
                leg.bytes.begin() + static_cast<std::ptrdiff_t>(r));
            std::sort(prefix.begin(), prefix.end());
            ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(),
                                   sorted_ref.begin()))
                << tag << " W=" << W << " rank " << r;
          }
        }
        if (!have_ref) {
          ref = std::move(leg);
          have_ref = true;
          continue;
        }
        // W is geometry, never output: bytes and logical I/O both invariant.
        ASSERT_EQ(leg.bytes, ref.bytes) << tag << " W diverged the bytes";
        ASSERT_EQ(leg.io.reads, ref.io.reads) << tag;
        ASSERT_EQ(leg.io.writes, ref.io.writes) << tag;
        if (partition) {
          ASSERT_EQ(leg.bounds, ref.bounds) << tag;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, WorkerTransparency,
    ::testing::Values(WorkerBackend::kMemInline, WorkerBackend::kMem,
                      WorkerBackend::kFile, WorkerBackend::kUring),
    [](const auto& param_info) { return backend_name(param_info.param); });

// ---------------------------------------------------------------------------
// Crash injection: a worker killed mid-job leaves a resumable journal, and
// the rerun repays only the interrupted pass onward.

TEST(WorkerGroupKill, InlineWorkerDiesAndJobResumes) {
  InlineWorkersGuard inline_workers;  // pin the thrown-WorkerDied path
  const auto host = make_workload(Workload::kUniform, kRecords, 72);
  const auto sorted_ref = sorted_copy(host);

  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_worker_tuning({2});
  auto input = materialize<Record>(ctx, std::span<const Record>(host));

  // Uninterrupted reference cost for the repay comparison.
  dev.reset_stats();
  { auto ref = distribution_sort<Record>(ctx, input); }
  const std::uint64_t ref_total = dev.stats().total();

  const std::string jpath = testing::TempDir() + "/wg_kill_inline.ckpt";
  std::remove(jpath.c_str());
  {
    CheckpointJournal journal(dev, jpath);
    ctx.set_checkpoint(&journal);

    // Worker 0 dies at the start of round 2 (the first selection round --
    // run formation has already been journaled as pass 1).
    ctx.set_worker_tuning({2, 0, 2});
    bool died = false;
    try {
      auto out = distribution_sort<Record>(ctx, input);
    } catch (const WorkerDied& e) {
      died = true;
      EXPECT_EQ(e.worker(), 0u);
    }
    ASSERT_TRUE(died) << "kill hook never fired";
    ASSERT_GT(journal.owned_blocks(), 0u)
        << "formation pass was not journaled before the kill";

    // Disarm and rerun: resumes at pass 1, repays strictly less than a cold
    // run, and the output is still the oracle.
    ctx.set_worker_tuning({2});
    dev.reset_stats();
    auto out = distribution_sort<Record>(ctx, input);
    const std::uint64_t resumed_total = dev.stats().total();
    EXPECT_GE(journal.resumed_passes(), 1u);
    EXPECT_LT(resumed_total, ref_total);
    EXPECT_EQ(dump(out), sorted_ref);
    EXPECT_EQ(journal.owned_blocks(), 0u);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(jpath.c_str());
}

TEST(WorkerGroupKill, ForkedWorkerDiesAndJobResumes) {
  const auto host = make_workload(Workload::kUniform, kRecords, 73);
  const auto sorted_ref = sorted_copy(host);

  const std::string dev_path = testing::TempDir() + "/wg_kill_forked.dev";
  std::remove(dev_path.c_str());
  FileBlockDevice dev(dev_path, kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_worker_tuning({4});
  auto input = materialize<Record>(ctx, std::span<const Record>(host));

  dev.reset_stats();
  { auto ref = distribution_sort<Record>(ctx, input); }
  const std::uint64_t ref_total = dev.stats().total();

  const std::string jpath = testing::TempDir() + "/wg_kill_forked.ckpt";
  std::remove(jpath.c_str());
  {
    CheckpointJournal journal(dev, jpath);
    ctx.set_checkpoint(&journal);

    // Worker 3 _exit(137)s at the start of round 2; the coordinator turns
    // the missing frame into WorkerDied after absorbing the other workers'
    // stats deltas.
    ctx.set_worker_tuning({4, 3, 2});
    bool died = false;
    try {
      auto out = distribution_sort<Record>(ctx, input);
    } catch (const WorkerDied& e) {
      died = true;
      EXPECT_EQ(e.worker(), 3u);
    }
    ASSERT_TRUE(died) << "kill hook never fired";
    ASSERT_GT(journal.owned_blocks(), 0u);

    // Resume under a *different* worker count: the fingerprint and the
    // journaled extents are W-free, so any W may finish the job.
    ctx.set_worker_tuning({2});
    dev.reset_stats();
    auto out = distribution_sort<Record>(ctx, input);
    const std::uint64_t resumed_total = dev.stats().total();
    EXPECT_GE(journal.resumed_passes(), 1u);
    EXPECT_LT(resumed_total, ref_total);
    EXPECT_EQ(dump(out), sorted_ref);
    EXPECT_EQ(journal.owned_blocks(), 0u);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(jpath.c_str());
  std::remove(dev_path.c_str());
}

// ---------------------------------------------------------------------------
// The forked/inline decision itself: every stock device is fork-safe now
// (the memory device's pages moved to MAP_SHARED arenas), so forking is the
// default everywhere and inline execution is an explicit opt-out.

TEST(WorkerGroupMode, ForkRequiresForkSafeDevice) {
  MemoryBlockDevice mem_dev(kBlockBytes);
  Context mem_ctx(mem_dev, kMemBlocks * kBlockBytes);
  mem_ctx.set_worker_tuning({2});
  ASSERT_TRUE(mem_dev.fork_safe());
  WorkerGroup mem_group(mem_ctx);
  EXPECT_TRUE(mem_group.forked())
      << "shared-arena memory device no longer forks";
  EXPECT_EQ(mem_group.workers(), 2u);

  {
    // The env knob is the only remaining route to the inline path.
    InlineWorkersGuard inline_workers;
    WorkerGroup inline_group(mem_ctx);
    EXPECT_FALSE(inline_group.forked());
    EXPECT_EQ(inline_group.workers(), 2u);
  }

  const std::string dev_path = testing::TempDir() + "/wg_mode.dev";
  std::remove(dev_path.c_str());
  FileBlockDevice file_dev(dev_path, kBlockBytes);
  Context file_ctx(file_dev, kMemBlocks * kBlockBytes);
  file_ctx.set_worker_tuning({2});
  WorkerGroup forked_group(file_ctx);
  EXPECT_TRUE(forked_group.forked());

  // Checksums no longer force inline: children track their checksum-table
  // updates (set_sum_tracking) and ship them home in the result frame.
  file_dev.set_checksums(true);
  WorkerGroup checksummed_group(file_ctx);
  EXPECT_TRUE(checksummed_group.forked());
  std::remove(dev_path.c_str());
}

// Forked children's writes must land in the parent's checksum table: after a
// forked dsort with checksums on, flipping one bit of the *output* must be
// caught by the next verified read.  (Before the dirty-sum shipping, forked
// mode either fell back to inline or the parent's table silently lacked
// every child-written block.)
TEST(WorkerGroupMode, ForkedChecksumsCoverChildWrites) {
  const auto host = make_workload(Workload::kUniform, kRecords, 74);
  const auto sorted_ref = sorted_copy(host);

  const std::string dev_path = testing::TempDir() + "/wg_cksum.dev";
  std::remove(dev_path.c_str());
  FileBlockDevice dev(dev_path, kBlockBytes);
  dev.set_checksums(true);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  ctx.set_worker_tuning({2});
  {
    WorkerGroup probe(ctx);
    ASSERT_TRUE(probe.forked()) << "checksums must not force inline anymore";
  }
  auto input = materialize<Record>(ctx, std::span<const Record>(host));
  auto out = distribution_sort<Record>(ctx, input);
  EXPECT_EQ(dump(out), sorted_ref);  // dump() re-reads under verification

  // A block deep inside the output was written by a forked child (the
  // scatter round); its checksum must be present and live.
  const BlockId victim = out.extent().first + out.extent().count / 2;
  dev.corrupt_bit(victim, 3);
  std::vector<std::byte> buf(kBlockBytes);
  EXPECT_THROW(dev.read(victim, buf), CorruptBlock)
      << "child-written block was not covered by the merged checksum table";
  std::remove(dev_path.c_str());
}

// ---------------------------------------------------------------------------
// The round supervisor, driven directly with custom bodies: failure
// injection, bounded inline re-execution, worker_retries attribution,
// structured events, retry exhaustion, and elastic degradation.

/// Coordinator-allocated scratch range plus a body writing two blocks per
/// worker (and reading one back), so every recovery has real I/O to re-count.
struct SupervisedRound {
  BlockRange range;

  explicit SupervisedRound(BlockDevice& dev) : range(dev.allocate(8)) {}

  [[nodiscard]] WorkerGroup::RoundBody body() const {
    const BlockRange r = range;
    return [r](Context& wctx, std::size_t w) -> std::vector<std::byte> {
      BlockDevice& d = wctx.device();
      std::vector<std::byte> blk(d.block_bytes(),
                                 std::byte{static_cast<unsigned char>(w + 1)});
      d.write(r.first + 2 * w, blk);
      d.write(r.first + 2 * w + 1, blk);
      d.read(r.first + 2 * w, blk);
      WireWriter wire;
      wire.u64(w);
      return wire.take();
    };
  }

  void check(BlockDevice& dev, const RoundOutcome& out, std::size_t W) const {
    ASSERT_EQ(out.payloads.size(), W);
    ASSERT_EQ(out.rows.size(), W);
    std::vector<std::byte> blk(dev.block_bytes());
    for (std::size_t w = 0; w < W; ++w) {
      WireReader rd(out.payloads[w]);
      EXPECT_EQ(rd.u64(), w) << "payload of worker " << w;
      dev.read(range.first + 2 * w, blk);
      EXPECT_EQ(std::to_integer<unsigned>(blk[0]), w + 1) << "worker " << w;
    }
  }
};

std::vector<std::string> kinds_of(const std::vector<SupervisionEvent>& evs) {
  std::vector<std::string> v;
  v.reserve(evs.size());
  for (const SupervisionEvent& e : evs) v.push_back(e.kind);
  return v;
}

TEST(WorkerSupervision, InlineCrashRecoversWithAttributedRetries) {
  InlineWorkersGuard inline_workers;
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  WorkerTuning wt;
  wt.workers = 2;
  wt.kill_worker = 1;
  wt.kill_round = 1;
  wt.max_worker_retries = 2;
  ctx.set_worker_tuning(wt);
  WorkerGroup group(ctx);
  ASSERT_FALSE(group.forked());

  SupervisedRound round(dev);
  dev.reset_stats();
  RoundOutcome out = group.round("sup", round.body());
  const IoStats io = dev.stats();  // before check()'s verification reads
  round.check(dev, out, 2);

  // The injected failure cost one re-execution: worker 1's row carries its
  // re-executed volume (2 writes + 1 read) as worker_retries, matching the
  // device-level counter, and base counts equal the fault-free schedule.
  EXPECT_EQ(io.reads, 2u);
  EXPECT_EQ(io.writes, 4u);
  EXPECT_EQ(io.worker_retries, 3u);
  EXPECT_EQ(out.rows[0].io.worker_retries, 0u);
  EXPECT_EQ(out.rows[1].io.worker_retries, 3u);
  EXPECT_EQ(out.rows[1].io.reads, 1u);
  EXPECT_EQ(out.rows[1].io.writes, 2u);

  const auto events = ctx.take_supervision();
  EXPECT_EQ(kinds_of(events), (std::vector<std::string>{"death", "retry"}));
  EXPECT_EQ(events[0].round, 1u);
  EXPECT_EQ(events[0].worker, 1u);
}

TEST(WorkerSupervision, RetriesExhaustIntoWorkerDied) {
  InlineWorkersGuard inline_workers;  // a throwing body needs inline units
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  WorkerTuning wt;
  wt.workers = 2;
  wt.kill_worker = 1;
  wt.kill_round = 1;
  wt.max_worker_retries = 2;
  ctx.set_worker_tuning(wt);
  WorkerGroup group(ctx);

  const auto body = [](Context&, std::size_t w) -> std::vector<std::byte> {
    if (w == 1) throw std::runtime_error("unit is cursed");
    return {};
  };
  bool died = false;
  try {
    (void)group.round("sup", body);
  } catch (const WorkerDied& e) {
    died = true;
    EXPECT_EQ(e.worker(), 1u);
    EXPECT_NE(std::string(e.what()).find("cursed"), std::string::npos);
  }
  ASSERT_TRUE(died);
  EXPECT_EQ(kinds_of(ctx.take_supervision()),
            (std::vector<std::string>{"death", "retry", "retry", "give-up"}));
}

enum class Fault { kKill, kHang, kCorrupt };

class ForkedSupervision : public ::testing::TestWithParam<Fault> {};

TEST_P(ForkedSupervision, RecoversWithIdenticalBaseIo) {
  const Fault fault = GetParam();
  const std::string dev_path = testing::TempDir() + "/wg_sup_forked.dev";

  // Fault-free reference round for the base-I/O comparison.
  IoStats ref;
  {
    std::remove(dev_path.c_str());
    FileBlockDevice dev(dev_path, kBlockBytes);
    Context ctx(dev, kMemBlocks * kBlockBytes);
    ctx.set_worker_tuning({2});
    WorkerGroup group(ctx);
    ASSERT_TRUE(group.forked());
    SupervisedRound round(dev);
    dev.reset_stats();
    RoundOutcome out = group.round("sup", round.body());
    round.check(dev, out, 2);
    ref = dev.stats();
    EXPECT_EQ(ref.worker_retries, 0u);
  }

  std::remove(dev_path.c_str());
  FileBlockDevice dev(dev_path, kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  WorkerTuning wt;
  wt.workers = 2;
  wt.max_worker_retries = 2;
  const char* expected_kind = nullptr;
  switch (fault) {
    case Fault::kKill:
      wt.kill_worker = 1;
      wt.kill_round = 1;
      expected_kind = "death";
      break;
    case Fault::kHang:
      wt.hang_worker = 1;
      wt.hang_round = 1;
      wt.worker_timeout = 1.0;
      expected_kind = "timeout";
      break;
    case Fault::kCorrupt:
      wt.corrupt_worker = 1;
      wt.corrupt_round = 1;
      expected_kind = "corrupt-frame";
      break;
  }
  ctx.set_worker_tuning(wt);
  WorkerGroup group(ctx);
  ASSERT_TRUE(group.forked());

  SupervisedRound round(dev);
  dev.reset_stats();
  RoundOutcome out = group.round("sup", round.body());
  round.check(dev, out, 2);

  // Base logical I/O identical to the fault-free round; the re-executed
  // volume reported separately.
  const IoStats io = dev.stats();
  EXPECT_EQ(io.base(), ref.base());
  EXPECT_EQ(io.worker_retries, 3u);
  EXPECT_EQ(out.rows[1].io.worker_retries, 3u);

  const auto events = ctx.take_supervision();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, expected_kind);
  EXPECT_EQ(events[0].round, 1u);
  EXPECT_EQ(events[0].worker, 1u);
  EXPECT_EQ(events[1].kind, "retry");
  std::remove(dev_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Faults, ForkedSupervision,
                         ::testing::Values(Fault::kKill, Fault::kHang,
                                           Fault::kCorrupt),
                         [](const auto& fault_info) {
                           switch (fault_info.param) {
                             case Fault::kKill: return "Kill";
                             case Fault::kHang: return "Hang";
                             default: return "Corrupt";
                           }
                         });

TEST(WorkerSupervision, DegradationHalvesWidthBetweenRounds) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, kMemBlocks * kBlockBytes);
  WorkerTuning wt;
  wt.workers = 4;
  wt.kill_worker = 0;
  wt.kill_round = 1;
  wt.max_worker_retries = 1;
  wt.degrade_after = 1;
  ctx.set_worker_tuning(wt);
  WorkerGroup group(ctx);
  ASSERT_EQ(group.workers(), 4u);

  const auto body = [](Context&, std::size_t w) -> std::vector<std::byte> {
    WireWriter wire;
    wire.u64(w);
    return wire.take();
  };
  // Round 1 runs at the full width (degradation only applies *between*
  // rounds -- the caller captured workers() when it built the body).
  RoundOutcome r1 = group.round("sup", body);
  EXPECT_EQ(r1.rows.size(), 4u);
  EXPECT_EQ(group.workers(), 2u) << "width must halve after the failure";

  RoundOutcome r2 = group.round("sup", body);
  EXPECT_EQ(r2.rows.size(), 2u);
  EXPECT_EQ(group.workers(), 2u) << "no further failures, no further halving";

  const auto events = ctx.take_supervision();
  EXPECT_EQ(kinds_of(events),
            (std::vector<std::string>{"death", "retry", "degrade"}));
  EXPECT_EQ(events[2].worker, 2u);  // the new width rides in the event
}

// ---------------------------------------------------------------------------
// Worker-aware memory partitioning: with mem_workers = K every distributed
// worker plans against and is budgeted M / K, so the reported per-worker
// budget peaks are bounded by M / K and any W <= K keeps the sum under M --
// while W itself stays bit-identical at fixed K.

TEST(WorkerSupervision, MemWorkersBoundsChildPeaksAndStaysWInvariant) {
  // 4x the matrix memory so the quartered per-worker plan still satisfies
  // dist_supported (the coordinator's planning tables budget against full M).
  const std::size_t mem_bytes = 4 * kMemBlocks * kBlockBytes;
  const auto host = make_workload(Workload::kUniform, kRecords, 75);
  const auto sorted_ref = sorted_copy(host);

  LegResult ref;
  bool have_ref = false;
  for (const std::size_t W : {1u, 2u, 4u}) {
    const std::string path =
        testing::TempDir() + "/wg_memw_" + std::to_string(W) + ".dev";
    std::remove(path.c_str());
    FileBlockDevice dev(path, kBlockBytes);
    Context ctx(dev, mem_bytes);
    WorkerTuning wt;
    wt.workers = W;
    wt.mem_workers = 4;
    ctx.set_worker_tuning(wt);
    PassTraceLog trace;
    ctx.set_pass_trace(&trace);
    auto input = materialize<Record>(ctx, std::span<const Record>(host));
    ASSERT_TRUE(dist::dist_supported<Record>(ctx, kRecords, 0))
        << "quartered plan no longer fits; grow the test's memory";

    dev.reset_stats();
    auto out = distribution_sort<Record>(ctx, input);
    LegResult leg;
    leg.io = dev.stats().base();
    leg.bytes = dump(out);
    ASSERT_EQ(leg.bytes, sorted_ref) << "W=" << W;

    // Every forked worker's reported budget peak obeys the M/K partition.
    const std::size_t share =
        std::max(mem_bytes / 4, 2 * ctx.block_bytes());
    std::size_t peaks_seen = 0;
    for (const PassTrace& row : trace.rows()) {
      for (const PassWorkerIo& wio : row.worker_io) {
        if (wio.peak_bytes == 0) continue;  // inline / recovered rows
        ++peaks_seen;
        EXPECT_LE(wio.peak_bytes, share)
            << row.pass << " worker " << wio.worker;
      }
    }
    EXPECT_GT(peaks_seen, 0u) << "no forked worker reported a budget peak";

    ctx.set_pass_trace(nullptr);
    std::remove(path.c_str());
    if (!have_ref) {
      ref = std::move(leg);
      have_ref = true;
      continue;
    }
    // Same knob, different W: bytes and logical I/O must not move.
    ASSERT_EQ(leg.bytes, ref.bytes) << "W=" << W;
    ASSERT_EQ(leg.io.reads, ref.io.reads) << "W=" << W;
    ASSERT_EQ(leg.io.writes, ref.io.writes) << "W=" << W;
  }
}

}  // namespace
}  // namespace emsplit

// The resident splitter service: the query engine's exactness against the
// sorted oracle, per-query I/O attribution (the service analogue of
// "geometry, never output"), concurrent-client determinism across backends
// and cache settings, admission control, epoch refresh, the line-protocol
// socket front end, and crash-consistent epoch recovery.
//
// The determinism contract under test: a fixed query script produces
// bit-identical answers from any number of concurrent client threads, and
// the *sum* of per-query attributed base I/O over any schedule equals the
// serial run's — each query counts the block reads its own geometry
// dictates, never a neighbor's.
//
// The recovery sweep mirrors the checkpointed-sort kill sweep: a forked
// child arms the journal's crash injection at every append index inside
// refresh(), dies mid-publish, and the parent restarts the service over the
// surviving journal — which must serve whatever epoch the CURRENT file
// names, answer correctly, and complete a further refresh.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "em/block_cache.hpp"
#include "em/checkpoint.hpp"
#include "em/uring_device.hpp"
#include "service/server.hpp"
#include "service/splitter_index.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::sorted_copy;

constexpr std::size_t kBlockBytes = 256;  // 16 records per block
constexpr std::size_t kMemBlocks = 512;
constexpr std::size_t kRecords = 4096;
constexpr std::uint64_t kBuckets = 16;

std::string temp_path(const char* tag) {
  static int counter = 0;
  return testing::TempDir() + "/svc_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + "_" + tag;
}

void write_record_file(const std::string& path,
                       const std::vector<Record>& v) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(v.data(), sizeof(Record), v.size(), f), v.size());
  ASSERT_EQ(std::fclose(f), 0);
}

/// #{e in S : e <= probe} on the sorted oracle.
std::uint64_t oracle_rank(const std::vector<Record>& sorted_ref,
                          const Record& probe) {
  return static_cast<std::uint64_t>(
      std::upper_bound(sorted_ref.begin(), sorted_ref.end(), probe) -
      sorted_ref.begin());
}

// ---------------------------------------------------------------------------
// The engine: SplitterIndex query exactness against the sorted oracle.

struct IndexFixture {
  testutil::EmEnv env{kBlockBytes, kMemBlocks};
  std::vector<Record> host;
  std::vector<Record> sorted_ref;
  EmVector<Record> data;
  SplitterIndex<Record> idx;

  explicit IndexFixture(unsigned seed = 41)
      : host(make_workload(Workload::kUniform, kRecords, seed)),
        sorted_ref(sorted_copy(host)),
        data(materialize<Record>(env.ctx, std::span<const Record>(host))),
        idx(SplitterIndex<Record>::build(env.ctx, data, kBuckets, 0.25)) {}
};

TEST(SplitterIndexQueries, RankMatchesOracleEverywhere) {
  IndexFixture f;
  EXPECT_EQ(f.idx.size(), kRecords);
  EXPECT_EQ(f.idx.buckets(), kBuckets);

  for (std::size_t r = 0; r < kRecords; r += 97) {
    const Record probe = f.sorted_ref[r];
    const auto got = f.idx.rank(probe);
    EXPECT_EQ(got.value, oracle_rank(f.sorted_ref, probe)) << "rank " << r;
    EXPECT_GT(got.io.reads, 0u);
  }
  // Below everything: zero rank.  Above everything: N with zero I/O (the
  // routing table answers without touching the device).
  const auto lo = f.idx.rank(Record{0, 0});
  EXPECT_EQ(lo.value, oracle_rank(f.sorted_ref, Record{0, 0}));
  const auto hi = f.idx.rank(Record{~0ULL, ~0ULL});
  EXPECT_EQ(hi.value, kRecords);
  EXPECT_EQ(hi.io.reads, 0u);
}

TEST(SplitterIndexQueries, RangeCountMatchesOracle) {
  IndexFixture f;
  const std::size_t probes[][2] = {{100, 3000}, {0, 4095}, {2000, 2001}};
  for (const auto& p : probes) {
    const Record a = f.sorted_ref[p[0]];
    const Record b = f.sorted_ref[p[1]];
    const auto got = f.idx.range_count(a, b);
    EXPECT_EQ(got.value, oracle_rank(f.sorted_ref, b) -
                             oracle_rank(f.sorted_ref, a))
        << p[0] << ".." << p[1];
  }
  // Inverted range counts zero, never underflows.
  EXPECT_EQ(f.idx.range_count(f.sorted_ref[3000], f.sorted_ref[100]).value,
            0u);
}

TEST(SplitterIndexQueries, HistogramRegroupsExactSizesWithZeroIo) {
  IndexFixture f;
  for (const std::uint64_t k : {std::uint64_t{1}, std::uint64_t{3}, kBuckets}) {
    const auto got = f.idx.histogram(k);
    EXPECT_EQ(got.io.reads, 0u) << "k=" << k;
    const auto& h = got.value;
    ASSERT_EQ(h.buckets(), k);
    ASSERT_EQ(h.boundaries.size(), static_cast<std::size_t>(k - 1));
    EXPECT_EQ(h.total, kRecords);
    std::uint64_t sum = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < h.sizes.size(); ++i) {
      sum += h.sizes[i];
      // Bucket i covers (boundary[i-1], boundary[i]]: its size must equal
      // the oracle's count for that key interval exactly.
      const std::uint64_t upto =
          i + 1 < h.sizes.size()
              ? oracle_rank(f.sorted_ref, h.boundaries[i])
              : kRecords;
      EXPECT_EQ(h.sizes[i], upto - prev) << "k=" << k << " bucket " << i;
      prev = upto;
    }
    EXPECT_EQ(sum, kRecords) << "k=" << k;
  }
  EXPECT_THROW((void)f.idx.histogram(0), std::invalid_argument);
  EXPECT_THROW((void)f.idx.histogram(kBuckets + 1), std::invalid_argument);
}

TEST(SplitterIndexQueries, TopKMatchesSortedTails) {
  IndexFixture f;
  for (const std::uint64_t k :
       {std::uint64_t{1}, std::uint64_t{37}, std::uint64_t{512},
        std::uint64_t{kRecords}}) {
    const auto largest = f.idx.top_k(k, /*largest=*/true);
    const std::vector<Record> tail(
        f.sorted_ref.end() - static_cast<std::ptrdiff_t>(k),
        f.sorted_ref.end());
    EXPECT_EQ(largest.value, tail) << "k=" << k;

    const auto smallest = f.idx.top_k(k, /*largest=*/false);
    const std::vector<Record> head(
        f.sorted_ref.begin(),
        f.sorted_ref.begin() + static_cast<std::ptrdiff_t>(k));
    EXPECT_EQ(smallest.value, head) << "k=" << k;
  }
  EXPECT_THROW((void)f.idx.top_k(0), std::invalid_argument);
  EXPECT_THROW((void)f.idx.top_k(kRecords + 1), std::invalid_argument);
}

TEST(SplitterIndexQueries, PerQueryIoSumsToDeviceDelta) {
  IndexFixture f;
  f.env.dev.reset_stats();
  IoStats sum;
  for (std::size_t r = 0; r < kRecords; r += 311) {
    sum += f.idx.rank(f.sorted_ref[r]).io;
  }
  sum += f.idx.range_count(f.sorted_ref[100], f.sorted_ref[4000]).io;
  sum += f.idx.histogram(8).io;
  sum += f.idx.top_k(64, true).io;
  sum += f.idx.top_k(64, false).io;
  const IoStats dev = f.env.dev.stats();
  EXPECT_EQ(sum.base().reads, dev.base().reads);
  EXPECT_EQ(dev.base().writes, 0u) << "queries must never write";
}

// ---------------------------------------------------------------------------
// The service: concurrent clients, every backend, cache on and off.

enum class ServiceBackend { kMem, kFile, kUring };

const char* service_backend_name(ServiceBackend b) {
  switch (b) {
    case ServiceBackend::kMem: return "Mem";
    case ServiceBackend::kFile: return "File";
    default: return "Uring";
  }
}

std::unique_ptr<BlockDevice> make_service_device(ServiceBackend b,
                                                 const std::string& path) {
  switch (b) {
    case ServiceBackend::kMem:
      return std::make_unique<MemoryBlockDevice>(kBlockBytes);
    case ServiceBackend::kFile:
      return std::make_unique<FileBlockDevice>(path, kBlockBytes);
    default:
      return std::make_unique<UringBlockDevice>(path, kBlockBytes,
                                                UringBlockDevice::tuned(4));
  }
}

/// The fixed query script every client replays: a mix of all four kinds.
std::vector<SplitterServer::Request> make_script(
    const std::vector<Record>& sorted_ref) {
  std::vector<SplitterServer::Request> script;
  for (const std::size_t r : {std::size_t{0}, kRecords / 3, kRecords / 2,
                              kRecords - 1}) {
    SplitterServer::Request q;
    q.kind = QueryKind::kRank;
    q.lo = sorted_ref[r];
    script.push_back(q);
  }
  {
    SplitterServer::Request q;
    q.kind = QueryKind::kRange;
    q.lo = sorted_ref[kRecords / 4];
    q.hi = sorted_ref[3 * kRecords / 4];
    script.push_back(q);
  }
  {
    SplitterServer::Request q;
    q.kind = QueryKind::kHistogram;
    q.k = 8;
    script.push_back(q);
  }
  for (const bool largest : {true, false}) {
    SplitterServer::Request q;
    q.kind = QueryKind::kTopK;
    q.k = 37;
    q.largest = largest;
    script.push_back(q);
  }
  return script;
}

class SplitterServiceMatrix
    : public ::testing::TestWithParam<std::tuple<ServiceBackend, bool>> {};

TEST_P(SplitterServiceMatrix, ConcurrentScriptIsDeterministic) {
  const auto [backend, use_cache] = GetParam();
  const auto host = make_workload(Workload::kUniform, kRecords, 42);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("src.rec");
  write_record_file(src, host);

  const std::string dev_path = temp_path("svc.dev");
  auto dev = make_service_device(backend, dev_path);
  Context ctx(*dev, kMemBlocks * kBlockBytes);
  std::unique_ptr<BlockCache> cache;
  if (use_cache) {
    cache = std::make_unique<BlockCache>(ctx.budget(), kBlockBytes, 64);
    ctx.set_block_cache(cache.get());
  }

  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  SplitterServer server(ctx, cfg);
  server.start();
  EXPECT_FALSE(server.recovered());
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_EQ(server.size(), kRecords);

  const auto script = make_script(sorted_ref);

  // Serial reference pass: answers checked against the oracle directly.
  std::vector<SplitterServer::Reply> ref;
  IoStats serial_sum;
  for (const auto& q : script) {
    SplitterServer::Reply rep = server.query(q);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.admission, "admit");
    EXPECT_EQ(rep.epoch, 1u);
    if (q.kind == QueryKind::kRank) {
      EXPECT_EQ(rep.value, oracle_rank(sorted_ref, q.lo));
    }
    serial_sum += rep.io;
    ref.push_back(std::move(rep));
  }

  // Concurrent pass: T threads replay the script; answers and per-query
  // base I/O must be bit-identical to the serial pass for every thread.
  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<SplitterServer::Reply>> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        got[t].reserve(script.size());
        for (const auto& q : script) {
          got[t].push_back(server.query(q, /*client=*/t + 1));
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  IoStats concurrent_sum;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), script.size());
    for (std::size_t i = 0; i < script.size(); ++i) {
      const auto& a = ref[i];
      const auto& b = got[t][i];
      const std::string tag = std::string(service_backend_name(backend)) +
                              (use_cache ? "/cache" : "/nocache") +
                              " thread " + std::to_string(t) + " query " +
                              std::to_string(i);
      ASSERT_TRUE(b.ok) << tag << ": " << b.error;
      EXPECT_EQ(b.value, a.value) << tag;
      EXPECT_EQ(b.hist.sizes, a.hist.sizes) << tag;
      EXPECT_EQ(b.hist.boundaries, a.hist.boundaries) << tag;
      EXPECT_EQ(b.records, a.records) << tag;
      EXPECT_EQ(b.io.base().reads, a.io.base().reads) << tag;
      concurrent_sum += b.io;
    }
  }
  // The schedule-independence contract: summed per-query base I/O is T
  // serial scripts' worth, no matter how the threads interleaved.
  EXPECT_EQ(concurrent_sum.base().reads,
            kThreads * serial_sum.base().reads);
  EXPECT_EQ(concurrent_sum.base().writes, 0u);
  EXPECT_EQ(server.served(), (kThreads + 1) * script.size());
  EXPECT_EQ(server.shed(), 0u);

  if (cache) {
    ctx.set_block_cache(nullptr);
    cache.reset();
  }
  std::remove(src.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SplitterServiceMatrix,
    ::testing::Combine(::testing::Values(ServiceBackend::kMem,
                                         ServiceBackend::kFile,
                                         ServiceBackend::kUring),
                       ::testing::Bool()),
    [](const auto& p) {
      return std::string(service_backend_name(std::get<0>(p.param))) +
             (std::get<1>(p.param) ? "Cached" : "Uncached");
    });

// ---------------------------------------------------------------------------
// Admission control: an over-budget request sheds with a structured reject,
// it never throws out of query().

TEST(SplitterServiceAdmission, OverBudgetRequestShedsStructured) {
  const auto host = make_workload(Workload::kUniform, kRecords, 43);
  const std::string src = temp_path("shed_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  cfg.queue_wait = 0.01;  // shed fast: nothing will free memory meanwhile
  SplitterServer server(env.ctx, cfg);
  server.start();

  // Squeeze the budget with a standing reservation (a concurrent query's
  // working set, as admission would see it): the whole-dataset top-k wants
  // ~N * sizeof(Record) resident on top of it and cannot be admitted.
  SplitterServer::Request q;
  q.kind = QueryKind::kTopK;
  q.k = kRecords;
  {
    const auto hog =
        env.ctx.budget().reserve(3 * kBlockBytes * kMemBlocks / 4);
    const auto rep = server.query(q);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.admission, "shed");
    EXPECT_FALSE(rep.error.empty());
    EXPECT_EQ(server.shed(), 1u);
  }

  // The squeeze released: the service remains healthy and a small query
  // still answers.
  SplitterServer::Request small;
  small.kind = QueryKind::kHistogram;
  small.k = 4;
  EXPECT_TRUE(server.query(small).ok);
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// Epoch refresh (no journal: in-memory publish) and the query trace.

TEST(SplitterServiceRefresh, RefreshPublishesNextEpochAndTracesQueries) {
  const auto host = make_workload(Workload::kUniform, kRecords, 44);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("refresh_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  SplitterServer server(env.ctx, cfg);
  server.start();
  ASSERT_EQ(server.epoch(), 1u);

  SplitterServer::Request q;
  q.kind = QueryKind::kRank;
  q.lo = sorted_ref[kRecords / 2];
  const auto before = server.query(q);
  ASSERT_TRUE(before.ok);

  EXPECT_EQ(server.refresh(), 2u);
  EXPECT_EQ(server.epoch(), 2u);

  // Same source, new epoch: the answer (and its I/O geometry) is unchanged.
  const auto after = server.query(q);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.value, before.value);
  EXPECT_EQ(after.epoch, 2u);

  // Every request became a trace row, tagged with the epoch that served it,
  // and renders as a JSON object whose leading key distinguishes query rows
  // from pass rows.
  const auto rows = server.trace().snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].epoch, 1u);
  EXPECT_EQ(rows[1].epoch, 2u);
  EXPECT_EQ(rows[0].kind, "rank");
  EXPECT_EQ(rows[0].admission, "admit");
  EXPECT_EQ(query_trace_json(rows[0]).rfind("{\"query\":", 0), 0u);

  const std::string trace_path = temp_path("trace.jsonl");
  EXPECT_TRUE(append_query_trace_jsonl(server.trace(), trace_path));
  std::FILE* f = std::fopen(trace_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line).rfind("{\"query\":\"rank\"", 0), 0u);
  std::fclose(f);
  std::remove(trace_path.c_str());
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// The socket front end: line protocol over a Unix socket, served
// concurrently, shut down by the SHUTDOWN verb.

TEST(SplitterServiceSocket, LineProtocolRoundTrip) {
  const auto host = make_workload(Workload::kUniform, kRecords, 45);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("sock_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  SplitterServer server(env.ctx, cfg);
  server.start();

  const std::string sock = temp_path("svc.sock");
  std::thread srv([&] { server.serve_unix(sock); });
  for (int i = 0; i < 500 && ::access(sock.c_str(), F_OK) != 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(::access(sock.c_str(), F_OK), 0) << "socket never appeared";

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", sock.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::FILE* io = ::fdopen(fd, "r+");
  ASSERT_NE(io, nullptr);
  const auto ask = [&](const std::string& line) -> std::string {
    EXPECT_GE(std::fputs((line + "\n").c_str(), io), 0);
    EXPECT_EQ(std::fflush(io), 0);
    char buf[512];
    EXPECT_NE(std::fgets(buf, sizeof(buf), io), nullptr) << line;
    return buf;
  };

  const Record probe = sorted_ref[kRecords / 2];
  const std::string rank_reply = ask("RANK " + std::to_string(probe.key));
  // The socket probe saturates the payload, so the reply counts every
  // record whose key <= probe.key.
  const auto key_rank = oracle_rank(sorted_ref, Record{probe.key, ~0ULL});
  EXPECT_EQ(rank_reply, "OK " + std::to_string(key_rank) + "\n");

  const std::string hist_reply = ask("HIST 4");
  EXPECT_EQ(hist_reply.rfind("OK 4 " + std::to_string(kRecords), 0), 0u);
  // Drain the bucket lines up to END.
  char buf[512];
  for (;;) {
    ASSERT_NE(std::fgets(buf, sizeof(buf), io), nullptr);
    if (std::strcmp(buf, "END\n") == 0) break;
    EXPECT_EQ(std::string(buf).rfind("BUCKET ", 0), 0u);
  }

  EXPECT_EQ(ask("EPOCH"), "OK 1\n");
  EXPECT_EQ(ask("BOGUS 12").rfind("ERR ", 0), 0u);
  EXPECT_EQ(ask("SHUTDOWN"), "OK bye\n");
  std::fclose(io);
  srv.join();
  EXPECT_EQ(::access(sock.c_str(), F_OK), -1) << "socket not unlinked";
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// Crash-consistent refresh: kill the service at every journal append inside
// refresh(), restart over the surviving journal, and require the CURRENT
// epoch to serve correct answers — then a clean refresh to complete.

TEST(SplitterServiceRecovery, KillMidRefreshServesLastPublishedEpoch) {
  const auto host = make_workload(Workload::kUniform, kRecords, 46);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("rec_src.rec");
  write_record_file(src, host);
  const std::string state_dir = temp_path("rec_state");
  ASSERT_EQ(::mkdir(state_dir.c_str(), 0755), 0);
  const std::string current = state_dir + "/SERVICE_CURRENT";
  const std::string dev_path = temp_path("rec.dev");
  const std::string jpath = temp_path("rec.ckpt");

  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  cfg.state_dir = state_dir;

  const Record probe = sorted_ref[kRecords / 2];
  const std::uint64_t want = oracle_rank(sorted_ref, probe);

  bool refresh_completed = false;
  std::uint64_t crashes = 0;
  for (std::uint64_t n = 1; n <= 32 && !refresh_completed; ++n) {
    std::remove(dev_path.c_str());
    std::remove((dev_path + ".sums").c_str());
    std::remove(jpath.c_str());
    std::remove(current.c_str());

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: build + publish epoch 1, then die at the n-th journal
      // append inside refresh() — std::_Exit(137), no destructors, exactly
      // the state a SIGKILL leaves behind.
      try {
        FileBlockDevice dev(dev_path, kBlockBytes, /*keep_file=*/true);
        CheckpointJournal journal(dev, jpath);
        Context ctx(dev, kMemBlocks * kBlockBytes);
        ctx.set_checkpoint(&journal);
        SplitterServer server(ctx, cfg);
        server.start();
        if (server.epoch() != 1 || server.recovered()) std::_Exit(12);
        journal.set_crash_after_publishes(n);
        (void)server.refresh();
        ctx.set_checkpoint(nullptr);
      } catch (...) {
        std::_Exit(13);
      }
      std::_Exit(11);  // refresh survived: n exceeded the append count
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "n=" << n;
    const int code = WEXITSTATUS(status);
    ASSERT_TRUE(code == 137 || code == 11)
        << "n=" << n << " child exited " << code;
    if (code == 11) {
      refresh_completed = true;
    } else {
      ++crashes;
    }

    // Whatever the crash interrupted, CURRENT names a published epoch.
    std::FILE* f = std::fopen(current.c_str(), "r");
    ASSERT_NE(f, nullptr) << "n=" << n;
    unsigned long long cur = 0;
    ASSERT_EQ(std::fscanf(f, "%llu", &cur), 1);
    std::fclose(f);
    ASSERT_GE(cur, 1u) << "n=" << n;
    ASSERT_LE(cur, 2u) << "n=" << n;

    // Restart over the survivors: the service must recover that epoch,
    // answer from it, and then complete the interrupted refresh cleanly.
    {
      FileBlockDevice dev(dev_path, kBlockBytes, /*keep_file=*/true,
                          /*preserve_contents=*/true);
      CheckpointJournal journal(dev, jpath);
      journal.restore_device();
      Context ctx(dev, kMemBlocks * kBlockBytes);
      ctx.set_checkpoint(&journal);
      {
        SplitterServer server(ctx, cfg);
        server.start();
        ASSERT_TRUE(server.recovered()) << "n=" << n;
        ASSERT_EQ(server.epoch(), cur) << "n=" << n;
        ASSERT_EQ(server.size(), kRecords) << "n=" << n;
        SplitterServer::Request q;
        q.kind = QueryKind::kRank;
        q.lo = probe;
        ASSERT_EQ(server.query(q).value, want) << "n=" << n;

        ASSERT_EQ(server.refresh(), cur + 1) << "n=" << n;
        ASSERT_EQ(server.query(q).value, want) << "n=" << n;
      }
      ctx.set_checkpoint(nullptr);
    }
  }
  EXPECT_GT(crashes, 0u) << "the injection never fired";
  EXPECT_TRUE(refresh_completed)
      << "refresh never outran the sweep; raise the append cap";

  std::remove(dev_path.c_str());
  std::remove((dev_path + ".sums").c_str());
  std::remove(jpath.c_str());
  std::remove(current.c_str());
  ::rmdir(state_dir.c_str());
  std::remove(src.c_str());
}

}  // namespace
}  // namespace emsplit

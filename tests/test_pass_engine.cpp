// Tests for the pass engine (em/pass_engine.hpp): differential goldens
// pinning the refactor to the pre-engine behavior, PassTrace accounting,
// per-pass PhaseProfile attribution for distribution sort and
// multi-selection, LaneScratch budget semantics, and distribution sort's
// checkpoint/resume lifecycle (including the final-pass begin-marker).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "em/checkpoint.hpp"
#include "em/pass_engine.hpp"
#include "em/phase_profile.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "select/linear_splitters.hpp"
#include "select/multi_select.hpp"
#include "sort/distribution_sort.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

std::vector<std::byte> dump(const EmVector<Record>& v) {
  std::vector<Record> host = to_host(v);
  std::vector<std::byte> bytes(host.size() * sizeof(Record));
  std::memcpy(bytes.data(), host.data(), bytes.size());
  return bytes;
}

// ---------------------------------------------------------------------------
// Differential goldens.
//
// Captured from the pre-engine tree (commit 9b82cef) with a throwaway
// harness: geometry 256-byte blocks x 16 memory blocks, n = 20000 uniform
// records (seed 7), across sync / batched / async tuning and 1 / 4 threads.
// The engine envelope performs no I/O and makes no geometry decision, so
// every ported algorithm must reproduce these counts and checksums exactly.

constexpr std::size_t kGoldenRecords = 20000;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

std::uint64_t checksum_em(const EmVector<Record>& v) {
  StreamReader<Record> r(v);
  std::uint64_t h = 1469598103934665603ull;
  while (!r.done()) {
    const Record rec = r.next();
    h = fnv(h, rec.key);
    h = fnv(h, rec.payload);
  }
  return h;
}

std::uint64_t checksum_host(const std::vector<Record>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Record& rec : v) {
    h = fnv(h, rec.key);
    h = fnv(h, rec.payload);
  }
  return h;
}

std::vector<std::uint64_t> golden_select_ranks() {
  std::vector<std::uint64_t> ranks;
  std::uint64_t x = 12345;
  for (int i = 0; i < 40; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    ranks.push_back(1 + x % kGoldenRecords);
  }
  return ranks;
}

struct GoldenRow {
  const char* algo;
  const char* mode;
  std::size_t threads;
  std::uint64_t reads;
  std::uint64_t writes;
  std::uint64_t sum;
};

constexpr GoldenRow kGoldens[] = {
    {"sort", "sync", 1, 5000u, 3750u, 0x4a2be48d0efd7df8ull},
    {"mpart", "sync", 1, 9788u, 3449u, 0x9261eb9df34114c0ull},
    {"dsort", "sync", 1, 16020u, 6776u, 0x4a2be48d0efd7df8ull},
    {"msel", "sync", 1, 13010u, 3938u, 0x108b3050c955022ull},
    {"splitters", "sync", 1, 1669u, 419u, 0x8aedf89767c3a589ull},
    {"sort", "sync", 4, 5000u, 3750u, 0x4a2be48d0efd7df8ull},
    {"mpart", "sync", 4, 9788u, 3449u, 0x9261eb9df34114c0ull},
    {"dsort", "sync", 4, 16020u, 6776u, 0x4a2be48d0efd7df8ull},
    {"msel", "sync", 4, 13010u, 3938u, 0x108b3050c955022ull},
    {"splitters", "sync", 4, 1669u, 419u, 0x8aedf89767c3a589ull},
    {"sort", "batched", 1, 8750u, 7500u, 0x4a2be48d0efd7df8ull},
    {"mpart", "batched", 1, 30909u, 11922u, 0xd1f3d33cc99c8f24ull},
    {"dsort", "batched", 1, 42397u, 17285u, 0x4a2be48d0efd7df8ull},
    {"msel", "batched", 1, 89113u, 34457u, 0x108b3050c955022ull},
    {"splitters", "batched", 1, 1669u, 419u, 0x8aedf89767c3a589ull},
    {"sort", "batched", 4, 8750u, 7500u, 0x4a2be48d0efd7df8ull},
    {"mpart", "batched", 4, 30909u, 11922u, 0xd1f3d33cc99c8f24ull},
    {"dsort", "batched", 4, 42397u, 17285u, 0x4a2be48d0efd7df8ull},
    {"msel", "batched", 4, 89113u, 34457u, 0x108b3050c955022ull},
    {"splitters", "batched", 4, 1669u, 419u, 0x8aedf89767c3a589ull},
    {"sort", "async", 1, 8750u, 7500u, 0x4a2be48d0efd7df8ull},
    {"mpart", "async", 1, 30909u, 11922u, 0xd1f3d33cc99c8f24ull},
    {"dsort", "async", 1, 42397u, 17285u, 0x4a2be48d0efd7df8ull},
    {"msel", "async", 1, 89113u, 34457u, 0x108b3050c955022ull},
    {"splitters", "async", 1, 1669u, 419u, 0x8aedf89767c3a589ull},
    {"sort", "async", 4, 8750u, 7500u, 0x4a2be48d0efd7df8ull},
    {"mpart", "async", 4, 30909u, 11922u, 0xd1f3d33cc99c8f24ull},
    {"dsort", "async", 4, 42397u, 17285u, 0x4a2be48d0efd7df8ull},
    {"msel", "async", 4, 89113u, 34457u, 0x108b3050c955022ull},
    {"splitters", "async", 4, 1669u, 419u, 0x8aedf89767c3a589ull},
};

const GoldenRow& golden(const char* algo, const char* mode,
                        std::size_t threads) {
  for (const GoldenRow& g : kGoldens) {
    if (std::strcmp(g.algo, algo) == 0 && std::strcmp(g.mode, mode) == 0 &&
        g.threads == threads) {
      return g;
    }
  }
  ADD_FAILURE() << "no golden for " << algo << "/" << mode << "/" << threads;
  static GoldenRow none{};
  return none;
}

struct GoldenMode {
  const char* name;
  IoTuning io;
};

constexpr GoldenMode kGoldenModes[] = {
    {"sync", IoTuning{1, 0, false}},
    {"batched", IoTuning{4, 0, false}},
    {"async", IoTuning{2, 1, true}},
};

void check_row(const GoldenRow& g, const IoStats& io, std::uint64_t sum) {
  EXPECT_EQ(io.reads, g.reads) << g.algo << "/" << g.mode << "/" << g.threads;
  EXPECT_EQ(io.writes, g.writes) << g.algo << "/" << g.mode << "/"
                                 << g.threads;
  EXPECT_EQ(sum, g.sum) << g.algo << "/" << g.mode << "/" << g.threads;
}

TEST(PassEngineGoldens, MatchPreRefactorIoCountsAndChecksums) {
  const auto host = make_workload(Workload::kUniform, kGoldenRecords, 7);
  for (const GoldenMode& mode : kGoldenModes) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      {
        EmEnv env;
        env.ctx.set_io_tuning(mode.io);
        env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
        auto in = materialize<Record>(env.ctx, host);
        env.dev.reset_stats();
        auto out = external_sort<Record>(env.ctx, in);
        check_row(golden("sort", mode.name, threads), env.dev.stats(),
                  checksum_em(out));
      }
      {
        EmEnv env;
        env.ctx.set_io_tuning(mode.io);
        env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
        auto in = materialize<Record>(env.ctx, host);
        std::vector<std::uint64_t> ranks;
        for (std::uint64_t r = 1250; r < kGoldenRecords; r += 1250) {
          ranks.push_back(r);
        }
        env.dev.reset_stats();
        auto res = multi_partition<Record>(env.ctx, in, ranks);
        std::uint64_t sum = checksum_em(res.data);
        for (const auto b : res.bounds) sum = fnv(sum, b);
        check_row(golden("mpart", mode.name, threads), env.dev.stats(), sum);
      }
      {
        EmEnv env;
        env.ctx.set_io_tuning(mode.io);
        env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
        auto in = materialize<Record>(env.ctx, host);
        env.dev.reset_stats();
        auto out = distribution_sort<Record>(env.ctx, in);
        check_row(golden("dsort", mode.name, threads), env.dev.stats(),
                  checksum_em(out));
      }
      {
        EmEnv env;
        env.ctx.set_io_tuning(mode.io);
        env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
        auto in = materialize<Record>(env.ctx, host);
        env.dev.reset_stats();
        auto ans = multi_select<Record>(env.ctx, in, golden_select_ranks());
        check_row(golden("msel", mode.name, threads), env.dev.stats(),
                  checksum_host(ans));
      }
      {
        EmEnv env;
        env.ctx.set_io_tuning(mode.io);
        env.ctx.set_cpu_tuning(CpuTuning{threads, 1});
        auto in = materialize<Record>(env.ctx, host);
        env.dev.reset_stats();
        auto ls = linear_splitters<Record>(env.ctx, in);
        std::uint64_t sum = checksum_host(ls.splitters);
        sum = fnv(sum, ls.bucket_bound);
        check_row(golden("splitters", mode.name, threads), env.dev.stats(),
                  sum);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PassTrace accounting.

TEST(PassTraceTest, ExternalSortEmitsOneRowPerPass) {
  EmEnv env(256, 8);
  PassTraceLog trace;
  env.ctx.set_pass_trace(&trace);
  auto host = make_workload(Workload::kUniform, 4000, 5);
  auto in = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  trace.reset();
  auto out = external_sort<Record>(env.ctx, in);
  const std::uint64_t dev_total = env.dev.stats().total();  // before verify
  ASSERT_TRUE(is_sorted_em<Record>(out));

  const auto& rows = trace.rows();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows.front().pass, "sort/run-formation");
  IoStats sum;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PassTrace& t = rows[i];
    EXPECT_EQ(t.job, "sort");
    EXPECT_EQ(t.index, i + 1) << "pass indices must be 1-based, consecutive";
    EXPECT_FALSE(t.resumed);
    if (i > 0) {
      EXPECT_EQ(t.pass, "sort/merge-pass");
    }
    EXPECT_GT(t.io.total(), 0u);
    EXPECT_EQ(t.bytes, t.io.total() * env.dev.block_bytes());
    EXPECT_GE(t.seconds, 0.0);
    EXPECT_EQ(t.threads, 1u);
    sum += t.io;
  }
  // The envelope performs no I/O of its own: the rows partition the total.
  EXPECT_EQ(sum.total(), dev_total);
  EXPECT_EQ(trace.total_io().total(), dev_total);

  trace.reset();
  EXPECT_TRUE(trace.rows().empty());
  env.ctx.set_pass_trace(nullptr);
}

TEST(PassTraceTest, DetachedContextRecordsNothing) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 6);
  auto in = materialize<Record>(env.ctx, host);
  auto out = external_sort<Record>(env.ctx, in);  // no sink attached: fine
  EXPECT_TRUE(is_sorted_em<Record>(out));
}

// ---------------------------------------------------------------------------
// Per-pass PhaseProfile attribution for the two algorithms the engine newly
// covers (satellite: distribution_sort and multi_select report per-pass
// profile entries, and the entries partition the device total).

TEST(PassEnginePhases, DistributionSortAttributesEveryIo) {
  EmEnv env;
  PhaseProfile profile;
  profile.attach(env.dev);
  env.ctx.set_profile(&profile);
  auto host = make_workload(Workload::kUniform, 20000, 3);
  auto in = materialize<Record>(env.ctx, host);
  profile.reset();
  env.dev.reset_stats();
  auto out = distribution_sort<Record>(env.ctx, in);
  const std::uint64_t dev_total = env.dev.stats().total();  // before verify
  ASSERT_TRUE(is_sorted_em<Record>(out));

  bool saw_partition = false;
  bool saw_final = false;
  std::uint64_t attributed = 0;
  std::uint64_t final_io = 0;
  for (const auto& [label, ios] : profile.rows()) {
    attributed += ios.total();
    if (label == "dsort/partition") saw_partition = true;
    if (label == "dsort/final-sort") {
      saw_final = true;
      final_io = ios.total();
    }
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_final);
  EXPECT_GT(final_io, 0u);
  EXPECT_EQ(attributed, dev_total);
  env.ctx.set_profile(nullptr);
}

TEST(PassEnginePhases, MultiSelectAttributesEveryIo) {
  EmEnv env;
  PhaseProfile profile;
  profile.attach(env.dev);
  env.ctx.set_profile(&profile);
  auto host = make_workload(Workload::kUniform, 20000, 3);
  auto in = materialize<Record>(env.ctx, host);
  // 40 ranks > intermixed_max_groups at this geometry: the general
  // (partition + per-piece base case) path runs.
  ASSERT_GT(40u, intermixed_max_groups<Record>(env.ctx));
  profile.reset();
  env.dev.reset_stats();
  auto ans = multi_select<Record>(env.ctx, in, golden_select_ranks());
  ASSERT_EQ(ans.size(), 40u);

  bool saw_partition = false;
  bool saw_base = false;
  bool saw_count = false;
  bool saw_build = false;
  bool saw_splitters = false;
  bool saw_intermixed = false;
  std::uint64_t attributed = 0;
  for (const auto& [label, ios] : profile.rows()) {
    attributed += ios.total();
    if (label == "msel/partition") saw_partition = true;
    if (label == "msel/base-case") saw_base = true;
    if (label == "msel/count-buckets") saw_count = true;
    if (label == "msel/build-instance") saw_build = true;
    if (label.rfind("splitters/", 0) == 0) saw_splitters = true;
    if (label.rfind("intermixed/", 0) == 0) saw_intermixed = true;
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_base);
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_splitters);
  EXPECT_TRUE(saw_intermixed);
  EXPECT_EQ(attributed, env.dev.stats().total());
  env.ctx.set_profile(nullptr);
}

// ---------------------------------------------------------------------------
// LaneScratch: budget-gated, serial-fallback scratch.

TEST(LaneScratchTest, GrantsWithinBudgetAndDeclinesBeyond) {
  EmEnv env(256, 4);  // M = 1024 bytes
  {
    LaneScratch<std::uint32_t> a(env.ctx, 64);  // 256 bytes: fits
    EXPECT_TRUE(a.available());
    EXPECT_EQ(a.size(), 64u);
    a[0] = 7u;
    EXPECT_EQ(a.vec()[0], 7u);
    LaneScratch<std::uint32_t> b(env.ctx, 1024);  // 4096 bytes > M: declined
    EXPECT_FALSE(b.available());
    EXPECT_EQ(b.size(), 0u);
  }
  EXPECT_EQ(env.ctx.budget().used(), 0u);  // reservations released
  LaneScratch<std::uint32_t> c(env.ctx, 0);  // count 0: no reservation at all
  EXPECT_FALSE(c.available());
  EXPECT_EQ(env.ctx.budget().used(), 0u);
}

// ---------------------------------------------------------------------------
// Distribution-sort checkpointing (tentpole: checkpoint/resume now extends
// to distribution_sort via PassChain + the final-pass begin-marker).

TEST(PassEngineCheckpoint, DistributionSortRepaysOnlyFinalPassAfterPass1) {
  const std::size_t n = 1024;
  auto host = make_workload(Workload::kUniform, n, 24);

  // Reference run (no journal) with a trace attached: learn the final
  // pass's exact I/O bill.
  EmEnv ref(256, 8);
  PassTraceLog ref_trace;
  ref.ctx.set_pass_trace(&ref_trace);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_out = distribution_sort<Record>(ref.ctx, ref_in);
  const auto ref_bytes = dump(ref_out);
  std::uint64_t final_io = 0;
  for (const PassTrace& t : ref_trace.rows()) {
    if (t.job == "dsort" && t.pass == "dsort/final-sort") {
      final_io = t.io.total();
    }
  }
  ASSERT_GT(final_io, 0u);
  ref.ctx.set_pass_trace(nullptr);

  EmEnv env(256, 8);
  const std::string jpath = testing::TempDir() + "/dsort_pass1.ckpt";
  std::remove(jpath.c_str());
  CheckpointJournal journal(env.dev, jpath);
  env.ctx.set_checkpoint(&journal);
  auto in = materialize<Record>(env.ctx, host);

  // Reproduce distribution_sort's pass-1 publish exactly, then abandon the
  // job before the final pass begins — the state a crash leaves behind in
  // the window between the partition and the begin-marker.
  const std::size_t segment =
      std::max<std::size_t>(1, env.ctx.mem_records<Record>() / 3);
  std::vector<std::uint64_t> ranks;
  for (std::size_t r = segment; r < n; r += segment) ranks.push_back(r);
  ASSERT_FALSE(ranks.empty());
  {
    PassRunner runner(env.ctx,
                      {"dsort", detail::dsort_fingerprint<Record>(env.ctx, n)});
    PassChain<Record> chain(runner, "dsort/resume");
    ASSERT_FALSE(chain.resumed());
    auto part = multi_partition<Record>(env.ctx, in, ranks);
    chain.install(std::move(part.data), detail::encode_spans(part.spans));
  }
  ASSERT_GT(journal.owned_blocks(), 0u);

  // The rerun resumes at pass 1 and repays only the final pass.
  PassTraceLog trace;
  env.ctx.set_pass_trace(&trace);
  env.dev.reset_stats();
  auto out = distribution_sort<Record>(env.ctx, in);
  const std::uint64_t resumed_total = env.dev.stats().total();
  EXPECT_EQ(dump(out), ref_bytes);
  EXPECT_EQ(resumed_total, final_io);
  bool saw_resume_row = false;
  for (const PassTrace& t : trace.rows()) {
    if (t.pass == "dsort/resume") {
      EXPECT_TRUE(t.resumed);
      saw_resume_row = true;
    }
  }
  EXPECT_TRUE(saw_resume_row);
  EXPECT_EQ(journal.owned_blocks(), 0u);
  env.ctx.set_pass_trace(nullptr);
  env.ctx.set_checkpoint(nullptr);
}

TEST(PassEngineCheckpoint, DistributionSortResumesBitIdenticalAtEveryIndex) {
  // Kill-and-resume sweep: crash the checkpointed sort at every device I/O
  // index, then rerun the identical job against the surviving journal.  The
  // resumed run must produce bit-identical output, never leak a block, and
  // never cost more than a from-scratch run.  Faults inside the final pass
  // land after the begin-marker and exercise the restart-from-scratch path
  // (a torn in-place rewrite cannot be resumed over).
  const std::size_t n = 768;
  auto host = make_workload(Workload::kUniform, n, 26);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_sorted = distribution_sort<Record>(ref.ctx, ref_in);
  const std::uint64_t ref_total = ref.dev.stats().total();
  const auto ref_bytes = dump(ref_sorted);

  for (std::uint64_t i = 0; i < ref_total; ++i) {
    EmEnv env(256, 8);
    const std::string jpath =
        testing::TempDir() + "/sweep_dsort_" + std::to_string(i) + ".ckpt";
    std::remove(jpath.c_str());
    {
      CheckpointJournal journal(env.dev, jpath);
      env.ctx.set_checkpoint(&journal);
      auto in = materialize<Record>(env.ctx, host);
      const auto input_blocks = env.dev.allocated_blocks();
      env.dev.arm_fault_after(i);
      bool faulted = false;
      try {
        auto s = distribution_sort<Record>(env.ctx, in);
      } catch (const DeviceFault&) {
        faulted = true;
      }
      env.dev.disarm_fault();
      ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
      ASSERT_EQ(env.dev.allocated_blocks(),
                input_blocks + journal.owned_blocks())
          << "leak at fault index " << i;

      env.dev.reset_stats();
      auto out = distribution_sort<Record>(env.ctx, in);
      const std::uint64_t resumed_total = env.dev.stats().total();
      ASSERT_EQ(dump(out), ref_bytes)
          << "resumed output diverged at fault index " << i;
      ASSERT_LE(resumed_total, ref_total)
          << "resumed run cost more than from scratch at fault index " << i;
      ASSERT_EQ(journal.owned_blocks(), 0u)
          << "journal retained blocks after success at fault index " << i;
      env.ctx.set_checkpoint(nullptr);
    }
    std::remove(jpath.c_str());
  }
}

}  // namespace
}  // namespace emsplit

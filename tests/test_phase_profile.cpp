// Tests for the per-phase I/O attribution layer.
#include <gtest/gtest.h>

#include "em/phase_profile.hpp"
#include "em/stream.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(PhaseProfileTest, ExclusiveAttributionPartitionsTheTotal) {
  EmEnv env(256, 8);
  PhaseProfile profile;
  profile.attach(env.dev);

  auto host = make_workload(Workload::kUniform, 1000, 1);
  auto vec = materialize<Record>(env.ctx, host);  // outside any phase
  env.dev.reset_stats();

  {
    ScopedPhase outer(&profile, "outer");
    {
      StreamReader<Record> r(vec);  // outer work: one full read scan
      while (!r.done()) (void)r.next();
    }
    {
      ScopedPhase inner(&profile, "inner");
      StreamReader<Record> r(vec, 0, 100);  // inner work: one block
      while (!r.done()) (void)r.next();
    }
  }

  ASSERT_EQ(profile.rows().size(), 2u);
  const auto& outer_row = profile.rows()[0];
  const auto& inner_row = profile.rows()[1];
  EXPECT_EQ(outer_row.first, "outer");
  EXPECT_EQ(inner_row.first, "inner");
  // Buckets partition the total.
  EXPECT_EQ(outer_row.second.total() + inner_row.second.total(),
            env.dev.stats().total());
  EXPECT_GE(inner_row.second.reads, 1u);
  EXPECT_GT(outer_row.second.reads, inner_row.second.reads);
}

TEST(PhaseProfileTest, RepeatedLabelsAccumulate) {
  EmEnv env(256, 8);
  PhaseProfile profile;
  profile.attach(env.dev);
  auto host = make_workload(Workload::kUniform, 320, 2);
  auto vec = materialize<Record>(env.ctx, host);
  for (int i = 0; i < 3; ++i) {
    ScopedPhase p(&profile, "scan");
    StreamReader<Record> r(vec);
    while (!r.done()) (void)r.next();
  }
  ASSERT_EQ(profile.rows().size(), 1u);
  EXPECT_EQ(profile.rows()[0].second.reads, 3 * vec.size_blocks());
}

TEST(PhaseProfileTest, DetachedProfileIsFree) {
  PhaseProfile profile;  // never attached
  ScopedPhase p(&profile, "ignored");
  EXPECT_TRUE(profile.rows().empty());
  ScopedPhase q(nullptr, "also ignored");
}

TEST(PhaseProfileTest, AlgorithmsAnnotateThroughContext) {
  EmEnv env(256, 8);
  PhaseProfile profile;
  profile.attach(env.dev);
  env.ctx.set_profile(&profile);
  auto host = make_workload(Workload::kUniform, 20000, 3);
  auto input = materialize<Record>(env.ctx, host);
  profile.reset();
  env.dev.reset_stats();
  auto sorted = external_sort<Record>(env.ctx, input);
  // Both sort phases appear, and together they cover almost everything.
  std::uint64_t attributed = 0;
  bool saw_runs = false, saw_merge = false;
  for (const auto& [label, ios] : profile.rows()) {
    attributed += ios.total();
    saw_runs |= label == "sort/run-formation";
    saw_merge |= label == "sort/merge-pass";
  }
  EXPECT_TRUE(saw_runs);
  EXPECT_TRUE(saw_merge);
  EXPECT_EQ(attributed, env.dev.stats().total());
  env.ctx.set_profile(nullptr);
}

}  // namespace
}  // namespace emsplit

// Tests for the linear-I/O splitter sampler (the Hu et al. [6] substitute).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "em/stream.hpp"
#include "select/linear_splitters.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

struct SplitterCase {
  Workload workload;
  std::size_t n;
  std::size_t mem_blocks;
};

class LinearSplittersTest : public testing::TestWithParam<SplitterCase> {};

TEST_P(LinearSplittersTest, BucketBoundHoldsAndCostIsLinear) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  auto host = make_workload(p.workload, p.n, /*seed=*/21,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  env.ctx.budget().reset_peak();

  auto result = linear_splitters<Record>(env.ctx, input);

  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  const std::size_t mem = env.ctx.mem_records<Record>();
  EXPECT_LE(result.splitters.size(), std::max<std::size_t>(1, mem / 4));
  EXPECT_TRUE(std::is_sorted(result.splitters.begin(), result.splitters.end()));

  // Splitters must be elements of the input.
  auto sorted_ref = testutil::sorted_copy(host);
  for (const auto& s : result.splitters) {
    EXPECT_TRUE(std::binary_search(sorted_ref.begin(), sorted_ref.end(), s));
  }

  // Every bucket within the proven bound.
  const auto sizes = testutil::bucket_sizes(sorted_ref, result.splitters);
  const auto max_bucket = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_LE(max_bucket, result.bucket_bound)
      << "workload=" << to_string(p.workload) << " n=" << p.n;

  // And the bound itself is O((n/M) log(n/M)) + O(1): check against a
  // generous closed form.
  const double n = static_cast<double>(p.n);
  const double m = static_cast<double>(mem);
  const double levels = std::max(1.0, std::log(std::max(1.0, 8 * n / m)) /
                                          std::log(4.0) + 1.0);
  EXPECT_LE(static_cast<double>(result.bucket_bound),
            16.0 * (n / m + 1.0) * levels + 16.0);

  // Linear I/O: a small constant times n/B.
  const double b = static_cast<double>(env.ctx.block_records<Record>());
  EXPECT_LE(static_cast<double>(env.dev.stats().total()), 4.0 * (n / b) + 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearSplittersTest,
    testing::Values(SplitterCase{Workload::kUniform, 0, 8},
                    SplitterCase{Workload::kUniform, 1, 8},
                    SplitterCase{Workload::kUniform, 100, 8},
                    SplitterCase{Workload::kUniform, 20000, 8},
                    SplitterCase{Workload::kUniform, 20000, 64},
                    SplitterCase{Workload::kSorted, 20000, 8},
                    SplitterCase{Workload::kReverse, 20000, 8},
                    SplitterCase{Workload::kFewDistinct, 20000, 8},
                    SplitterCase{Workload::kOrganPipe, 20000, 8},
                    SplitterCase{Workload::kZipfian, 20000, 8},
                    SplitterCase{Workload::kBlockStriped, 20000, 8},
                    SplitterCase{Workload::kUniform, 100000, 16}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" + std::to_string(ti.param.n) +
             "_mb" + std::to_string(ti.param.mem_blocks);
    });

TEST(LinearSplittersTest, TinyInputReturnsEverything) {
  EmEnv env(256, 32);  // M/4 = 128 records > n
  auto host = make_workload(Workload::kUniform, 50, 3);
  auto input = materialize<Record>(env.ctx, host);
  auto result = linear_splitters<Record>(env.ctx, input);
  EXPECT_EQ(result.splitters.size(), 50u);
  EXPECT_EQ(result.bucket_bound, 1u);
}

TEST(LinearSplittersTest, SubRange) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 10000, 3);
  auto input = materialize<Record>(env.ctx, host);
  auto result = linear_splitters<Record>(env.ctx, input, 2000, 7000);
  std::vector<Record> range(host.begin() + 2000, host.begin() + 7000);
  auto sorted_ref = testutil::sorted_copy(range);
  const auto sizes = testutil::bucket_sizes(sorted_ref, result.splitters);
  EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()),
            result.bucket_bound);
}

}  // namespace
}  // namespace emsplit

// Failure injection: device faults mid-algorithm must propagate as
// DeviceFault, leak no memory budget, and leak no device blocks (strong
// resource safety of the RAII layers).  Re-running after the fault clears
// must succeed and produce correct output.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// Run `op` with a fault armed after `after` I/Os; returns true if the fault
/// fired.  Asserts that budget and device-block usage return to the
/// pre-operation baseline either way.
template <typename Op>
bool run_with_fault(EmEnv& env, std::uint64_t after, Op&& op) {
  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  env.dev.arm_fault_after(after);
  bool faulted = false;
  try {
    op();
  } catch (const DeviceFault&) {
    faulted = true;
  }
  env.dev.disarm_fault();
  EXPECT_EQ(env.ctx.budget().used(), mem_before)
      << "memory budget leaked (fault after " << after << " I/Os)";
  EXPECT_EQ(env.dev.allocated_blocks(), blocks_before)
      << "device blocks leaked (fault after " << after << " I/Os)";
  return faulted;
}

class FaultSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, ExternalSortIsFaultSafe) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 20000, 1);
  auto input = materialize<Record>(env.ctx, host);
  run_with_fault(env, GetParam(), [&] {
    auto sorted = external_sort<Record>(env.ctx, input);
  });
  // Afterwards the same operation succeeds and is correct.
  auto sorted = external_sort<Record>(env.ctx, input);
  EXPECT_TRUE(is_sorted_em(sorted));
}

TEST_P(FaultSweep, MultiSelectIsFaultSafe) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 20000, 2);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  const std::vector<std::uint64_t> ranks{1, 5000, 10000, 19999};
  run_with_fault(env, GetParam(), [&] {
    auto got = multi_select<Record>(env.ctx, input, ranks);
  });
  auto got = multi_select<Record>(env.ctx, input, ranks);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], testutil::rank_element(sorted_ref, ranks[i]));
  }
}

TEST_P(FaultSweep, PartitioningIsFaultSafe) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 20000, 3);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 16, .a = 100, .b = 5000};
  run_with_fault(env, GetParam(), [&] {
    auto r = approx_partitioning<Record>(env.ctx, input, spec);
  });
  auto r = approx_partitioning<Record>(env.ctx, input, spec);
  EXPECT_TRUE(verify_partitioning<Record>(input, r.data, r.bounds, spec).ok);
}

INSTANTIATE_TEST_SUITE_P(AfterIos, FaultSweep,
                         testing::Values(0, 1, 7, 100, 1000, 2500),
                         [](const auto& ti) {
                           return "io" + std::to_string(ti.param);
                         });

TEST(FaultSweepTest, FaultBeyondRunLengthDoesNotFire) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 5000, 4);
  auto input = materialize<Record>(env.ctx, host);
  const bool faulted = run_with_fault(env, 100'000'000, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });
  EXPECT_FALSE(faulted);
}

}  // namespace
}  // namespace emsplit

// Failure injection: device faults mid-algorithm must propagate as
// DeviceFault, leak no memory budget, and leak no device blocks (strong
// resource safety of the RAII layers).  Re-running after the fault clears
// must succeed and produce correct output.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// Run `op` with a fault armed after `after` I/Os; returns true if the fault
/// fired.  Asserts that budget and device-block usage return to the
/// pre-operation baseline either way.
template <typename Op>
bool run_with_fault(EmEnv& env, std::uint64_t after, Op&& op) {
  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  env.dev.arm_fault_after(after);
  bool faulted = false;
  try {
    op();
  } catch (const DeviceFault&) {
    faulted = true;
  }
  env.dev.disarm_fault();
  EXPECT_EQ(env.ctx.budget().used(), mem_before)
      << "memory budget leaked (fault after " << after << " I/Os)";
  EXPECT_EQ(env.dev.allocated_blocks(), blocks_before)
      << "device blocks leaked (fault after " << after << " I/Os)";
  return faulted;
}

class FaultSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, ExternalSortIsFaultSafe) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 20000, 1);
  auto input = materialize<Record>(env.ctx, host);
  run_with_fault(env, GetParam(), [&] {
    auto sorted = external_sort<Record>(env.ctx, input);
  });
  // Afterwards the same operation succeeds and is correct.
  auto sorted = external_sort<Record>(env.ctx, input);
  EXPECT_TRUE(is_sorted_em(sorted));
}

TEST_P(FaultSweep, MultiSelectIsFaultSafe) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 20000, 2);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  const std::vector<std::uint64_t> ranks{1, 5000, 10000, 19999};
  run_with_fault(env, GetParam(), [&] {
    auto got = multi_select<Record>(env.ctx, input, ranks);
  });
  auto got = multi_select<Record>(env.ctx, input, ranks);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], testutil::rank_element(sorted_ref, ranks[i]));
  }
}

TEST_P(FaultSweep, PartitioningIsFaultSafe) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 20000, 3);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 16, .a = 100, .b = 5000};
  run_with_fault(env, GetParam(), [&] {
    auto r = approx_partitioning<Record>(env.ctx, input, spec);
  });
  auto r = approx_partitioning<Record>(env.ctx, input, spec);
  EXPECT_TRUE(verify_partitioning<Record>(input, r.data, r.bounds, spec).ok);
}

INSTANTIATE_TEST_SUITE_P(AfterIos, FaultSweep,
                         testing::Values(0, 1, 7, 100, 1000, 2500),
                         [](const auto& ti) {
                           return "io" + std::to_string(ti.param);
                         });

TEST(FaultSweepTest, FaultBeyondRunLengthDoesNotFire) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 5000, 4);
  auto input = materialize<Record>(env.ctx, host);
  const bool faulted = run_with_fault(env, 100'000'000, [&] {
    auto s = external_sort<Record>(env.ctx, input);
  });
  EXPECT_FALSE(faulted);
}

// ---------------------------------------------------------------------------
// Transient faults and the bounded retry layer.

/// All records of `v`, read back through the stream layer.
std::vector<Record> dump(const EmVector<Record>& v) {
  std::vector<Record> out;
  out.reserve(v.size());
  StreamReader<Record> r(v);
  while (!r.done()) out.push_back(r.next());
  return out;
}

TEST(TransientFaults, RetriedRunMatchesFaultFreeRun) {
  auto host = make_workload(Workload::kUniform, 20000, 11);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_out = external_sort<Record>(ref.ctx, ref_in);
  const IoStats ref_io = ref.dev.stats();

  EmEnv env(256, 8);
  FaultPolicy policy;
  policy.max_retries = 4;
  env.ctx.set_fault_policy(policy);
  auto in = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  env.dev.arm_fault(FaultSchedule::fail_then_succeed(100, 2));
  auto out = external_sort<Record>(env.ctx, in);
  env.dev.disarm_fault();
  const IoStats io = env.dev.stats();

  // The determinism contract: retries re-issue only the blocks the fault
  // prevented, so the base counts match the fault-free run exactly and the
  // two faulting attempts are tallied in the separate retries counter.
  EXPECT_EQ(io.base(), ref_io.base());
  EXPECT_EQ(io.retries, 2u);
  EXPECT_EQ(dump(out), dump(ref_out));
}

TEST(TransientFaults, FailFastWithoutPolicy) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 20000, 12);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.arm_fault(FaultSchedule::fail_then_succeed(50, 1));
  try {
    auto s = external_sort<Record>(env.ctx, input);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& e) {
    // Default policy (max_retries = 0) is the classic fail-fast device; the
    // escaping fault still reports that a retry might have worked.
    EXPECT_TRUE(e.transient());
  }
  env.dev.disarm_fault();
  EXPECT_EQ(env.dev.stats().retries, 0u);
}

TEST(TransientFaults, RetryBudgetExhaustedRethrows) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 20000, 13);
  auto input = materialize<Record>(env.ctx, host);
  FaultPolicy policy;
  policy.max_retries = 2;
  env.ctx.set_fault_policy(policy);
  env.dev.reset_stats();
  env.dev.arm_fault(FaultSchedule::fail_then_succeed(50, 5));  // burst > budget
  try {
    auto s = external_sort<Record>(env.ctx, input);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& e) {
    EXPECT_TRUE(e.transient());
  }
  env.dev.disarm_fault();
  EXPECT_EQ(env.dev.stats().retries, 2u);
}

TEST(TransientFaults, EveryNthRetriedToCompletion) {
  auto host = make_workload(Workload::kUniform, 20000, 14);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_out = external_sort<Record>(ref.ctx, ref_in);
  const IoStats ref_io = ref.dev.stats();

  EmEnv env(256, 8);
  FaultPolicy policy;
  policy.max_retries = 2;
  env.ctx.set_fault_policy(policy);
  auto in = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  env.dev.arm_fault(FaultSchedule::every_nth(97));
  auto out = external_sort<Record>(env.ctx, in);
  env.dev.disarm_fault();
  const IoStats io = env.dev.stats();
  EXPECT_EQ(io.base(), ref_io.base());
  EXPECT_GT(io.retries, 0u);
  EXPECT_EQ(dump(out), dump(ref_out));
}

TEST(TransientFaults, ProbabilisticRetriedToCompletion) {
  auto host = make_workload(Workload::kUniform, 20000, 15);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_out = external_sort<Record>(ref.ctx, ref_in);
  const IoStats ref_io = ref.dev.stats();

  EmEnv env(256, 8);
  FaultPolicy policy;
  policy.max_retries = 8;
  env.ctx.set_fault_policy(policy);
  auto in = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  env.dev.arm_fault(FaultSchedule::probabilistic(0.02, 12345));
  auto out = external_sort<Record>(env.ctx, in);
  env.dev.disarm_fault();
  const IoStats io = env.dev.stats();
  EXPECT_EQ(io.base(), ref_io.base());
  EXPECT_GT(io.retries, 0u);
  EXPECT_EQ(dump(out), dump(ref_out));
}

TEST(PermanentFault, CarriesExactBlockRange) {
  MemoryBlockDevice dev(256);
  ExtentGuard extent(dev, dev.allocate(8));
  const BlockRange r = extent.range();
  std::vector<std::byte> buf(8 * 256);
  dev.write_blocks(r.first, 8, buf);
  dev.reset_stats();
  dev.arm_fault_after(3);
  try {
    dev.read_blocks(r.first, 8, std::span<std::byte>(buf));
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_STREQ(e.op(), "read");
    EXPECT_EQ(e.first_block(), r.first);
    EXPECT_EQ(e.block_count(), 8u);
    EXPECT_EQ(e.completed(), 3u);
  }
  // The three blocks that transferred before the fault were counted.
  EXPECT_EQ(dev.stats().reads, 3u);
}

TEST(ExtentGuardTest, FreesOnUnwindAndReleases) {
  MemoryBlockDevice dev(256);
  const auto baseline = dev.allocated_blocks();
  try {
    ExtentGuard guard(dev, dev.allocate(4));
    EXPECT_EQ(dev.allocated_blocks(), baseline + 4);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(dev.allocated_blocks(), baseline);

  ExtentGuard guard(dev, dev.allocate(4));
  const BlockRange kept = guard.release();  // ownership transferred out
  EXPECT_EQ(dev.allocated_blocks(), baseline + 4);
  dev.deallocate(kept);
  EXPECT_EQ(dev.allocated_blocks(), baseline);
}

// ---------------------------------------------------------------------------
// Corruption detection.

TEST(Checksums, RoundTripVerifiesAndFlippedBitDetected) {
  MemoryBlockDevice dev(256);
  dev.set_checksums(true);
  ExtentGuard extent(dev, dev.allocate(4));
  const BlockRange r = extent.range();
  std::vector<std::byte> buf(4 * 256);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 37 + 11);
  }
  dev.write_blocks(r.first, 4, buf);
  std::vector<std::byte> got(buf.size());
  dev.read_blocks(r.first, 4, got);  // clean round trip: no throw
  EXPECT_EQ(got, buf);

  dev.corrupt_bit(r.first + 2, 13);
  try {
    dev.read_blocks(r.first, 4, got);
    FAIL() << "expected CorruptBlock";
  } catch (const CorruptBlock& e) {
    // Corruption is permanent: the same bytes come back on every retry.
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.first_block(), r.first + 2);
  }
}

TEST(Checksums, PrefixReadOfFullWriteIsUnverified) {
  MemoryBlockDevice dev(256);
  dev.set_checksums(true);
  ExtentGuard extent(dev, dev.allocate(1));
  const BlockId b = extent.range().first;
  std::vector<std::byte> buf(256, std::byte{0x5A});
  dev.write(b, buf);
  dev.corrupt_bit(b, 3);
  // The recorded hash covers the full block; a half-block prefix read moves
  // fewer bytes than the hash covers, so it is deliberately left unverified.
  std::vector<std::byte> half(128);
  dev.read(b, half);
  // A full-block read re-hashes everything and trips.
  EXPECT_THROW(dev.read(b, std::span<std::byte>(buf)), CorruptBlock);
}

TEST(Checksums, RecycledExtentDoesNotTripStaleSums) {
  MemoryBlockDevice dev(256);
  dev.set_checksums(true);
  BlockRange first_extent;
  {
    ExtentGuard extent(dev, dev.allocate(2));
    first_extent = extent.range();
    std::vector<std::byte> buf(2 * 256, std::byte{0xAB});
    dev.write_blocks(first_extent.first, 2, buf);
  }
  // First-fit hands the same blocks back; their checksum entries died with
  // the deallocation, so reading before writing must not trip stale sums.
  ExtentGuard extent(dev, dev.allocate(2));
  ASSERT_EQ(extent.range(), first_extent);
  std::vector<std::byte> got(2 * 256);
  dev.read_blocks(extent.range().first, 2, got);  // no throw
}

TEST(Checksums, FullSortIsCleanAndCostIdentical) {
  auto host = make_workload(Workload::kUniform, 20000, 16);

  EmEnv plain(256, 8);
  auto plain_in = materialize<Record>(plain.ctx, host);
  plain.dev.reset_stats();
  auto plain_out = external_sort<Record>(plain.ctx, plain_in);
  const IoStats plain_io = plain.dev.stats();

  EmEnv sums(256, 8);
  sums.dev.set_checksums(true);
  auto sums_in = materialize<Record>(sums.ctx, host);
  sums.dev.reset_stats();
  auto sums_out = external_sort<Record>(sums.ctx, sums_in);
  const IoStats sums_io = sums.dev.stats();

  // Verification happens inside the transfer the model already charges for:
  // zero extra I/Os, zero false positives, identical output.
  EXPECT_EQ(sums_io, plain_io);
  EXPECT_EQ(dump(sums_out), dump(plain_out));
}

// ---------------------------------------------------------------------------
// Async pipeline error path (the S2 regression): a fault in a background
// write-behind job must surface exactly once, and a caller that catches it
// can retry finish() without re-writing the final group.

TEST(AsyncPipelineFault, BackgroundFaultSurfacesExactlyOnce) {
  EmEnv env(256, 64);
  env.ctx.set_io_tuning({2, 3, true});
  const std::size_t n = 4000;
  EmVector<Record> out(env.ctx, n);
  env.dev.arm_fault_after(10);  // permanent; lands inside a write-behind job
  StreamWriter<Record> writer(out);
  std::size_t thrown = 0;
  try {
    for (std::size_t i = 0; i < n; ++i) {
      writer.push(Record{i, i});
    }
    writer.finish();
  } catch (const DeviceFault&) {
    ++thrown;
  }
  EXPECT_EQ(thrown, 1u);
  // Exactly-once delivery: the rethrow consumed the parked error, so nothing
  // is left to double-report from a later wait or drain.
  ASSERT_NE(env.ctx.pipeline(), nullptr);
  EXPECT_EQ(env.ctx.pipeline()->pending_errors(), 0u);
  env.dev.disarm_fault();
  // A retried finish() drains the remaining write-behind and publishes the
  // size without re-writing the final group.
  writer.finish();
  EXPECT_EQ(out.size(), writer.count());
}

TEST(AsyncPipelineFault, TransientFaultInWorkerRetriedToCompletion) {
  auto host = make_workload(Workload::kUniform, 20000, 17);

  EmEnv ref(256, 64);
  ref.ctx.set_io_tuning({2, 3, true});
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_out = external_sort<Record>(ref.ctx, ref_in);
  const IoStats ref_io = ref.dev.stats();

  EmEnv env(256, 64);
  env.ctx.set_io_tuning({2, 3, true});
  FaultPolicy policy;
  policy.max_retries = 4;
  env.ctx.set_fault_policy(policy);
  auto in = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  env.dev.arm_fault(FaultSchedule::fail_then_succeed(200, 2));
  auto out = external_sort<Record>(env.ctx, in);
  env.dev.disarm_fault();
  const IoStats io = env.dev.stats();

  // The retry loop lives in the device's transfer core, so a transient fault
  // that fires on the background I/O worker is retried there and never
  // surfaces — base counts and output match the fault-free async run.
  EXPECT_EQ(io.base(), ref_io.base());
  EXPECT_EQ(io.retries, 2u);
  EXPECT_EQ(dump(out), dump(ref_out));
}

}  // namespace
}  // namespace emsplit

// Tests for the loser tree and external merge sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "em/context.hpp"
#include "em/stream.hpp"
#include "sort/external_sort.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 256;  // 16 Records per block

/// In-memory cursor over a sorted vector, for unit-testing the tree alone.
class VecCursor {
 public:
  explicit VecCursor(std::vector<int> v) : v_(std::move(v)) {}
  [[nodiscard]] bool done() const { return i_ == v_.size(); }
  [[nodiscard]] const int& peek() const { return v_[i_]; }
  void advance() { ++i_; }

 private:
  std::vector<int> v_;
  std::size_t i_ = 0;
};

TEST(LoserTreeTest, MergesThreeSources) {
  std::vector<VecCursor> cs;
  cs.emplace_back(std::vector<int>{1, 4, 7});
  cs.emplace_back(std::vector<int>{2, 5, 8});
  cs.emplace_back(std::vector<int>{0, 3, 6, 9});
  LoserTree<int, VecCursor> tree(std::move(cs));
  std::vector<int> out;
  while (!tree.done()) out.push_back(tree.next());
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(LoserTreeTest, HandlesEmptyAndSingletonSources) {
  std::vector<VecCursor> cs;
  cs.emplace_back(std::vector<int>{});
  cs.emplace_back(std::vector<int>{5});
  cs.emplace_back(std::vector<int>{});
  cs.emplace_back(std::vector<int>{1, 9});
  LoserTree<int, VecCursor> tree(std::move(cs));
  std::vector<int> out;
  while (!tree.done()) out.push_back(tree.next());
  EXPECT_EQ(out, (std::vector<int>{1, 5, 9}));
}

TEST(LoserTreeTest, SingleSourcePassesThrough) {
  std::vector<VecCursor> cs;
  cs.emplace_back(std::vector<int>{3, 1, 2});  // not sorted: tree won't fix it
  LoserTree<int, VecCursor> tree(std::move(cs));
  std::vector<int> out;
  while (!tree.done()) out.push_back(tree.next());
  EXPECT_EQ(out, (std::vector<int>{3, 1, 2}));
}

TEST(LoserTreeTest, AllSourcesEmpty) {
  std::vector<VecCursor> cs;
  cs.emplace_back(std::vector<int>{});
  cs.emplace_back(std::vector<int>{});
  LoserTree<int, VecCursor> tree(std::move(cs));
  EXPECT_TRUE(tree.done());
}

TEST(LoserTreeTest, StableAcrossEqualKeys) {
  // Equal keys are emitted in source order.
  std::vector<VecCursor> cs;
  cs.emplace_back(std::vector<int>{2, 2});
  cs.emplace_back(std::vector<int>{2});
  LoserTree<int, VecCursor> tree(std::move(cs));
  EXPECT_EQ(tree.winner_index(), 0u);
  (void)tree.next();
  EXPECT_EQ(tree.winner_index(), 0u);
  (void)tree.next();
  EXPECT_EQ(tree.winner_index(), 1u);
}

TEST(LoserTreeTest, LargeFanInRandom) {
  SplitMix64 rng(99);
  std::vector<VecCursor> cs;
  std::vector<int> all;
  for (int s = 0; s < 37; ++s) {
    std::vector<int> v(static_cast<std::size_t>(rng.next_below(50)));
    for (auto& x : v) x = static_cast<int>(rng.next_below(1000));
    std::sort(v.begin(), v.end());
    all.insert(all.end(), v.begin(), v.end());
    cs.emplace_back(std::move(v));
  }
  std::sort(all.begin(), all.end());
  LoserTree<int, VecCursor> tree(std::move(cs));
  std::vector<int> out;
  while (!tree.done()) out.push_back(tree.next());
  EXPECT_EQ(out, all);
}

// ---------------------------------------------------------------------------
// External sort
// ---------------------------------------------------------------------------

struct SortCase {
  Workload workload;
  std::size_t n;
  std::size_t mem_blocks;
};

class ExternalSortTest : public testing::TestWithParam<SortCase> {};

TEST_P(ExternalSortTest, SortsAndStaysInBudgetAndBound) {
  const auto& p = GetParam();
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, p.mem_blocks * kBlockBytes);
  auto host = make_workload(p.workload, p.n, /*seed=*/11,
                            ctx.block_records<Record>());
  auto input = materialize<Record>(ctx, host);
  dev.reset_stats();
  ctx.budget().reset_peak();

  auto sorted = external_sort<Record>(ctx, input);

  EXPECT_LE(ctx.budget().peak(), ctx.budget().capacity());
  ASSERT_EQ(sorted.size(), p.n);
  EXPECT_TRUE(is_sorted_em(sorted));
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(to_host(sorted), expect);

  // I/O bound: measured <= c * 2 * (N/B) * (1 + passes).
  const double n = static_cast<double>(p.n);
  const double b = static_cast<double>(ctx.block_records<Record>());
  const double m = static_cast<double>(ctx.mem_records<Record>());
  const double bound = 4.0 * (n / b + 1.0) *
                       (1.0 + formulas::lg_clamped(m / b, n / m));
  EXPECT_LE(static_cast<double>(dev.stats().total()), bound + 8.0)
      << "N=" << p.n << " M/B=" << p.mem_blocks;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortTest,
    testing::Values(
        SortCase{Workload::kUniform, 0, 8}, SortCase{Workload::kUniform, 1, 8},
        SortCase{Workload::kUniform, 15, 8},
        SortCase{Workload::kUniform, 1000, 4},
        SortCase{Workload::kUniform, 10000, 4},
        SortCase{Workload::kUniform, 10000, 64},
        SortCase{Workload::kSorted, 5000, 8},
        SortCase{Workload::kReverse, 5000, 8},
        SortCase{Workload::kFewDistinct, 5000, 8},
        SortCase{Workload::kOrganPipe, 5000, 8},
        SortCase{Workload::kZipfian, 5000, 8},
        SortCase{Workload::kBlockStriped, 8192, 8},
        SortCase{Workload::kUniform, 100000, 16}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" +
             std::to_string(ti.param.n) + "_mb" +
             std::to_string(ti.param.mem_blocks);
    });

TEST(ExternalSortTest, CustomComparatorDescending) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 8 * kBlockBytes);
  auto host = make_workload(Workload::kUniform, 2000, 5);
  auto input = materialize<Record>(ctx, host);
  auto sorted = external_sort<Record>(ctx, input, std::greater<Record>());
  EXPECT_TRUE(is_sorted_em(sorted, std::greater<Record>()));
}

TEST(ExternalSortTest, InputVectorUntouched) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 8 * kBlockBytes);
  auto host = make_workload(Workload::kUniform, 3000, 5);
  auto input = materialize<Record>(ctx, host);
  auto sorted = external_sort<Record>(ctx, input);
  EXPECT_EQ(to_host(input), host);
}

TEST(ExternalSortTest, DeviceSpaceIsRecycled) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 8 * kBlockBytes);
  auto host = make_workload(Workload::kUniform, 50000, 5);
  auto input = materialize<Record>(ctx, host);
  const auto input_blocks = dev.allocated_blocks();
  {
    auto sorted = external_sort<Record>(ctx, input);
    // Live blocks: input + result (ping-pong scratch freed on the way).
    EXPECT_LE(dev.allocated_blocks(), 2 * input_blocks + 2);
  }
  EXPECT_EQ(dev.allocated_blocks(), input_blocks);
}

}  // namespace
}  // namespace emsplit

// Tests for multi-selection (paper §4.2, Theorem 4) and single-rank
// selection built on the base case.
#include <gtest/gtest.h>

#include <algorithm>

#include "em/stream.hpp"
#include "select/multi_select.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(SelectRankTest, MedianMinMaxOnUniform) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 9999, 13);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  EXPECT_EQ(select_rank<Record>(env.ctx, input, 1), sorted_ref.front());
  EXPECT_EQ(select_rank<Record>(env.ctx, input, 9999), sorted_ref.back());
  EXPECT_EQ(select_rank<Record>(env.ctx, input, 5000), sorted_ref[4999]);
}

TEST(SelectRankTest, LinearIosForSingleRank) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 50000, 13);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  (void)select_rank<Record>(env.ctx, input, 25000);
  const double b = static_cast<double>(env.ctx.block_records<Record>());
  const double n = 50000.0;
  EXPECT_LE(static_cast<double>(env.dev.stats().total()), 40.0 * n / b + 64.0);
}

TEST(SelectRankTest, SubRangeSelection) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 10000, 17);
  auto input = materialize<Record>(env.ctx, host);
  std::vector<Record> mid(host.begin() + 3000, host.begin() + 8000);
  std::sort(mid.begin(), mid.end());
  EXPECT_EQ(select_rank<Record>(env.ctx, input, 3000, 8000, 42), mid[41]);
}

struct MsCase {
  Workload workload;
  std::size_t n;
  std::size_t k;
  std::size_t mem_blocks;
  std::uint64_t seed;
};

class MultiSelectTest : public testing::TestWithParam<MsCase> {};

TEST_P(MultiSelectTest, MatchesOracleWithinBudgetAndBound) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  auto host = make_workload(p.workload, p.n, p.seed,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);

  SplitMix64 rng(p.seed * 977 + 5);
  std::vector<std::uint64_t> ranks(p.k);
  for (auto& r : ranks) r = 1 + rng.next_below(p.n);

  env.dev.reset_stats();
  env.ctx.budget().reset_peak();
  auto got = multi_select<Record>(env.ctx, input, ranks);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());

  ASSERT_EQ(got.size(), p.k);
  for (std::size_t i = 0; i < p.k; ++i) {
    EXPECT_EQ(got[i], testutil::rank_element(sorted_ref, ranks[i]))
        << "rank " << ranks[i];
  }

  // Theorem 4 shape: O((N/B) lg_{M/B}(K/B)) with a generous constant (the
  // multi-partition detour costs several scans per level).
  const double n = static_cast<double>(p.n);
  const double b = static_cast<double>(env.ctx.block_records<Record>());
  const double m = static_cast<double>(env.ctx.mem_records<Record>());
  const double k = static_cast<double>(p.k);
  const double bound =
      60.0 * (n / b + 1.0) * formulas::lg_clamped(m / b, k / b) + 64.0;
  EXPECT_LE(static_cast<double>(env.dev.stats().total()), bound)
      << "n=" << p.n << " k=" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiSelectTest,
    testing::Values(
        MsCase{Workload::kUniform, 5000, 1, 8, 1},
        MsCase{Workload::kUniform, 5000, 3, 8, 2},
        MsCase{Workload::kUniform, 20000, 8, 96, 3},
        MsCase{Workload::kUniform, 20000, 40, 480, 4},
        // General case: K far beyond the group cap forces multi-partition.
        MsCase{Workload::kUniform, 30000, 200, 96, 5},
        MsCase{Workload::kUniform, 30000, 1000, 96, 6},
        MsCase{Workload::kSorted, 20000, 100, 96, 7},
        MsCase{Workload::kReverse, 20000, 100, 96, 8},
        MsCase{Workload::kFewDistinct, 20000, 100, 96, 9},
        MsCase{Workload::kOrganPipe, 20000, 100, 96, 10},
        MsCase{Workload::kZipfian, 20000, 100, 96, 11},
        MsCase{Workload::kBlockStriped, 20000, 100, 96, 12},
        MsCase{Workload::kUniform, 100000, 5000, 128, 13}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" + std::to_string(ti.param.n) +
             "_k" + std::to_string(ti.param.k) + "_mb" +
             std::to_string(ti.param.mem_blocks);
    });

TEST(MultiSelectTest, DuplicateAndUnsortedRanksReturnInQueryOrder) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 4000, 3);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  std::vector<std::uint64_t> ranks{3999, 17, 17, 1, 2000, 17};
  auto got = multi_select<Record>(env.ctx, input, ranks);
  ASSERT_EQ(got.size(), ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], testutil::rank_element(sorted_ref, ranks[i]));
  }
}

TEST(MultiSelectTest, AllRanksEqualsSorting) {
  EmEnv env(256, 96);
  const std::size_t n = 2000;
  auto host = make_workload(Workload::kUniform, n, 4);
  auto input = materialize<Record>(env.ctx, host);
  std::vector<std::uint64_t> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = i + 1;
  auto got = multi_select<Record>(env.ctx, input, ranks);
  EXPECT_EQ(got, testutil::sorted_copy(host));
}

TEST(MultiSelectTest, RejectsOutOfRangeRanks) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)multi_select<Record>(env.ctx, input, {0}),
               std::invalid_argument);
  EXPECT_THROW((void)multi_select<Record>(env.ctx, input, {101}),
               std::invalid_argument);
}

TEST(MultiSelectTest, EmptyRankList) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_TRUE(multi_select<Record>(env.ctx, input, {}).empty());
}

TEST(MultiSelectTest, RankEqualToNInGeneralCase) {
  // Rank n as the last pivot candidate exercises the dropped-pivot path.
  EmEnv env(256, 96);
  const std::size_t n = 30000;
  auto host = make_workload(Workload::kUniform, n, 6);
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  const std::size_t m = intermixed_max_groups<Record>(env.ctx);
  // Build ranks so that rank n lands exactly at a pivot index (i*m - 1).
  std::vector<std::uint64_t> ranks;
  for (std::size_t i = 0; i < 2 * m; ++i) {
    ranks.push_back(i + 1);  // 1..2m
  }
  ranks[2 * m - 1] = n;  // the 2m-th unique rank is n
  auto got = multi_select<Record>(env.ctx, input, ranks);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], testutil::rank_element(sorted_ref, ranks[i]));
  }
}

}  // namespace
}  // namespace emsplit

// Tests for approximate K-splitters (paper §5.1, Theorem 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/splitters.hpp"
#include "core/verify.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

struct SpCase {
  Workload workload;
  std::size_t n;
  std::uint64_t k;
  std::uint64_t a;
  std::uint64_t b;  // use ~0ULL for "right-grounded" (clamped to n)
  std::size_t mem_blocks;
};

class ApproxSplittersTest : public testing::TestWithParam<SpCase> {};

TEST_P(ApproxSplittersTest, OutputSatisfiesDefinitionWithinBudget) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  auto host = make_workload(p.workload, p.n, /*seed=*/77,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = p.k, .a = p.a,
                        .b = std::min<std::uint64_t>(p.b, p.n)};

  env.ctx.budget().reset_peak();
  auto splitters = approx_splitters<Record>(env.ctx, input, spec);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());

  auto check = verify_splitters<Record>(input, splitters, spec);
  EXPECT_TRUE(check.ok) << check.reason << " (workload "
                        << to_string(p.workload) << ", K=" << p.k
                        << ", a=" << p.a << ", b=" << spec.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxSplittersTest,
    testing::Values(
        // Right-grounded (b = N): sublinear regime aK << N.
        SpCase{Workload::kUniform, 40000, 16, 10, ~0ULL, 96},
        SpCase{Workload::kUniform, 40000, 64, 2, ~0ULL, 96},
        SpCase{Workload::kUniform, 40000, 8, 0, ~0ULL, 96},   // a = 0 corner
        SpCase{Workload::kUniform, 40000, 16, 2500, ~0ULL, 96},  // aK = N
        // Left-grounded (a = 0).
        SpCase{Workload::kUniform, 40000, 16, 0, 2500, 96},  // bK = N
        SpCase{Workload::kUniform, 40000, 16, 0, 5000, 96},
        SpCase{Workload::kUniform, 40000, 16, 0, 20000, 96},  // K' << K pads
        // Two-sided: cheap guard regimes.
        SpCase{Workload::kUniform, 40000, 16, 2000, 3000, 96},  // a >= N/2K
        SpCase{Workload::kUniform, 40000, 16, 100, 4000, 96},   // b <= 2N/K
        // Two-sided: general regime (a < N/2K, b > 2N/K).
        SpCase{Workload::kUniform, 40000, 16, 100, 6000, 96},
        SpCase{Workload::kUniform, 40000, 64, 10, 2000, 96},
        SpCase{Workload::kUniform, 40000, 8, 1, 39999, 96},
        // Workload shapes through the general two-sided path.
        SpCase{Workload::kSorted, 30000, 16, 100, 5000, 96},
        SpCase{Workload::kReverse, 30000, 16, 100, 5000, 96},
        SpCase{Workload::kFewDistinct, 30000, 16, 100, 5000, 96},
        SpCase{Workload::kOrganPipe, 30000, 16, 100, 5000, 96},
        SpCase{Workload::kZipfian, 30000, 16, 100, 5000, 96},
        SpCase{Workload::kBlockStriped, 30000, 16, 100, 5000, 96},
        // Exact quantile (a = b = N/K): the classic equi-depth histogram.
        SpCase{Workload::kUniform, 32768, 32, 1024, 1024, 96},
        // K = 2 minimal, K large.
        SpCase{Workload::kUniform, 10000, 2, 10, 9000, 96},
        SpCase{Workload::kUniform, 30000, 500, 10, 30000, 128},
        // Odd geometries: larger memory, and the 6-block minimum
        // multi-partition supports (2 sinks + reader + edge transient +
        // cut table + slack).
        SpCase{Workload::kUniform, 20000, 16, 100, 5000, 384},
        SpCase{Workload::kBlockStriped, 20000, 8, 50, 10000, 6},
        SpCase{Workload::kZipfian, 20000, 32, 0, 1250, 6}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" + std::to_string(ti.param.n) +
             "_k" + std::to_string(ti.param.k) + "_a" +
             std::to_string(ti.param.a) + "_b" +
             (ti.param.b == ~0ULL ? std::string("N")
                                  : std::to_string(ti.param.b));
    });

TEST(ApproxSplittersTest, RightGroundedIsSublinear) {
  // The headline result: with aK << N the algorithm must NOT read all of S.
  EmEnv env(256, 64);
  const std::size_t n = 200000;
  auto host = make_workload(Workload::kUniform, n, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 8, .a = 16, .b = n};  // aK = 128 records
  env.dev.reset_stats();
  auto splitters = approx_splitters<Record>(env.ctx, input, spec);
  const auto total = env.dev.stats().total();
  const auto full_scan = n / env.ctx.block_records<Record>();
  EXPECT_LT(total, full_scan / 10)
      << "right-grounded splitters should be far sublinear; got " << total
      << " I/Os vs scan " << full_scan;
  EXPECT_TRUE(verify_splitters<Record>(input, splitters, spec).ok);
}

TEST(ApproxSplittersTest, KEqualsOneReturnsEmpty) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_TRUE(
      approx_splitters<Record>(env.ctx, input, {.k = 1, .a = 0, .b = 100})
          .empty());
}

TEST(ApproxSplittersTest, KEqualsN) {
  EmEnv env(256, 96);
  const std::size_t n = 3000;
  auto host = make_workload(Workload::kUniform, n, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = n, .a = 1, .b = 1};
  auto splitters = approx_splitters<Record>(env.ctx, input, spec);
  EXPECT_TRUE(verify_splitters<Record>(input, splitters, spec).ok);
}

TEST(ApproxSplittersTest, RejectsInfeasibleSpecs) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  // a*K > N.
  EXPECT_THROW((void)approx_splitters<Record>(env.ctx, input,
                                              {.k = 10, .a = 11, .b = 100}),
               std::invalid_argument);
  // b*K < N.
  EXPECT_THROW((void)approx_splitters<Record>(env.ctx, input,
                                              {.k = 10, .a = 0, .b = 9}),
               std::invalid_argument);
  // a > b.
  EXPECT_THROW((void)approx_splitters<Record>(env.ctx, input,
                                              {.k = 10, .a = 50, .b = 20}),
               std::invalid_argument);
  // K = 0 and K > N.
  EXPECT_THROW((void)approx_splitters<Record>(env.ctx, input,
                                              {.k = 0, .a = 0, .b = 100}),
               std::invalid_argument);
  EXPECT_THROW((void)approx_splitters<Record>(env.ctx, input,
                                              {.k = 101, .a = 0, .b = 100}),
               std::invalid_argument);
}

TEST(VerifySplittersTest, DetectsBadAnswers) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kSorted, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 4, .a = 10, .b = 50};
  // Unbalanced splitters: first bucket too small.
  std::vector<Record> bad{host[2], host[39], host[69]};  // sorted input
  auto r1 = verify_splitters<Record>(input, bad, spec);
  EXPECT_FALSE(r1.ok);
  // Non-member splitter.
  std::vector<Record> alien{Record{.key = 24, .payload = 999},
                            host[49], host[74]};
  EXPECT_FALSE(verify_splitters<Record>(input, alien, spec).ok);
  // Wrong count.
  EXPECT_FALSE(verify_splitters<Record>(input, {host[49]}, spec).ok);
  // A correct answer passes.
  std::vector<Record> good{host[24], host[49], host[74]};
  auto r2 = verify_splitters<Record>(input, good, spec);
  EXPECT_TRUE(r2.ok) << r2.reason;
  EXPECT_EQ(r2.sizes, (std::vector<std::uint64_t>{25, 25, 25, 25}));
}

}  // namespace
}  // namespace emsplit

// Tests for the application layer (histogram, load balancing) and the
// sort-based baselines.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/histogram.hpp"
#include "apps/load_balance.hpp"
#include "baselines/sort_baseline.hpp"
#include "core/verify.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(HistogramTest, ExactEquiDepthBucketsBalanced) {
  EmEnv env(256, 96);
  const std::size_t n = 32768;
  auto host = make_workload(Workload::kUniform, n, 3);
  auto data = materialize<Record>(env.ctx, host);
  auto h = build_equi_depth_histogram<Record>(env.ctx, data, 32, 0.0);
  ASSERT_EQ(h.buckets(), 32u);
  EXPECT_EQ(h.total, n);
  for (const auto s : h.sizes) EXPECT_EQ(s, n / 32);
}

TEST(HistogramTest, SlackLoosensBucketsAndCutsCost) {
  EmEnv env(256, 96);
  const std::size_t n = 65536;
  auto host = make_workload(Workload::kUniform, n, 4);
  auto data = materialize<Record>(env.ctx, host);

  env.dev.reset_stats();
  auto exact = build_equi_depth_histogram<Record>(env.ctx, data, 64, 0.0);
  const auto exact_ios = env.dev.stats().total();

  env.dev.reset_stats();
  auto loose = build_equi_depth_histogram<Record>(env.ctx, data, 64, 0.5);
  const auto loose_ios = env.dev.stats().total();

  const std::uint64_t target = n / 64;
  for (const auto s : loose.sizes) {
    EXPECT_GE(s, target / 2);
    EXPECT_LE(s, 3 * target / 2 + 1);
  }
  // The relaxed build must not be more expensive (usually cheaper).
  EXPECT_LE(loose_ios, exact_ios + 8) << "exact=" << exact_ios
                                      << " loose=" << loose_ios;
  (void)exact;
}

TEST(HistogramTest, RankAndRangeEstimatesWithinBucketError) {
  EmEnv env(256, 96);
  const std::size_t n = 20000;
  auto host = make_workload(Workload::kUniform, n, 5);
  auto data = materialize<Record>(env.ctx, host);
  auto h = build_equi_depth_histogram<Record>(env.ctx, data, 50, 0.25);
  auto sorted_ref = testutil::sorted_copy(host);
  const std::uint64_t max_bucket =
      *std::max_element(h.sizes.begin(), h.sizes.end());

  SplitMix64 rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const auto idx = static_cast<std::size_t>(rng.next_below(n));
    const Record x = sorted_ref[idx];
    const auto est = h.estimate_rank(x);
    const auto real = static_cast<std::uint64_t>(idx + 1);
    const auto err = est > real ? est - real : real - est;
    EXPECT_LE(err, max_bucket) << "rank estimate off by more than one bucket";
  }
}

TEST(HistogramTest, RejectsBadParameters) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto data = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)build_equi_depth_histogram<Record>(env.ctx, data, 0),
               std::invalid_argument);
  EXPECT_THROW((void)build_equi_depth_histogram<Record>(env.ctx, data, 101),
               std::invalid_argument);
  EXPECT_THROW(
      (void)build_equi_depth_histogram<Record>(env.ctx, data, 10, -0.5),
      std::invalid_argument);
}

TEST(LoadBalanceTest, PerfectBalance) {
  EmEnv env(256, 96);
  const std::size_t n = 16384;
  auto host = make_workload(Workload::kZipfian, n, 6, 16, 64);
  auto data = materialize<Record>(env.ctx, host);
  auto plan = balance_load<Record>(env.ctx, data, 16, 0.0);
  EXPECT_EQ(plan.min_load, n / 16);
  EXPECT_EQ(plan.max_load, n / 16);
  EXPECT_DOUBLE_EQ(plan.imbalance(), 1.0);
}

TEST(LoadBalanceTest, ToleranceRespectedAndCheaper) {
  EmEnv env(256, 96);
  const std::size_t n = 65536;
  auto host = make_workload(Workload::kUniform, n, 7);
  auto data = materialize<Record>(env.ctx, host);

  env.dev.reset_stats();
  auto strict = balance_load<Record>(env.ctx, data, 64, 0.0);
  const auto strict_ios = env.dev.stats().total();

  env.dev.reset_stats();
  auto loose = balance_load<Record>(env.ctx, data, 64, 0.5);
  const auto loose_ios = env.dev.stats().total();

  EXPECT_LE(loose.imbalance(), 1.5 + 1e-6);
  EXPECT_GE(loose.min_load, n / 64 / 2);
  EXPECT_LE(loose_ios, strict_ios + 8);
  (void)strict;
}

TEST(SortBaselineTest, MultiSelectMatchesOptimal) {
  EmEnv env(256, 96);
  auto host = make_workload(Workload::kUniform, 20000, 9);
  auto input = materialize<Record>(env.ctx, host);
  const std::vector<std::uint64_t> ranks{1, 7, 500, 9999, 20000};
  auto a = sort_multi_select<Record>(env.ctx, input, ranks);
  auto b = multi_select<Record>(env.ctx, input, ranks);
  EXPECT_EQ(a, b);
  auto c = naive_multi_select<Record>(env.ctx, input, ranks);
  EXPECT_EQ(a, c);
}

TEST(SortBaselineTest, SplittersAndPartitioningAreValid) {
  EmEnv env(256, 96);
  const std::size_t n = 20000;
  auto host = make_workload(Workload::kUniform, n, 10);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 10, .a = 1000, .b = 3000};
  auto s = sort_splitters<Record>(env.ctx, input, spec);
  EXPECT_TRUE(verify_splitters<Record>(input, s, spec).ok);
  auto p = sort_partitioning<Record>(env.ctx, input, spec);
  EXPECT_TRUE(verify_partitioning<Record>(input, p.data, p.bounds, spec).ok);
}

TEST(SortBaselineTest, OptimalBeatsSortOnIos) {
  // The headline comparison: two-sided splitters vs full sort, roomy [a,b].
  // Geometry with several merge passes (N >> M, modest M/B) so the log gap
  // the paper proves is visible through the constants.
  EmEnv env(4096, 8);
  const std::size_t n = 500000;
  auto host = make_workload(Workload::kUniform, n, 11);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 32, .a = 16, .b = n / 4};

  env.dev.reset_stats();
  auto fast = approx_splitters<Record>(env.ctx, input, spec);
  const auto fast_ios = env.dev.stats().total();

  env.dev.reset_stats();
  auto slow = sort_splitters<Record>(env.ctx, input, spec);
  const auto slow_ios = env.dev.stats().total();

  EXPECT_LT(fast_ios, slow_ios) << "optimal should beat sorting";
  EXPECT_TRUE(verify_splitters<Record>(input, fast, spec).ok);
  (void)slow;
}

}  // namespace
}  // namespace emsplit

// Tests for RangeWriter — the offset writer with read-merge-write edges that
// lets adjacent ranges share blocks safely.
#include <gtest/gtest.h>

#include <algorithm>

#include "em/stream.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(RangeWriterTest, AlignedRangeWritesPureBlocks) {
  EmEnv env(256, 16);
  const std::size_t b = env.ctx.block_records<Record>();
  EmVector<Record> vec(env.ctx, 4 * b);
  vec.set_size(4 * b);
  env.dev.reset_stats();
  RangeWriter<Record> w(vec, b);  // block-aligned start
  for (std::size_t i = 0; i < 2 * b; ++i) {
    w.push(Record{.key = i, .payload = 1});
  }
  w.finish();
  // Fully covered blocks: no reads at all.
  EXPECT_EQ(env.dev.stats().reads, 0u);
  EXPECT_EQ(env.dev.stats().writes, 2u);
}

TEST(RangeWriterTest, UnalignedEdgesPreserveNeighbors) {
  EmEnv env(256, 16);
  const std::size_t b = env.ctx.block_records<Record>();
  const std::size_t n = 4 * b;
  std::vector<Record> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = Record{.key = i, .payload = 0};
  auto vec = materialize<Record>(env.ctx, base);

  const std::size_t start = b / 2 + 1, len = 2 * b - 3;
  RangeWriter<Record> w(vec, start);
  for (std::size_t i = 0; i < len; ++i) {
    w.push(Record{.key = 1000 + i, .payload = 9});
  }
  w.finish();

  auto all = to_host(vec);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= start && i < start + len) {
      EXPECT_EQ(all[i].key, 1000 + (i - start)) << i;
    } else {
      EXPECT_EQ(all[i].key, i) << i;
    }
  }
}

TEST(RangeWriterTest, InterleavedNeighborsOnSharedBlock) {
  // Two writers own adjacent ranges that meet mid-block; interleave their
  // pushes and finishes in the worst order.
  EmEnv env(256, 16);
  const std::size_t b = env.ctx.block_records<Record>();
  EmVector<Record> vec(env.ctx, 2 * b);
  vec.set_size(2 * b);
  const std::size_t cut = b + b / 2;  // mid-block boundary

  RangeWriter<Record> left(vec, 0);
  RangeWriter<Record> right(vec, cut);
  SplitMix64 rng(5);
  std::size_t li = 0, ri = 0;
  while (li < cut || ri < 2 * b - cut) {
    const bool pick_left = ri == 2 * b - cut ||
                           (li < cut && rng.next_below(2) == 0);
    if (pick_left) {
      left.push(Record{.key = li, .payload = 1});
      ++li;
    } else {
      right.push(Record{.key = 10000 + ri, .payload = 2});
      ++ri;
    }
  }
  // Finish in the order that stresses the shared block most: left's tail
  // flush merges against right's already-flushed head (or vice versa).
  left.finish();
  right.finish();

  auto all = to_host(vec);
  for (std::size_t i = 0; i < cut; ++i) EXPECT_EQ(all[i].key, i) << i;
  for (std::size_t i = cut; i < 2 * b; ++i) {
    EXPECT_EQ(all[i].key, 10000 + (i - cut)) << i;
  }
}

TEST(RangeWriterTest, ManyTinyRangesTileAVector) {
  EmEnv env(256, 64);
  const std::size_t b = env.ctx.block_records<Record>();
  const std::size_t n = 8 * b;
  EmVector<Record> vec(env.ctx, n);
  vec.set_size(n);
  // 13-record ranges (coprime to block size) written back to front.
  const std::size_t step = 13;
  for (std::size_t start = ((n - 1) / step) * step;; start -= step) {
    RangeWriter<Record> w(vec, start);
    for (std::size_t i = start; i < std::min(start + step, n); ++i) {
      w.push(Record{.key = i, .payload = 3});
    }
    w.finish();
    if (start == 0) break;
  }
  auto all = to_host(vec);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(all[i].key, i) << i;
}

TEST(RangeWriterTest, EmptyRangeIsANoOp) {
  EmEnv env(256, 16);
  EmVector<Record> vec(env.ctx, 32);
  vec.set_size(32);
  env.dev.reset_stats();
  RangeWriter<Record> w(vec, 7);
  w.finish();
  EXPECT_EQ(env.dev.stats().total(), 0u);
}

}  // namespace
}  // namespace emsplit

// Tests for multi-partition and precise K-partitioning.
#include <gtest/gtest.h>

#include <algorithm>

#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// Verify a multi-partition result against the sorted reference: partition i
/// must hold exactly the records of (1-based) ranks (bounds[i], bounds[i+1]]
/// as a set (order within a partition is free).
void expect_valid_partitioning(const MultiPartitionResult<Record>& result,
                               const std::vector<Record>& sorted_ref) {
  auto data = to_host(result.data);
  ASSERT_EQ(data.size(), sorted_ref.size());
  ASSERT_GE(result.bounds.size(), 2u);
  EXPECT_EQ(result.bounds.front(), 0u);
  EXPECT_EQ(result.bounds.back(), sorted_ref.size());
  for (std::size_t i = 0; i + 1 < result.bounds.size(); ++i) {
    const auto lo = result.bounds[i];
    const auto hi = result.bounds[i + 1];
    std::vector<Record> part(data.begin() + static_cast<std::ptrdiff_t>(lo),
                             data.begin() + static_cast<std::ptrdiff_t>(hi));
    std::sort(part.begin(), part.end());
    const std::vector<Record> expect(
        sorted_ref.begin() + static_cast<std::ptrdiff_t>(lo),
        sorted_ref.begin() + static_cast<std::ptrdiff_t>(hi));
    EXPECT_EQ(part, expect) << "partition " << i;
  }
}

struct MpCase {
  Workload workload;
  std::size_t n;
  std::size_t k;  // number of partitions (k-1 split ranks)
  std::size_t mem_blocks;
};

class MultiPartitionTest : public testing::TestWithParam<MpCase> {};

TEST_P(MultiPartitionTest, PartitionsCorrectlyWithinBudgetAndBound) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  auto host = make_workload(p.workload, p.n, /*seed=*/31,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);

  // Random distinct split ranks (equi-spaced with jitter).
  SplitMix64 rng(p.k * 131 + 7);
  std::vector<std::uint64_t> ranks;
  for (std::size_t i = 1; i < p.k; ++i) {
    const auto base = i * p.n / p.k;
    const auto jitter = rng.next_below(std::max<std::uint64_t>(1, p.n / (4 * p.k)));
    ranks.push_back(std::min<std::uint64_t>(p.n - 1, base + jitter));
  }
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

  env.dev.reset_stats();
  env.ctx.budget().reset_peak();
  auto result = multi_partition<Record>(env.ctx, input, ranks);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  expect_valid_partitioning(result, sorted_ref);

  // Aggarwal–Vitter shape: O((N/B) lg_{M/B} K) with a generous constant.
  const double n = static_cast<double>(p.n);
  const double b = static_cast<double>(env.ctx.block_records<Record>());
  const double m = static_cast<double>(env.ctx.mem_records<Record>());
  const double k = static_cast<double>(ranks.size() + 1);
  const double bound =
      60.0 * (n / b + 1.0) * formulas::lg_clamped(m / b, k) + 64.0;
  EXPECT_LE(static_cast<double>(env.dev.stats().total()), bound)
      << "n=" << p.n << " k=" << p.k;

  // Input untouched, scratch recycled.
  EXPECT_EQ(to_host(input), host);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiPartitionTest,
    testing::Values(MpCase{Workload::kUniform, 5000, 1, 8},
                    MpCase{Workload::kUniform, 5000, 2, 8},
                    MpCase{Workload::kUniform, 20000, 4, 8},
                    MpCase{Workload::kUniform, 20000, 16, 8},
                    MpCase{Workload::kUniform, 20000, 64, 16},
                    MpCase{Workload::kUniform, 50000, 256, 16},
                    MpCase{Workload::kSorted, 20000, 16, 8},
                    MpCase{Workload::kReverse, 20000, 16, 8},
                    MpCase{Workload::kFewDistinct, 20000, 16, 8},
                    MpCase{Workload::kOrganPipe, 20000, 16, 8},
                    MpCase{Workload::kZipfian, 20000, 16, 8},
                    MpCase{Workload::kBlockStriped, 20000, 16, 8},
                    MpCase{Workload::kUniform, 100000, 1024, 32}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" + std::to_string(ti.param.n) +
             "_k" + std::to_string(ti.param.k) + "_mb" +
             std::to_string(ti.param.mem_blocks);
    });

TEST(MultiPartitionTest, SubRange) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 10000, 37);
  auto input = materialize<Record>(env.ctx, host);
  std::vector<Record> range(host.begin() + 1000, host.begin() + 9000);
  auto sorted_ref = testutil::sorted_copy(range);
  auto result =
      multi_partition<Record>(env.ctx, input, 1000, 9000, {2000, 4000, 7999});
  expect_valid_partitioning(result, sorted_ref);
}

TEST(MultiPartitionTest, RejectsInvalidRanks) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)multi_partition<Record>(env.ctx, input, {50, 50}),
               std::invalid_argument);
  EXPECT_THROW((void)multi_partition<Record>(env.ctx, input, {60, 50}),
               std::invalid_argument);
  EXPECT_THROW((void)multi_partition<Record>(env.ctx, input, {0}),
               std::invalid_argument);
  EXPECT_THROW((void)multi_partition<Record>(env.ctx, input, {100}),
               std::invalid_argument);
}

TEST(MultiPartitionTest, EmptyRanksCopiesInput) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 500, 5);
  auto input = materialize<Record>(env.ctx, host);
  auto result = multi_partition<Record>(env.ctx, input, {});
  EXPECT_EQ(result.bounds, (std::vector<std::uint64_t>{0, 500}));
  auto data = to_host(result.data);
  std::sort(data.begin(), data.end());
  EXPECT_EQ(data, testutil::sorted_copy(host));
}

TEST(PrecisePartitionTest, EqualSizesAndSortReduction) {
  EmEnv env(256, 16);
  const std::size_t n = 4096, k = 64;
  auto host = make_workload(Workload::kBlockStriped, n, 3,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);
  auto result = precise_partition<Record>(env.ctx, input, k);
  ASSERT_EQ(result.bounds.size(), k + 1);
  for (std::size_t i = 0; i + 1 < result.bounds.size(); ++i) {
    EXPECT_EQ(result.bounds[i + 1] - result.bounds[i], n / k);
  }
  expect_valid_partitioning(result, sorted_ref);
}

TEST(PrecisePartitionTest, RejectsNonDivisor) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)precise_partition<Record>(env.ctx, input, 7),
               std::invalid_argument);
  EXPECT_THROW((void)precise_partition<Record>(env.ctx, input, 0),
               std::invalid_argument);
}

TEST(MultiPartitionTest, DeviceSpaceFullyRecycled) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 50000, 5);
  auto input = materialize<Record>(env.ctx, host);
  const auto baseline = env.dev.allocated_blocks();
  {
    auto result = precise_partition<Record>(env.ctx, input, 100);
    EXPECT_LE(env.dev.allocated_blocks(), 2 * baseline + 128);
  }
  EXPECT_EQ(env.dev.allocated_blocks(), baseline);
}

}  // namespace
}  // namespace emsplit

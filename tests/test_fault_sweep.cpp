// Exhaustive fault-sweep harness: a permanent fault armed at EVERY I/O index
// of a run must unwind cleanly (no device-block or budget leaks), a transient
// fault at every index must be retried to an identical run, and with a
// checkpoint journal attached a crash at every index must resume to
// bit-identical output while repaying only the interrupted pass's I/Os.
//
// The sweeps are exhaustive by I/O index, not sampled — the point of the
// harness is that no fault position, pass boundary included, breaks the
// invariants (docs/model.md, "Failure model, retries, and recovery").
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/api.hpp"
#include "em/checkpoint.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// All records of `v`, read back through the stream layer.
std::vector<Record> dump(const EmVector<Record>& v) {
  std::vector<Record> out;
  out.reserve(v.size());
  StreamReader<Record> r(v);
  while (!r.done()) out.push_back(r.next());
  return out;
}

// ---------------------------------------------------------------------------
// Permanent faults: clean unwind at every index.

TEST(ExhaustiveFaultSweep, SortUnwindsCleanlyAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 21);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  {
    auto s = external_sort<Record>(env.ctx, input);
  }
  const std::uint64_t total = env.dev.stats().total();
  ASSERT_GT(total, 0u);

  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  for (std::uint64_t i = 0; i < total; ++i) {
    env.dev.arm_fault_after(i);
    bool faulted = false;
    try {
      auto s = external_sort<Record>(env.ctx, input);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    env.dev.disarm_fault();
    ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
    ASSERT_EQ(env.dev.allocated_blocks(), blocks_before)
        << "device blocks leaked at fault index " << i;
    ASSERT_EQ(env.ctx.budget().used(), mem_before)
        << "memory budget leaked at fault index " << i;
  }
  // Afterwards a clean run still succeeds.
  auto s = external_sort<Record>(env.ctx, input);
  EXPECT_TRUE(is_sorted_em(s));
}

TEST(ExhaustiveFaultSweep, PartitionUnwindsCleanlyAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 22);
  auto input = materialize<Record>(env.ctx, host);
  const std::vector<std::uint64_t> ranks{250, 500, 750};
  env.dev.reset_stats();
  {
    auto r = multi_partition<Record>(env.ctx, input, ranks);
  }
  const std::uint64_t total = env.dev.stats().total();
  ASSERT_GT(total, 0u);

  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  for (std::uint64_t i = 0; i < total; ++i) {
    env.dev.arm_fault_after(i);
    bool faulted = false;
    try {
      auto r = multi_partition<Record>(env.ctx, input, ranks);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    env.dev.disarm_fault();
    ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
    ASSERT_EQ(env.dev.allocated_blocks(), blocks_before)
        << "device blocks leaked at fault index " << i;
    ASSERT_EQ(env.ctx.budget().used(), mem_before)
        << "memory budget leaked at fault index " << i;
  }
  auto r = multi_partition<Record>(env.ctx, input, ranks);
  EXPECT_EQ(r.data.size(), input.size());
}

// ---------------------------------------------------------------------------
// Transient faults: retried to an identical run at every index.

TEST(ExhaustiveFaultSweep, SortTransientRetriedAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 23);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(env.ctx, input);
  const IoStats ref_io = env.dev.stats();  // before dump(): reads count too
  const auto ref_bytes = dump(ref_sorted);

  FaultPolicy policy;
  policy.max_retries = 1;
  env.ctx.set_fault_policy(policy);
  for (std::uint64_t i = 0; i < ref_io.total(); ++i) {
    env.dev.reset_stats();
    env.dev.arm_fault(FaultSchedule::fail_then_succeed(i, 1));
    auto s = external_sort<Record>(env.ctx, input);
    env.dev.disarm_fault();
    const IoStats io = env.dev.stats();
    ASSERT_EQ(io.base(), ref_io.base())
        << "base I/O counts diverged at fault index " << i;
    ASSERT_EQ(io.retries, 1u) << "fault index " << i;
    ASSERT_EQ(dump(s), ref_bytes) << "output diverged at fault index " << i;
  }
}

// ---------------------------------------------------------------------------
// Checkpointed crashes: resume to bit-identical output with exact repay.

TEST(CheckpointFaultSweep, SortResumesBitIdenticalWithExactRepay) {
  // Block-aligned N so each of the three passes costs exactly 2 * nblocks
  // I/Os, making the repay assertion exact: a resumed run costs the
  // reference total minus 2 * nblocks per journaled pass.
  const std::size_t n = 1024;
  auto host = make_workload(Workload::kUniform, n, 24);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(ref.ctx, ref_in);
  const std::uint64_t ref_total = ref.dev.stats().total();
  const auto ref_bytes = dump(ref_sorted);
  const std::uint64_t nblocks = n / ref.ctx.block_records<Record>();
  ASSERT_EQ(ref_total % (2 * nblocks), 0u)
      << "geometry drifted: passes are no longer uniform full scans";

  for (std::uint64_t i = 0; i < ref_total; ++i) {
    EmEnv env(256, 8);
    const std::string jpath =
        testing::TempDir() + "/sweep_sort_" + std::to_string(i) + ".ckpt";
    std::remove(jpath.c_str());
    {
      CheckpointJournal journal(env.dev, jpath);
      env.ctx.set_checkpoint(&journal);
      auto in = materialize<Record>(env.ctx, host);
      const auto input_blocks = env.dev.allocated_blocks();
      env.dev.arm_fault_after(i);
      bool faulted = false;
      try {
        auto s = external_sort<Record>(env.ctx, in);
      } catch (const DeviceFault&) {
        faulted = true;
      }
      env.dev.disarm_fault();
      ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
      // Nothing leaked: every live block is either the input or owned by
      // the journal on behalf of a completed pass.
      ASSERT_EQ(env.dev.allocated_blocks(),
                input_blocks + journal.owned_blocks())
          << "leak at fault index " << i;

      env.dev.reset_stats();
      auto out = external_sort<Record>(env.ctx, in);
      const std::uint64_t resumed_total = env.dev.stats().total();
      ASSERT_EQ(dump(out), ref_bytes)
          << "resumed output diverged at fault index " << i;
      // Exact repay: only the interrupted pass (and those after it) re-run.
      ASSERT_EQ(resumed_total,
                ref_total - journal.resumed_passes() * 2 * nblocks)
          << "fault index " << i;
      ASSERT_EQ(journal.owned_blocks(), 0u) << "fault index " << i;
      env.ctx.set_checkpoint(nullptr);
    }
    std::remove(jpath.c_str());
  }
}

TEST(CheckpointFaultSweep, PartitionResumesBitIdenticalAtEveryIoIndex) {
  const std::size_t n = 1024;
  auto host = make_workload(Workload::kUniform, n, 25);
  const std::vector<std::uint64_t> ranks{256, 512, 768};

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_res = multi_partition<Record>(ref.ctx, ref_in, ranks);
  const std::uint64_t ref_total = ref.dev.stats().total();  // before dump()
  const auto ref_bytes = dump(ref_res.data);

  for (std::uint64_t i = 0; i < ref_total; ++i) {
    EmEnv env(256, 8);
    const std::string jpath =
        testing::TempDir() + "/sweep_part_" + std::to_string(i) + ".ckpt";
    std::remove(jpath.c_str());
    {
      CheckpointJournal journal(env.dev, jpath);
      env.ctx.set_checkpoint(&journal);
      auto in = materialize<Record>(env.ctx, host);
      const auto input_blocks = env.dev.allocated_blocks();
      env.dev.arm_fault_after(i);
      bool faulted = false;
      try {
        auto r = multi_partition<Record>(env.ctx, in, ranks);
      } catch (const DeviceFault&) {
        faulted = true;
      }
      env.dev.disarm_fault();
      ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
      ASSERT_EQ(env.dev.allocated_blocks(),
                input_blocks + journal.owned_blocks())
          << "leak at fault index " << i;

      env.dev.reset_stats();
      auto res = multi_partition<Record>(env.ctx, in, ranks);
      const std::uint64_t resumed_total = env.dev.stats().total();
      ASSERT_EQ(dump(res.data), ref_bytes)
          << "resumed output diverged at fault index " << i;
      ASSERT_EQ(res.bounds, ref_res.bounds) << "fault index " << i;
      // Journaled progress is never repeated: any resumed pass makes the
      // rerun strictly cheaper than the reference run.
      if (journal.resumed_passes() > 0) {
        ASSERT_LT(resumed_total, ref_total) << "fault index " << i;
      }
      ASSERT_EQ(journal.owned_blocks(), 0u) << "fault index " << i;
      env.ctx.set_checkpoint(nullptr);
    }
    std::remove(jpath.c_str());
  }
}

// ---------------------------------------------------------------------------
// Cross-process resume: the journal file plus a preserve_contents
// FileBlockDevice survive a process death; a fresh process restores the
// allocator around the journaled extents and resumes.

TEST(CheckpointResume, SurvivesProcessReopen) {
  const std::size_t n = 1024;
  const std::string dir = testing::TempDir();
  const std::string dev_path = dir + "/xproc_device.bin";
  const std::string jpath = dir + "/xproc_journal.ckpt";
  std::remove(dev_path.c_str());
  std::remove((dev_path + ".sums").c_str());
  std::remove(jpath.c_str());
  auto host = make_workload(Workload::kUniform, n, 26);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(ref.ctx, ref_in);
  const std::uint64_t ref_total = ref.dev.stats().total();
  const auto ref_bytes = dump(ref_sorted);
  const std::uint64_t nblocks = n / ref.ctx.block_records<Record>();

  {
    // "Process 1": crash inside the second pass.  Destruction here stands in
    // for the kill — the journal file and the device file are the only state
    // that survives a real SIGKILL, and they are all the next block reads.
    FileBlockDevice dev(dev_path, 256, /*keep_file=*/true,
                        /*preserve_contents=*/true);
    Context ctx(dev, 8 * 256);
    CheckpointJournal journal(dev, jpath);
    journal.restore_device();
    ctx.set_checkpoint(&journal);
    auto in = materialize<Record>(ctx, host);
    dev.arm_fault_after(2 * nblocks + nblocks / 2);  // mid pass 2
    bool faulted = false;
    try {
      auto s = external_sort<Record>(ctx, in);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    ASSERT_TRUE(faulted);
    ctx.set_checkpoint(nullptr);
  }
  {
    // "Process 2": reopen, restore the allocator from the journal, resume.
    FileBlockDevice dev(dev_path, 256, /*keep_file=*/true,
                        /*preserve_contents=*/true);
    Context ctx(dev, 8 * 256);
    CheckpointJournal journal(dev, jpath);
    journal.restore_device();
    ctx.set_checkpoint(&journal);
    auto in = materialize<Record>(ctx, host);
    dev.reset_stats();
    auto out = external_sort<Record>(ctx, in);
    EXPECT_EQ(journal.resumed_passes(), 1u);
    EXPECT_EQ(dev.stats().total(), ref_total - 1 * 2 * nblocks);
    EXPECT_EQ(dump(out), ref_bytes);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(dev_path.c_str());
  std::remove((dev_path + ".sums").c_str());
  std::remove(jpath.c_str());
}

}  // namespace
}  // namespace emsplit

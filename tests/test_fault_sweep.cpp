// Exhaustive fault-sweep harness: a permanent fault armed at EVERY I/O index
// of a run must unwind cleanly (no device-block or budget leaks), a transient
// fault at every index must be retried to an identical run, and with a
// checkpoint journal attached a crash at every index must resume to
// bit-identical output while repaying only the interrupted pass's I/Os.
//
// The sweeps are exhaustive by I/O index, not sampled — the point of the
// harness is that no fault position, pass boundary included, breaks the
// invariants (docs/model.md, "Failure model, retries, and recovery").
//
// The worker-fault sweep at the bottom is the distributed analogue: a worker
// killed, hung or frame-corrupted at EVERY (worker, round) position of a
// supervised dsort / multi-partition must recover without restarting the
// job — bit-identical output, identical base logical I/O, the re-executed
// volume attributed to worker_retries, and the failure visible as structured
// supervision events (docs/model.md, "Worker supervision").
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/api.hpp"
#include "em/checkpoint.hpp"
#include "em/pass_engine.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

/// All records of `v`, read back through the stream layer.
std::vector<Record> dump(const EmVector<Record>& v) {
  std::vector<Record> out;
  out.reserve(v.size());
  StreamReader<Record> r(v);
  while (!r.done()) out.push_back(r.next());
  return out;
}

// ---------------------------------------------------------------------------
// Permanent faults: clean unwind at every index.

TEST(ExhaustiveFaultSweep, SortUnwindsCleanlyAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 21);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  {
    auto s = external_sort<Record>(env.ctx, input);
  }
  const std::uint64_t total = env.dev.stats().total();
  ASSERT_GT(total, 0u);

  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  for (std::uint64_t i = 0; i < total; ++i) {
    env.dev.arm_fault_after(i);
    bool faulted = false;
    try {
      auto s = external_sort<Record>(env.ctx, input);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    env.dev.disarm_fault();
    ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
    ASSERT_EQ(env.dev.allocated_blocks(), blocks_before)
        << "device blocks leaked at fault index " << i;
    ASSERT_EQ(env.ctx.budget().used(), mem_before)
        << "memory budget leaked at fault index " << i;
  }
  // Afterwards a clean run still succeeds.
  auto s = external_sort<Record>(env.ctx, input);
  EXPECT_TRUE(is_sorted_em(s));
}

TEST(ExhaustiveFaultSweep, PartitionUnwindsCleanlyAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 22);
  auto input = materialize<Record>(env.ctx, host);
  const std::vector<std::uint64_t> ranks{250, 500, 750};
  env.dev.reset_stats();
  {
    auto r = multi_partition<Record>(env.ctx, input, ranks);
  }
  const std::uint64_t total = env.dev.stats().total();
  ASSERT_GT(total, 0u);

  const auto blocks_before = env.dev.allocated_blocks();
  const auto mem_before = env.ctx.budget().used();
  for (std::uint64_t i = 0; i < total; ++i) {
    env.dev.arm_fault_after(i);
    bool faulted = false;
    try {
      auto r = multi_partition<Record>(env.ctx, input, ranks);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    env.dev.disarm_fault();
    ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
    ASSERT_EQ(env.dev.allocated_blocks(), blocks_before)
        << "device blocks leaked at fault index " << i;
    ASSERT_EQ(env.ctx.budget().used(), mem_before)
        << "memory budget leaked at fault index " << i;
  }
  auto r = multi_partition<Record>(env.ctx, input, ranks);
  EXPECT_EQ(r.data.size(), input.size());
}

// ---------------------------------------------------------------------------
// Transient faults: retried to an identical run at every index.

TEST(ExhaustiveFaultSweep, SortTransientRetriedAtEveryIoIndex) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 1000, 23);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(env.ctx, input);
  const IoStats ref_io = env.dev.stats();  // before dump(): reads count too
  const auto ref_bytes = dump(ref_sorted);

  FaultPolicy policy;
  policy.max_retries = 1;
  env.ctx.set_fault_policy(policy);
  for (std::uint64_t i = 0; i < ref_io.total(); ++i) {
    env.dev.reset_stats();
    env.dev.arm_fault(FaultSchedule::fail_then_succeed(i, 1));
    auto s = external_sort<Record>(env.ctx, input);
    env.dev.disarm_fault();
    const IoStats io = env.dev.stats();
    ASSERT_EQ(io.base(), ref_io.base())
        << "base I/O counts diverged at fault index " << i;
    ASSERT_EQ(io.retries, 1u) << "fault index " << i;
    ASSERT_EQ(dump(s), ref_bytes) << "output diverged at fault index " << i;
  }
}

// ---------------------------------------------------------------------------
// Checkpointed crashes: resume to bit-identical output with exact repay.

TEST(CheckpointFaultSweep, SortResumesBitIdenticalWithExactRepay) {
  // Block-aligned N so each of the three passes costs exactly 2 * nblocks
  // I/Os, making the repay assertion exact: a resumed run costs the
  // reference total minus 2 * nblocks per journaled pass.
  const std::size_t n = 1024;
  auto host = make_workload(Workload::kUniform, n, 24);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(ref.ctx, ref_in);
  const std::uint64_t ref_total = ref.dev.stats().total();
  const auto ref_bytes = dump(ref_sorted);
  const std::uint64_t nblocks = n / ref.ctx.block_records<Record>();
  ASSERT_EQ(ref_total % (2 * nblocks), 0u)
      << "geometry drifted: passes are no longer uniform full scans";

  for (std::uint64_t i = 0; i < ref_total; ++i) {
    EmEnv env(256, 8);
    const std::string jpath =
        testing::TempDir() + "/sweep_sort_" + std::to_string(i) + ".ckpt";
    std::remove(jpath.c_str());
    {
      CheckpointJournal journal(env.dev, jpath);
      env.ctx.set_checkpoint(&journal);
      auto in = materialize<Record>(env.ctx, host);
      const auto input_blocks = env.dev.allocated_blocks();
      env.dev.arm_fault_after(i);
      bool faulted = false;
      try {
        auto s = external_sort<Record>(env.ctx, in);
      } catch (const DeviceFault&) {
        faulted = true;
      }
      env.dev.disarm_fault();
      ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
      // Nothing leaked: every live block is either the input or owned by
      // the journal on behalf of a completed pass.
      ASSERT_EQ(env.dev.allocated_blocks(),
                input_blocks + journal.owned_blocks())
          << "leak at fault index " << i;

      env.dev.reset_stats();
      auto out = external_sort<Record>(env.ctx, in);
      const std::uint64_t resumed_total = env.dev.stats().total();
      ASSERT_EQ(dump(out), ref_bytes)
          << "resumed output diverged at fault index " << i;
      // Exact repay: only the interrupted pass (and those after it) re-run.
      ASSERT_EQ(resumed_total,
                ref_total - journal.resumed_passes() * 2 * nblocks)
          << "fault index " << i;
      ASSERT_EQ(journal.owned_blocks(), 0u) << "fault index " << i;
      env.ctx.set_checkpoint(nullptr);
    }
    std::remove(jpath.c_str());
  }
}

TEST(CheckpointFaultSweep, PartitionResumesBitIdenticalAtEveryIoIndex) {
  const std::size_t n = 1024;
  auto host = make_workload(Workload::kUniform, n, 25);
  const std::vector<std::uint64_t> ranks{256, 512, 768};

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_res = multi_partition<Record>(ref.ctx, ref_in, ranks);
  const std::uint64_t ref_total = ref.dev.stats().total();  // before dump()
  const auto ref_bytes = dump(ref_res.data);

  for (std::uint64_t i = 0; i < ref_total; ++i) {
    EmEnv env(256, 8);
    const std::string jpath =
        testing::TempDir() + "/sweep_part_" + std::to_string(i) + ".ckpt";
    std::remove(jpath.c_str());
    {
      CheckpointJournal journal(env.dev, jpath);
      env.ctx.set_checkpoint(&journal);
      auto in = materialize<Record>(env.ctx, host);
      const auto input_blocks = env.dev.allocated_blocks();
      env.dev.arm_fault_after(i);
      bool faulted = false;
      try {
        auto r = multi_partition<Record>(env.ctx, in, ranks);
      } catch (const DeviceFault&) {
        faulted = true;
      }
      env.dev.disarm_fault();
      ASSERT_TRUE(faulted) << "fault index " << i << " never fired";
      ASSERT_EQ(env.dev.allocated_blocks(),
                input_blocks + journal.owned_blocks())
          << "leak at fault index " << i;

      env.dev.reset_stats();
      auto res = multi_partition<Record>(env.ctx, in, ranks);
      const std::uint64_t resumed_total = env.dev.stats().total();
      ASSERT_EQ(dump(res.data), ref_bytes)
          << "resumed output diverged at fault index " << i;
      ASSERT_EQ(res.bounds, ref_res.bounds) << "fault index " << i;
      // Journaled progress is never repeated: any resumed pass makes the
      // rerun strictly cheaper than the reference run.
      if (journal.resumed_passes() > 0) {
        ASSERT_LT(resumed_total, ref_total) << "fault index " << i;
      }
      ASSERT_EQ(journal.owned_blocks(), 0u) << "fault index " << i;
      env.ctx.set_checkpoint(nullptr);
    }
    std::remove(jpath.c_str());
  }
}

// ---------------------------------------------------------------------------
// Cross-process resume: the journal file plus a preserve_contents
// FileBlockDevice survive a process death; a fresh process restores the
// allocator around the journaled extents and resumes.

TEST(CheckpointResume, SurvivesProcessReopen) {
  const std::size_t n = 1024;
  const std::string dir = testing::TempDir();
  const std::string dev_path = dir + "/xproc_device.bin";
  const std::string jpath = dir + "/xproc_journal.ckpt";
  std::remove(dev_path.c_str());
  std::remove((dev_path + ".sums").c_str());
  std::remove(jpath.c_str());
  auto host = make_workload(Workload::kUniform, n, 26);

  EmEnv ref(256, 8);
  auto ref_in = materialize<Record>(ref.ctx, host);
  ref.dev.reset_stats();
  auto ref_sorted = external_sort<Record>(ref.ctx, ref_in);
  const std::uint64_t ref_total = ref.dev.stats().total();
  const auto ref_bytes = dump(ref_sorted);
  const std::uint64_t nblocks = n / ref.ctx.block_records<Record>();

  {
    // "Process 1": crash inside the second pass.  Destruction here stands in
    // for the kill — the journal file and the device file are the only state
    // that survives a real SIGKILL, and they are all the next block reads.
    FileBlockDevice dev(dev_path, 256, /*keep_file=*/true,
                        /*preserve_contents=*/true);
    Context ctx(dev, 8 * 256);
    CheckpointJournal journal(dev, jpath);
    journal.restore_device();
    ctx.set_checkpoint(&journal);
    auto in = materialize<Record>(ctx, host);
    dev.arm_fault_after(2 * nblocks + nblocks / 2);  // mid pass 2
    bool faulted = false;
    try {
      auto s = external_sort<Record>(ctx, in);
    } catch (const DeviceFault&) {
      faulted = true;
    }
    ASSERT_TRUE(faulted);
    ctx.set_checkpoint(nullptr);
  }
  {
    // "Process 2": reopen, restore the allocator from the journal, resume.
    FileBlockDevice dev(dev_path, 256, /*keep_file=*/true,
                        /*preserve_contents=*/true);
    Context ctx(dev, 8 * 256);
    CheckpointJournal journal(dev, jpath);
    journal.restore_device();
    ctx.set_checkpoint(&journal);
    auto in = materialize<Record>(ctx, host);
    dev.reset_stats();
    auto out = external_sort<Record>(ctx, in);
    EXPECT_EQ(journal.resumed_passes(), 1u);
    EXPECT_EQ(dev.stats().total(), ref_total - 1 * 2 * nblocks);
    EXPECT_EQ(dump(out), ref_bytes);
    ctx.set_checkpoint(nullptr);
  }
  std::remove(dev_path.c_str());
  std::remove((dev_path + ".sums").c_str());
  std::remove(jpath.c_str());
}

// ---------------------------------------------------------------------------
// Worker supervision: a worker fault at every (worker, round) position of a
// distributed job recovers in-place to an identical run.

// The distributed geometry of test_worker_group.cpp: 8-record blocks, 256
// blocks of memory, 6000 records — dist_supported holds for both operations.
constexpr std::size_t kWgBlockBytes = 128;
constexpr std::size_t kWgMemBlocks = 256;
constexpr std::size_t kWgRecords = 6000;
const std::vector<std::uint64_t> kWgRanks{1234, 3000, 4567};

struct SweepRun {
  std::vector<Record> bytes;
  std::vector<std::uint64_t> bounds;          // partition only
  IoStats io;                                 // includes worker_retries
  std::vector<SupervisionEvent> events;       // concatenated over all passes
};

/// One supervised distributed run.  Empty `path` = memory device; otherwise
/// a FileBlockDevice.  Both fork their workers (all devices are fork-safe).
SweepRun run_supervised(const std::string& path, bool partition,
                        const std::vector<Record>& host,
                        const WorkerTuning& wt) {
  MemoryBlockDevice mem_dev(kWgBlockBytes);
  std::unique_ptr<FileBlockDevice> file_dev;
  BlockDevice* dev = &mem_dev;
  if (!path.empty()) {
    std::remove(path.c_str());
    file_dev = std::make_unique<FileBlockDevice>(path, kWgBlockBytes);
    dev = file_dev.get();
  }
  Context ctx(*dev, kWgMemBlocks * kWgBlockBytes);
  ctx.set_worker_tuning(wt);
  PassTraceLog trace;
  ctx.set_pass_trace(&trace);
  auto input = materialize<Record>(ctx, host);
  dev->reset_stats();
  SweepRun run;
  if (partition) {
    auto res = multi_partition<Record>(ctx, input, kWgRanks);
    run.io = dev->stats();
    run.bytes = dump(res.data);
    run.bounds = res.bounds;
  } else {
    auto out = distribution_sort<Record>(ctx, input);
    run.io = dev->stats();
    run.bytes = dump(out);
  }
  for (const PassTrace& row : trace.rows()) {
    run.events.insert(run.events.end(), row.supervision.begin(),
                      row.supervision.end());
  }
  ctx.set_pass_trace(nullptr);
  if (file_dev != nullptr) std::remove(path.c_str());
  return run;
}

enum class WorkerFault { kKill, kHang, kCorrupt };

const char* kind_name(WorkerFault f) {
  switch (f) {
    case WorkerFault::kKill: return "death";
    case WorkerFault::kHang: return "timeout";
    default: return "corrupt-frame";
  }
}

class WorkerFaultSweep : public ::testing::TestWithParam<bool> {};

TEST_P(WorkerFaultSweep, EveryWorkerRoundPositionRecoversToIdenticalRun) {
  const bool use_file = GetParam();
  constexpr std::size_t kW = 2;
  const auto host = make_workload(Workload::kUniform, kWgRecords, 31);

  for (const bool partition : {false, true}) {
    const std::string tag = std::string(use_file ? "file/" : "mem/") +
                            (partition ? "mpart" : "dsort");
    const std::string path =
        use_file ? testing::TempDir() + "/wsweep_" +
                       (partition ? "p" : "s") + ".dev"
                 : std::string();
    WorkerTuning fault_free;
    fault_free.workers = kW;
    const SweepRun ref = run_supervised(path, partition, host, fault_free);
    ASSERT_TRUE(ref.events.empty()) << tag;
    ASSERT_EQ(ref.io.worker_retries, 0u) << tag;

    for (const WorkerFault fault :
         {WorkerFault::kKill, WorkerFault::kHang, WorkerFault::kCorrupt}) {
      // Rounds are discovered by sweeping upward until an injection at
      // round R no longer fires (the job has fewer than R rounds).
      std::uint64_t rounds_hit = 0;
      for (std::uint64_t r = 1;; ++r) {
        bool fired = false;
        for (std::size_t w = 0; w < kW; ++w) {
          WorkerTuning wt;
          wt.workers = kW;
          wt.max_worker_retries = 2;
          switch (fault) {
            case WorkerFault::kKill:
              wt.kill_worker = w;
              wt.kill_round = r;
              break;
            case WorkerFault::kHang:
              wt.hang_worker = w;
              wt.hang_round = r;
              wt.worker_timeout = 0.5;  // bodies run in milliseconds
              break;
            case WorkerFault::kCorrupt:
              wt.corrupt_worker = w;
              wt.corrupt_round = r;
              break;
          }
          const SweepRun run = run_supervised(path, partition, host, wt);
          const std::string at = tag + std::string("/") + kind_name(fault) +
                                 " (w=" + std::to_string(w) +
                                 ", r=" + std::to_string(r) + ")";
          if (run.events.empty()) {
            // Round r does not exist: the run must have been fault-free.
            ASSERT_EQ(run.io.worker_retries, 0u) << at;
            continue;
          }
          fired = true;
          // The whole contract at once: the job completed without restart,
          // bytes bit-identical, base logical I/O identical, re-executed
          // volume attributed separately, failure + recovery both recorded.
          ASSERT_EQ(run.bytes, ref.bytes) << at;
          ASSERT_EQ(run.bounds, ref.bounds) << at;
          ASSERT_EQ(run.io.base(), ref.io.base()) << at;
          ASSERT_GT(run.io.worker_retries, 0u) << at;
          bool saw_fault = false;
          bool saw_retry = false;
          for (const SupervisionEvent& e : run.events) {
            if (e.kind == kind_name(fault) && e.round == r && e.worker == w) {
              saw_fault = true;
            }
            if (e.kind == "retry" && e.round == r && e.worker == w) {
              saw_retry = true;
            }
          }
          EXPECT_TRUE(saw_fault) << at << ": no failure event recorded";
          EXPECT_TRUE(saw_retry) << at << ": no retry event recorded";
        }
        if (!fired) break;
        ++rounds_hit;
      }
      // Every distributed job here has at least formation, one selection
      // round and the scatter — if fewer rounds fired, the geometry fell
      // back to the classic path and the sweep proved nothing.
      ASSERT_GE(rounds_hit, 3u) << tag << "/" << kind_name(fault);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, WorkerFaultSweep, ::testing::Bool(),
                         [](const auto& mode_info) {
                           return mode_info.param ? "Forked" : "Inline";
                         });

// The structured events surface in the JSONL trace exactly as documented:
// one "supervision" array per pass row, each event carrying round, worker,
// kind and detail.
TEST(WorkerFaultSweepTrace, SupervisionEventsReachTheJsonTrace) {
  const auto host = make_workload(Workload::kUniform, kWgRecords, 32);
  MemoryBlockDevice dev(kWgBlockBytes);
  Context ctx(dev, kWgMemBlocks * kWgBlockBytes);
  WorkerTuning wt;
  wt.workers = 2;
  wt.kill_worker = 0;
  wt.kill_round = 2;
  wt.max_worker_retries = 1;
  ctx.set_worker_tuning(wt);
  PassTraceLog trace;
  ctx.set_pass_trace(&trace);
  auto input = materialize<Record>(ctx, host);
  auto out = distribution_sort<Record>(ctx, input);
  ASSERT_EQ(out.size(), kWgRecords);

  bool found = false;
  for (const PassTrace& row : trace.rows()) {
    const std::string json = pass_trace_json(row);
    if (row.supervision.empty()) {
      EXPECT_NE(json.find("\"supervision\":[]"), std::string::npos) << row.pass;
      continue;
    }
    found = true;
    EXPECT_NE(json.find("\"supervision\":[{\"round\":2,\"worker\":0,"
                        "\"kind\":\"death\""),
              std::string::npos)
        << json;
    EXPECT_GT(row.io.worker_retries, 0u) << row.pass;
    EXPECT_NE(json.find("\"worker_retries\":"), std::string::npos);
  }
  EXPECT_TRUE(found) << "kill at round 2 left no supervision events";
  ctx.set_pass_trace(nullptr);
}

}  // namespace
}  // namespace emsplit

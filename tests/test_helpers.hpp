// Shared helpers for algorithm tests: reference implementations computed
// host-side on sorted copies, plus a standard test fixture environment.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "em/context.hpp"
#include "em/stream.hpp"
#include "util/record.hpp"
#include "util/workload.hpp"

namespace emsplit::testutil {

/// Sorted copy of a host workload (the oracle for every rank question).
inline std::vector<Record> sorted_copy(const std::vector<Record>& v) {
  auto s = v;
  std::sort(s.begin(), s.end());
  return s;
}

/// Element of 1-based rank `r` in the sorted reference.
inline Record rank_element(const std::vector<Record>& sorted_ref,
                           std::uint64_t r) {
  return sorted_ref[r - 1];
}

/// Sizes of the buckets induced by sorted `splitters` over `sorted_ref`
/// (bucket j = (s_{j-1}, s_j], with ±infinity at the ends).
inline std::vector<std::size_t> bucket_sizes(
    const std::vector<Record>& sorted_ref,
    const std::vector<Record>& splitters) {
  std::vector<std::size_t> sizes(splitters.size() + 1, 0);
  std::size_t j = 0;
  for (const auto& e : sorted_ref) {
    while (j < splitters.size() && splitters[j] < e) ++j;
    ++sizes[j];
  }
  return sizes;
}

/// A MemoryBlockDevice + Context pair with the given geometry, for concise
/// test setup.  Block size is in bytes; memory in blocks.
struct EmEnv {
  explicit EmEnv(std::size_t block_bytes = 256, std::size_t mem_blocks = 16)
      : dev(block_bytes), ctx(dev, mem_blocks * block_bytes) {}

  MemoryBlockDevice dev;
  Context ctx;
};

}  // namespace emsplit::testutil

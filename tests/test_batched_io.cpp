// Tests for batched multi-block transfers (read_blocks / write_blocks), the
// IoPipeline worker, and the batched stream / bulk-helper paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "em/block_device.hpp"
#include "em/context.hpp"
#include "em/io_pipeline.hpp"
#include "em/stream.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 128;

std::vector<std::byte> pattern_block(std::size_t bytes, unsigned seed) {
  std::vector<std::byte> blk(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    blk[i] = std::byte((seed * 131 + i * 7) % 256);
  }
  return blk;
}

/// Fill `count` blocks starting at `first` with a recognizable per-block
/// pattern, one write per block (the reference path).
void fill_blocks(BlockDevice& dev, BlockId first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    dev.write(first + i, pattern_block(dev.block_bytes(), unsigned(i)));
  }
}

TEST(BatchedIoTest, ReadBlocksMatchesPerBlockLoop) {
  MemoryBlockDevice dev(kBlockBytes);
  const auto range = dev.allocate(6);
  fill_blocks(dev, range.first, 6);
  dev.reset_stats();

  std::vector<std::byte> batched(6 * kBlockBytes);
  dev.read_blocks(range.first, 6, batched);
  EXPECT_EQ(dev.stats().reads, 6u);  // one call, six counted I/Os

  std::vector<std::byte> looped(6 * kBlockBytes);
  for (std::uint64_t i = 0; i < 6; ++i) {
    dev.read(range.first + i,
             std::span<std::byte>(looped).subspan(i * kBlockBytes, kBlockBytes));
  }
  EXPECT_EQ(batched, looped);
  EXPECT_EQ(dev.stats().reads, 12u);
}

TEST(BatchedIoTest, WriteBlocksMatchesPerBlockLoop) {
  MemoryBlockDevice dev(kBlockBytes);
  const auto range = dev.allocate(8);
  std::vector<std::byte> data(4 * kBlockBytes);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 251);

  dev.reset_stats();
  dev.write_blocks(range.first, 4, data);  // batched into blocks 0..3
  EXPECT_EQ(dev.stats().writes, 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {  // reference loop into blocks 4..7
    dev.write(range.first + 4 + i, std::span<const std::byte>(data).subspan(
                                       i * kBlockBytes, kBlockBytes));
  }

  std::vector<std::byte> a(kBlockBytes), b(kBlockBytes);
  for (std::uint64_t i = 0; i < 4; ++i) {
    dev.read(range.first + i, a);
    dev.read(range.first + 4 + i, b);
    EXPECT_EQ(a, b) << "block " << i;
  }
}

TEST(BatchedIoTest, PartialLastBlockSpanIsAllowed) {
  MemoryBlockDevice dev(kBlockBytes);
  const auto range = dev.allocate(3);
  fill_blocks(dev, range.first, 3);
  dev.reset_stats();

  // Two full blocks plus half of the third: legal, still counts 3 I/Os.
  std::vector<std::byte> out(2 * kBlockBytes + kBlockBytes / 2);
  dev.read_blocks(range.first, 3, out);
  EXPECT_EQ(dev.stats().reads, 3u);
  const auto b2 = pattern_block(kBlockBytes, 2);
  EXPECT_TRUE(std::equal(out.begin() + 2 * kBlockBytes, out.end(), b2.begin()));
}

TEST(BatchedIoTest, RejectsBadSpansAndRanges) {
  MemoryBlockDevice dev(kBlockBytes);
  const auto range = dev.allocate(4);
  std::vector<std::byte> buf(4 * kBlockBytes);

  // Span longer than the extent.
  EXPECT_THROW(dev.read_blocks(range.first, 3, buf), std::invalid_argument);
  // Span too short: does not reach into the last block.
  EXPECT_THROW(
      dev.read_blocks(range.first, 3,
                      std::span<std::byte>(buf).first(2 * kBlockBytes)),
      std::invalid_argument);
  // Extent runs past the end of the device.
  EXPECT_THROW(dev.read_blocks(range.first + 2, 4, buf), std::out_of_range);
  // Zero-count transfer must carry an empty span.
  EXPECT_THROW(
      dev.write_blocks(range.first, 0, std::span<const std::byte>(buf)),
      std::invalid_argument);
  dev.write_blocks(range.first, 0, std::span<const std::byte>{});  // no-op
  EXPECT_EQ(dev.stats().writes, 0u);
}

TEST(BatchedIoTest, FaultFiresAtEveryIndexInsideBatch) {
  constexpr std::uint64_t kCount = 6;
  for (std::uint64_t after = 0; after <= kCount; ++after) {
    MemoryBlockDevice dev(kBlockBytes);
    const auto range = dev.allocate(kCount);
    fill_blocks(dev, range.first, kCount);
    dev.reset_stats();
    dev.arm_fault_after(after);

    std::vector<std::byte> out(kCount * kBlockBytes, std::byte{0xAA});
    if (after < kCount) {
      EXPECT_THROW(dev.read_blocks(range.first, kCount, out), DeviceFault);
      // Exactly `after` blocks were transferred and counted...
      EXPECT_EQ(dev.stats().reads, after);
      for (std::uint64_t i = 0; i < after; ++i) {
        const auto expect = pattern_block(kBlockBytes, unsigned(i));
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                               out.begin() + long(i * kBlockBytes)))
            << "after=" << after << " block " << i;
      }
      // ...and the rest of the span was left untouched.
      EXPECT_TRUE(std::all_of(out.begin() + long(after * kBlockBytes),
                              out.end(),
                              [](std::byte x) { return x == std::byte{0xAA}; }));
      // The fault disarmed itself: the retry goes through and counts fully.
      dev.read_blocks(range.first, kCount, out);
      EXPECT_EQ(dev.stats().reads, after + kCount);
    } else {
      dev.read_blocks(range.first, kCount, out);  // countdown survives intact
      EXPECT_EQ(dev.stats().reads, kCount);
      EXPECT_THROW(
          dev.read(range.first, std::span<std::byte>(out).first(kBlockBytes)),
          DeviceFault);
    }
  }
}

TEST(BatchedIoTest, FaultMidBatchOnWriteCountsPartialTransfer) {
  MemoryBlockDevice dev(kBlockBytes);
  const auto range = dev.allocate(4);
  fill_blocks(dev, range.first, 4);  // old contents
  std::vector<std::byte> data(4 * kBlockBytes, std::byte{0x5C});
  dev.reset_stats();
  dev.arm_fault_after(2);
  EXPECT_THROW(dev.write_blocks(range.first, 4, data), DeviceFault);
  EXPECT_EQ(dev.stats().writes, 2u);
  std::vector<std::byte> blk(kBlockBytes);
  dev.read(range.first + 1, blk);  // second block was written...
  EXPECT_TRUE(std::all_of(blk.begin(), blk.end(),
                          [](std::byte x) { return x == std::byte{0x5C}; }));
  dev.read(range.first + 2, blk);  // ...third still holds the old pattern
  EXPECT_EQ(blk, pattern_block(kBlockBytes, 2));
}

TEST(BatchedIoTest, FileDeviceBatchRoundTripAndSparseReads) {
  const std::string path = testing::TempDir() + "/emsplit_batch_test.bin";
  FileBlockDevice dev(path, kBlockBytes);
  const auto range = dev.allocate(8);
  std::vector<std::byte> data(3 * kBlockBytes);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 253);

  dev.reset_stats();
  dev.write_blocks(range.first + 2, 3, data);
  std::vector<std::byte> out(3 * kBlockBytes, std::byte{1});
  dev.read_blocks(range.first + 2, 3, out);
  EXPECT_EQ(out, data);
  // A batch over never-written blocks reads zeroes (sparse tail of the file).
  std::vector<std::byte> sparse(3 * kBlockBytes, std::byte{1});
  dev.read_blocks(range.first + 5, 3, sparse);
  EXPECT_TRUE(std::all_of(sparse.begin(), sparse.end(),
                          [](std::byte x) { return x == std::byte{0}; }));
  EXPECT_EQ(dev.stats().reads, 6u);
  EXPECT_EQ(dev.stats().writes, 3u);
}

TEST(IoPipelineTest, RunsJobsInSubmissionOrder) {
  IoPipeline pipe;
  std::vector<int> order;
  std::atomic<int> done{0};
  IoPipeline::Ticket last = 0;
  for (int i = 0; i < 16; ++i) {
    last = pipe.submit([i, &order, &done] {
      order.push_back(i);  // single worker: no synchronization needed
      done.fetch_add(1);
    });
  }
  pipe.wait(last);
  EXPECT_EQ(done.load(), 16);
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(IoPipelineTest, WaitRethrowsTheJobsException) {
  IoPipeline pipe;
  const auto ok = pipe.submit([] {});
  const auto bad =
      pipe.submit([] { throw std::runtime_error("pipeline job failed"); });
  const auto after = pipe.submit([] {});
  pipe.wait(ok);
  EXPECT_THROW(pipe.wait(bad), std::runtime_error);
  pipe.wait(after);  // a failed job does not wedge the worker
  pipe.drain();
}

TEST(BatchedStreamTest, BatchedRoundTripMatchesDefaultTuning) {
  const std::size_t n = 1000;  // not a multiple of any batch geometry
  std::vector<int> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = int(i * 2654435761u % 9973);

  auto run = [&](const IoTuning& t) {
    testutil::EmEnv env(kBlockBytes, 32);
    env.ctx.set_io_tuning(t);
    EmVector<int> vec = materialize<int>(env.ctx, std::span<const int>(data));
    const IoStats after_write = env.dev.stats();
    auto out = to_host(vec);
    return std::tuple(after_write, env.dev.stats(), out);
  };

  const auto [w0, rw0, out0] = run({1, 0, false});
  EXPECT_EQ(out0, data);
  for (const IoTuning t : {IoTuning{4, 0, false}, IoTuning{4, 1, false},
                           IoTuning{3, 2, false}}) {
    const auto [w, rw, out] = run(t);
    EXPECT_EQ(out, data);
    EXPECT_EQ(w.writes, w0.writes) << "batch=" << t.batch_blocks;
    EXPECT_EQ(rw.reads, rw0.reads) << "batch=" << t.batch_blocks;
  }
}

TEST(BatchedStreamTest, BulkHelpersKeepCountsAcrossTunings) {
  const std::size_t n = 700;
  std::vector<int> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = int(i);

  auto run = [&](const IoTuning& t, std::size_t first, std::size_t len) {
    testutil::EmEnv env(kBlockBytes, 64);
    env.ctx.set_io_tuning(t);
    EmVector<int> vec = materialize<int>(env.ctx, std::span<const int>(data));
    env.dev.reset_stats();
    std::vector<int> chunk(len);
    load_range<int>(vec, first, std::span<int>(chunk));
    for (auto& v : chunk) v += 1;
    store_range<int>(vec, first, std::span<const int>(chunk));
    return std::tuple(env.dev.stats(), to_host(vec));
  };

  // Aligned bulk extent and an unaligned range crossing block edges.
  for (const auto& [first, len] :
       {std::pair<std::size_t, std::size_t>{0, 640},
        std::pair<std::size_t, std::size_t>{33, 241}}) {
    const auto [s0, v0] = run({1, 0, false}, first, len);
    const auto [s1, v1] = run({8, 0, false}, first, len);
    EXPECT_EQ(v1, v0) << "first=" << first;
    EXPECT_EQ(s1.reads, s0.reads) << "first=" << first;
    EXPECT_EQ(s1.writes, s0.writes) << "first=" << first;
  }
}

struct Padded {
  int key;
  char tag[8];
  friend bool operator==(const Padded&, const Padded&) = default;
};

TEST(BatchedStreamTest, PaddedLayoutFallsBackToSingleBlockBatches) {
  static_assert(kBlockBytes % sizeof(Padded) != 0);
  std::vector<Padded> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Padded{int(i), {char('a' + i % 26)}};
  }
  testutil::EmEnv env(kBlockBytes, 32);
  env.ctx.set_io_tuning({4, 1, false});
  EmVector<Padded> vec =
      materialize<Padded>(env.ctx, std::span<const Padded>(data));
  EXPECT_EQ(to_host(vec), data);
}

TEST(AsyncStreamTest, WriterSurfacesDeviceFaults) {
  testutil::EmEnv env(kBlockBytes, 32);
  env.ctx.set_io_tuning({2, 1, true});
  const std::size_t b = env.ctx.block_records<int>();
  EmVector<int> vec(env.ctx, 40 * b);
  env.dev.arm_fault_after(3);
  EXPECT_THROW(
      {
        StreamWriter<int> w(vec);
        for (std::size_t i = 0; i < 40 * b; ++i) w.push(int(i));
        w.finish();
      },
      DeviceFault);
  env.dev.disarm_fault();
}

TEST(AsyncStreamTest, ReaderSurvivesSkipAcrossPrefetches) {
  testutil::EmEnv env(kBlockBytes, 32);
  env.ctx.set_io_tuning({2, 2, true});
  const std::size_t b = env.ctx.block_records<int>();
  std::vector<int> data(50 * b);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = int(i);
  EmVector<int> vec = materialize<int>(env.ctx, std::span<const int>(data));

  StreamReader<int> r(vec);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.next(), i);
  r.skip(30 * b);  // jump far past everything in flight
  EXPECT_EQ(r.next(), int(30 * b + 5));
  while (!r.done()) (void)r.next();
}

TEST(TuningTest, RejectsInvalidTunings) {
  testutil::EmEnv env(kBlockBytes, 8);
  EXPECT_THROW(env.ctx.set_io_tuning({0, 0, false}), std::invalid_argument);
  // A reader/writer pair at this tuning would need 2*4*(1+1) = 16 > 8 blocks.
  EXPECT_THROW(env.ctx.set_io_tuning({4, 1, false}), std::invalid_argument);
  env.ctx.set_io_tuning({2, 1, true});
  EXPECT_NE(env.ctx.pipeline(), nullptr);
  env.ctx.set_io_tuning({2, 1, false});
  EXPECT_EQ(env.ctx.pipeline(), nullptr);
  EXPECT_EQ(env.ctx.stream_blocks(), 4u);
}

}  // namespace
}  // namespace emsplit

// Tests for the EM substrate: devices, allocation, budget, vectors, streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

constexpr std::size_t kBlockBytes = 256;  // 16 records of 16 bytes

TEST(IoStats, Arithmetic) {
  IoStats a{.reads = 5, .writes = 3};
  IoStats b{.reads = 2, .writes = 1};
  EXPECT_EQ(a.total(), 8u);
  a += b;
  EXPECT_EQ(a.reads, 7u);
  EXPECT_EQ((a - b).writes, 3u);
}

TEST(MemoryBudgetTest, ReserveReleasePeak) {
  MemoryBudget budget(100);
  EXPECT_EQ(budget.available(), 100u);
  {
    auto r1 = budget.reserve(60);
    EXPECT_EQ(budget.used(), 60u);
    auto r2 = budget.reserve(40);
    EXPECT_EQ(budget.used(), 100u);
    EXPECT_THROW((void)budget.reserve(1), BudgetExceeded);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 100u);
}

TEST(MemoryBudgetTest, ReservationMoveSemantics) {
  MemoryBudget budget(10);
  auto a = budget.reserve(4);
  MemoryReservation b = std::move(a);
  EXPECT_EQ(budget.used(), 4u);
  b.release();
  EXPECT_EQ(budget.used(), 0u);
  b.release();  // idempotent
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBlockDeviceTest, ReadWriteRoundTrip) {
  MemoryBlockDevice dev(kBlockBytes);
  auto range = dev.allocate(4);
  ASSERT_TRUE(range.valid());
  std::vector<std::byte> out(kBlockBytes), in(kBlockBytes);
  for (std::size_t i = 0; i < kBlockBytes; ++i) in[i] = std::byte(i % 251);
  dev.write(range.first + 2, in);
  dev.read(range.first + 2, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
}

TEST(MemoryBlockDeviceTest, UnwrittenBlocksReadZero) {
  MemoryBlockDevice dev(kBlockBytes);
  auto range = dev.allocate(1);
  std::vector<std::byte> out(kBlockBytes, std::byte{0xff});
  dev.read(range.first, out);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

TEST(MemoryBlockDeviceTest, AllocatorReusesFreedExtents) {
  MemoryBlockDevice dev(kBlockBytes);
  auto a = dev.allocate(8);
  auto b = dev.allocate(8);
  EXPECT_EQ(dev.size_blocks(), 16u);
  dev.deallocate(a);
  auto c = dev.allocate(4);  // should come from the freed extent
  EXPECT_EQ(dev.size_blocks(), 16u);
  EXPECT_EQ(c.first, a.first);
  dev.deallocate(b);
  dev.deallocate(c);
  EXPECT_EQ(dev.allocated_blocks(), 0u);
  // After full coalescing a large extent fits without growth.
  auto d = dev.allocate(16);
  EXPECT_EQ(dev.size_blocks(), 16u);
  dev.deallocate(d);
}

TEST(MemoryBlockDeviceTest, CoalescingMergesNeighbors) {
  MemoryBlockDevice dev(kBlockBytes);
  auto a = dev.allocate(2);
  auto b = dev.allocate(2);
  auto c = dev.allocate(2);
  dev.deallocate(a);
  dev.deallocate(c);
  dev.deallocate(b);  // merges with both neighbors
  auto big = dev.allocate(6);
  EXPECT_EQ(big.first, a.first);
  EXPECT_EQ(dev.size_blocks(), 6u);
}

TEST(MemoryBlockDeviceTest, OutOfRangeAndBadSpanThrow) {
  MemoryBlockDevice dev(kBlockBytes);
  auto range = dev.allocate(1);
  std::vector<std::byte> buf(kBlockBytes);
  EXPECT_THROW(dev.read(range.first + 10, buf), std::out_of_range);
  std::vector<std::byte> oversized(kBlockBytes + 1);
  EXPECT_THROW(dev.read(range.first, oversized), std::invalid_argument);
  EXPECT_THROW(dev.write(range.first, oversized), std::invalid_argument);
  // Prefix transfers are legal and count one I/O each.
  std::vector<std::byte> prefix(8);
  dev.write(range.first, prefix);
  dev.read(range.first, prefix);
}

TEST(MemoryBlockDeviceTest, FaultInjectionFiresOnce) {
  MemoryBlockDevice dev(kBlockBytes);
  auto range = dev.allocate(1);
  std::vector<std::byte> buf(kBlockBytes);
  dev.write(range.first, buf);
  dev.arm_fault_after(1);
  dev.read(range.first, buf);  // countdown 1 -> 0
  EXPECT_THROW(dev.read(range.first, buf), DeviceFault);
  // Disarmed after firing.
  dev.read(range.first, buf);
  EXPECT_EQ(dev.stats().reads, 2u);  // the faulted read did not count
}

TEST(FileBlockDeviceTest, RoundTripAndPersistence) {
  const std::string path = testing::TempDir() + "/emsplit_dev_test.bin";
  FileBlockDevice dev(path, kBlockBytes);
  auto range = dev.allocate(3);
  std::vector<std::byte> in(kBlockBytes), out(kBlockBytes);
  for (std::size_t i = 0; i < kBlockBytes; ++i) in[i] = std::byte(255 - i % 256);
  dev.write(range.first + 1, in);
  dev.read(range.first + 1, out);
  EXPECT_EQ(in, out);
  // Reading an allocated-but-unwritten block yields zeroes (sparse).
  dev.read(range.first + 2, out);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

TEST(ContextTest, EnforcesModelPreconditions) {
  MemoryBlockDevice dev(kBlockBytes);
  EXPECT_THROW(Context(dev, kBlockBytes), std::invalid_argument);  // M < 2B
  Context ctx(dev, 4 * kBlockBytes);
  EXPECT_EQ(ctx.block_records<Record>(), kBlockBytes / sizeof(Record));
  EXPECT_EQ(ctx.mem_records<Record>(), 4 * kBlockBytes / sizeof(Record));
}

TEST(EmVectorTest, BlockRoundTrip) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 64 * kBlockBytes);
  const std::size_t b = ctx.block_records<Record>();
  EmVector<Record> vec(ctx, 3 * b);
  std::vector<Record> blk(b);
  for (std::size_t i = 0; i < b; ++i) blk[i] = Record{.key = i, .payload = 7};
  vec.write_block(1, blk);
  vec.set_size(2 * b);
  std::vector<Record> out(b);
  vec.read_block(1, out);
  EXPECT_EQ(blk, out);
}

TEST(EmVectorTest, MoveTransfersOwnership) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 64 * kBlockBytes);
  EmVector<Record> a(ctx, 100);
  const auto allocated = dev.allocated_blocks();
  EmVector<Record> b = std::move(a);
  EXPECT_FALSE(a.bound());  // NOLINT(bugprone-use-after-move) intentional
  EXPECT_TRUE(b.bound());
  EXPECT_EQ(dev.allocated_blocks(), allocated);
  b.reset();
  EXPECT_EQ(dev.allocated_blocks(), 0u);
}

TEST(StreamTest, WriterReaderRoundTripCountsIos) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 64 * kBlockBytes);
  const std::size_t b = ctx.block_records<Record>();
  const std::size_t n = 5 * b + 3;  // partial last block
  EmVector<Record> vec(ctx, n);
  {
    StreamWriter<Record> w(vec);
    for (std::size_t i = 0; i < n; ++i) w.push(Record{.key = i, .payload = i});
    w.finish();
  }
  EXPECT_EQ(vec.size(), n);
  EXPECT_EQ(dev.stats().writes, 6u);  // ceil(n / b)
  dev.reset_stats();
  StreamReader<Record> r(vec);
  std::size_t i = 0;
  while (!r.done()) {
    EXPECT_EQ(r.next().key, i);
    ++i;
  }
  EXPECT_EQ(i, n);
  EXPECT_EQ(dev.stats().reads, 6u);
}

TEST(StreamTest, SubRangeReaderAndSkip) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 64 * kBlockBytes);
  const std::size_t b = ctx.block_records<Record>();
  const std::size_t n = 4 * b;
  std::vector<Record> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = Record{.key = i, .payload = 0};
  auto vec = materialize<Record>(ctx, host);
  StreamReader<Record> r(vec, b + 2, 3 * b);
  EXPECT_EQ(r.remaining(), 2 * b - 2);
  EXPECT_EQ(r.peek().key, b + 2);
  r.skip(b);  // lands in a later block without touching the one in between
  EXPECT_EQ(r.next().key, 2 * b + 2);
}

TEST(StreamTest, BudgetChargesOneBlockPerStream) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 4 * kBlockBytes);
  EmVector<Record> vec(ctx, 10);
  {
    StreamWriter<Record> w(vec);
    EXPECT_EQ(ctx.budget().used(), kBlockBytes);
    w.push(Record{});
    w.finish();
  }
  EXPECT_EQ(ctx.budget().used(), 0u);
  {
    StreamReader<Record> r1(vec);
    StreamReader<Record> r2(vec);
    EXPECT_EQ(ctx.budget().used(), 2 * kBlockBytes);
  }
  EXPECT_EQ(ctx.budget().used(), 0u);
}

TEST(StreamTest, LoadStoreRangeRoundTrip) {
  MemoryBlockDevice dev(kBlockBytes);
  Context ctx(dev, 64 * kBlockBytes);
  const std::size_t b = ctx.block_records<Record>();
  const std::size_t n = 4 * b;
  std::vector<Record> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = Record{.key = i, .payload = 1};
  auto vec = materialize<Record>(ctx, host);
  std::vector<Record> mid(2 * b - 3);
  load_range<Record>(vec, b / 2, mid);
  for (std::size_t i = 0; i < mid.size(); ++i) {
    EXPECT_EQ(mid[i].key, b / 2 + i);
  }
  // Overwrite an unaligned range and verify neighbors survive.
  std::vector<Record> patch(b, Record{.key = 999'999, .payload = 2});
  store_range<Record>(vec, b / 2, patch);
  auto all = to_host(vec);
  EXPECT_EQ(all[b / 2 - 1].key, b / 2 - 1);
  EXPECT_EQ(all[b / 2].key, 999'999u);
  EXPECT_EQ(all[b / 2 + b - 1].key, 999'999u);
  EXPECT_EQ(all[b / 2 + b].key, b / 2 + b);
}

TEST(WorkloadTest, ShapesHaveExpectedStructure) {
  const std::size_t n = 1000;
  for (Workload w : all_workloads()) {
    auto v = make_workload(w, n, /*seed=*/42, /*block_records=*/16);
    ASSERT_EQ(v.size(), n) << to_string(w);
    // All payload-tagged shapes form a strict total order.
    auto sorted_v = v;
    std::sort(sorted_v.begin(), sorted_v.end());
    EXPECT_TRUE(std::adjacent_find(sorted_v.begin(), sorted_v.end()) ==
                sorted_v.end())
        << "duplicate record in " << to_string(w);
  }
  auto s = make_workload(Workload::kSorted, n, 1);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  auto r = make_workload(Workload::kReverse, n, 1);
  EXPECT_TRUE(std::is_sorted(r.rbegin(), r.rend()));
}

TEST(WorkloadTest, DeterministicInSeed) {
  auto a = make_workload(Workload::kUniform, 500, 7);
  auto b = make_workload(Workload::kUniform, 500, 7);
  auto c = make_workload(Workload::kUniform, 500, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(WorkloadTest, BlockStripedRespectsStripeOrder) {
  const std::size_t b = 16, n = 8 * b;
  auto v = make_workload(Workload::kBlockStriped, n, 3, b);
  // Every element in stripe i is smaller than every element in stripe j > i.
  for (std::size_t stripe = 0; stripe + 1 < b; ++stripe) {
    std::uint64_t max_this = 0, min_next = ~0ULL;
    for (std::size_t blk = 0; blk < n / b; ++blk) {
      max_this = std::max(max_this, v[blk * b + stripe].key);
      min_next = std::min(min_next, v[blk * b + stripe + 1].key);
    }
    EXPECT_LT(max_this, min_next) << "stripe " << stripe;
  }
}

}  // namespace
}  // namespace emsplit

// The query fast path: the epoch-keyed BucketScanCache (geometry, never
// output — identical answers and identical per-query base I/O with the cache
// on or off), single-flight scan sharing (N concurrent queries over one
// bucket cost the device one scan while each query still pays its geometric
// reads), condvar-driven refresh retirement (an epoch publish under zero
// load never waits, let alone sleeps), condvar admission (a queued query
// admits the moment budget bytes free up), the pipelined line protocol
// (torn lines, batched lines answered in order, oversized lines rejected),
// the TCP front end (bit-identical replies to the Unix socket), and the
// epoch-keying invariant under concurrent refresh: a reply's cached reads
// always come from the very epoch that answered it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "service/server.hpp"
#include "service/splitter_index.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

using testutil::sorted_copy;

constexpr std::size_t kBlockBytes = 256;  // 16 records per block
constexpr std::size_t kMemBlocks = 512;
constexpr std::size_t kRecords = 4096;
constexpr std::uint64_t kBuckets = 16;

std::string temp_path(const char* tag) {
  static int counter = 0;
  return testing::TempDir() + "/fast_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + "_" + tag;
}

void write_record_file(const std::string& path,
                       const std::vector<Record>& v) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(v.data(), sizeof(Record), v.size(), f), v.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::uint64_t oracle_rank(const std::vector<Record>& sorted_ref,
                          const Record& probe) {
  return static_cast<std::uint64_t>(
      std::upper_bound(sorted_ref.begin(), sorted_ref.end(), probe) -
      sorted_ref.begin());
}

// ---------------------------------------------------------------------------
// BucketScanCache: geometry, never output.

TEST(BucketScanCacheDeterminism, CachedRepliesMatchUncachedBaseForBase) {
  const auto host = make_workload(Workload::kUniform, kRecords, 51);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("det_src.rec");
  write_record_file(src, host);

  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;

  const auto run_pass = [&](SplitterServer& server,
                            std::vector<SplitterServer::Reply>& out) {
    for (std::size_t r = 0; r < kRecords; r += 173) {
      SplitterServer::Request q;
      q.kind = QueryKind::kRank;
      q.lo = sorted_ref[r];
      out.push_back(server.query(q));
    }
    SplitterServer::Request range;
    range.kind = QueryKind::kRange;
    range.lo = sorted_ref[kRecords / 4];
    range.hi = sorted_ref[3 * kRecords / 4];
    out.push_back(server.query(range));
    SplitterServer::Request top;
    top.kind = QueryKind::kTopK;
    top.k = 29;
    out.push_back(server.query(top));
  };

  // Reference pass: no bucket cache.
  std::vector<SplitterServer::Reply> ref;
  {
    testutil::EmEnv env(kBlockBytes, kMemBlocks);
    SplitterServer server(env.ctx, cfg);
    server.start();
    EXPECT_EQ(server.bucket_cache(), nullptr);
    run_pass(server, ref);
  }

  // Cached server: a cold pass (fills the cache) and a warm pass (hits it).
  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config ccfg = cfg;
  ccfg.bucket_cache_blocks = 256;
  SplitterServer server(env.ctx, ccfg);
  server.start();
  ASSERT_NE(server.bucket_cache(), nullptr);
  ASSERT_TRUE(server.bucket_cache()->enabled());
  std::vector<SplitterServer::Reply> cold;
  std::vector<SplitterServer::Reply> warm;
  run_pass(server, cold);
  run_pass(server, warm);

  ASSERT_EQ(cold.size(), ref.size());
  ASSERT_EQ(warm.size(), ref.size());
  std::uint64_t warm_bucket_hits = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    for (const auto* pass : {&cold, &warm}) {
      const auto& rep = (*pass)[i];
      ASSERT_TRUE(rep.ok) << "query " << i << ": " << rep.error;
      // Identical answers AND identical logical per-query I/O: the cache is
      // geometry, never output.
      EXPECT_EQ(rep.value, ref[i].value) << "query " << i;
      EXPECT_EQ(rep.records, ref[i].records) << "query " << i;
      EXPECT_EQ(rep.io.base(), ref[i].io.base()) << "query " << i;
      // A cached read is still a logical read, so hits never exceed reads.
      EXPECT_LE(rep.io.bucket_hits, rep.io.reads) << "query " << i;
      // The cache is keyed to the epoch that answered.
      if (rep.io.bucket_hits > 0) {
        EXPECT_EQ(rep.cache_epoch, rep.epoch);
      }
    }
    warm_bucket_hits += warm[i].io.bucket_hits;
  }
  EXPECT_GT(warm_bucket_hits, 0u) << "warm pass never hit the bucket cache";
  EXPECT_GT(server.bucket_cache()->hits(), 0u);
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// Scan sharing: concurrent queries over one bucket cost one device scan.

TEST(BucketScanCacheSharing, ConcurrentSameBucketQueriesScanDeviceOnce) {
  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  const auto host = make_workload(Workload::kUniform, kRecords, 52);
  const auto sorted_ref = sorted_copy(host);
  auto data = materialize<Record>(env.ctx, std::span<const Record>(host));
  SplitterIndex<Record> idx =
      SplitterIndex<Record>::build(env.ctx, data, kBuckets, 0.25);

  // Geometric cost of this rank's bucket scan, measured uncached.
  const Record probe = sorted_ref[kRecords / 2];
  env.dev.reset_stats();
  const auto uncached = idx.rank(probe);
  const std::uint64_t scan_reads = uncached.io.reads;
  ASSERT_GT(scan_reads, 0u);
  ASSERT_EQ(env.dev.stats().base().reads, scan_reads);

  auto cache = std::make_shared<BucketScanCache<Record>>(
      env.ctx.budget(), /*capacity_bytes=*/64 * kBlockBytes,
      /*chunk_bytes=*/8 * kBlockBytes, /*epoch=*/1);
  ASSERT_TRUE(cache->enabled());
  idx.attach_bucket_cache(cache);

  constexpr std::size_t kThreads = 8;
  env.dev.reset_stats();
  std::vector<std::uint64_t> values(kThreads);
  std::vector<IoStats> ios(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const auto r = idx.rank(probe);
        values[t] = r.value;
        ios[t] = r.io;
      });
    }
    for (auto& th : threads) th.join();
  }

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(values[t], uncached.value) << "thread " << t;
    // Per-query reads are geometry, wherever the bytes came from.
    EXPECT_EQ(ios[t].base().reads, scan_reads) << "thread " << t;
  }
  // The whole stampede scanned the device exactly once: one loader, every
  // other thread either coalesced onto its scan or hit the published entry.
  EXPECT_EQ(env.dev.stats().base().reads, scan_reads);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), kThreads - 1);
}

// ---------------------------------------------------------------------------
// Refresh under zero load: the publish path never waits (and never sleeps).

TEST(SplitterServiceRefresh, ZeroLoadRefreshNeverWaitsForRetirement) {
  const auto host = make_workload(Workload::kUniform, kRecords, 53);
  const std::string src = temp_path("zl_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  cfg.bucket_cache_blocks = 64;
  SplitterServer server(env.ctx, cfg);
  server.start();
  for (int i = 0; i < 4; ++i) {
    (void)server.refresh();
  }
  EXPECT_EQ(server.epoch(), 5u);
  // No query ever pinned a snapshot, so retirement must have completed
  // without a single condvar wait — the sleep-free refresh contract.
  EXPECT_EQ(server.retire_waits(), 0u);
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// Condvar admission: a queued query admits the moment bytes free up.

TEST(SplitterServiceAdmission, QueuedQueryAdmitsOnBudgetRelease) {
  const auto host = make_workload(Workload::kUniform, kRecords, 54);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("adm_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  cfg.queue_wait = 10.0;  // far longer than the test should ever take
  SplitterServer server(env.ctx, cfg);
  server.start();

  // Hog the budget so the query queues, then release from another thread.
  auto hog = env.ctx.budget().try_reserve(env.ctx.budget().available());
  ASSERT_TRUE(hog.has_value());
  SplitterServer::Request q;
  q.kind = QueryKind::kRank;
  q.lo = sorted_ref[kRecords / 3];
  SplitterServer::Reply rep;
  std::thread client([&] { rep = server.query(q); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hog.reset();  // the release listener must wake the queued query
  client.join();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.admission, "queued");
  EXPECT_EQ(rep.value, oracle_rank(sorted_ref, q.lo));
  // Condvar wakeup, not deadline expiry: far below the 10s queue window.
  EXPECT_LT(rep.queue_seconds, 5.0);
  std::remove(src.c_str());
}

// ---------------------------------------------------------------------------
// The pipelined socket protocol.

struct SocketClient {
  int fd = -1;
  std::FILE* io = nullptr;

  ~SocketClient() {
    if (io != nullptr) std::fclose(io);  // closes fd too
  }
  void connect_unix(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    io = ::fdopen(fd, "r+");
    ASSERT_NE(io, nullptr);
  }
  void connect_tcp(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    io = ::fdopen(fd, "r+");
    ASSERT_NE(io, nullptr);
  }
  void send_raw(const std::string& bytes) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), io), bytes.size());
    ASSERT_EQ(std::fflush(io), 0);
  }
  std::string read_line() {
    char buf[512];
    if (std::fgets(buf, sizeof(buf), io) == nullptr) return "";
    return buf;
  }
};

struct ServiceOnSocket {
  testutil::EmEnv env{kBlockBytes, kMemBlocks};
  std::unique_ptr<SplitterServer> server;
  std::string sock = temp_path("pipe.sock");
  std::string src = temp_path("pipe_src.rec");
  std::thread srv;

  void start(const std::vector<Record>& host, std::uint64_t cache_blocks = 0) {
    write_record_file(src, host);
    SplitterServer::Config cfg;
    cfg.source_path = src;
    cfg.buckets = kBuckets;
    cfg.bucket_cache_blocks = cache_blocks;
    server = std::make_unique<SplitterServer>(env.ctx, cfg);
    server->start();
    srv = std::thread([this] { server->serve_unix(sock); });
    for (int i = 0; i < 500 && ::access(sock.c_str(), F_OK) != 0; ++i) {
      ::usleep(10 * 1000);
    }
    ASSERT_EQ(::access(sock.c_str(), F_OK), 0) << "socket never appeared";
  }
  ~ServiceOnSocket() {
    if (server) server->stop();
    if (srv.joinable()) srv.join();
    std::remove(src.c_str());
  }
};

TEST(PipelinedProtocol, BatchedLinesAnswerInRequestOrder) {
  const auto host = make_workload(Workload::kUniform, kRecords, 55);
  const auto sorted_ref = sorted_copy(host);
  ServiceOnSocket svc;
  svc.start(host, /*cache_blocks=*/128);

  SocketClient c;
  c.connect_unix(svc.sock);

  // One write, many requests — including a control line mid-batch.
  const std::size_t probes[] = {7, kRecords / 3, kRecords - 19};
  std::string batch;
  for (const std::size_t p : probes) {
    batch += "RANK " + std::to_string(sorted_ref[p].key) + "\n";
  }
  batch += "EPOCH\r\n";  // CRLF line endings are accepted too
  for (const std::size_t p : probes) {
    batch += "RANK " + std::to_string(sorted_ref[p].key) + "\n";
  }
  c.send_raw(batch);

  for (int round = 0; round < 2; ++round) {
    for (const std::size_t p : probes) {
      const auto want =
          oracle_rank(sorted_ref, Record{sorted_ref[p].key, ~0ULL});
      EXPECT_EQ(c.read_line(), "OK " + std::to_string(want) + "\n")
          << "round " << round << " probe " << p;
    }
    if (round == 0) {
      EXPECT_EQ(c.read_line(), "OK 1\n");
    }
  }
}

TEST(PipelinedProtocol, TornLinesReassembleAcrossWrites) {
  const auto host = make_workload(Workload::kUniform, kRecords, 56);
  const auto sorted_ref = sorted_copy(host);
  ServiceOnSocket svc;
  svc.start(host);

  SocketClient c;
  c.connect_unix(svc.sock);
  const Record probe = sorted_ref[kRecords / 2];
  const auto want = oracle_rank(sorted_ref, Record{probe.key, ~0ULL});
  const std::string line = "RANK " + std::to_string(probe.key) + "\n";

  // A line split at every byte boundary must parse exactly once each time.
  for (std::size_t cut = 1; cut + 1 < line.size(); cut += 3) {
    c.send_raw(line.substr(0, cut));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    c.send_raw(line.substr(cut));
    EXPECT_EQ(c.read_line(), "OK " + std::to_string(want) + "\n")
        << "cut " << cut;
  }
  // A complete line plus the head of the next: the head must wait.
  c.send_raw("EPOCH\nRANK " + std::to_string(probe.key));
  EXPECT_EQ(c.read_line(), "OK 1\n");
  c.send_raw("\n");
  EXPECT_EQ(c.read_line(), "OK " + std::to_string(want) + "\n");
}

TEST(PipelinedProtocol, OversizedLineIsRejectedAndConnectionClosed) {
  const auto host = make_workload(Workload::kUniform, kRecords, 57);
  ServiceOnSocket svc;
  svc.start(host);

  SocketClient c;
  c.connect_unix(svc.sock);
  // More bytes than the server will buffer while waiting for a newline.
  c.send_raw(std::string(SplitterServer::kMaxLineBytes + 4096, 'A'));
  EXPECT_EQ(c.read_line(), "ERR line too long\n");
  EXPECT_EQ(c.read_line(), "") << "connection should be closed";

  // The server survives: a fresh connection still answers.
  SocketClient c2;
  c2.connect_unix(svc.sock);
  c2.send_raw("EPOCH\n");
  EXPECT_EQ(c2.read_line(), "OK 1\n");
}

// ---------------------------------------------------------------------------
// The TCP front end: same protocol, same answers.

TEST(TcpFrontEnd, RepliesMatchUnixSocketExactly) {
  const auto host = make_workload(Workload::kUniform, kRecords, 58);
  const auto sorted_ref = sorted_copy(host);
  ServiceOnSocket svc;
  svc.start(host, /*cache_blocks=*/128);

  std::thread tcp([&] { svc.server->serve_tcp("127.0.0.1", 0); });
  for (int i = 0; i < 500 && svc.server->tcp_port() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_NE(svc.server->tcp_port(), 0) << "TCP listener never bound";

  SocketClient ux;
  ux.connect_unix(svc.sock);
  SocketClient tc;
  tc.connect_tcp(svc.server->tcp_port());

  std::string batch;
  for (const std::size_t p : {std::size_t{3}, kRecords / 5, kRecords - 7}) {
    batch += "RANK " + std::to_string(sorted_ref[p].key) + "\n";
  }
  batch += "RANGE " + std::to_string(sorted_ref[100].key) + " " +
           std::to_string(sorted_ref[4000].key) + "\n";
  batch += "HIST 4\nTOPK 5\nEPOCH\n";
  // Responses preserve request order, so an unknown-command sentinel at the
  // tail marks exactly where each connection's reply stream ends.
  batch += "SENTINEL\n";

  const auto drain = [&](SocketClient& c) {
    c.send_raw(batch);
    std::string all;
    for (;;) {
      const std::string line = c.read_line();
      if (line.empty()) break;  // connection dropped — caught by EXPECT below
      all += line;
      if (line.find("ERR") == 0) break;  // the sentinel's reply
    }
    return all;
  };
  const std::string from_unix = drain(ux);
  const std::string from_tcp = drain(tc);
  EXPECT_FALSE(from_unix.empty());
  EXPECT_EQ(from_unix, from_tcp)
      << "TCP and Unix front ends must serve bit-identical replies";

  svc.server->stop();
  tcp.join();
}

// ---------------------------------------------------------------------------
// Epoch keying under churn: a reply's cached reads come from its own epoch.

TEST(BucketCacheEpochKeying, ConcurrentRefreshNeverServesStaleEpochHits) {
  const auto host = make_workload(Workload::kUniform, kRecords, 59);
  const auto sorted_ref = sorted_copy(host);
  const std::string src = temp_path("churn_src.rec");
  write_record_file(src, host);

  testutil::EmEnv env(kBlockBytes, kMemBlocks);
  SplitterServer::Config cfg;
  cfg.source_path = src;
  cfg.buckets = kBuckets;
  cfg.bucket_cache_blocks = 128;
  cfg.queue_wait = 1.0;
  SplitterServer server(env.ctx, cfg);
  server.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> ok_replies{0};
  std::atomic<std::uint64_t> cached_replies{0};
  std::atomic<int> violations{0};

  constexpr std::size_t kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::size_t i = t;
      while (!done.load()) {
        SplitterServer::Request q;
        q.kind = QueryKind::kRank;
        q.lo = sorted_ref[(i * 131) % kRecords];
        const SplitterServer::Reply rep = server.query(q, t + 1);
        // The invariant under test: cached reads are keyed to the very
        // epoch that answered — never a neighbor's, never a stale one.
        if (rep.cache_epoch != 0 && rep.cache_epoch != rep.epoch) {
          violations.fetch_add(1);
        }
        if (rep.ok) {
          ok_replies.fetch_add(1);
          if (rep.value != oracle_rank(sorted_ref, q.lo)) {
            violations.fetch_add(1);
          }
          if (rep.io.bucket_hits > 0) cached_replies.fetch_add(1);
        }
        ++i;
      }
    });
  }
  // The refresher: epoch churn while the clients hammer the cache.
  for (int r = 0; r < 5; ++r) {
    (void)server.refresh();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  for (auto& th : clients) th.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(ok_replies.load(), 0u);
  EXPECT_GT(cached_replies.load(), 0u) << "the cache never served a hit";
  EXPECT_EQ(server.epoch(), 6u);
  std::remove(src.c_str());
}

}  // namespace
}  // namespace emsplit

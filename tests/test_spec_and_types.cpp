// Tests for the problem-spec layer, the bound formulas, and instantiation of
// the algorithm stack over a second record type (raw uint64_t keys).
#include <gtest/gtest.h>

#include <cmath>

#include "core/api.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace emsplit {
namespace {

TEST(SpecTest, ValidationMatrix) {
  // Feasibility is exactly a*K <= N <= b*K with K >= 1, a <= b.
  EXPECT_NO_THROW(validate_spec(100, {.k = 10, .a = 10, .b = 10}));
  EXPECT_NO_THROW(validate_spec(100, {.k = 10, .a = 0, .b = 100}));
  EXPECT_NO_THROW(validate_spec(100, {.k = 1, .a = 100, .b = 100}));
  EXPECT_THROW(validate_spec(100, {.k = 0, .a = 0, .b = 100}),
               std::invalid_argument);
  EXPECT_THROW(validate_spec(100, {.k = 10, .a = 11, .b = 100}),
               std::invalid_argument);
  EXPECT_THROW(validate_spec(100, {.k = 10, .a = 0, .b = 9}),
               std::invalid_argument);
  EXPECT_THROW(validate_spec(100, {.k = 10, .a = 20, .b = 10}),
               std::invalid_argument);
  // Overflow-hostile values must not wrap.
  EXPECT_THROW(validate_spec(100, {.k = 1ULL << 40, .a = 1ULL << 40,
                                   .b = 1ULL << 60}),
               std::invalid_argument);
}

TEST(SpecTest, GroundingPredicates) {
  const ApproxSpec right{.k = 4, .a = 5, .b = 1000};
  EXPECT_TRUE(right.right_grounded(1000));
  EXPECT_TRUE(right.right_grounded(500));
  EXPECT_FALSE(right.right_grounded(2000));
  EXPECT_FALSE(right.left_grounded());
  const ApproxSpec left{.k = 4, .a = 0, .b = 600};
  EXPECT_TRUE(left.left_grounded());
}

TEST(FormulasTest, LgClampedBehaviour) {
  EXPECT_DOUBLE_EQ(formulas::lg_clamped(2.0, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(formulas::lg_clamped(32.0, 1.0), 1.0);   // clamps at 1
  EXPECT_DOUBLE_EQ(formulas::lg_clamped(32.0, 0.5), 1.0);   // below 1 clamps
  EXPECT_DOUBLE_EQ(formulas::lg_clamped(1.0, 100.0), 1.0);  // degenerate base
  EXPECT_NEAR(formulas::lg_clamped(32.0, 1024.0), 2.0, 1e-12);
}

TEST(FormulasTest, SortIosMonotoneInN) {
  double prev = 0;
  for (double n : {1e4, 1e5, 1e6, 1e7}) {
    const double v = formulas::sort_ios(n, 8192, 256);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

// ---------------------------------------------------------------------------
// The whole stack over plain uint64_t records (8-byte, no payload).
// The comparator must still be a strict total order, so these workloads use
// distinct keys.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> distinct_keys(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i * 2 + 1;
  SplitMix64 rng(seed);
  for (std::size_t i = n; i > 1; --i) std::swap(v[i - 1], v[rng.next_below(i)]);
  return v;
}

TEST(Uint64StackTest, SortSelectSplitPartition) {
  MemoryBlockDevice dev(256);
  Context ctx(dev, 96 * 256);
  const std::size_t n = 30000;
  auto host = distinct_keys(n, 9);
  auto input = materialize<std::uint64_t>(ctx, host);
  auto sorted_host = host;
  std::sort(sorted_host.begin(), sorted_host.end());

  // Sort.
  auto sorted = external_sort<std::uint64_t>(ctx, input);
  EXPECT_EQ(to_host(sorted), sorted_host);

  // Selection.
  EXPECT_EQ(select_rank<std::uint64_t>(ctx, input, 12345),
            sorted_host[12344]);
  auto sel = multi_select<std::uint64_t>(ctx, input, {1, 15000, 30000});
  EXPECT_EQ(sel[0], sorted_host[0]);
  EXPECT_EQ(sel[1], sorted_host[14999]);
  EXPECT_EQ(sel[2], sorted_host[29999]);

  // Splitters.
  const ApproxSpec spec{.k = 10, .a = 1000, .b = 6000};
  auto splitters = approx_splitters<std::uint64_t>(ctx, input, spec);
  EXPECT_TRUE(verify_splitters<std::uint64_t>(input, splitters, spec).ok);

  // Partitioning.
  auto part = approx_partitioning<std::uint64_t>(ctx, input, spec);
  EXPECT_TRUE(
      verify_partitioning<std::uint64_t>(input, part.data, part.bounds, spec)
          .ok);
}

TEST(Uint64StackTest, CustomComparatorDescendingSelection) {
  MemoryBlockDevice dev(256);
  Context ctx(dev, 96 * 256);
  const std::size_t n = 5000;
  auto host = distinct_keys(n, 10);
  auto input = materialize<std::uint64_t>(ctx, host);
  auto sorted_host = host;
  std::sort(sorted_host.begin(), sorted_host.end(), std::greater<>());
  // Rank 1 under greater<> is the maximum.
  EXPECT_EQ(
      (select_rank<std::uint64_t, std::greater<std::uint64_t>>(ctx, input, 1)),
      sorted_host[0]);
  auto sel = multi_select<std::uint64_t, std::greater<std::uint64_t>>(
      ctx, input, {100, 4000}, std::greater<std::uint64_t>());
  EXPECT_EQ(sel[0], sorted_host[99]);
  EXPECT_EQ(sel[1], sorted_host[3999]);
}

}  // namespace
}  // namespace emsplit

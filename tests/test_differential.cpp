// Differential testing: randomized machine geometries, input shapes and
// problem parameters for every algorithm, each checked against a host-side
// oracle, the memory budget, and input immutability.  One seeded generator
// per case keeps failures perfectly reproducible: the test name contains
// everything needed to replay.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/api.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace emsplit {
namespace {

struct RandomConfig {
  std::size_t block_bytes;
  std::size_t mem_blocks;
  Workload workload;
  std::size_t n;
  std::uint64_t seed;
};

RandomConfig draw_config(std::uint64_t case_seed) {
  SplitMix64 rng(case_seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::size_t block_choices[] = {128, 256, 1024, 4096};
  RandomConfig c;
  c.block_bytes = block_choices[rng.next_below(4)];
  c.mem_blocks = 8u << rng.next_below(6);  // 8..256 blocks
  const auto& shapes = all_workloads();
  c.workload = shapes[rng.next_below(shapes.size())];
  c.n = 64 + rng.next_below(50000);
  c.seed = rng.next();
  return c;
}

class DifferentialTest : public testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    cfg_ = draw_config(GetParam());
    dev_ = std::make_unique<MemoryBlockDevice>(cfg_.block_bytes);
    ctx_ = std::make_unique<Context>(*dev_, cfg_.mem_blocks * cfg_.block_bytes);
    host_ = make_workload(cfg_.workload, cfg_.n, cfg_.seed,
                          ctx_->block_records<Record>());
    input_ = materialize<Record>(*ctx_, host_);
    sorted_ = testutil::sorted_copy(host_);
    rng_ = std::make_unique<SplitMix64>(cfg_.seed ^ 0xfeedULL);
    ctx_->budget().reset_peak();
  }

  void TearDown() override {
    EXPECT_LE(ctx_->budget().peak(), ctx_->budget().capacity())
        << describe();
    EXPECT_EQ(to_host(input_), host_) << "input mutated: " << describe();
    input_.reset();
    EXPECT_EQ(dev_->allocated_blocks(), 0u)
        << "device blocks leaked: " << describe();
  }

  [[nodiscard]] std::string describe() const {
    return "cfg{block=" + std::to_string(cfg_.block_bytes) +
           " mem_blocks=" + std::to_string(cfg_.mem_blocks) + " workload=" +
           to_string(cfg_.workload) + " n=" + std::to_string(cfg_.n) +
           " seed=" + std::to_string(cfg_.seed) + "}";
  }

  /// A random feasible (K, a, b) for the current n.
  [[nodiscard]] ApproxSpec random_spec() {
    const std::uint64_t n = cfg_.n;
    const std::uint64_t k = 2 + rng_->next_below(std::min<std::uint64_t>(
                                    n / 2, 64));
    const std::uint64_t a = rng_->next_below(n / k + 1);  // 0..floor(n/k)
    const std::uint64_t bmin = (n + k - 1) / k;
    const std::uint64_t b = bmin + rng_->next_below(n - bmin + 1);
    return ApproxSpec{.k = k, .a = a, .b = b};
  }

  RandomConfig cfg_;
  std::unique_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<Context> ctx_;
  std::vector<Record> host_;
  std::vector<Record> sorted_;
  EmVector<Record> input_;
  std::unique_ptr<SplitMix64> rng_;
};

TEST_P(DifferentialTest, Sort) {
  auto result = external_sort<Record>(*ctx_, input_);
  EXPECT_EQ(to_host(result), sorted_) << describe();
}

TEST_P(DifferentialTest, MultiSelect) {
  std::vector<std::uint64_t> ranks(1 + rng_->next_below(40));
  for (auto& r : ranks) r = 1 + rng_->next_below(cfg_.n);
  auto got = multi_select<Record>(*ctx_, input_, ranks);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], sorted_[ranks[i] - 1])
        << "rank " << ranks[i] << " " << describe();
  }
}

TEST_P(DifferentialTest, MultiPartition) {
  // Random strictly increasing split ranks.
  std::vector<std::uint64_t> ranks;
  for (std::uint64_t r = 1 + rng_->next_below(cfg_.n / 4 + 1); r < cfg_.n;
       r += 1 + rng_->next_below(cfg_.n / 4 + 1)) {
    ranks.push_back(r);
  }
  auto result = multi_partition<Record>(*ctx_, input_, ranks);
  auto data = to_host(result.data);
  for (std::size_t i = 0; i + 1 < result.bounds.size(); ++i) {
    std::vector<Record> part(
        data.begin() + static_cast<std::ptrdiff_t>(result.bounds[i]),
        data.begin() + static_cast<std::ptrdiff_t>(result.bounds[i + 1]));
    std::sort(part.begin(), part.end());
    const std::vector<Record> expect(
        sorted_.begin() + static_cast<std::ptrdiff_t>(result.bounds[i]),
        sorted_.begin() + static_cast<std::ptrdiff_t>(result.bounds[i + 1]));
    ASSERT_EQ(part, expect) << "partition " << i << " " << describe();
  }
}

TEST_P(DifferentialTest, Splitters) {
  const auto spec = random_spec();
  auto splitters = approx_splitters<Record>(*ctx_, input_, spec);
  auto check = verify_splitters<Record>(input_, splitters, spec);
  EXPECT_TRUE(check.ok) << check.reason << " K=" << spec.k << " a=" << spec.a
                        << " b=" << spec.b << " " << describe();
}

TEST_P(DifferentialTest, Partitioning) {
  const auto spec = random_spec();
  auto result = approx_partitioning<Record>(*ctx_, input_, spec);
  auto check =
      verify_partitioning<Record>(input_, result.data, result.bounds, spec);
  EXPECT_TRUE(check.ok) << check.reason << " K=" << spec.k << " a=" << spec.a
                        << " b=" << spec.b << " " << describe();
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, DifferentialTest,
                         testing::Range<std::uint64_t>(0, 48),
                         [](const auto& ti) {
                           return "case" + std::to_string(ti.param);
                         });

}  // namespace
}  // namespace emsplit

// The async pipeline's core contract: switching the background worker on or
// off never changes the I/O accounting or the results — only wall-clock.
// Geometry derives from stream_blocks(), which depends on batch_blocks and
// queue_depth but not on the async flag (docs/model.md, "I/O batching and
// asynchrony"), so sync and async runs of the same tuning must be
// bit-identical in both outputs and IoStats totals.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "em/context.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"

namespace emsplit {
namespace {

struct Shape {
  const char* name;
  std::size_t block_bytes;
  std::size_t mem_blocks;
  std::size_t n;
};

constexpr Shape kShapes[] = {
    {"small_blocks", 128, 32, 20000},
    // 32 blocks, not fewer: at tuning {2,1} the distribution pass holds a
    // reader plus up to three sink writers of stream_blocks() = 4 blocks
    // each, and the budget floor must accommodate all of them.
    {"large_blocks", 1024, 32, 60000},
};

std::vector<int> workload(std::size_t n) {
  std::vector<int> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = int((i * 2654435761u) % (n / 2 + 1));
  }
  return data;
}

struct RunResult {
  IoStats ios;
  std::vector<int> output;
};

template <typename Algo>
RunResult run_tuned(const Shape& shape, const IoTuning& tuning, Algo&& algo) {
  testutil::EmEnv env(shape.block_bytes, shape.mem_blocks);
  env.ctx.set_io_tuning(tuning);
  const auto data = workload(shape.n);
  EmVector<int> input = materialize<int>(env.ctx, std::span<const int>(data));
  env.dev.reset_stats();
  env.ctx.budget().reset_peak();
  EmVector<int> out = algo(env.ctx, input);
  RunResult r{env.dev.stats(), to_host(out)};
  // Prefetch buffers are budgeted like everything else: async never puts the
  // run over M.
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity())
      << shape.name;
  return r;
}

template <typename Algo>
void expect_async_transparent(const Shape& shape, Algo&& algo) {
  const IoTuning sync{2, 1, false};
  const IoTuning async{2, 1, true};
  const RunResult s = run_tuned(shape, sync, algo);
  const RunResult a = run_tuned(shape, async, algo);
  EXPECT_EQ(a.ios.reads, s.ios.reads) << shape.name;
  EXPECT_EQ(a.ios.writes, s.ios.writes) << shape.name;
  EXPECT_EQ(a.output, s.output) << shape.name;
}

TEST(AsyncDeterminismTest, ExternalSortCountsAndOutputMatchSync) {
  for (const Shape& shape : kShapes) {
    expect_async_transparent(shape, [](Context& ctx, EmVector<int>& input) {
      return external_sort<int>(ctx, input);
    });
  }
}

TEST(AsyncDeterminismTest, ReplacementSelectionSortMatchesSync) {
  for (const Shape& shape : kShapes) {
    expect_async_transparent(shape, [](Context& ctx, EmVector<int>& input) {
      return external_sort<int>(ctx, input, std::less<int>{},
                                RunStrategy::kReplacementSelection);
    });
  }
}

TEST(AsyncDeterminismTest, MultiPartitionCountsAndOutputMatchSync) {
  for (const Shape& shape : kShapes) {
    expect_async_transparent(shape, [&](Context& ctx, EmVector<int>& input) {
      std::vector<std::uint64_t> ranks;
      for (std::uint64_t r = 1; r < 16; ++r) {
        ranks.push_back(r * (shape.n / 16));
      }
      auto res = multi_partition<int>(ctx, input, ranks);
      return std::move(res.data);
    });
  }
}

TEST(AsyncDeterminismTest, DeeperQueuesStaySelfConsistent) {
  const Shape shape{"deep_queue", 128, 64, 30000};
  const RunResult s = run_tuned(shape, {4, 2, false},
                                [](Context& ctx, EmVector<int>& input) {
                                  return external_sort<int>(ctx, input);
                                });
  const RunResult a = run_tuned(shape, {4, 2, true},
                                [](Context& ctx, EmVector<int>& input) {
                                  return external_sort<int>(ctx, input);
                                });
  EXPECT_EQ(a.ios.reads, s.ios.reads);
  EXPECT_EQ(a.ios.writes, s.ios.writes);
  EXPECT_EQ(a.output, s.output);
}

}  // namespace
}  // namespace emsplit

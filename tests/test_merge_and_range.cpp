// Tests for the public k-way merge and batched range counting, plus golden
// I/O regression guards for pinned configurations.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/range_count.hpp"
#include "core/api.hpp"
#include "sort/merge_sorted.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

TEST(MergeSortedTest, MergesManyShards) {
  EmEnv env(256, 8);
  SplitMix64 rng(21);
  std::vector<EmVector<Record>> shards;
  std::vector<Record> all;
  for (int s = 0; s < 40; ++s) {
    const auto len = static_cast<std::size_t>(rng.next_below(3000));
    std::vector<Record> shard(len);
    for (auto& r : shard) r = Record{.key = rng.next(), .payload = rng.next()};
    std::sort(shard.begin(), shard.end());
    all.insert(all.end(), shard.begin(), shard.end());
    shards.push_back(materialize<Record>(env.ctx, shard));
  }
  env.ctx.budget().reset_peak();
  auto merged = merge_sorted<Record>(env.ctx, std::move(shards));
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(to_host(merged), all);
  // All shard space recycled; only input-materialization leftovers remain.
  EXPECT_EQ(env.dev.allocated_blocks(), merged.size_blocks());
}

TEST(MergeSortedTest, EdgeCases) {
  EmEnv env(256, 8);
  EXPECT_EQ(merge_sorted<Record>(env.ctx, {}).size(), 0u);
  std::vector<EmVector<Record>> one;
  one.push_back(materialize<Record>(
      env.ctx, std::vector<Record>{{1, 0}, {2, 0}}));
  EXPECT_EQ(merge_sorted<Record>(env.ctx, std::move(one)).size(), 2u);
}

TEST(BatchedRanksTest, MatchesHostOracle) {
  EmEnv env(256, 96);  // the probe table must fit in memory (<= Theta(M))
  const std::size_t n = 20000;
  auto host = make_workload(Workload::kUniform, n, 22);
  auto data = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);

  SplitMix64 rng(23);
  std::vector<Record> probes;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 0 && !host.empty()) {
      probes.push_back(host[rng.next_below(n)]);  // exact members
    } else {
      probes.push_back(Record{rng.next_below(5 * n), rng.next_below(n)});
    }
  }
  env.dev.reset_stats();
  auto ranks = batched_ranks<Record>(env.ctx, data, probes);
  // One scan regardless of probe count.
  EXPECT_EQ(env.dev.stats().total(),
            (n + env.ctx.block_records<Record>() - 1) /
                env.ctx.block_records<Record>());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto expect = static_cast<std::uint64_t>(
        std::upper_bound(sorted_ref.begin(), sorted_ref.end(), probes[i]) -
        sorted_ref.begin());
    EXPECT_EQ(ranks[i], expect) << "probe " << i;
  }
}

TEST(BatchedRanksTest, RejectsProbeTablesBeyondMemory) {
  EmEnv env(256, 4);  // 1024 bytes of memory
  auto host = make_workload(Workload::kUniform, 1000, 26);
  auto data = materialize<Record>(env.ctx, host);
  std::vector<Record> probes(200);  // 200 * 24 bytes > M
  EXPECT_THROW((void)batched_ranks<Record>(env.ctx, data, std::move(probes)),
               BudgetExceeded);
}

TEST(BatchedRangeCountTest, OverlappingQueriesAnyOrder) {
  EmEnv env(256, 96);
  const std::size_t n = 10000;
  auto host = make_workload(Workload::kZipfian, n, 24, 16, 500);
  auto data = materialize<Record>(env.ctx, host);
  auto sorted_ref = testutil::sorted_copy(host);

  SplitMix64 rng(25);
  std::vector<RangeQuery<Record>> queries;
  for (int i = 0; i < 100; ++i) {
    Record a{rng.next_below(600), rng.next_below(n)};
    Record b{rng.next_below(600), rng.next_below(n)};
    if (b < a) std::swap(a, b);
    queries.push_back(RangeQuery<Record>{a, b});
  }
  auto got = batched_range_count<Record>(env.ctx, data, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto lo = std::upper_bound(sorted_ref.begin(), sorted_ref.end(),
                                     queries[i].lo) -
                    sorted_ref.begin();
    const auto hi = std::upper_bound(sorted_ref.begin(), sorted_ref.end(),
                                     queries[i].hi) -
                    sorted_ref.begin();
    EXPECT_EQ(got[i], static_cast<std::uint64_t>(hi - lo)) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Golden I/O regression guards.
//
// Exact measured I/O counts for pinned (geometry, workload, seed) configs.
// These WILL change whenever an algorithm's pass structure changes — that
// is their purpose: an unexplained diff here is a cost regression, an
// explained one belongs in the same commit as an EXPERIMENTS.md update.
// ---------------------------------------------------------------------------

struct GoldenEnv {
  GoldenEnv() : env(4096, 32) {
    host = make_workload(Workload::kUniform, 1u << 18, /*seed=*/20260706,
                         env.ctx.block_records<Record>());
    input = materialize<Record>(env.ctx, host);
    env.dev.reset_stats();
  }
  EmEnv env;
  std::vector<Record> host;
  EmVector<Record> input;
};

TEST(GoldenIos, ExternalSort) {
  GoldenEnv g;
  auto s = external_sort<Record>(g.env.ctx, g.input);
  // 3 passes over 1024 blocks: 35 runs exceed the fan-in of 31 by a hair,
  // costing a second merge level — itself a nice geometry lesson.
  EXPECT_EQ(g.env.dev.stats().total(), 6144u);
}

TEST(GoldenIos, SelectRankMedian) {
  GoldenEnv g;
  (void)select_rank<Record>(g.env.ctx, g.input, 1u << 17);
  EXPECT_EQ(g.env.dev.stats().total(), 3758u);
}

TEST(GoldenIos, SplittersRightGrounded) {
  GoldenEnv g;
  auto s = approx_splitters<Record>(g.env.ctx, g.input,
                                    {.k = 16, .a = 64, .b = 1u << 18});
  EXPECT_EQ(g.env.dev.stats().total(), 14u);
}

TEST(GoldenIos, PartitioningTwoSided) {
  GoldenEnv g;
  auto r = approx_partitioning<Record>(
      g.env.ctx, g.input, {.k = 16, .a = 1024, .b = 1u << 16});
  EXPECT_EQ(g.env.dev.stats().total(), 7200u);
}

}  // namespace
}  // namespace emsplit

// Tests for approximate K-partitioning (paper §5.2, Theorem 6) and the §3
// reduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/partitioning.hpp"
#include "core/verify.hpp"
#include "partition/reduction.hpp"
#include "test_helpers.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

struct PaCase {
  Workload workload;
  std::size_t n;
  std::uint64_t k;
  std::uint64_t a;
  std::uint64_t b;  // ~0ULL means right-grounded (clamped to n)
  std::size_t mem_blocks;
};

class ApproxPartitioningTest : public testing::TestWithParam<PaCase> {};

TEST_P(ApproxPartitioningTest, OutputSatisfiesDefinitionWithinBudget) {
  const auto& p = GetParam();
  EmEnv env(256, p.mem_blocks);
  auto host = make_workload(p.workload, p.n, /*seed=*/91,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = p.k, .a = p.a,
                        .b = std::min<std::uint64_t>(p.b, p.n)};

  env.ctx.budget().reset_peak();
  auto result = approx_partitioning<Record>(env.ctx, input, spec);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());

  auto check =
      verify_partitioning<Record>(input, result.data, result.bounds, spec);
  EXPECT_TRUE(check.ok) << check.reason << " (workload "
                        << to_string(p.workload) << ", K=" << p.k
                        << ", a=" << p.a << ", b=" << spec.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxPartitioningTest,
    testing::Values(
        // Right-grounded.
        PaCase{Workload::kUniform, 40000, 16, 10, ~0ULL, 96},
        PaCase{Workload::kUniform, 40000, 64, 100, ~0ULL, 96},
        PaCase{Workload::kUniform, 40000, 16, 2500, ~0ULL, 96},  // aK = N
        // Left-grounded.
        PaCase{Workload::kUniform, 40000, 16, 0, 2500, 96},
        PaCase{Workload::kUniform, 40000, 16, 0, 6000, 96},
        PaCase{Workload::kUniform, 40000, 16, 0, 20000, 96},  // empty pads
        // Two-sided guard regimes.
        PaCase{Workload::kUniform, 40000, 16, 2000, 3000, 96},
        PaCase{Workload::kUniform, 40000, 16, 100, 4000, 96},
        // Two-sided general regime.
        PaCase{Workload::kUniform, 40000, 16, 100, 6000, 96},
        PaCase{Workload::kUniform, 40000, 64, 10, 2000, 96},
        // Workload shapes through the general path.
        PaCase{Workload::kSorted, 30000, 16, 100, 5000, 96},
        PaCase{Workload::kReverse, 30000, 16, 100, 5000, 96},
        PaCase{Workload::kFewDistinct, 30000, 16, 100, 5000, 96},
        PaCase{Workload::kOrganPipe, 30000, 16, 100, 5000, 96},
        PaCase{Workload::kZipfian, 30000, 16, 100, 5000, 96},
        PaCase{Workload::kBlockStriped, 30000, 16, 100, 5000, 96},
        // Perfectly balanced (a = b = N/K).
        PaCase{Workload::kUniform, 32768, 32, 1024, 1024, 96},
        // Extremes.
        PaCase{Workload::kUniform, 10000, 1, 10, 10000, 96},
        PaCase{Workload::kUniform, 10000, 2, 10, 9000, 96},
        PaCase{Workload::kUniform, 30000, 500, 10, 30000, 128},
        // Odd geometries: the 6-block minimum, striped adversary.
        PaCase{Workload::kBlockStriped, 20000, 8, 50, 10000, 6},
        PaCase{Workload::kZipfian, 20000, 32, 0, 1250, 6}),
    [](const auto& ti) {
      return to_string(ti.param.workload) + "_n" + std::to_string(ti.param.n) +
             "_k" + std::to_string(ti.param.k) + "_a" +
             std::to_string(ti.param.a) + "_b" +
             (ti.param.b == ~0ULL ? std::string("N")
                                  : std::to_string(ti.param.b));
    });

TEST(ApproxPartitioningTest, KBeyondNWithZeroA) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 150, .a = 0, .b = 100};
  auto result = approx_partitioning<Record>(env.ctx, input, spec);
  auto check =
      verify_partitioning<Record>(input, result.data, result.bounds, spec);
  EXPECT_TRUE(check.ok) << check.reason;
  EXPECT_THROW((void)approx_partitioning<Record>(env.ctx, input,
                                                 {.k = 150, .a = 1, .b = 100}),
               std::invalid_argument);
}

TEST(ApproxPartitioningTest, RightGroundedReadsLittleBeyondOneScan) {
  EmEnv env(256, 64);
  const std::size_t n = 100000;
  auto host = make_workload(Workload::kUniform, n, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 8, .a = 16, .b = n};
  env.dev.reset_stats();
  auto result = approx_partitioning<Record>(env.ctx, input, spec);
  // Ω(N/B) is unavoidable (every element must be seen and placed), but the
  // total should stay within a small constant of the scan bound since the
  // multi-partition work touches only aK = 128 records.
  const auto scan = n / env.ctx.block_records<Record>();
  EXPECT_LE(env.dev.stats().total(), 30 * scan);
  auto check =
      verify_partitioning<Record>(input, result.data, result.bounds, spec);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(ReductionTest, PreciseViaApproximateMatchesOracle) {
  EmEnv env(256, 96);
  const std::size_t n = 32768;
  const std::uint64_t b = 1024;
  auto host = make_workload(Workload::kUniform, n, 5,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  auto result = precise_partition_via_reduction<Record>(env.ctx, input, b);
  const ApproxSpec exact{.k = n / b, .a = b, .b = b};
  auto check =
      verify_partitioning<Record>(input, result.data, result.bounds, exact);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(ReductionTest, StitchCostIsLinearOnTopOfApproximate) {
  EmEnv env(256, 96);
  const std::size_t n = 65536;
  const std::uint64_t b = 256;
  auto host = make_workload(Workload::kUniform, n, 7);
  auto input = materialize<Record>(env.ctx, host);

  env.dev.reset_stats();
  auto approx = approx_partitioning<Record>(env.ctx, input,
                                            {.k = n / b, .a = 0, .b = b});
  const auto approx_ios = env.dev.stats().total();

  env.dev.reset_stats();
  auto precise = precise_partition_via_reduction<Record>(env.ctx, input, b);
  const auto total_ios = env.dev.stats().total();

  // F(N,K,b) + O(N/B): the reduction's overhead beyond the approximate call
  // is a constant number of scans.
  const auto scan = n / env.ctx.block_records<Record>();
  EXPECT_LE(total_ios, approx_ios + 20 * scan)
      << "approx=" << approx_ios << " total=" << total_ios;
}

TEST(ReductionTest, RejectsNonDivisor) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kUniform, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  EXPECT_THROW((void)precise_partition_via_reduction<Record>(env.ctx, input, 7),
               std::invalid_argument);
}

TEST(VerifyPartitioningTest, DetectsBadAnswers) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kSorted, 100, 5);
  auto input = materialize<Record>(env.ctx, host);
  const ApproxSpec spec{.k = 4, .a = 20, .b = 30};

  // A correct answer (input is sorted, so identity partitioning works).
  std::vector<std::uint64_t> good{0, 25, 50, 75, 100};
  EXPECT_TRUE(verify_partitioning<Record>(input, input, good, spec).ok);

  // Size violations.
  EXPECT_FALSE(verify_partitioning<Record>(
                   input, input, {0, 10, 50, 75, 100}, spec)
                   .ok);
  // Wrong bound count.
  EXPECT_FALSE(
      verify_partitioning<Record>(input, input, {0, 50, 100}, spec).ok);
  // Order violation: swap two blocks of the data.
  auto shuffled = host;
  std::swap_ranges(shuffled.begin(), shuffled.begin() + 25,
                   shuffled.begin() + 50);
  auto bad_data = materialize<Record>(env.ctx, shuffled);
  EXPECT_FALSE(verify_partitioning<Record>(input, bad_data, good, spec).ok);
  // Not a permutation.
  auto dropped = host;
  dropped[3] = dropped[4];
  auto dup_data = materialize<Record>(env.ctx, dropped);
  auto r = verify_partitioning<Record>(input, dup_data, good, spec);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace emsplit

// Tests for replacement-selection run formation, distribution sort, the
// paged array, and streaming file import/export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "em/file_io.hpp"
#include "em/paged_array.hpp"
#include "sort/distribution_sort.hpp"
#include "sort/external_sort.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace emsplit {
namespace {

using testutil::EmEnv;

// ---------------------------------------------------------------------------
// Replacement selection
// ---------------------------------------------------------------------------

class ReplacementSelectionTest : public testing::TestWithParam<Workload> {};

TEST_P(ReplacementSelectionTest, SortsCorrectly) {
  EmEnv env(256, 8);
  auto host = make_workload(GetParam(), 20000, 3,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  env.ctx.budget().reset_peak();
  auto sorted = external_sort<Record>(env.ctx, input, std::less<Record>(),
                                      RunStrategy::kReplacementSelection);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  EXPECT_EQ(to_host(sorted), testutil::sorted_copy(host));
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ReplacementSelectionTest,
                         testing::ValuesIn(all_workloads()),
                         [](const auto& ti) { return to_string(ti.param); });

TEST(ReplacementSelectionTest, RunsAreLongerOnRandomInput) {
  EmEnv env(256, 32);
  const std::size_t n = 50000;
  auto host = make_workload(Workload::kUniform, n, 4);
  auto input = materialize<Record>(env.ctx, host);
  auto [runs_a, off_a] = detail::form_runs<Record>(env.ctx, input,
                                                   std::less<Record>());
  auto [runs_b, off_b] = detail::form_runs_replacement<Record>(
      env.ctx, input, std::less<Record>());
  // Snow-plow should produce noticeably fewer runs: expected run length is
  // 2 * heap entries = 2M * 16/24 = 4M/3 records vs M - 2B for chunks.
  EXPECT_LT(off_b.size(), off_a.size());
  EXPECT_LE(static_cast<double>(off_b.size() - 1),
            0.85 * static_cast<double>(off_a.size() - 1));
  // And every run is genuinely sorted.
  for (std::size_t r = 0; r + 1 < off_b.size(); ++r) {
    StreamReader<Record> reader(runs_b, off_b[r], off_b[r + 1]);
    Record prev = reader.next();
    while (!reader.done()) {
      const Record cur = reader.next();
      EXPECT_LE(prev, cur);
      prev = cur;
    }
  }
}

TEST(ReplacementSelectionTest, SortedInputYieldsOneRun) {
  EmEnv env(256, 8);
  auto host = make_workload(Workload::kSorted, 30000, 5);
  auto input = materialize<Record>(env.ctx, host);
  auto [runs, offsets] = detail::form_runs_replacement<Record>(
      env.ctx, input, std::less<Record>());
  EXPECT_EQ(offsets.size(), 2u);  // a single run
}

// ---------------------------------------------------------------------------
// Distribution sort
// ---------------------------------------------------------------------------

class DistributionSortTest : public testing::TestWithParam<Workload> {};

TEST_P(DistributionSortTest, MatchesMergeSort) {
  EmEnv env(256, 16);
  auto host = make_workload(GetParam(), 30000, 6,
                            env.ctx.block_records<Record>());
  auto input = materialize<Record>(env.ctx, host);
  env.ctx.budget().reset_peak();
  auto sorted = distribution_sort<Record>(env.ctx, input);
  EXPECT_LE(env.ctx.budget().peak(), env.ctx.budget().capacity());
  EXPECT_EQ(to_host(sorted), testutil::sorted_copy(host));
}

INSTANTIATE_TEST_SUITE_P(AllShapes, DistributionSortTest,
                         testing::ValuesIn(all_workloads()),
                         [](const auto& ti) { return to_string(ti.param); });

TEST(DistributionSortTest, CostWithinSortBound) {
  EmEnv env(256, 16);
  const std::size_t n = 100000;
  auto host = make_workload(Workload::kUniform, n, 7);
  auto input = materialize<Record>(env.ctx, host);
  env.dev.reset_stats();
  auto sorted = distribution_sort<Record>(env.ctx, input);
  const double b = static_cast<double>(env.ctx.block_records<Record>());
  const double m = static_cast<double>(env.ctx.mem_records<Record>());
  const double bound = 10.0 * (static_cast<double>(n) / b) *
                       formulas::lg_clamped(m / b, static_cast<double>(n) / b);
  EXPECT_LE(static_cast<double>(env.dev.stats().total()), bound);
}

// ---------------------------------------------------------------------------
// PagedArray
// ---------------------------------------------------------------------------

TEST(PagedArrayTest, ReadWriteThroughAndFlush) {
  EmEnv env(256, 16);
  const std::size_t b = env.ctx.block_records<Record>();
  auto host = make_workload(Workload::kSorted, 6 * b, 8);
  auto vec = materialize<Record>(env.ctx, host);
  {
    PagedArray<Record> arr(vec, 2);
    EXPECT_EQ(arr.get(0).key, 0u);
    EXPECT_EQ(arr.get(5 * b).key, 5 * b);
    arr.set(7, Record{.key = 777, .payload = 0});
    arr.set(5 * b + 1, Record{.key = 888, .payload = 0});
  }  // destructor flushes
  auto all = to_host(vec);
  EXPECT_EQ(all[7].key, 777u);
  EXPECT_EQ(all[5 * b + 1].key, 888u);
  EXPECT_EQ(all[8].key, 8u);  // neighbors intact
}

TEST(PagedArrayTest, LruEvictionCountsFaults) {
  EmEnv env(256, 16);
  const std::size_t b = env.ctx.block_records<Record>();
  auto host = make_workload(Workload::kSorted, 4 * b, 9);
  auto vec = materialize<Record>(env.ctx, host);
  PagedArray<Record> arr(vec, 2);
  env.dev.reset_stats();
  (void)arr.get(0 * b);      // fault block 0         frames {0}
  (void)arr.get(1 * b);      // fault block 1         frames {1, 0}
  (void)arr.get(0 * b + 1);  // hit, touches block 0  frames {0, 1}
  EXPECT_EQ(env.dev.stats().reads, 2u);
  (void)arr.get(2 * b);  // fault block 2, evicts LRU block 1 (clean)
  EXPECT_EQ(env.dev.stats().reads, 3u);
  EXPECT_EQ(env.dev.stats().writes, 0u);
  (void)arr.get(0 * b);  // still resident: the earlier touch saved it
  EXPECT_EQ(env.dev.stats().reads, 3u);
  arr.set(0, Record{});  // dirty block 0            frames {0, 2}
  (void)arr.get(1 * b);  // fault block 1, evicts clean block 2
  EXPECT_EQ(env.dev.stats().reads, 4u);
  EXPECT_EQ(env.dev.stats().writes, 0u);
  (void)arr.get(2 * b);  // fault block 2, evicts dirty block 0: write-back
  EXPECT_EQ(env.dev.stats().reads, 5u);
  EXPECT_EQ(env.dev.stats().writes, 1u);
}

TEST(PagedArrayTest, SequentialScanCostsOneScan) {
  EmEnv env(256, 16);
  const std::size_t n = 5000;
  auto host = make_workload(Workload::kUniform, n, 10);
  auto vec = materialize<Record>(env.ctx, host);
  PagedArray<Record> arr(vec, 2);
  env.dev.reset_stats();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += arr.get(i).key;
  EXPECT_EQ(env.dev.stats().reads, vec.size_blocks());
  EXPECT_GT(sum, 0u);
}

TEST(PagedArrayTest, BudgetChargesFrames) {
  EmEnv env(256, 16);
  auto host = make_workload(Workload::kUniform, 100, 11);
  auto vec = materialize<Record>(env.ctx, host);
  const auto before = env.ctx.budget().used();
  {
    PagedArray<Record> arr(vec, 4);
    EXPECT_EQ(env.ctx.budget().used(), before + 4 * 256);
  }
  EXPECT_EQ(env.ctx.budget().used(), before);
  EXPECT_THROW(PagedArray<Record>(vec, 1000), BudgetExceeded);
}

// ---------------------------------------------------------------------------
// file_io
// ---------------------------------------------------------------------------

TEST(FileIoTest, ImportExportRoundTrip) {
  EmEnv env(256, 16);
  const std::string path = testing::TempDir() + "/emsplit_fileio_test.bin";
  auto host = make_workload(Workload::kUniform, 3333, 12);
  {
    auto vec = materialize<Record>(env.ctx, host);
    export_file<Record>(vec, path);
  }
  EXPECT_EQ(file_record_count<Record>(path), 3333u);
  auto back = import_file<Record>(env.ctx, path);
  EXPECT_EQ(to_host(back), host);
  std::remove(path.c_str());
}

TEST(FileIoTest, ErrorsAreClean) {
  EmEnv env(256, 16);
  EXPECT_THROW((void)import_file<Record>(env.ctx, "/nonexistent/nope.bin"),
               std::runtime_error);
  // A truncated file (not a whole record) is rejected.
  const std::string path = testing::TempDir() + "/emsplit_fileio_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[7] = {};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)file_record_count<Record>(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace emsplit

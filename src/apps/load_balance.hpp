// load_balance.hpp — order-preserving load balancing across K machines.
//
// The paper's first motivating application (§1): distribute S onto K
// machines for parallel processing so that machine i receives a contiguous
// range of the order and every machine's load is within [a, b].  Perfect
// balance (a = b = N/K) costs Θ((N/B) log_{M/B} K); tolerating a fractional
// imbalance makes the job strictly cheaper — exactly the approximate
// K-partitioning trade-off.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/partitioning.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "service/splitter_index.hpp"

namespace emsplit {

/// A load-balanced assignment: machine i owns records
/// [plan.bounds[i], plan.bounds[i+1]) of plan.data.
template <EmRecord T>
struct LoadBalancePlan {
  ApproxPartitioning<T> assignment;
  std::uint64_t min_load = 0;
  std::uint64_t max_load = 0;

  /// max load divided by the perfectly balanced load N/K.
  [[nodiscard]] double imbalance() const {
    const double ideal =
        static_cast<double>(assignment.bounds.back()) /
        static_cast<double>(assignment.partitions());
    return ideal == 0.0 ? 1.0 : static_cast<double>(max_load) / ideal;
  }
};

/// Distribute `data` over `machines` machines, allowing every load to
/// deviate from N/K by at most the fraction `tolerance` (0 = perfect
/// balance).  Returns the physical assignment plus load statistics.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] LoadBalancePlan<T> balance_load(Context& ctx,
                                              const EmVector<T>& data,
                                              std::uint64_t machines,
                                              double tolerance = 0.0,
                                              Less less = {}) {
  const std::uint64_t n = data.size();
  if (machines == 0 || machines > n) {
    throw std::invalid_argument("balance_load: machines must be in [1, N]");
  }
  if (tolerance < 0.0) {
    throw std::invalid_argument("balance_load: tolerance must be >= 0");
  }
  // The [a, b] shape is the shared equi-depth spec (service layer) — the
  // same expressions this header inlined before the service refactor.
  const ApproxSpec spec = equi_depth_spec(n, machines, tolerance);

  LoadBalancePlan<T> plan;
  plan.assignment = approx_partitioning<T, Less>(ctx, data, spec, less);
  plan.min_load = ~0ULL;
  for (std::size_t i = 0; i < plan.assignment.partitions(); ++i) {
    const auto load = plan.assignment.partition_size(i);
    plan.min_load = std::min(plan.min_load, load);
    plan.max_load = std::max(plan.max_load, load);
  }
  return plan;
}

}  // namespace emsplit

// histogram.hpp — nearly equi-depth histograms on external data.
//
// The paper's second motivating application (§1): the bucket boundaries of
// an equi-depth histogram with K buckets are exactly the output of
// approximate K-splitters with a = b = N/K, and *relaxing* the bucket sizes
// to [(1-slack)N/K, (1+slack)N/K] makes construction cheaper — sometimes
// sublinear.  The EquiDepthHistogram type and the shared [a, b] spec now
// live in the service layer (service/splitter_index.hpp) — the resident
// server answers histogram(k) from its index with zero I/O; this header is
// the batch adapter that builds one from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/splitters.hpp"
#include "core/verify.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "service/splitter_index.hpp"

namespace emsplit {

/// Build a nearly equi-depth histogram with `buckets` buckets, allowing each
/// bucket to deviate from N/K by a fraction `slack` (0 = exact equi-depth).
/// Construction runs approx_splitters with [a, b] = [(1-slack), (1+slack)]
/// times N/K, then one counting scan fills in the exact sizes.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EquiDepthHistogram<T> build_equi_depth_histogram(
    Context& ctx, const EmVector<T>& data, std::uint64_t buckets,
    double slack = 0.0, Less less = {}) {
  const std::uint64_t n = data.size();
  if (buckets == 0 || buckets > n) {
    throw std::invalid_argument("histogram: buckets must be in [1, N]");
  }
  if (slack < 0.0) {
    throw std::invalid_argument("histogram: slack must be non-negative");
  }
  const ApproxSpec spec = equi_depth_spec(n, buckets, slack);

  EquiDepthHistogram<T> h;
  h.boundaries = approx_splitters<T, Less>(ctx, data, spec, less);
  h.total = n;

  // One scan for the exact bucket sizes (also a full verification pass).
  auto check = verify_splitters<T, Less>(data, h.boundaries, spec, less);
  if (!check.ok) {
    throw std::logic_error("histogram: splitters failed verification: " +
                           check.reason);
  }
  h.sizes = std::move(check.sizes);
  return h;
}

}  // namespace emsplit

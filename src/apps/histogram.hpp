// histogram.hpp — nearly equi-depth histograms on external data.
//
// The paper's second motivating application (§1): the bucket boundaries of
// an equi-depth histogram with K buckets are exactly the output of
// approximate K-splitters with a = b = N/K, and *relaxing* the bucket sizes
// to [(1-slack)N/K, (1+slack)N/K] makes construction cheaper — sometimes
// sublinear.  This module packages that as a small analytics utility:
// build a histogram, then answer rank / selectivity estimates from it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/splitters.hpp"
#include "core/verify.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"

namespace emsplit {

/// A nearly equi-depth histogram: K buckets, bucket i covering
/// (boundary[i-1], boundary[i]] with counted size sizes[i].
template <EmRecord T>
struct EquiDepthHistogram {
  std::vector<T> boundaries;           ///< K-1 bucket boundaries (ascending)
  std::vector<std::uint64_t> sizes;    ///< K exact bucket sizes
  std::uint64_t total = 0;             ///< N

  [[nodiscard]] std::size_t buckets() const { return sizes.size(); }

  /// Estimated rank of `x` (midpoint of its bucket's rank range): the
  /// standard equi-depth estimator, error at most half the bucket size.
  template <typename Less = std::less<T>>
  [[nodiscard]] std::uint64_t estimate_rank(const T& x, Less less = {}) const {
    const auto it = std::lower_bound(
        boundaries.begin(), boundaries.end(), x,
        [&](const T& s, const T& v) { return less(s, v); });
    const auto j = static_cast<std::size_t>(it - boundaries.begin());
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < j; ++i) before += sizes[i];
    return before + sizes[j] / 2;
  }

  /// Estimated number of elements in (lo, hi].
  template <typename Less = std::less<T>>
  [[nodiscard]] std::uint64_t estimate_range(const T& lo, const T& hi,
                                             Less less = {}) const {
    const auto rl = estimate_rank(lo, less);
    const auto rh = estimate_rank(hi, less);
    return rh >= rl ? rh - rl : 0;
  }
};

/// Build a nearly equi-depth histogram with `buckets` buckets, allowing each
/// bucket to deviate from N/K by a fraction `slack` (0 = exact equi-depth).
/// Construction runs approx_splitters with [a, b] = [(1-slack), (1+slack)]
/// times N/K, then one counting scan fills in the exact sizes.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EquiDepthHistogram<T> build_equi_depth_histogram(
    Context& ctx, const EmVector<T>& data, std::uint64_t buckets,
    double slack = 0.0, Less less = {}) {
  const std::uint64_t n = data.size();
  if (buckets == 0 || buckets > n) {
    throw std::invalid_argument("histogram: buckets must be in [1, N]");
  }
  if (slack < 0.0) {
    throw std::invalid_argument("histogram: slack must be non-negative");
  }
  const double target = static_cast<double>(n) / static_cast<double>(buckets);
  ApproxSpec spec{
      .k = buckets,
      .a = slack >= 1.0 ? 0
                        : static_cast<std::uint64_t>((1.0 - slack) * target),
      .b = static_cast<std::uint64_t>((1.0 + slack) * target) + 1};
  spec.a = std::min<std::uint64_t>(spec.a, n / buckets);
  spec.b = std::max<std::uint64_t>(spec.b, (n + buckets - 1) / buckets);

  EquiDepthHistogram<T> h;
  h.boundaries = approx_splitters<T, Less>(ctx, data, spec, less);
  h.total = n;

  // One scan for the exact bucket sizes (also a full verification pass).
  auto check = verify_splitters<T, Less>(data, h.boundaries, spec, less);
  if (!check.ok) {
    throw std::logic_error("histogram: splitters failed verification: " +
                           check.reason);
  }
  h.sizes = std::move(check.sizes);
  return h;
}

}  // namespace emsplit

// range_count.hpp — offline batched range counting.
//
// Given a dataset S and Q half-open query ranges (lo, hi], report
// |S ∩ (lo_j, hi_j]| for every query.  Online, each query would need an
// index; offline, the batch reduces to rank computation for the 2Q range
// endpoints, which is exactly the kind of repeated-rank work the paper's
// machinery is built for.  Two strategies, both exposed:
//
//   * sort-merge (the classic): sort S once, sort the endpoints, one
//     merged scan — Θ((N/B) lg_{M/B}(N/B) + Q lg Q).
//   * splitter-based: ONE approximate-splitter pass gives a memory-resident
//     bucket table; a counting scan then resolves every endpoint's rank up
//     to bucket granularity, and a second scan of only the straddled
//     buckets makes them exact.  For Q up to Θ(M), this is O(N/B + Q)
//     I/Os — sublogarithmic where sorting pays its log.
//
// (The second strategy is this repository's own composition, not from the
// paper — it shows what the splitters primitive is good for downstream.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "select/linear_splitters.hpp"
#include "sort/external_sort.hpp"

namespace emsplit {

template <EmRecord T>
struct RangeQuery {
  T lo{};  ///< exclusive
  T hi{};  ///< inclusive
};

/// Exact ranks of arbitrary probe values: #{e in S : e <= probe_j} for all
/// probes, in O(N/B + probes) I/Os for up to Θ(M) probes.  The workhorse
/// for batched range counting; exposed for reuse.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<std::uint64_t> batched_ranks(
    Context& ctx, const EmVector<T>& data, std::vector<T> probes,
    Less less = {}) {
  const std::size_t q = probes.size();
  if (q == 0) return {};
  // Sort probes, remember the inverse permutation.
  std::vector<std::size_t> order(q);
  for (std::size_t i = 0; i < q; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return less(probes[x], probes[y]);
  });
  std::vector<T> sorted_probes(q);
  for (std::size_t i = 0; i < q; ++i) sorted_probes[i] = probes[order[i]];

  // One scan, counting below each probe via binary search per record.
  auto res = ctx.budget().reserve(q * (sizeof(T) + 8));
  std::vector<std::uint64_t> counts(q, 0);
  {
    StreamReader<T> reader(data);
    while (!reader.done()) {
      const T e = reader.next();
      // e contributes to every probe >= e: find the first such probe.
      const auto it = std::lower_bound(
          sorted_probes.begin(), sorted_probes.end(), e,
          [&](const T& p, const T& x) { return less(p, x); });
      const auto j = static_cast<std::size_t>(it - sorted_probes.begin());
      if (j < q) ++counts[j];
    }
  }
  // Prefix-sum: counts[j] currently holds #{e : probe_{j-1} < e <= probe_j}.
  for (std::size_t j = 1; j < q; ++j) counts[j] += counts[j - 1];

  std::vector<std::uint64_t> out(q);
  for (std::size_t i = 0; i < q; ++i) out[order[i]] = counts[i];
  return out;
}

/// Batched range counts via one scan (see header).  Queries may overlap and
/// arrive in any order; results align with the query order.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<std::uint64_t> batched_range_count(
    Context& ctx, const EmVector<T>& data,
    const std::vector<RangeQuery<T>>& queries, Less less = {}) {
  std::vector<T> probes;
  probes.reserve(2 * queries.size());
  for (const auto& rq : queries) {
    probes.push_back(rq.lo);
    probes.push_back(rq.hi);
  }
  auto ranks = batched_ranks<T, Less>(ctx, data, std::move(probes), less);
  std::vector<std::uint64_t> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto lo = ranks[2 * i], hi = ranks[2 * i + 1];
    out[i] = hi >= lo ? hi - lo : 0;
  }
  return out;
}

}  // namespace emsplit

// range_count.hpp — offline batched range counting.
//
// Given a dataset S and Q half-open query ranges (lo, hi], report
// |S ∩ (lo_j, hi_j]| for every query.  Online, each query would need an
// index; offline, the batch reduces to rank computation for the 2Q range
// endpoints, which is exactly the kind of repeated-rank work the paper's
// machinery is built for.  The rank engine itself lives in the service
// layer (service/splitter_index.hpp, `scan_ranks`) — the resident server
// answers the same queries online through a SplitterIndex; this header is
// the batch adapter over the shared scan.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "service/splitter_index.hpp"

namespace emsplit {

template <EmRecord T>
struct RangeQuery {
  T lo{};  ///< exclusive
  T hi{};  ///< inclusive
};

/// Exact ranks of arbitrary probe values: #{e in S : e <= probe_j} for all
/// probes, in O(N/B + probes) I/Os for up to Θ(M) probes.  Thin adapter
/// over the service-layer scan (kept for source compatibility and the
/// batch-vs-index differential tests).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<std::uint64_t> batched_ranks(
    Context& ctx, const EmVector<T>& data, std::vector<T> probes,
    Less less = {}) {
  return scan_ranks<T, Less>(ctx, data, std::move(probes), less);
}

/// Batched range counts via one scan (see header).  Queries may overlap and
/// arrive in any order; results align with the query order.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<std::uint64_t> batched_range_count(
    Context& ctx, const EmVector<T>& data,
    const std::vector<RangeQuery<T>>& queries, Less less = {}) {
  std::vector<T> probes;
  probes.reserve(2 * queries.size());
  for (const auto& rq : queries) {
    probes.push_back(rq.lo);
    probes.push_back(rq.hi);
  }
  auto ranks = batched_ranks<T, Less>(ctx, data, std::move(probes), less);
  std::vector<std::uint64_t> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto lo = ranks[2 * i], hi = ranks[2 * i + 1];
    out[i] = hi >= lo ? hi - lo : 0;
  }
  return out;
}

}  // namespace emsplit

// top_k.hpp — external top-K extraction via threshold selection.
//
// A small composition exercise over the selection machinery: report the K
// largest (or smallest) records of an external dataset in O(N/B + K/B)
// I/Os — one rank selection for the threshold plus one filter scan —
// instead of the sort-based O((N/B) log_{M/B}(N/B)) or the heap-based
// O((N/B) log K) comparisons with a K-record memory footprint (which
// breaks the budget once K > M).  The filter scan itself lives in the
// service layer (service/splitter_index.hpp, `filter_exactly`) — the
// resident server answers top_k(k) from its index instead; this header is
// the batch adapter over threshold selection plus the shared filter.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "select/base_case.hpp"
#include "service/splitter_index.hpp"

namespace emsplit {

/// The K largest records of `input`, as a new external vector (unordered
/// within; sort it if order matters — it is only K records).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> top_k_largest(Context& ctx, const EmVector<T>& input,
                                        std::uint64_t k, Less less = {}) {
  const std::uint64_t n = input.size();
  if (k == 0 || k > n) {
    throw std::invalid_argument("top_k: K must be in [1, N]");
  }
  // Threshold: the element of rank N-K+1; the top K are everything >= it.
  const T threshold = select_rank<T, Less>(ctx, input, n - k + 1, less);
  return filter_exactly<T>(
      ctx, input, k, [&](const T& e) { return !less(e, threshold); },  // >=
      "top_k");
}

/// The K smallest records of `input`.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> top_k_smallest(Context& ctx,
                                         const EmVector<T>& input,
                                         std::uint64_t k, Less less = {}) {
  const std::uint64_t n = input.size();
  if (k == 0 || k > n) {
    throw std::invalid_argument("top_k: K must be in [1, N]");
  }
  const T threshold = select_rank<T, Less>(ctx, input, k, less);
  return filter_exactly<T>(
      ctx, input, k, [&](const T& e) { return !less(threshold, e); },  // <=
      "top_k");
}

}  // namespace emsplit

#include "em/uring_device.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

#include "em/posix_io.hpp"

#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define EMSPLIT_HAVE_URING 1
#endif

namespace emsplit {

namespace {

/// user_data of the single synchronous op in flight (a read, or an oversized
/// write); everything below slots_.size() is a write-behind slot index.
constexpr std::uint64_t kSyncTag = ~std::uint64_t{0};
/// Direct-mode staging alignment (covers every O_DIRECT granularity).
constexpr std::size_t kDirectAlign = 4096;
/// Write-behind slot capacity; larger transfers go out synchronously
/// (zero-copy from the caller's buffer in buffered mode, chunked through the
/// aligned staging buffer in direct mode).  Backend-internal staging — like
/// the kernel page cache the buffered path leans on — is host bookkeeping,
/// not part of the model's M.
constexpr std::size_t kSlotBytes = 128 * 1024;

#ifdef EMSPLIT_HAVE_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

#endif  // EMSPLIT_HAVE_URING

}  // namespace

bool UringBlockDevice::uring_supported() noexcept {
#ifdef EMSPLIT_HAVE_URING
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

UringBlockDevice::UringBlockDevice(std::string path, std::size_t block_bytes,
                                   Tuning tuning, bool keep_file,
                                   bool preserve_contents)
    : BlockDevice(block_bytes),
      path_(std::move(path)),
      keep_file_(keep_file),
      tuning_(tuning) {
  tuning_.write_behind = std::max(1u, tuning_.write_behind);
  tuning_.submit_batch = std::max(1u, tuning_.submit_batch);
  tuning_.ring_entries =
      std::max(tuning_.ring_entries, 2 * tuning_.write_behind);

  // O_DIRECT demands 512-aligned transfer lengths; direct mode rounds every
  // transfer up to whole blocks, so the block size itself must be a 512
  // multiple.  The flag is probed — many filesystems (tmpfs) reject it.
  const bool want_direct = tuning_.direct && block_bytes % 512 == 0;
  const int base_flags =
      preserve_contents ? (O_RDWR | O_CREAT) : (O_RDWR | O_CREAT | O_TRUNC);
  if (want_direct) {
    fd_ = ::open(path_.c_str(), base_flags | O_DIRECT, 0644);
    direct_ = fd_ >= 0;
  }
  if (fd_ < 0) fd_ = ::open(path_.c_str(), base_flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("UringBlockDevice: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (preserve_contents) load_sums(sidecar_path());

  if (uring_supported()) {
    try {
      setup_ring(tuning_.ring_entries);
    } catch (...) {
      teardown_ring();  // fall back to the posix path
    }
  }
  if (ring_fd_ < 0 && direct_) {
    // Direct I/O without the ring would bounce-buffer the synchronous path
    // for no queue-depth win; reopen buffered instead.
    ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("UringBlockDevice: cannot reopen " + path_ +
                               ": " + std::strerror(errno));
    }
    direct_ = false;
  }

  if (ring_fd_ >= 0) {
    slots_.resize(tuning_.write_behind);
    slot_bytes_ = std::max(kSlotBytes, block_bytes);  // >= one whole block
    if (direct_) {
      const std::size_t total = (slots_.size() + 1) * slot_bytes_;
      void* mem = nullptr;
      if (::posix_memalign(&mem, kDirectAlign, total) != 0) {
        teardown_ring();
        throw std::bad_alloc();
      }
      aligned_storage_ = AlignedBuf(static_cast<std::byte*>(mem),
                                    +[](std::byte* p) { std::free(p); });
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        slots_[i].buf = aligned_storage_.get() + i * slot_bytes_;
        slots_[i].buf_bytes = slot_bytes_;
      }
      sync_buf_ = aligned_storage_.get() + slots_.size() * slot_bytes_;
    } else {
      slot_storage_.resize(slots_.size() * slot_bytes_);
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        slots_[i].buf = slot_storage_.data() + i * slot_bytes_;
        slots_[i].buf_bytes = slot_bytes_;
      }
    }
    free_slots_.reserve(slots_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) free_slots_.push_back(i);
  }
}

UringBlockDevice::~UringBlockDevice() {
  if (ring_fd_ >= 0) {
    try {
      const std::lock_guard<std::mutex> lock(mu_);
      drain_writes(nullptr);
    } catch (...) {
      // Teardown: the file's fate is sealed either way.
    }
    teardown_ring();
  }
  if (keep_file_) save_sums(sidecar_path());
  if (fd_ >= 0) ::close(fd_);
  if (!keep_file_) {
    ::unlink(path_.c_str());
    ::unlink(sidecar_path().c_str());
  }
}

void UringBlockDevice::rethrow_pending() {
  if (pending_error_ != nullptr) {
    std::exception_ptr e = std::exchange(pending_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void UringBlockDevice::drain_writes(const BlockRange* ignore) {
  if (open_count_ > 0) {
    for (unsigned i = 0; i < slots_.size(); ++i) {
      if (slots_[i].open) seal_slot(i);
    }
  }
  while (inflight_ > 0 || queued_ > 0) {
    enter_and_reap(inflight_ > 0 ? 1 : 0, ignore);
  }
}

void UringBlockDevice::wait_overlapping(BlockId first, std::uint64_t count,
                                        const BlockRange* ignore) {
  for (;;) {
    // Seal any open coalescing window over the range first: its bytes must
    // reach the kernel before anyone may observe or replace them.
    if (open_count_ > 0) {
      for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot& s = slots_[i];
        if (s.open && s.first < first + count && first < s.first + s.count) {
          seal_slot(i);
        }
      }
    }
    bool overlap = false;
    for (const Slot& s : slots_) {
      if (s.in_flight && s.first < first + count && first < s.first + s.count) {
        overlap = true;
        break;
      }
    }
    if (!overlap) return;
    enter_and_reap(1, ignore);
  }
}

unsigned UringBlockDevice::acquire_slot() {
  while (free_slots_.empty()) {
    if (open_count_ > 0) {
      // Starved for slots with windows still open: seal one victim (round
      // robin, so that under fan-out wider than the slot pool every stream
      // still gets a window's worth of coalescing before eviction).  Sealing
      // may submit and reap inline, so re-check before blocking on a
      // completion (waiting with nothing outstanding would hang forever).
      for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
        const unsigned i =
            static_cast<unsigned>((seal_cursor_ + probe) % slots_.size());
        if (slots_[i].open) {
          seal_slot(i);
          seal_cursor_ = (i + 1) % slots_.size();
          break;
        }
      }
      if (!free_slots_.empty()) break;
      enter_and_reap(inflight_ > 0 ? 1 : 0, nullptr);
      continue;
    }
    enter_and_reap(1, nullptr);
  }
  const unsigned idx = free_slots_.back();
  free_slots_.pop_back();
  return idx;
}

unsigned UringBlockDevice::sq_space() const noexcept {
#ifdef EMSPLIT_HAVE_URING
  const unsigned head =
      std::atomic_ref<unsigned>(*sq_head_).load(std::memory_order_acquire);
  return sq_entries_ - (*sq_tail_ - head);
#else
  return 0;
#endif
}

#ifdef EMSPLIT_HAVE_URING

// ---------------------------------------------------------------------------
// Ring plumbing
// ---------------------------------------------------------------------------

void UringBlockDevice::setup_ring(unsigned entries) {
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  ring_fd_ = sys_io_uring_setup(entries, &p);
  if (ring_fd_ < 0) throw std::runtime_error("io_uring_setup failed");
  sq_entries_ = p.sq_entries;
  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    throw std::runtime_error("io_uring SQ mmap failed");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      throw std::runtime_error("io_uring CQ mmap failed");
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    throw std::runtime_error("io_uring SQE mmap failed");
  }
  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  cqes_base_ = cq + p.cq_off.cqes;
}

void UringBlockDevice::teardown_ring() noexcept {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  sqes_ = sq_ring_ = cq_ring_ = nullptr;
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
}

void UringBlockDevice::push_sqe(unsigned opcode, std::byte* addr,
                                std::uint32_t len, std::uint64_t file_off,
                                std::uint64_t user_data) {
  const unsigned tail = *sq_tail_;
  const unsigned idx = tail & sq_mask_;
  auto* sqe = static_cast<io_uring_sqe*>(sqes_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = static_cast<std::uint8_t>(opcode);
  sqe->fd = fd_;
  sqe->addr = reinterpret_cast<std::uint64_t>(addr);
  sqe->len = len;
  sqe->off = file_off;
  sqe->user_data = user_data;
  sq_array_[idx] = idx;
  std::atomic_ref<unsigned>(*sq_tail_).store(tail + 1,
                                             std::memory_order_release);
  ++queued_;
}

unsigned UringBlockDevice::enter_and_reap(unsigned wait_for,
                                          const BlockRange* ignore) {
  const unsigned to_submit = std::exchange(queued_, 0u);
  const unsigned flags = wait_for > 0 ? IORING_ENTER_GETEVENTS : 0;
  for (;;) {
    const int r = sys_io_uring_enter(ring_fd_, to_submit, wait_for, flags);
    if (r >= 0) break;
    if (errno == EINTR) continue;
    throw std::runtime_error("io_uring_enter failed: " +
                             std::string(std::strerror(errno)));
  }
  unsigned reaped = 0;
  for (;;) {
    const unsigned tail =
        std::atomic_ref<unsigned>(*cq_tail_).load(std::memory_order_acquire);
    const unsigned head = *cq_head_;
    if (head == tail) break;
    const auto* cqe =
        static_cast<const io_uring_cqe*>(cqes_base_) + (head & cq_mask_);
    const std::uint64_t user_data = cqe->user_data;
    const std::int32_t res = cqe->res;
    std::atomic_ref<unsigned>(*cq_head_).store(head + 1,
                                               std::memory_order_release);
    process_cqe(user_data, res, ignore);
    ++reaped;
  }
  return reaped;
}

void UringBlockDevice::process_cqe(std::uint64_t user_data, std::int32_t res,
                                   const BlockRange* ignore) {
  if (user_data == kSyncTag) {
    // submit_sync() is waiting on this; one sync op at a time under mu_.
    sync_result_ = res;
    sync_result_valid_ = true;
    return;
  }
  Slot& slot = slots_[static_cast<std::size_t>(user_data)];
  const auto retire = [&] {
    slot.in_flight = false;
    free_slots_.push_back(static_cast<unsigned>(user_data));
    --inflight_;
  };
  if (res < 0) {
    if (res == -EINTR || res == -EAGAIN) {  // transient: resubmit remainder
      push_sqe(IORING_OP_WRITE, slot.buf + slot.done, slot.len - slot.done,
               slot.file_off + slot.done, user_data);
      return;
    }
    const bool ignorable =
        ignore != nullptr && slot.first >= ignore->first &&
        slot.first + slot.count <= ignore->first + ignore->count;
    if (!ignorable && pending_error_ == nullptr) {
      pending_error_ = std::make_exception_ptr(std::runtime_error(
          "UringBlockDevice: write of blocks [" + std::to_string(slot.first) +
          ", " + std::to_string(slot.first + slot.count) +
          ") failed: " + std::strerror(-res)));
    }
    retire();
    return;
  }
  slot.done += static_cast<std::uint32_t>(res);
  if (slot.done < slot.len) {  // short write: resubmit the remainder
    push_sqe(IORING_OP_WRITE, slot.buf + slot.done, slot.len - slot.done,
             slot.file_off + slot.done, user_data);
    return;
  }
  retire();
}

std::int32_t UringBlockDevice::submit_sync(unsigned opcode, std::byte* addr,
                                           std::uint32_t len,
                                           std::uint64_t file_off,
                                           const char* what) {
  for (;;) {
    sync_result_valid_ = false;
    while (sq_space() == 0) enter_and_reap(0, nullptr);
    push_sqe(opcode, addr, len, file_off, kSyncTag);
    while (!sync_result_valid_) enter_and_reap(1, nullptr);
    const std::int32_t res = sync_result_;
    if (res == -EINTR || res == -EAGAIN) continue;
    if (res < 0) {
      throw std::runtime_error(std::string("UringBlockDevice: ") + what +
                               " failed: " + std::strerror(-res));
    }
    return res;
  }
}

// ---------------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------------

void UringBlockDevice::seal_slot(unsigned idx) {
  Slot& slot = slots_[idx];
  slot.open = false;
  --open_count_;
  slot.in_flight = true;
  ++inflight_;
  while (sq_space() == 0) enter_and_reap(0, nullptr);
  push_sqe(IORING_OP_WRITE, slot.buf, slot.len, slot.file_off, idx);
  if (queued_ >= tuning_.submit_batch) enter_and_reap(0, nullptr);
}

void UringBlockDevice::ring_write(BlockId first, std::uint64_t count,
                                  std::span<const std::byte> in) {
  rethrow_pending();
  const std::uint64_t file_off = first * block_bytes();
  const std::size_t raw_len = in.size();
  // Direct mode rounds up to whole blocks (O_DIRECT length alignment); the
  // tail past the written prefix is unspecified by the device contract.
  const std::size_t padded_len = direct_ ? count * block_bytes() : raw_len;
  if (padded_len <= slot_bytes_) {
    // Coalesce: a write that exactly extends an open slot's block range
    // appends into its buffer — the sequential extent streams every pass
    // emits become slot-sized transfers instead of per-extent SQEs.  The
    // append target must hold whole blocks so far (a short final block
    // closes the window: bytes after it would land at the wrong offset).
    // Appending cannot overlap the candidate itself; conflicts with other
    // slots still drain below.
    if (open_count_ > 0) {
      for (unsigned i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (!s.open || s.first + s.count != first) continue;
        if (s.len != s.count * block_bytes()) break;  // short-tail window
        if (s.len + padded_len > s.buf_bytes) {
          seal_slot(i);  // full window: flush it, start a new one below
          break;
        }
        wait_overlapping(first, count);
        std::memcpy(s.buf + s.len, in.data(), raw_len);
        if (padded_len > raw_len) {
          std::memset(s.buf + s.len + raw_len, 0, padded_len - raw_len);
        }
        s.count += count;
        s.len += static_cast<std::uint32_t>(padded_len);
        return;
      }
    }
    // A newer write must not race an older in-flight one over the same
    // blocks (the ring may complete them in either order).
    wait_overlapping(first, count);
    const unsigned idx = acquire_slot();
    Slot& slot = slots_[idx];
    std::memcpy(slot.buf, in.data(), raw_len);
    if (padded_len > raw_len) {
      std::memset(slot.buf + raw_len, 0, padded_len - raw_len);
    }
    slot.first = first;
    slot.count = count;
    slot.file_off = file_off;
    slot.len = static_cast<std::uint32_t>(padded_len);
    slot.done = 0;
    slot.open = true;
    ++open_count_;
    return;
  }
  // Oversized transfers bypass the slots; in-flight and open overlaps must
  // still drain first.
  wait_overlapping(first, count);
  if (!direct_) {
    // Oversized buffered write: synchronous, zero-copy from the caller's
    // buffer (the kernel only reads it for IORING_OP_WRITE).
    auto* src = const_cast<std::byte*>(in.data());
    std::size_t done = 0;
    while (done < raw_len) {
      done += static_cast<std::size_t>(submit_sync(
          IORING_OP_WRITE, src + done,
          static_cast<std::uint32_t>(raw_len - done), file_off + done,
          "write"));
    }
    return;
  }
  // Oversized direct write: chunk whole blocks through the aligned staging
  // buffer, synchronously.
  const std::uint64_t chunk_blocks = slot_bytes_ / block_bytes();
  std::uint64_t done_blocks = 0;
  while (done_blocks < count) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk_blocks, count - done_blocks);
    const std::size_t off =
        static_cast<std::size_t>(done_blocks) * block_bytes();
    const std::size_t chunk_padded =
        static_cast<std::size_t>(n) * block_bytes();
    const std::size_t chunk_raw = std::min(chunk_padded, raw_len - off);
    std::memcpy(sync_buf_, in.data() + off, chunk_raw);
    if (chunk_padded > chunk_raw) {
      std::memset(sync_buf_ + chunk_raw, 0, chunk_padded - chunk_raw);
    }
    std::size_t done = 0;
    while (done < chunk_padded) {
      done += static_cast<std::size_t>(submit_sync(
          IORING_OP_WRITE, sync_buf_ + done,
          static_cast<std::uint32_t>(chunk_padded - done),
          file_off + off + done, "write"));
    }
    done_blocks += n;
  }
}

void UringBlockDevice::ring_read(BlockId first, std::uint64_t count,
                                 std::span<std::byte> out) {
  rethrow_pending();
  // A read must see the bytes of the newest enqueued write: drain overlaps.
  wait_overlapping(first, count);
  const std::uint64_t base_off = first * block_bytes();
  if (!direct_) {
    // Buffered reads are synchronous by the device contract, so a
    // submit-and-wait io_uring_enter buys nothing over positional I/O —
    // the ring earns its keep on the write side, where completion can be
    // deferred.  Non-overlapping write SQEs stay queued; the next write
    // batch (or drain) submits them.
    detail::posix_pread_span(fd_, base_off, out, "UringBlockDevice");
    return;
  }
  // Direct mode: chunk whole blocks through the aligned staging buffer on
  // the ring (O_DIRECT demands aligned addresses and lengths).
  const std::uint64_t chunk_blocks = slot_bytes_ / block_bytes();
  std::uint64_t done_blocks = 0;
  while (done_blocks < count) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk_blocks, count - done_blocks);
    const std::size_t out_off =
        static_cast<std::size_t>(done_blocks) * block_bytes();
    const std::size_t want_raw =
        std::min(static_cast<std::size_t>(n) * block_bytes(),
                 out.size() - out_off);
    const std::size_t want = static_cast<std::size_t>(n) * block_bytes();
    std::size_t got = 0;
    while (got < want) {
      const std::int32_t res =
          submit_sync(IORING_OP_READ, sync_buf_ + got,
                      static_cast<std::uint32_t>(want - got),
                      base_off + out_off + got, "read");
      if (res == 0) {  // hole beyond EOF of a sparse region: zero-fill
        std::memset(sync_buf_ + got, 0, want - got);
        break;
      }
      got += static_cast<std::size_t>(res);
    }
    std::memcpy(out.data() + out_off, sync_buf_, want_raw);
    done_blocks += n;
  }
}

#else  // !EMSPLIT_HAVE_URING — the ring never exists; these are unreachable.

void UringBlockDevice::setup_ring(unsigned) {
  throw std::runtime_error("io_uring support not compiled in");
}
void UringBlockDevice::teardown_ring() noexcept {}
void UringBlockDevice::push_sqe(unsigned, std::byte*, std::uint32_t,
                                std::uint64_t, std::uint64_t) {}
unsigned UringBlockDevice::enter_and_reap(unsigned, const BlockRange*) {
  return 0;
}
void UringBlockDevice::process_cqe(std::uint64_t, std::int32_t,
                                   const BlockRange*) {}
void UringBlockDevice::seal_slot(unsigned) {}
std::int32_t UringBlockDevice::submit_sync(unsigned, std::byte*, std::uint32_t,
                                           std::uint64_t, const char*) {
  return 0;
}
void UringBlockDevice::ring_write(BlockId, std::uint64_t,
                                  std::span<const std::byte>) {}
void UringBlockDevice::ring_read(BlockId, std::uint64_t,
                                 std::span<std::byte>) {}

#endif  // EMSPLIT_HAVE_URING

// ---------------------------------------------------------------------------
// BlockDevice hooks
// ---------------------------------------------------------------------------

void UringBlockDevice::prepare_fork() {
  // Settle the file before children share it: seal every open coalescing
  // window and wait out the in-flight completions, so a child's positional
  // reads observe the newest enqueued writes.
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_fd_ < 0) return;
  drain_writes(nullptr);
  rethrow_pending();
}

void UringBlockDevice::child_after_fork() noexcept {
  // The inherited ring's queues belong to the parent; a child driving them
  // would corrupt both processes' accounting.  Pin the child to the
  // positional branch (mu_ was quiescent at fork, so no lock is needed, and
  // the child _exits without running this object's destructor).
  forked_child_ = true;
}

void UringBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                      std::span<std::byte> out) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_fd_ < 0 || forked_child_) {
    detail::posix_pread_span(fd_, first * block_bytes(), out,
                             "UringBlockDevice");
    return;
  }
  ring_read(first, count, out);
}

void UringBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                       std::span<const std::byte> in) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_fd_ < 0 || forked_child_) {
    detail::posix_pwrite_span(fd_, first * block_bytes(), in,
                              "UringBlockDevice");
    return;
  }
  ring_write(first, count, in);
}

void UringBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  do_read_blocks(block, 1, out);
}

void UringBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  do_write_blocks(block, 1, in);
}

void UringBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  // Growth only extends; in-flight writes target existing offsets.  Keeping
  // the file a whole number of blocks also keeps direct-mode transfers fully
  // inside the file.
  if (::ftruncate(fd_, static_cast<off_t>(new_size_blocks * block_bytes())) !=
      0) {
    throw std::runtime_error("UringBlockDevice: ftruncate failed: " +
                             std::string(std::strerror(errno)));
  }
}

void UringBlockDevice::do_discard(const BlockRange& range) noexcept {
  if (ring_fd_ < 0 || forked_child_) return;
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    // Drain writes into the freed extent so a recycled block can never be
    // clobbered by a stale completion.  Errors wholly inside the extent are
    // moot (nobody will read it again); others stay parked for the next
    // transfer to report.
    wait_overlapping(range.first, range.count, &range);
  } catch (...) {
    // io_uring_enter failed outright; nothing more a noexcept path can do.
  }
}

}  // namespace emsplit

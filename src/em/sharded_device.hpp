// sharded_device.hpp — D-disk striping: one logical device over D members.
//
// The EM model's standard multi-disk extension (Aggarwal–Vitter; Vitter &
// Shriver's D-disk model) lets one I/O move a block *per disk*.
// ShardedBlockDevice realizes it RAID-0 style: the logical block space is cut
// into fixed-size stripe units of `stripe_blocks` blocks, dealt round-robin
// over D member devices.  Everything above the BlockDevice interface —
// EmVector, the stream classes, every algorithm — is unchanged: striping is
// *geometry, never output* (docs/model.md, "Sharded devices and the D-disk
// model").  For any (D, stripe_blocks) the facade performs the same logical
// transfers, byte for byte and count for count, as a single device.
//
// Parallelism: a batched read_blocks / write_blocks extent is split into
// per-member sub-batches (each a contiguous member-local run, each writing a
// disjoint sub-span of the caller's buffer — zero copies, zero extra memory)
// and issued concurrently, one IoPipeline worker per member.  The facade adds
// no queueing of its own: a stream's in-flight sub-batches per member are
// bounded by its `queue_depth`, because each stream batch splits into at most
// one sub-batch per member.  This reuses the PR-1 worker; there is no second
// async mechanism.
//
// Accounting: the members' own counters are the per-shard IoStats, and the
// facade's totals are their sum (plus facade-level retries, which have no
// shard — see stats()).  Per-shard counters therefore partition the facade's
// totals exactly.
//
// Faults: the PR-3 substrate passes through at both levels.  Faults armed on
// the *facade* fire on logical ranges, are retried by the facade's policy and
// charge the facade's retry counter.  Faults armed on a *member* are retried
// inside that member (set_fault_policy forwards to every member), so retries
// are charged to the faulting shard; whatever escapes the member's budget is
// re-thrown carrying the *logical* block range of the request, with the
// member and its local range in the message.  Checksums live at the facade —
// enable them there and corruption on any member surfaces as CorruptBlock
// with the logical block id.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "em/block_device.hpp"
#include "em/io_pipeline.hpp"

namespace emsplit {

class ShardedBlockDevice final : public BlockDevice {
 public:
  /// Takes ownership of `members` (all fresh — no allocations yet — and all
  /// with the same block size, which becomes the facade's).  `stripe_blocks`
  /// is the striping unit: logical stripe s = blocks [s*stripe_blocks,
  /// (s+1)*stripe_blocks) lives on member s % D at member-local stripe s / D.
  ShardedBlockDevice(std::vector<std::unique_ptr<BlockDevice>> members,
                     std::size_t stripe_blocks);
  ~ShardedBlockDevice() override;

  /// Facade totals: per-shard reads/writes/retries summed, plus the facade's
  /// own retry counter (retries of *logical* injected faults).  Facade-level
  /// retries are *attributed*: each is also charged, by locate(), to the
  /// shard owning the first untransferred block of the retried request, so
  /// the per-shard stats partition these totals exactly — including retries.
  [[nodiscard]] IoStats stats() const noexcept override;
  void reset_stats() noexcept override;

  [[nodiscard]] std::size_t shard_count() const noexcept override {
    return members_.size();
  }
  /// Per-member counter snapshots, index-aligned with the members.  A
  /// member's row is its own counters plus the facade retries attributed to
  /// it, so summing rows reproduces stats().
  [[nodiscard]] std::vector<IoStats> shard_stats() const override;

  /// Fork-safe iff every member is: the stripe map is immutable and growth
  /// idempotent, so cooperating processes compose member-wise.
  [[nodiscard]] bool fork_safe() const noexcept override;

  /// Fork hooks forward to every member (members own the shared state; the
  /// facade itself is stripe arithmetic plus counters).
  void prepare_fork() override {
    for (auto& m : members_) m->prepare_fork();
  }
  void child_after_fork() noexcept override {
    for (auto& m : members_) m->child_after_fork();
  }

  /// A forked worker's delta is folded member-wise: each per-shard row — the
  /// child's member counters plus the facade retries it attributed to that
  /// shard — lands in the owning member's counters, preserving the
  /// rows-partition-the-total invariant across processes.
  void absorb_stats(const IoStats& delta,
                    std::span<const IoStats> per_shard) noexcept override;

  /// Forwards to every member (where member-fault retries run) and keeps the
  /// facade's own copy (for logical faults armed on the facade).
  void set_fault_policy(const FaultPolicy& policy) noexcept override;

  /// Per-member retry budget: member `i` alone gets `policy`; the facade's
  /// policy and the other members are untouched.  A flaky disk can get a
  /// deeper budget (or a tighter one) than its healthy peers.
  void set_member_fault_policy(std::size_t i, const FaultPolicy& policy);

  /// Corruption injection on the logical address space: translated to the
  /// owning member's raw bytes, bypassing all counters and checksum maps.
  void corrupt_bit(BlockId block, std::size_t bit) override;

  /// Direct access to member `i` — tests arm per-shard faults through this.
  [[nodiscard]] BlockDevice& member(std::size_t i) noexcept {
    return *members_[i];
  }
  [[nodiscard]] std::size_t stripe_blocks() const noexcept {
    return stripe_blocks_;
  }

  /// Persistent per-member checksum sidecars.  `paths[i]` names member `i`'s
  /// sidecar file (conventionally the member path + ".ssums" — distinct from
  /// FileBlockDevice's own ".sums" suffix, whose destructor manages that
  /// file).  On call, existing sidecars are read and their entries folded
  /// into the facade's checksum table (entries are stored under *logical*
  /// block ids, so they survive independently of member path order only as
  /// long as the geometry matches — callers pass the same D and
  /// stripe_blocks they saved with).  When `preserve` is set, the destructor
  /// partitions the table by owning member and writes each member's entries
  /// back to its sidecar.  Main-thread only, before transfers begin.
  void set_member_sidecars(std::vector<std::string> paths, bool preserve);

  /// Write the sidecars *now* from the current checksum table, then disarm
  /// the destructor's rewrite.  Teardown paths that deallocate extents after
  /// this call (a checkpoint journal returning its still-owned extents —
  /// deallocation drops the freed blocks' entries) no longer erase the
  /// persisted record: the files keep the pre-deallocation snapshot, which
  /// is exactly what a resuming process needs to verify the journaled
  /// blocks it re-reads.  No-op unless `set_member_sidecars` armed
  /// persistence.  Main-thread only, at a quiescent point.
  void flush_member_sidecars();

  /// Concurrent member sub-batch issue (default on for D > 1 on multi-core
  /// hosts; single-core hosts default to the serial walk, where worker
  /// handoffs can only lose).  Off routes every sub-batch serially on the
  /// calling thread — same transfers, same counts, no worker threads; the
  /// toggle is pure execution, never geometry.  Main-thread only, at
  /// quiescent points (workers are torn down / spun up).
  void set_parallel_io(bool enabled);
  [[nodiscard]] bool parallel_io() const noexcept {
    return !pipelines_.empty();
  }

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  /// Grows each member to hold every stripe of the new logical size.  The
  /// facade never deallocates member blocks, so member growth is always
  /// contiguous at the end — each member stays a dense linear array.
  void do_grow(std::uint64_t new_size_blocks) override;
  /// Facade retry attribution: charged to the shard owning the first block
  /// the retried attempt had not yet transferred.
  void note_retry(BlockId first_failed) noexcept override;

 private:
  /// One member-contiguous piece of a logical extent: `count` blocks starting
  /// at member-local block `mfirst` of member `shard`, backed by the caller
  /// span's bytes [off, off + len).
  struct Segment {
    std::size_t shard = 0;
    BlockId mfirst = 0;
    BlockId lfirst = 0;
    std::uint64_t count = 0;
    std::size_t off = 0;
    std::size_t len = 0;
  };

  /// Home of one logical block: which member, and at which member-local id.
  struct Location {
    std::size_t shard = 0;
    BlockId block = 0;
  };
  [[nodiscard]] Location locate(BlockId block) const noexcept;

  [[nodiscard]] std::vector<Segment> split(BlockId first, std::uint64_t count,
                                           std::size_t span_bytes) const;
  /// Issue the segments of one logical request — concurrently (one pipeline
  /// job per involved member) when workers exist and more than one member is
  /// involved, serially otherwise.  `is_read` selects the member transfer.
  /// Member DeviceFaults are re-thrown on the *logical* range [first,
  /// first + count) with the blocks known transferred as completed().
  void run_segments(bool is_read, BlockId first, std::uint64_t count,
                    const std::vector<Segment>& segs, std::byte* read_base,
                    const std::byte* write_base);

  // Members before pipelines: destruction drains and joins every worker
  // before any member device dies under it.
  std::vector<std::unique_ptr<BlockDevice>> members_;
  std::size_t stripe_blocks_;
  std::vector<std::string> sidecar_paths_;
  bool preserve_sidecars_ = false;
  std::vector<std::unique_ptr<IoPipeline>> pipelines_;
  /// Facade-level retries attributed per shard (atomic array: note_retry may
  /// fire from pipeline workers; atomics are not movable, hence the array).
  std::unique_ptr<std::atomic<std::uint64_t>[]> facade_retries_by_shard_;
};

}  // namespace emsplit

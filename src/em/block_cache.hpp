// block_cache.hpp — a budget-charged, pin-aware LRU block cache.
//
// The cache sits between BlockDevice's counting layer and the physical
// backend: reads whose blocks are resident skip the backend transfer, writes
// keep resident copies coherent.  Crucially, the cache is *invisible to the
// cost model*: a hit is still a logical read — the model charges block
// movement into working memory, and the bytes moved — so the IoStats base
// counts of a cached run are bit-identical to the uncached run.  Hits only
// explain where the wall-clock went (IoStats::cache_hits et al.).
//
// Memory comes out of the same MemoryBudget the algorithms use, charged in
// chunks, which preserves the checked peak() <= M invariant.  The cache is a
// *scavenger*: it grows into whatever the live algorithm state leaves idle,
// and registers itself as the budget's reclaimer so that any later algorithm
// reservation that finds the budget short pushes the cache back out (LRU
// entries are shed and whole chunks returned) before the reservation is
// refused.  An algorithm that reserves exactly all of M therefore behaves
// exactly as it does without a cache.  If even the first chunk is declined
// at construction, the cache disables itself permanently.
//
// Granularity is the device *call*: streams move aligned groups of
// batch_blocks blocks per call, and one cache entry covers one such extent.
// Lookup is one ordered-map probe per call instead of one per block, so the
// cache costs O(1) per transfer, not per block.  A read is served only when
// it lies entirely inside a single resident entry; partial overlap is a miss
// (the backend transfer proceeds and resident copies stay authoritative via
// the write path's coherence invalidation).
//
// Insert policy (scan resistance): every write inserts or updates — written
// extents are the re-read candidates (runs, partitions, spilled pieces) and
// the writer already paid for the bytes.  Read misses insert only
// single-block transfers: those are the splitter / sample / index style
// accesses worth keeping, while multi-block streaming scans would only flood
// the LRU.  Pinning marks ranges whose resident entries survive both
// eviction and reclaim — for blocks (splitter tables, sample buffers) the
// algorithm knows it will touch again.
//
// All methods are thread-safe (one internal mutex); the device transfer
// paths call in from both the main thread and I/O worker threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <span>
#include <vector>

#include "em/memory_budget.hpp"

namespace emsplit {

using BlockId = std::uint64_t;

class BlockCache {
 public:
  struct Tuning {
    std::size_t capacity_blocks = 0;    ///< hard cap on resident blocks
    std::size_t max_entry_blocks = 64;  ///< larger transfers bypass the cache
    std::size_t chunk_blocks = 64;      ///< budget charge granularity
  };

  /// A cache of up to `capacity_blocks` blocks of `block_bytes` each, charged
  /// against `budget`.  Registers itself as a budget reclaimer; deregisters
  /// on destruction.
  BlockCache(MemoryBudget& budget, std::size_t block_bytes,
             std::size_t capacity_blocks)
      : BlockCache(budget, block_bytes, Tuning{capacity_blocks}) {}
  BlockCache(MemoryBudget& budget, std::size_t block_bytes, Tuning tuning);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// False when capacity is zero or the construction-time chunk probe was
  /// declined by the budget — every other call is then a cheap no-op.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::size_t capacity_blocks() const noexcept {
    return tuning_.capacity_blocks;
  }
  [[nodiscard]] std::size_t resident_blocks() const;

  /// Serve a read of `count` blocks at `first` from the cache if the range is
  /// entirely inside one resident entry.  Counts `count` cache hits on
  /// success, `count` misses otherwise.  `out` follows the device span rule
  /// (all blocks but possibly a suffix of the last).
  [[nodiscard]] bool read(BlockId first, std::uint64_t count,
                          std::span<std::byte> out);

  /// A read miss completed against the backend: apply the read-insert policy
  /// (single-block transfers are cached, streaming scans are not).
  void note_read(BlockId first, std::uint64_t count,
                 std::span<const std::byte> bytes);

  /// A write completed against the backend: keep the cache coherent and
  /// insert/update the written extent (subject to capacity and pinning).
  void note_write(BlockId first, std::uint64_t count,
                  std::span<const std::byte> bytes);

  /// Drop any entries overlapping [first, first + count) — deallocated
  /// extents, corruption injection, restore.
  void invalidate(BlockId first, std::uint64_t count);
  /// Drop everything (budget chunks stay granted).
  void clear();

  /// Pin / unpin [first, first + count): resident entries overlapping a
  /// pinned range are exempt from eviction *and* from budget reclaim, and
  /// future inserts overlapping it are born pinned.  Pin sparingly — pinned
  /// bytes are as hard a memory commitment as any reservation.
  void pin(BlockId first, std::uint64_t count);
  void unpin(BlockId first, std::uint64_t count);

  /// Counters, in blocks (matching IoStats' per-block charging).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  void reset_counters() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  /// MemoryBudget reclaimer entry: release at least `bytes_needed` back to
  /// the budget if possible (shedding unpinned LRU entries and returning
  /// whole chunks); returns the bytes actually released.
  std::size_t shed(std::size_t bytes_needed);

 private:
  struct Entry {
    BlockId first = 0;
    std::uint64_t count = 0;
    bool pinned = false;
    std::vector<std::byte> bytes;  ///< valid prefix of the extent as written
  };
  using Lru = std::list<Entry>;  // front = most recent

  [[nodiscard]] std::size_t granted_blocks() const {
    return chunks_.size() * chunk_blocks_;
  }
  /// The resident entry containing block `first` (map probe), or map_.end().
  [[nodiscard]] std::map<BlockId, Lru::iterator>::iterator find_covering(
      BlockId first);
  [[nodiscard]] bool overlaps_pinned_range(BlockId first,
                                           std::uint64_t count) const;
  void erase_entry(std::map<BlockId, Lru::iterator>::iterator it);
  /// Drop overlapping entries except an exact [first, count) match, which is
  /// returned for in-place update.
  Lru::iterator erase_overlaps_keep_exact(BlockId first, std::uint64_t count);
  bool evict_one_unpinned();
  /// Make room for `count` more blocks (grow by chunks, then evict LRU).
  bool make_room(std::uint64_t count);
  void insert(BlockId first, std::uint64_t count,
              std::span<const std::byte> bytes);

  MemoryBudget& budget_;
  const std::size_t block_bytes_;
  Tuning tuning_;
  std::size_t chunk_blocks_ = 0;
  std::uint64_t reclaimer_id_ = 0;
  bool enabled_ = false;

  mutable std::mutex mu_;
  Lru lru_;
  std::map<BlockId, Lru::iterator> map_;  // keyed by entry.first
  std::map<BlockId, std::uint64_t> pinned_ranges_;
  std::vector<MemoryReservation> chunks_;
  std::size_t used_blocks_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace emsplit

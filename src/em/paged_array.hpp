// paged_array.hpp — an LRU buffer pool over an external vector.
//
// The counter-example substrate: random-access "virtual memory" over the
// block device, the way a pager (or mmap) would present it.  Algorithms in
// this library never use it — they manage their buffers explicitly — and
// experiment E16 shows why: a paged quicksort thrashes where the explicit
// merge sort streams.  It also shows where paging is *fine* (sequential
// scans, point lookups on sorted data), which is the honest half of the
// lesson.
//
// Mechanics: up to `frames` block-sized frames, LRU eviction, dirty
// write-back, all frames reserved against the memory budget, all block
// transfers through the counted device.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"

namespace emsplit {

template <EmRecord T>
class PagedArray {
 public:
  /// A pool of `frames` block frames over `backing`.  The backing vector
  /// must outlive the array; call flush() (or let the destructor) to write
  /// dirty frames back.
  PagedArray(EmVector<T>& backing, std::size_t frames)
      : vec_(&backing),
        block_records_(backing.block_records()),
        frames_(frames),
        reservation_(backing.context().budget().reserve(
            frames * block_records_ * sizeof(T))) {
    if (frames_ == 0) {
      throw std::invalid_argument("PagedArray: needs at least one frame");
    }
  }

  ~PagedArray() { flush_noexcept(); }
  PagedArray(const PagedArray&) = delete;
  PagedArray& operator=(const PagedArray&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return vec_->size(); }

  /// Read record i (faulting its block in if needed).
  [[nodiscard]] const T& get(std::size_t i) {
    assert(i < vec_->size());
    Frame& f = frame_for(i / block_records_);
    return f.data[i % block_records_];
  }

  /// Write record i (marks the block dirty).
  void set(std::size_t i, const T& v) {
    assert(i < vec_->size());
    Frame& f = frame_for(i / block_records_);
    f.data[i % block_records_] = v;
    f.dirty = true;
  }

  /// Write all dirty frames back.
  void flush() {
    for (auto& [blk, frame] : frames_map_) {
      if (frame.dirty) {
        vec_->write_block(blk, frame.data);
        frame.dirty = false;
      }
    }
  }

 private:
  struct Frame {
    std::vector<T> data;
    bool dirty = false;
    std::list<std::size_t>::iterator lru_pos;
  };

  Frame& frame_for(std::size_t blk) {
    const auto it = frames_map_.find(blk);
    if (it != frames_map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // touch
      return it->second;
    }
    if (frames_map_.size() == frames_) evict();
    lru_.push_front(blk);
    Frame frame{std::vector<T>(block_records_), false, lru_.begin()};
    vec_->read_block(blk, frame.data);
    return frames_map_.emplace(blk, std::move(frame)).first->second;
  }

  void evict() {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    auto it = frames_map_.find(victim);
    if (it->second.dirty) vec_->write_block(victim, it->second.data);
    frames_map_.erase(it);
  }

  void flush_noexcept() noexcept {
    try {
      flush();
    } catch (...) {
      // Destruction path: losing a write-back on a faulted device is the
      // caller's problem to detect via the device, not ours to throw from.
    }
  }

  EmVector<T>* vec_;
  std::size_t block_records_;
  std::size_t frames_;
  MemoryReservation reservation_;
  std::list<std::size_t> lru_;  // front = most recent
  std::unordered_map<std::size_t, Frame> frames_map_;
};

}  // namespace emsplit

#include "em/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace emsplit {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // run() always drains its own batch before returning, so there is
    // nothing in flight here unless a task is still being torn down.
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(std::size_t ntasks,
                     const std::function<void(std::size_t)>& fn) {
  if (ntasks == 0) return;
  if (workers_.empty() || ntasks == 1) {
    // Serial fast path: no pool traffic, exceptions propagate directly (a
    // left-to-right loop already surfaces the smallest failing index).
    for (std::size_t i = 0; i < ntasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    assert(fn_ == nullptr && "ThreadPool::run is not reentrant");
    fn_ = &fn;
    ntasks_ = ntasks;
    next_ = 0;
    pending_ = ntasks;
    errors_.clear();
    ++generation_;
  }
  batch_ready_.notify_all();
  work_on_batch();
  std::unique_lock<std::mutex> lk(mu_);
  batch_done_.wait(lk, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (!errors_.empty()) {
    const auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr err = first->second;
    errors_.clear();
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::work_on_batch() {
  for (;;) {
    std::size_t i = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (next_ == ntasks_) return;
      i = next_++;
    }
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err != nullptr) errors_.emplace_back(i, err);
      if (--pending_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      batch_ready_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work_on_batch();
  }
}

}  // namespace emsplit

// worker_group.hpp — W cooperating processes over one shared block device.
//
// The PEM extension of the external-memory model gives P processors a private
// cache each and a shared disk; the repo's distributed passes (src/dist/) run
// on exactly that shape: W workers, each owning a slice of the pass's work
// units, all transferring against the same BlockDevice.  WorkerGroup is the
// execution layer — it knows nothing about splitters or merges, only how to
// run one *round* (the unit of barrier synchronization) on W workers and get
// every worker's result, I/O delta and busy time back to the coordinator.
//
// Two execution modes, chosen once per group:
//
//  * Forked (the real thing): each round forks W children.  The parent's
//    address space at the fork *is* the broadcast — plans, splitter tables
//    and extent maps are simply inherited copy-on-write.  Children transfer
//    over the inherited device handle (requires BlockDevice::fork_safe();
//    FileBlockDevice's positional pread/pwrite qualifies), never allocate or
//    deallocate extents (the coordinator pre-allocates everything), and pipe
//    a length-framed result blob — payload, IoStats delta, per-shard deltas,
//    busy seconds — back to the parent, then _exit without running
//    destructors (the shared file must survive them).  The parent drains
//    every pipe and reaps every child: that is the barrier.  The children's
//    counter increments died with their address spaces, so the parent folds
//    the reported deltas back into the device via absorb_stats — logical
//    totals are identical to a single-process run of the same schedule.
//
//  * Inline (the fallback): the same work units run sequentially in the
//    parent, in worker order, with per-worker deltas measured around each
//    unit set.  Selected when the device is not fork-safe (MemoryBlockDevice
//    writes would land in copy-on-write pages the parent never sees;
//    UringBlockDevice's ring must not be driven from two processes), or
//    under ThreadSanitizer (TSan forbids meaningful work after fork from a
//    multithreaded process).  Block checksums compose with fork mode: a
//    child tracks its checksum-table updates (BlockDevice::set_sum_tracking)
//    and ships them home in the result frame, where the parent merges them.
//
// Both modes execute the *same* unit schedule in the same order per worker —
// mode, like W itself, is geometry, never output.
//
// Supervision (WorkerTuning::{max_worker_retries, worker_timeout,
// degrade_after}): rounds are idempotent — every body writes only its own
// worker's disjoint block-aligned ranges, so a failed worker's unit schedule
// can simply run again.  The supervisor turns three failure classes into
// round-local events: a *crash* (child death or pipe EOF before a full
// frame), a *hang* (frame not complete by the per-round deadline; the child
// is SIGKILLed), and a *corrupt frame* (the FNV checksum in the frame header
// does not match the body).  Each failed worker's units are re-executed
// inline in the coordinator with bounded retries and exponential backoff;
// the re-executed transfers land in the base counters exactly replacing the
// counters the lost frame would have reported — base I/O is identical to
// the fault-free run at every failure schedule — and their volume is
// attributed separately to IoStats::worker_retries, mirroring device-level
// retries.  After `degrade_after` failures the group halves its width for
// the remaining rounds (output-transparent by W-invariance).  Every decision
// is recorded as a structured SupervisionEvent on the context, which the
// pass engine folds into the pass's trace row.  With max_worker_retries = 0
// (the default) any failure stays fatal: the parent absorbs the surviving
// workers' I/O (those blocks really moved), then throws WorkerDied; a
// journaled caller resumes repaying only the interrupted pass.
//
// Failure injection: WorkerTuning{kill_worker, kill_round} makes that worker
// die at the start of that round (_exit(137) forked, a simulated failure
// inline); {hang_worker, hang_round} makes it finish its work and then sleep
// forever without sending its frame (proving completed work is safely
// re-executable); {corrupt_worker, corrupt_round} flips a frame byte after
// the header checksum is computed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "em/context.hpp"

namespace emsplit {

/// A worker process died (or was killed) before completing its round.  The
/// round's pass is torn; a checkpointed job resumes it on the next run.
class WorkerDied : public std::runtime_error {
 public:
  WorkerDied(std::size_t worker, const std::string& what)
      : std::runtime_error(what), worker_(worker) {}
  [[nodiscard]] std::size_t worker() const noexcept { return worker_; }

 private:
  std::size_t worker_;
};

/// Length-framed POD serialization for round payloads.  Both ends of every
/// channel are the same executable image (a fork, or the same process), so
/// raw memcpy framing is exact — no endianness or layout negotiation.
class WireWriter {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  template <typename T>
  void pod_span(std::span<const T> s) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(s.size());
    raw(s.data(), s.size() * sizeof(T));
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] double f64() {
    double v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  template <typename T>
  [[nodiscard]] std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    if (n * sizeof(T) > data_.size() - off_) {
      throw std::runtime_error("WireReader: truncated pod_vec");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    raw(v.data(), v.size() * sizeof(T));
    return v;
  }
  [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    if (n > data_.size() - off_) {
      throw std::runtime_error("WireReader: truncated frame");
    }
    std::memcpy(p, data_.data() + off_, n);
    off_ += n;
  }
  std::span<const std::byte> data_;
  std::size_t off_ = 0;
};

/// One worker's result from a round.
struct WorkerResult {
  std::vector<std::byte> payload;  ///< the body's returned blob
  PassWorkerIo row;                ///< per-worker trace row (io/busy/barrier)
};

/// Everything a round produced, in worker order.  The caller deposits `rows`
/// into the context (Context::note_pass_workers) once any coordinator-side
/// I/O performed inside the same pass has been attributed to its owning
/// worker's row — that keeps the worker rows partitioning the pass total.
struct RoundOutcome {
  std::vector<std::vector<std::byte>> payloads;
  std::vector<PassWorkerIo> rows;
};

class WorkerGroup {
 public:
  /// The body of one round, run once per worker: perform worker `w`'s units
  /// of the round through `wctx` (the child's own context when forked, the
  /// coordinator's when inline) and return the result blob for the
  /// coordinator.  Must not allocate or deallocate device extents and must
  /// not touch coordinator state (it may run in another process).
  using RoundBody =
      std::function<std::vector<std::byte>(Context& wctx, std::size_t w)>;

  /// Binds to `ctx`'s device and worker tuning (workers >= 1 required).
  explicit WorkerGroup(Context& ctx);

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  /// True when rounds fork real processes; false on the inline fallback.
  [[nodiscard]] bool forked() const noexcept { return forked_; }

  /// Run one barrier round: execute `body` once per worker, wait for all of
  /// them, fold forked workers' I/O deltas back into the device, and return
  /// every worker's payload and trace row.  Throws WorkerDied when a worker
  /// died (after absorbing the survivors' I/O — those blocks moved).
  [[nodiscard]] RoundOutcome round(const char* label, const RoundBody& body);

 private:
  [[nodiscard]] RoundOutcome round_forked(const RoundBody& body);
  [[nodiscard]] RoundOutcome round_inline(const RoundBody& body);
  /// Supervised recovery: re-execute worker `w`'s units of the current round
  /// inline with bounded retries, depositing the result into `out` with the
  /// re-executed I/O attributed to worker_retries.  Throws WorkerDied when
  /// the retry budget is exhausted.
  void recover_worker(std::size_t w, const RoundBody& body, RoundOutcome& out);

  Context* ctx_;
  std::size_t workers_;
  bool forked_;
  std::uint64_t round_no_ = 0;   ///< 1-based ordinal of the next round
  std::uint64_t failures_ = 0;   ///< worker failures since the last degrade
};

}  // namespace emsplit

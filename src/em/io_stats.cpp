#include "em/io_stats.hpp"

#include <ostream>

namespace emsplit {

std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  os << "{reads=" << s.reads << ", writes=" << s.writes
     << ", total=" << s.total();
  if (s.retries > 0) os << ", retries=" << s.retries;
  return os << "}";
}

}  // namespace emsplit

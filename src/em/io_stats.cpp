#include "em/io_stats.hpp"

#include <ostream>

namespace emsplit {

std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  return os << "{reads=" << s.reads << ", writes=" << s.writes
            << ", total=" << s.total() << "}";
}

}  // namespace emsplit

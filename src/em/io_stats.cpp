#include "em/io_stats.hpp"

#include <ostream>

namespace emsplit {

std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  os << "{reads=" << s.reads << ", writes=" << s.writes
     << ", total=" << s.total();
  if (s.retries > 0) os << ", retries=" << s.retries;
  if (s.worker_retries > 0) os << ", worker_retries=" << s.worker_retries;
  if (s.cache_hits > 0 || s.cache_misses > 0) {
    os << ", cache_hits=" << s.cache_hits << ", cache_misses=" << s.cache_misses;
    if (s.cache_evictions > 0) os << ", cache_evictions=" << s.cache_evictions;
  }
  if (s.bucket_hits > 0) os << ", bucket_hits=" << s.bucket_hits;
  return os << "}";
}

}  // namespace emsplit

#include "em/block_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace emsplit {

BlockCache::BlockCache(MemoryBudget& budget, std::size_t block_bytes,
                       Tuning tuning)
    : budget_(budget), block_bytes_(block_bytes), tuning_(tuning) {
  if (tuning_.capacity_blocks == 0 || block_bytes_ == 0) return;
  tuning_.max_entry_blocks =
      std::min(std::max<std::size_t>(1, tuning_.max_entry_blocks),
               tuning_.capacity_blocks);
  chunk_blocks_ = std::min(std::max<std::size_t>(1, tuning_.chunk_blocks),
                           tuning_.capacity_blocks);
  // Admission probe: if the budget cannot spare even one chunk now, the
  // cache was configured into a machine whose algorithms own all of M up
  // front — stay disabled rather than fight for scraps.
  auto probe = budget_.try_reserve(chunk_blocks_ * block_bytes_);
  if (!probe) return;
  chunks_.push_back(std::move(*probe));
  enabled_ = true;
  reclaimer_id_ =
      budget_.add_reclaimer([this](std::size_t need) { return shed(need); });
}

BlockCache::~BlockCache() {
  if (enabled_) budget_.remove_reclaimer(reclaimer_id_);
}

std::size_t BlockCache::resident_blocks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return used_blocks_;
}

std::map<BlockId, BlockCache::Lru::iterator>::iterator
BlockCache::find_covering(BlockId first) {
  auto it = map_.upper_bound(first);
  if (it == map_.begin()) return map_.end();
  --it;
  const Entry& e = *it->second;
  if (first < e.first + e.count) return it;
  return map_.end();
}

bool BlockCache::overlaps_pinned_range(BlockId first,
                                       std::uint64_t count) const {
  auto it = pinned_ranges_.upper_bound(first + count - 1);
  if (it == pinned_ranges_.begin()) return false;
  --it;
  return it->first + it->second > first;
}

void BlockCache::erase_entry(std::map<BlockId, Lru::iterator>::iterator it) {
  used_blocks_ -= it->second->count;
  lru_.erase(it->second);
  map_.erase(it);
}

BlockCache::Lru::iterator BlockCache::erase_overlaps_keep_exact(
    BlockId first, std::uint64_t count) {
  Lru::iterator exact = lru_.end();
  auto it = map_.upper_bound(first);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second->first + prev->second->count > first) it = prev;
  }
  while (it != map_.end() && it->second->first < first + count) {
    if (it->second->first == first && it->second->count == count) {
      exact = it->second;
      ++it;
    } else {
      it = std::next(it);
      erase_entry(std::prev(it));
    }
  }
  return exact;
}

bool BlockCache::read(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) {
  if (!enabled_) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = find_covering(first);
  if (it != map_.end()) {
    Entry& e = *it->second;
    const std::size_t off =
        static_cast<std::size_t>(first - e.first) * block_bytes_;
    if (first + count <= e.first + e.count && off + out.size() <= e.bytes.size()) {
      std::memcpy(out.data(), e.bytes.data() + off, out.size());
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      hits_.fetch_add(count, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(count, std::memory_order_relaxed);
  return false;
}

void BlockCache::note_read(BlockId first, std::uint64_t count,
                           std::span<const std::byte> bytes) {
  // Read-insert policy: only single-block misses — index/splitter-style
  // point accesses.  Streaming scans never flood the LRU.
  if (!enabled_ || count != 1) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (find_covering(first) != map_.end()) return;  // short-bytes near-hit
  if (!make_room(count)) return;
  insert(first, count, bytes);
}

void BlockCache::note_write(BlockId first, std::uint64_t count,
                            std::span<const std::byte> bytes) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (count > tuning_.max_entry_blocks) {
    // Too large to keep, but resident overlaps are now stale.
    auto it = map_.upper_bound(first);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second->first + prev->second->count > first) it = prev;
    }
    while (it != map_.end() && it->second->first < first + count) {
      it = std::next(it);
      erase_entry(std::prev(it));
    }
    return;
  }
  const Lru::iterator exact = erase_overlaps_keep_exact(first, count);
  if (exact != lru_.end()) {
    exact->bytes.assign(bytes.begin(), bytes.end());
    lru_.splice(lru_.begin(), lru_, exact);
    return;
  }
  if (!make_room(count)) return;
  insert(first, count, bytes);
}

void BlockCache::invalidate(BlockId first, std::uint64_t count) {
  if (!enabled_ || count == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.upper_bound(first);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second->first + prev->second->count > first) it = prev;
  }
  while (it != map_.end() && it->second->first < first + count) {
    it = std::next(it);
    erase_entry(std::prev(it));
  }
}

void BlockCache::clear() {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  used_blocks_ = 0;
}

void BlockCache::pin(BlockId first, std::uint64_t count) {
  if (!enabled_ || count == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  pinned_ranges_[first] = std::max(pinned_ranges_[first], count);
  auto it = map_.upper_bound(first);
  if (it != map_.begin()) --it;
  for (; it != map_.end() && it->second->first < first + count; ++it) {
    Entry& e = *it->second;
    if (e.first + e.count > first) e.pinned = true;
  }
}

void BlockCache::unpin(BlockId first, std::uint64_t count) {
  if (!enabled_ || count == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  pinned_ranges_.erase(first);
  auto it = map_.upper_bound(first);
  if (it != map_.begin()) --it;
  for (; it != map_.end() && it->second->first < first + count; ++it) {
    Entry& e = *it->second;
    if (e.first + e.count > first) {
      e.pinned = overlaps_pinned_range(e.first, e.count);
    }
  }
}

bool BlockCache::evict_one_unpinned() {
  if (lru_.empty()) return false;
  for (auto it = std::prev(lru_.end());; --it) {
    if (!it->pinned) {
      evictions_.fetch_add(it->count, std::memory_order_relaxed);
      used_blocks_ -= it->count;
      map_.erase(it->first);
      lru_.erase(it);
      return true;
    }
    if (it == lru_.begin()) return false;
  }
}

bool BlockCache::make_room(std::uint64_t count) {
  if (count > tuning_.capacity_blocks) return false;
  while (used_blocks_ + count > granted_blocks()) {
    if (granted_blocks() < tuning_.capacity_blocks) {
      // Never reclaim here: a scavenger growing by stealing from itself (or
      // from the algorithms it is scavenging around) would deadlock or lie.
      auto r = budget_.try_reserve(chunk_blocks_ * block_bytes_,
                                   /*allow_reclaim=*/false);
      if (r) {
        chunks_.push_back(std::move(*r));
        continue;
      }
    }
    if (lru_.empty() || !evict_one_unpinned()) return false;
  }
  return true;
}

void BlockCache::insert(BlockId first, std::uint64_t count,
                        std::span<const std::byte> bytes) {
  lru_.push_front(Entry{first, count, overlaps_pinned_range(first, count),
                        {bytes.begin(), bytes.end()}});
  map_[first] = lru_.begin();
  used_blocks_ += count;
}

std::size_t BlockCache::shed(std::size_t bytes_needed) {
  std::vector<MemoryReservation> freed;
  std::size_t released = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return 0;
    while (released < bytes_needed) {
      if (!chunks_.empty() &&
          granted_blocks() - used_blocks_ >= chunk_blocks_) {
        freed.push_back(std::move(chunks_.back()));
        chunks_.pop_back();
        released += chunk_blocks_ * block_bytes_;
        continue;
      }
      if (lru_.empty() || !evict_one_unpinned()) break;
    }
  }
  // Reservations release outside the cache lock (budget lock nests inside).
  freed.clear();
  return released;
}

}  // namespace emsplit

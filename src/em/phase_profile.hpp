// phase_profile.hpp — per-phase I/O attribution ("cost anatomy").
//
// The paper's bounds hide constants; this repository measures them.  To
// explain *where* the measured scans go, algorithms annotate their stages
// with ScopedPhase guards; the profiler attributes every I/O to the
// innermost open phase.  Collection is off by default (a disabled profiler
// costs one branch per phase entry, nothing per I/O) and is switched on by
// the cost-anatomy bench (E15) and by anyone debugging a regression.
//
//   PhaseProfile profile;
//   profile.attach(device);
//   { ScopedPhase p(profile, "splitters"); ... }
//   profile.rows();   // label -> IoStats, in first-entry order
//
// Attribution is sampling-free and exact: entering a phase snapshots the
// device counters; leaving adds the delta to the phase's bucket and to no
// other (nested phases subtract themselves from their parent, so buckets
// partition the total).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "em/block_device.hpp"

namespace emsplit {

class PhaseProfile {
 public:
  PhaseProfile() = default;

  /// Attach to a device; only I/Os on this device are attributed.
  void attach(const BlockDevice& device) { device_ = &device; }
  [[nodiscard]] bool attached() const noexcept { return device_ != nullptr; }

  /// Accumulated per-phase costs, in order of first entry.
  [[nodiscard]] const std::vector<std::pair<std::string, IoStats>>& rows()
      const noexcept {
    return rows_;
  }

  void reset() {
    rows_.clear();
    child_totals_.clear();
  }

 private:
  friend class ScopedPhase;

  std::size_t open(const char* label) {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].first == label) return i;
    }
    rows_.emplace_back(label, IoStats{});
    return rows_.size() - 1;
  }

  const BlockDevice* device_ = nullptr;
  std::vector<std::pair<std::string, IoStats>> rows_;
  // One entry per open phase: total I/Os of already-closed children, so a
  // closing phase can report exclusive cost.
  std::vector<IoStats> child_totals_;
};

/// RAII phase guard.  Pass a null profile (or an unattached one) to make it
/// free; algorithms take `PhaseProfile*` and default it to nullptr.
/// Buckets receive *exclusive* cost: a phase's I/Os minus those of the
/// phases nested inside it, so the buckets partition the total exactly.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfile* profile, const char* label) : profile_(profile) {
    if (profile_ == nullptr || !profile_->attached()) {
      profile_ = nullptr;
      return;
    }
    index_ = profile_->open(label);
    start_ = profile_->device_->stats();
    profile_->child_totals_.emplace_back();  // our children accumulate here
  }

  ~ScopedPhase() {
    if (profile_ == nullptr) return;
    const IoStats total = profile_->device_->stats() - start_;
    const IoStats children = profile_->child_totals_.back();
    profile_->child_totals_.pop_back();
    profile_->rows_[index_].second += total - children;
    // Report our full span to the enclosing phase, if any.
    if (!profile_->child_totals_.empty()) {
      profile_->child_totals_.back() += total;
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfile* profile_;
  std::size_t index_ = 0;
  IoStats start_;
};

}  // namespace emsplit

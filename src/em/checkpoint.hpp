// checkpoint.hpp — pass-boundary manifest journal for crash-recoverable runs.
//
// The long passes of this repository — external sort and the recursive
// multi-partition — are sequences of full scans over the data.  A process
// killed mid-run loses only the *interrupted* pass: every completed pass
// left its output in device blocks, and this journal records which blocks
// those are.  On restart, a run with the same job fingerprint resumes from
// the last journaled pass boundary and produces bit-identical output,
// repaying only the I/Os of the pass the crash interrupted (docs/model.md,
// "Failure model, retries, and recovery").
//
// Design:
//  * The journal is an append-only file of length + checksum framed entries;
//    a torn tail (the crash hit mid-append) is detected and ignored on load.
//  * The journal *owns* every extent it has published until the algorithm
//    takes the final result (or a newer pass supersedes it, which frees the
//    predecessor).  Ownership in the journal is what keeps checkpointed
//    blocks alive across the exception unwind of a mid-pass fault.
//  * restore() + FileBlockDevice's `preserve_contents` rebuild the allocator
//    of a fresh process around the journaled extents.
//  * Algorithms that find no journaled state run exactly the seed code path;
//    a Context without a journal attached never touches any of this.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "em/block_device.hpp"

namespace emsplit {

/// A realized output run as the partition recursion reports it (mirrors
/// MultiPartitionSpan without depending on the algorithm header).
struct CkptSpan {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool sorted = false;
};

/// FNV-1a accumulation for job fingerprints.  A fingerprint digests every
/// input that shapes a run's pass structure (N, record size, block records,
/// stream geometry, memory budget, algorithm parameters) so a journal entry
/// is only ever resumed by the identical job.
inline constexpr std::uint64_t kFingerprintSeed = 1469598103934665603ULL;

inline std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The manifest journal.  Main-thread only.  Destroy it *before* the device
/// it was constructed over: the destructor returns every still-owned extent
/// to the device's free list (the journal file itself is kept — it is the
/// recovery record).
class CheckpointJournal {
 public:
  /// Opens (and replays) the journal at `path`, creating it if absent.
  CheckpointJournal(BlockDevice& device, std::string path);
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Rebuild the allocator of a freshly reopened device around the journaled
  /// extents: exactly the extents this journal owns are marked live, all
  /// other blocks return to the free list.  Call once, right after
  /// constructing the journal over a `preserve_contents` device and before
  /// any allocation.
  void restore_device();

  // --- External sort ------------------------------------------------------

  /// The last completed pass of one sort job: pass 1 is run formation, each
  /// merge pass increments it.  `extent` (journal-owned) holds `size`
  /// records with run boundaries `offsets`.
  struct SortState {
    std::uint64_t pass = 0;
    BlockRange extent;
    std::uint64_t size = 0;
    std::vector<std::uint64_t> offsets;
  };

  /// Journaled state for this job, if any.  Finding state counts the
  /// journaled passes as resumed (see resumed_passes()).
  [[nodiscard]] std::optional<SortState> resume_sort(std::uint64_t fingerprint);

  /// Publish a completed pass.  The journal takes ownership of `extent`
  /// and frees the superseded pass's extent (journal entry first, free
  /// second: a crash between the two only leaks until restore()).
  void publish_sort_pass(std::uint64_t fingerprint, std::uint64_t pass,
                         BlockRange extent, std::uint64_t size,
                         const std::vector<std::uint64_t>& offsets);

  /// Hand the final pass's extent to the caller and retire the job.  After
  /// this the caller owns the blocks and the journal holds nothing for the
  /// fingerprint.
  [[nodiscard]] BlockRange take_sort_extent(std::uint64_t fingerprint);

  // --- Multi-partition ----------------------------------------------------

  /// One scratch bucket the root distribution produced for recursion:
  /// `extent` (journal-owned until `done`) holds `size` records destined for
  /// output records [out_lo, out_lo + size), with the enclosed split ranks
  /// relative to the bucket.
  struct PartBucket {
    BlockRange extent;
    std::uint64_t size = 0;
    std::uint64_t out_lo = 0;
    std::vector<std::uint64_t> ranks;
    bool done = false;
  };

  /// State of one partition job after its root distribution pass: the
  /// journal-owned output extent (holding `n` records once complete), the
  /// spans realized so far (root-direct runs plus completed buckets'), and
  /// the per-bucket work list.
  struct PartState {
    BlockRange out;
    std::uint64_t n = 0;
    std::vector<CkptSpan> spans;
    std::vector<PartBucket> buckets;
  };

  /// Journaled state for this job, if any.  Finding state counts the root
  /// pass plus each completed bucket as resumed.
  [[nodiscard]] std::optional<PartState> resume_part(std::uint64_t fingerprint);

  /// Publish the completed root distribution: the journal takes ownership of
  /// the output extent and every bucket extent.
  void publish_part_root(std::uint64_t fingerprint, BlockRange out,
                         std::uint64_t n, std::vector<PartBucket> buckets,
                         const std::vector<CkptSpan>& spans);

  /// Publish one bucket's completed subtree (its spans, in absolute output
  /// positions) and free the bucket's scratch extent.
  void publish_part_bucket_done(std::uint64_t fingerprint, std::uint64_t bucket,
                                const std::vector<CkptSpan>& spans);

  /// Hand the finished output extent to the caller and retire the job.
  [[nodiscard]] BlockRange take_part_out(std::uint64_t fingerprint);

  // --- Introspection / test hooks ----------------------------------------

  /// Passes that did NOT have to be re-run because the journal already held
  /// their results — what the CLI's `[cost]` line reports as resumed.
  [[nodiscard]] std::uint64_t resumed_passes() const noexcept {
    return resumed_passes_;
  }

  /// Blocks currently owned by the journal (tests assert leak-freedom).
  [[nodiscard]] std::uint64_t owned_blocks() const noexcept;

  /// Crash injection for the kill-and-resume tests: after `n` further
  /// journal appends complete, the process exits immediately (as SIGKILL
  /// would) without running destructors.
  void set_crash_after_publishes(std::uint64_t n) noexcept {
    publishes_left_ = n;
  }

 private:
  void load();
  void append_entry(std::span<const std::byte> payload);

  BlockDevice* dev_;
  std::string path_;
  int fd_ = -1;
  std::map<std::uint64_t, SortState> sorts_;
  std::map<std::uint64_t, PartState> parts_;
  std::uint64_t resumed_passes_ = 0;
  std::uint64_t publishes_left_ = UINT64_MAX;
};

}  // namespace emsplit

// em_vector.hpp — a typed external array over a block device.
//
// EmVector<T> is the disk-resident sequence type all algorithms operate on
// (the analogue of stxxl::vector).  It owns a contiguous extent of device
// blocks and exposes *block-granular* transfers only — there is deliberately
// no element-wise operator[]: honest I/O accounting requires that every byte
// that moves between disk and memory does so in full blocks through the
// counted device interface.  Sequential element access goes through
// StreamReader / StreamWriter (stream.hpp).
//
// The element type must be trivially copyable (records move between memory
// and disk with memcpy, per the model's indivisibility assumption).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>

#include "em/context.hpp"

namespace emsplit {

template <typename T>
concept EmRecord = std::is_trivially_copyable_v<T>;

template <EmRecord T>
class EmVector {
 public:
  /// An empty vector bound to no storage.
  EmVector() noexcept = default;

  /// Allocate storage for up to `capacity` records.  The logical size starts
  /// at 0 and is set by writers (or `set_size` after bulk block writes).
  EmVector(Context& ctx, std::size_t capacity)
      : ctx_(&ctx), capacity_(capacity) {
    const std::size_t b = ctx.block_records<T>();
    range_ = ctx.device().allocate((capacity + b - 1) / b);
  }

  ~EmVector() { reset(); }

  /// Bind a vector over an extent someone else allocated — the checkpoint
  /// layer's bridge between journaled BlockRanges and typed vectors.  With
  /// `owning` the vector adopts the extent (deallocated on reset/destruct,
  /// as usual); without, it is a *view* and the extent's owner (e.g. the
  /// journal) outlives it.  Capacity is whatever the extent holds.
  static EmVector adopt(Context& ctx, BlockRange range, std::size_t size,
                        bool owning) {
    EmVector v;
    v.ctx_ = &ctx;
    v.range_ = range;
    v.capacity_ = static_cast<std::size_t>(range.count) *
                  ctx.block_records<T>();
    v.size_ = size;
    v.owns_ = owning;
    assert(size <= v.capacity_);
    return v;
  }

  EmVector(EmVector&& o) noexcept
      : ctx_(o.ctx_),
        range_(o.range_),
        capacity_(o.capacity_),
        size_(o.size_),
        owns_(o.owns_) {
    o.ctx_ = nullptr;
    o.range_ = BlockRange{};
    o.capacity_ = 0;
    o.size_ = 0;
    o.owns_ = true;
  }
  EmVector& operator=(EmVector&& o) noexcept {
    if (this != &o) {
      reset();
      ctx_ = std::exchange(o.ctx_, nullptr);
      range_ = std::exchange(o.range_, BlockRange{});
      capacity_ = std::exchange(o.capacity_, 0);
      size_ = std::exchange(o.size_, 0);
      owns_ = std::exchange(o.owns_, true);
    }
    return *this;
  }
  EmVector(const EmVector&) = delete;
  EmVector& operator=(const EmVector&) = delete;

  /// Release the device extent (a non-owning view just unbinds).
  void reset() noexcept {
    if (ctx_ != nullptr && owns_) ctx_->device().deallocate(range_);
    ctx_ = nullptr;
    range_ = BlockRange{};
    capacity_ = 0;
    size_ = 0;
    owns_ = true;
  }

  /// The extent backing this vector (invalid when unbound).
  [[nodiscard]] const BlockRange& extent() const noexcept { return range_; }

  /// Transfer ownership of the extent to the caller and unbind.  Used when
  /// publishing a pass result to the checkpoint journal: the journal then
  /// owns the blocks across any subsequent unwind.
  [[nodiscard]] BlockRange release_extent() noexcept {
    const BlockRange r = range_;
    ctx_ = nullptr;
    range_ = BlockRange{};
    capacity_ = 0;
    size_ = 0;
    owns_ = true;
    return r;
  }

  [[nodiscard]] bool bound() const noexcept { return ctx_ != nullptr; }
  [[nodiscard]] Context& context() const noexcept { return *ctx_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Records per block for this vector's element type.
  [[nodiscard]] std::size_t block_records() const {
    return ctx_->block_records<T>();
  }
  /// Number of blocks holding the current logical size.
  [[nodiscard]] std::size_t size_blocks() const {
    const std::size_t b = block_records();
    return (size_ + b - 1) / b;
  }

  /// Set the logical size (records written through raw block writes).
  void set_size(std::size_t n) {
    assert(n <= capacity_);
    size_ = n;
  }

  /// Read the `i`-th block into `out`.  `out.size()` must be block_records();
  /// slots past the logical size hold unspecified bytes.
  void read_block(std::size_t i, std::span<T> out) const {
    assert(out.size() == block_records());
    ctx_->device().read(range_.first + i, std::as_writable_bytes(out));
  }

  /// Write the `i`-th block from `in`.  `in.size()` must be block_records().
  void write_block(std::size_t i, std::span<const T> in) {
    assert(in.size() == block_records());
    ctx_->device().write(range_.first + i, std::as_bytes(in));
  }

  /// True when records tile blocks exactly (sizeof(T) divides the block
  /// size): consecutive blocks then form one contiguous record array on the
  /// device, which is what makes multi-block record spans meaningful.
  [[nodiscard]] bool contiguous_layout() const {
    return ctx_->block_bytes() % sizeof(T) == 0;
  }

  /// Read `nblocks` consecutive blocks starting at block `i` as one counted
  /// batch (costs `nblocks` read I/Os, one device call).  For nblocks > 1
  /// the layout must be contiguous; `out` holds the records of all blocks,
  /// the final block possibly as a prefix.
  void read_blocks(std::size_t i, std::size_t nblocks,
                   std::span<T> out) const {
    assert(nblocks == 1 || contiguous_layout());
    assert(out.size() <= nblocks * block_records());
    assert(nblocks <= 1 || out.size() > (nblocks - 1) * block_records());
    ctx_->device().read_blocks(range_.first + i, nblocks,
                               std::as_writable_bytes(out));
  }

  /// Write `nblocks` consecutive blocks starting at block `i` as one counted
  /// batch; the same layout and span rules as read_blocks.
  void write_blocks(std::size_t i, std::size_t nblocks,
                    std::span<const T> in) {
    assert(nblocks == 1 || contiguous_layout());
    assert(in.size() <= nblocks * block_records());
    assert(nblocks <= 1 || in.size() > (nblocks - 1) * block_records());
    ctx_->device().write_blocks(range_.first + i, nblocks, std::as_bytes(in));
  }

 private:
  Context* ctx_ = nullptr;
  BlockRange range_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  bool owns_ = true;
};

}  // namespace emsplit

// posix_io.hpp — shared positional-I/O helpers for file-backed devices.
//
// FileBlockDevice and UringBlockDevice's fallback path issue the same
// EINTR-restarting pread/pwrite loops with the same EOF semantics: a read
// past the end of a sparse region zero-fills, matching MemoryBlockDevice's
// "never-written blocks read as zeroes" contract.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

namespace emsplit::detail {

inline void posix_pread_span(int fd, std::uint64_t offset,
                             std::span<std::byte> out, const char* who) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string(who) + ": pread failed: " +
                               std::strerror(errno));
    }
    if (n == 0) {  // hole beyond EOF of a sparse region: zero-fill
      std::memset(out.data() + done, 0, out.size() - done);
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

inline void posix_pwrite_span(int fd, std::uint64_t offset,
                              std::span<const std::byte> in, const char* who) {
  std::size_t done = 0;
  while (done < in.size()) {
    const ssize_t n = ::pwrite(fd, in.data() + done, in.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string(who) + ": pwrite failed: " +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace emsplit::detail

// block_device.hpp — the "disk" of the external-memory model.
//
// A BlockDevice is a flat address space of fixed-size blocks.  Algorithms may
// only move data between memory and the device in whole blocks, and every
// such transfer is counted in IoStats.  Two implementations are provided:
//
//  * MemoryBlockDevice — RAM-backed simulator.  Gives *exact, deterministic*
//    I/O counts; this is the measurement instrument for all shape experiments
//    (the paper's cost model charges I/Os, not seconds).
//  * FileBlockDevice — a real file on disk, for wall-clock sanity benchmarks
//    (experiment E10 in DESIGN.md).
//
// Allocation is extent-based (contiguous runs of blocks) with a first-fit
// free list, so external vectors and scratch space can be recycled during
// recursive algorithms without unbounded device growth.  Allocation metadata
// lives in host bookkeeping and is not charged against the model's memory
// budget, matching standard practice in EM implementations (e.g. STXXL's
// block-management layer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "em/io_stats.hpp"

namespace emsplit {

using BlockId = std::uint64_t;

inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// A contiguous run of blocks owned by one external data structure.
struct BlockRange {
  BlockId first = kInvalidBlock;
  std::uint64_t count = 0;

  [[nodiscard]] bool valid() const noexcept { return first != kInvalidBlock; }
  friend bool operator==(const BlockRange&, const BlockRange&) = default;
};

/// Thrown by the fault-injection hook; used by tests to verify that the RAII
/// layers above the device are strongly exception-safe.
class DeviceFault : public std::runtime_error {
 public:
  explicit DeviceFault(const std::string& what) : std::runtime_error(what) {}
};

/// Abstract block device with I/O accounting, extent allocation and fault
/// injection.  Not thread-safe by design: the EM model is sequential, and all
/// algorithms in this repository issue I/Os from a single thread.
class BlockDevice {
 public:
  explicit BlockDevice(std::size_t block_bytes);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Size of one block in bytes (the model's `B`, in bytes).
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

  /// Reserve a contiguous extent of `count` blocks.  First-fit over the free
  /// list, growing the device at the end if nothing fits.
  [[nodiscard]] BlockRange allocate(std::uint64_t count);

  /// Return an extent to the free list (with coalescing).  Passing an invalid
  /// or empty range is a no-op so destructors can call this unconditionally.
  void deallocate(const BlockRange& range) noexcept;

  /// Read a prefix of one block into `out` (`out.size() <= block_bytes()`).
  /// Counts one read I/O regardless of the prefix length — the model charges
  /// per block transfer.  Prefix transfers exist because a block holds
  /// floor(block_bytes / sizeof(record)) whole records; the tail of a block
  /// is unused when the record size does not divide the block size.
  void read(BlockId block, std::span<std::byte> out);

  /// Write a prefix of one block from `in` (`in.size() <= block_bytes()`).
  /// Counts one write I/O.
  void write(BlockId block, std::span<const std::byte> in);

  /// Live I/O counters.
  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = IoStats{}; }

  /// Total blocks ever grown to (capacity high-water mark).
  [[nodiscard]] std::uint64_t size_blocks() const noexcept { return size_blocks_; }

  /// Blocks currently allocated to live extents.
  [[nodiscard]] std::uint64_t allocated_blocks() const noexcept {
    return allocated_blocks_;
  }

  /// Fault injection: after `remaining` further I/Os succeed, the next I/O
  /// throws DeviceFault.  Pass no value to disarm.
  void arm_fault_after(std::uint64_t remaining) noexcept {
    fault_armed_ = true;
    fault_countdown_ = remaining;
  }
  void disarm_fault() noexcept { fault_armed_ = false; }

 protected:
  virtual void do_read(BlockId block, std::span<std::byte> out) = 0;
  virtual void do_write(BlockId block, std::span<const std::byte> in) = 0;
  /// Called when the device grows to `new_size_blocks` blocks.
  virtual void do_grow(std::uint64_t new_size_blocks) = 0;

 private:
  void check_io(BlockId block, std::size_t span_bytes, const char* op);

  std::size_t block_bytes_;
  std::uint64_t size_blocks_ = 0;
  std::uint64_t allocated_blocks_ = 0;
  // Free extents keyed by first block, value = extent length.  Adjacent
  // extents are coalesced on deallocate.
  std::map<BlockId, std::uint64_t> free_extents_;
  IoStats stats_;
  bool fault_armed_ = false;
  std::uint64_t fault_countdown_ = 0;
};

/// RAM-backed simulator device.  Blocks are lazily materialized so a large
/// address space costs memory only for blocks actually written.
class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(std::size_t block_bytes);
  ~MemoryBlockDevice() override;

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
};

/// File-backed device for wall-clock experiments.  Uses positional reads and
/// writes on a regular file; the file is removed on destruction unless
/// `keep_file` was requested.
class FileBlockDevice final : public BlockDevice {
 public:
  FileBlockDevice(std::string path, std::size_t block_bytes,
                  bool keep_file = false);
  ~FileBlockDevice() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  std::string path_;
  int fd_ = -1;
  bool keep_file_;
};

}  // namespace emsplit

// block_device.hpp — the "disk" of the external-memory model.
//
// A BlockDevice is a flat address space of fixed-size blocks.  Algorithms may
// only move data between memory and the device in whole blocks, and every
// such transfer is counted in IoStats.  Two implementations are provided:
//
//  * MemoryBlockDevice — RAM-backed simulator.  Gives *exact, deterministic*
//    I/O counts; this is the measurement instrument for all shape experiments
//    (the paper's cost model charges I/Os, not seconds).
//  * FileBlockDevice — a real file on disk, for wall-clock sanity benchmarks
//    (experiment E10 in DESIGN.md).
//
// Transfers come in two granularities: single blocks (read/write) and
// contiguous multi-block extents (read_blocks/write_blocks).  A k-block
// extent transfer is one device call — one pread/pwrite on FileBlockDevice —
// but is charged k I/Os, because the model prices block movement, not calls;
// batching is therefore invisible to the cost accounting (docs/model.md,
// "I/O batching and asynchrony").
//
// Allocation is extent-based (contiguous runs of blocks) with a first-fit
// free list, so external vectors and scratch space can be recycled during
// recursive algorithms without unbounded device growth.  Allocation metadata
// lives in host bookkeeping and is not charged against the model's memory
// budget, matching standard practice in EM implementations (e.g. STXXL's
// block-management layer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "em/io_stats.hpp"

namespace emsplit {

using BlockId = std::uint64_t;

inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// A contiguous run of blocks owned by one external data structure.
struct BlockRange {
  BlockId first = kInvalidBlock;
  std::uint64_t count = 0;

  [[nodiscard]] bool valid() const noexcept { return first != kInvalidBlock; }
  friend bool operator==(const BlockRange&, const BlockRange&) = default;
};

/// Thrown by the fault-injection hook; used by tests to verify that the RAII
/// layers above the device are strongly exception-safe.
class DeviceFault : public std::runtime_error {
 public:
  explicit DeviceFault(const std::string& what) : std::runtime_error(what) {}
};

/// Abstract block device with I/O accounting, extent allocation and fault
/// injection.
///
/// Thread-safety contract (load-bearing for the async I/O pipeline): the
/// transfer interface — read / write / read_blocks / write_blocks — and the
/// stats() snapshot may be used concurrently by the main thread and the
/// background I/O worker.  The I/O counters are relaxed atomics, and the
/// transfer paths of both concrete devices are data-race free provided no two
/// threads touch the same block concurrently (the stream layer guarantees
/// that: every in-flight batch owns its blocks exclusively).  Everything else
/// — allocate / deallocate, reset_stats, arm/disarm fault — is main-thread
/// only and must not run while transfers are in flight.
class BlockDevice {
 public:
  explicit BlockDevice(std::size_t block_bytes);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Size of one block in bytes (the model's `B`, in bytes).
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

  /// Reserve a contiguous extent of `count` blocks.  First-fit over the free
  /// list, growing the device at the end if nothing fits.
  [[nodiscard]] BlockRange allocate(std::uint64_t count);

  /// Return an extent to the free list (with coalescing).  Passing an invalid
  /// or empty range is a no-op so destructors can call this unconditionally.
  void deallocate(const BlockRange& range) noexcept;

  /// Read a prefix of one block into `out` (`out.size() <= block_bytes()`).
  /// Counts one read I/O regardless of the prefix length — the model charges
  /// per block transfer.  Prefix transfers exist because a block holds
  /// floor(block_bytes / sizeof(record)) whole records; the tail of a block
  /// is unused when the record size does not divide the block size.
  void read(BlockId block, std::span<std::byte> out);

  /// Write a prefix of one block from `in` (`in.size() <= block_bytes()`).
  /// Counts one write I/O.
  void write(BlockId block, std::span<const std::byte> in);

  /// Read `count` consecutive blocks starting at `first` in one device call.
  /// `out` must cover all of the first `count - 1` blocks and a non-empty
  /// prefix of the last one (so `(count-1)*block_bytes < out.size() <=
  /// count*block_bytes`) — the multi-block generalization of the single-block
  /// prefix rule.  Counts exactly `count` read I/Os.
  ///
  /// Fault injection honors the per-I/O countdown *inside* the batch: when
  /// the fault is due after j < count more I/Os, the first j blocks are
  /// transferred and counted, then DeviceFault is thrown.
  void read_blocks(BlockId first, std::uint64_t count,
                   std::span<std::byte> out);

  /// Write `count` consecutive blocks from `in` in one device call; the same
  /// span, counting and mid-batch fault rules as read_blocks.
  void write_blocks(BlockId first, std::uint64_t count,
                    std::span<const std::byte> in);

  /// Snapshot of the I/O counters.  Returns by value: the counters are
  /// atomics that the background worker may be bumping concurrently.
  [[nodiscard]] IoStats stats() const noexcept {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed)};
  }

  /// Zero both counters.  Main-thread only, and only at quiescent points
  /// (no async I/O in flight — e.g. between algorithm runs); a reset racing
  /// the worker's increments would produce torn totals.
  void reset_stats() noexcept {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

  /// Total blocks ever grown to (capacity high-water mark).
  [[nodiscard]] std::uint64_t size_blocks() const noexcept {
    return size_blocks_.load(std::memory_order_relaxed);
  }

  /// Blocks currently allocated to live extents.
  [[nodiscard]] std::uint64_t allocated_blocks() const noexcept {
    return allocated_blocks_;
  }

  /// Fault injection: after `remaining` further I/Os succeed, the next I/O
  /// throws DeviceFault.  Pass no value to disarm.
  void arm_fault_after(std::uint64_t remaining) {
    const std::lock_guard<std::mutex> lock(fault_mu_);
    fault_countdown_ = remaining;
    fault_armed_.store(true, std::memory_order_release);
  }
  void disarm_fault() noexcept {
    fault_armed_.store(false, std::memory_order_release);
  }

 protected:
  virtual void do_read(BlockId block, std::span<std::byte> out) = 0;
  virtual void do_write(BlockId block, std::span<const std::byte> in) = 0;
  /// Batched transfers; the base implementations loop over do_read/do_write
  /// block by block.  Concrete devices override them with a genuinely
  /// vectored path (single pread/pwrite, single lock acquisition).
  virtual void do_read_blocks(BlockId first, std::uint64_t count,
                              std::span<std::byte> out);
  virtual void do_write_blocks(BlockId first, std::uint64_t count,
                               std::span<const std::byte> in);
  /// Called when the device grows to `new_size_blocks` blocks.
  virtual void do_grow(std::uint64_t new_size_blocks) = 0;

 private:
  void check_range(BlockId first, std::uint64_t count, std::size_t span_bytes,
                   const char* op) const;
  /// Run the fault countdown for a `count`-I/O request: returns how many of
  /// the I/Os may proceed (and charges the countdown for them).  A return
  /// value < count means the fault fires after exactly that many transfers.
  [[nodiscard]] std::uint64_t fault_allowance(std::uint64_t count);

  std::size_t block_bytes_;
  std::atomic<std::uint64_t> size_blocks_{0};
  std::uint64_t allocated_blocks_ = 0;
  // Free extents keyed by first block, value = extent length.  Adjacent
  // extents are coalesced on deallocate.
  std::map<BlockId, std::uint64_t> free_extents_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  // Fast path: one relaxed-ish load when disarmed.  The countdown itself is
  // mutex-guarded so concurrent transfers decrement it exactly once each.
  std::atomic<bool> fault_armed_{false};
  std::mutex fault_mu_;
  std::uint64_t fault_countdown_ = 0;
};

/// RAM-backed simulator device.  Blocks are lazily materialized so a large
/// address space costs memory only for blocks actually written.
class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(std::size_t block_bytes);
  ~MemoryBlockDevice() override;

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  // Locked copy loops; `mu_` is held shared during transfers (they touch
  // disjoint blocks) and exclusively while do_grow resizes the page table.
  void read_one(BlockId block, std::span<std::byte> out) const;
  void write_one(BlockId block, std::span<const std::byte> in);

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
};

/// File-backed device for wall-clock experiments.  Uses positional reads and
/// writes on a regular file (pread/pwrite are thread-safe by construction);
/// the file is removed on destruction unless `keep_file` was requested.
class FileBlockDevice final : public BlockDevice {
 public:
  FileBlockDevice(std::string path, std::size_t block_bytes,
                  bool keep_file = false);
  ~FileBlockDevice() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  void pread_span(std::uint64_t offset, std::span<std::byte> out);
  void pwrite_span(std::uint64_t offset, std::span<const std::byte> in);

  std::string path_;
  int fd_ = -1;
  bool keep_file_;
};

}  // namespace emsplit

// block_device.hpp — the "disk" of the external-memory model.
//
// A BlockDevice is a flat address space of fixed-size blocks.  Algorithms may
// only move data between memory and the device in whole blocks, and every
// such transfer is counted in IoStats.  Two implementations are provided:
//
//  * MemoryBlockDevice — RAM-backed simulator.  Gives *exact, deterministic*
//    I/O counts; this is the measurement instrument for all shape experiments
//    (the paper's cost model charges I/Os, not seconds).
//  * FileBlockDevice — a real file on disk, for wall-clock sanity benchmarks
//    (experiment E10 in DESIGN.md).
//
// Transfers come in two granularities: single blocks (read/write) and
// contiguous multi-block extents (read_blocks/write_blocks).  A k-block
// extent transfer is one device call — one pread/pwrite on FileBlockDevice —
// but is charged k I/Os, because the model prices block movement, not calls;
// batching is therefore invisible to the cost accounting (docs/model.md,
// "I/O batching and asynchrony").
//
// Allocation is extent-based (contiguous runs of blocks) with a first-fit
// free list, so external vectors and scratch space can be recycled during
// recursive algorithms without unbounded device growth.  Allocation metadata
// lives in host bookkeeping and is not charged against the model's memory
// budget, matching standard practice in EM implementations (e.g. STXXL's
// block-management layer).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "em/io_stats.hpp"

namespace emsplit {

class BlockCache;

using BlockId = std::uint64_t;

inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// A contiguous run of blocks owned by one external data structure.
struct BlockRange {
  BlockId first = kInvalidBlock;
  std::uint64_t count = 0;

  [[nodiscard]] bool valid() const noexcept { return first != kInvalidBlock; }
  friend bool operator==(const BlockRange&, const BlockRange&) = default;
};

/// Thrown by the fault-injection hook; used by tests to verify that the RAII
/// layers above the device are strongly exception-safe.
///
/// A fault is either *transient* (a retry of the same transfer may succeed —
/// bus glitches, momentary device timeouts) or *permanent*.  The device's
/// retry layer (see FaultPolicy) consumes transient faults up to the policy
/// bound; whatever escapes to the caller — permanent faults, or transient
/// ones past the retry budget — carries the exact request that failed:
/// operation, block range, and how many blocks of the request had already
/// transferred (and been counted) when the fault fired.
class DeviceFault : public std::runtime_error {
 public:
  explicit DeviceFault(const std::string& what) : std::runtime_error(what) {}
  DeviceFault(const std::string& what, bool transient, const char* op,
              BlockId first, std::uint64_t count, std::uint64_t completed)
      : std::runtime_error(what),
        transient_(transient),
        op_(op),
        first_(first),
        count_(count),
        completed_(completed) {}

  /// True when a retry of the remaining blocks may succeed.
  [[nodiscard]] bool transient() const noexcept { return transient_; }
  /// "read" or "write" (empty for faults constructed without a range).
  [[nodiscard]] const char* op() const noexcept { return op_; }
  /// The failed request's block range [first_block, first_block + count).
  [[nodiscard]] BlockId first_block() const noexcept { return first_; }
  [[nodiscard]] std::uint64_t block_count() const noexcept { return count_; }
  /// Blocks of the request transferred (and counted) before the fault.
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  bool transient_ = false;
  const char* op_ = "";
  BlockId first_ = kInvalidBlock;
  std::uint64_t count_ = 0;
  std::uint64_t completed_ = 0;
};

/// One block's recorded checksum in wire/export form: FNV-1a over the
/// `len`-byte prefix the write transferred.  The unit of checksum exchange
/// between cooperating processes (a forked worker ships its dirty entries
/// home in the result frame) and of sidecar persistence.
struct SumEntry {
  BlockId block = 0;
  std::uint32_t len = 0;
  std::uint64_t sum = 0;
};

/// A read returned bytes whose checksum does not match what was last written
/// to that block (torn write, bit rot, or the test injector's flipped bit).
/// Corruption is never transient: re-reading returns the same bytes, so the
/// retry layer passes it straight through.  The faulting read has already
/// been counted — the block really moved; it just arrived wrong.
class CorruptBlock : public DeviceFault {
 public:
  CorruptBlock(const std::string& what, BlockId block)
      : DeviceFault(what, /*transient=*/false, "read", block, 1, 1) {}
};

/// What the fault injector simulates.  One-shot countdown faults reproduce
/// the classic `arm_fault_after` semantics; the other schedules model the
/// transient-failure regimes a long-running deployment actually sees.
struct FaultSchedule {
  enum class Kind {
    kOneShot,          ///< after `after` I/Os, the next I/O faults once
    kFailThenSucceed,  ///< after `after` I/Os, the next `burst` *attempts*
                       ///< fault (transient); retries then succeed
    kEveryNth,         ///< every `period`-th attempted I/O faults
    kProbabilistic,    ///< each attempt faults with probability `p` (seeded)
  };

  Kind kind = Kind::kOneShot;
  std::uint64_t after = 0;       ///< successful I/Os before the first fault
  std::uint64_t burst = 1;       ///< consecutive faulting attempts (kFailThenSucceed)
  std::uint64_t period = 0;      ///< kEveryNth
  double probability = 0.0;      ///< kProbabilistic
  std::uint64_t seed = 0;        ///< kProbabilistic
  bool transient = true;         ///< what DeviceFault::transient() reports

  /// The classic permanent one-shot: `remaining` I/Os succeed, the next
  /// throws, then the injector disarms.
  static FaultSchedule one_shot_after(std::uint64_t remaining) {
    FaultSchedule s;
    s.kind = Kind::kOneShot;
    s.after = remaining;
    s.transient = false;
    return s;
  }
  /// Transient one-shot: after `remaining` I/Os, `times` consecutive
  /// attempts fault, then the injector disarms and retries succeed.
  static FaultSchedule fail_then_succeed(std::uint64_t remaining,
                                         std::uint64_t times = 1) {
    FaultSchedule s;
    s.kind = Kind::kFailThenSucceed;
    s.after = remaining;
    s.burst = times;
    return s;
  }
  /// Every `period`-th attempted I/O faults transiently, forever.
  static FaultSchedule every_nth(std::uint64_t period) {
    FaultSchedule s;
    s.kind = Kind::kEveryNth;
    s.period = period;
    return s;
  }
  /// Each attempted I/O faults transiently with probability `p`,
  /// deterministically derived from `seed` and the attempt counter.
  static FaultSchedule probabilistic(double p, std::uint64_t seed) {
    FaultSchedule s;
    s.kind = Kind::kProbabilistic;
    s.probability = p;
    s.seed = seed;
    return s;
  }
};

/// Bounded retry of transient faults, applied inside the device's public
/// transfer methods — which covers every call site, the async I/O worker
/// included.  A retry re-issues only the blocks the fault prevented, so the
/// base read/write counts of a retried run are identical to the fault-free
/// run; each retry attempt is tallied separately in IoStats::retries.
/// The default (max_retries = 0) reproduces the classic fail-fast device.
struct FaultPolicy {
  std::uint64_t max_retries = 0;  ///< retry attempts per request
  std::chrono::microseconds backoff{0};  ///< first retry delay, doubled per attempt
  std::chrono::microseconds max_backoff{100000};  ///< backoff cap
};

/// Abstract block device with I/O accounting, extent allocation and fault
/// injection.
///
/// Thread-safety contract (load-bearing for the async I/O pipeline): the
/// transfer interface — read / write / read_blocks / write_blocks — and the
/// stats() snapshot may be used concurrently by the main thread and the
/// background I/O worker.  The I/O counters are relaxed atomics, and the
/// transfer paths of both concrete devices are data-race free provided no two
/// threads touch the same block concurrently (the stream layer guarantees
/// that: every in-flight batch owns its blocks exclusively).  Everything else
/// — allocate / deallocate, reset_stats, arm/disarm fault — is main-thread
/// only and must not run while transfers are in flight.
class BlockDevice {
 public:
  explicit BlockDevice(std::size_t block_bytes);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Size of one block in bytes (the model's `B`, in bytes).
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

  /// Reserve a contiguous extent of `count` blocks.  First-fit over the free
  /// list, growing the device at the end if nothing fits.
  [[nodiscard]] BlockRange allocate(std::uint64_t count);

  /// Return an extent to the free list (with coalescing).  Passing an invalid
  /// or empty range is a no-op so destructors can call this unconditionally.
  void deallocate(const BlockRange& range) noexcept;

  /// Read a prefix of one block into `out` (`out.size() <= block_bytes()`).
  /// Counts one read I/O regardless of the prefix length — the model charges
  /// per block transfer.  Prefix transfers exist because a block holds
  /// floor(block_bytes / sizeof(record)) whole records; the tail of a block
  /// is unused when the record size does not divide the block size.
  void read(BlockId block, std::span<std::byte> out);

  /// Write a prefix of one block from `in` (`in.size() <= block_bytes()`).
  /// Counts one write I/O.
  void write(BlockId block, std::span<const std::byte> in);

  /// Read `count` consecutive blocks starting at `first` in one device call.
  /// `out` must cover all of the first `count - 1` blocks and a non-empty
  /// prefix of the last one (so `(count-1)*block_bytes < out.size() <=
  /// count*block_bytes`) — the multi-block generalization of the single-block
  /// prefix rule.  Counts exactly `count` read I/Os.
  ///
  /// Fault injection honors the per-I/O countdown *inside* the batch: when
  /// the fault is due after j < count more I/Os, the first j blocks are
  /// transferred and counted, then DeviceFault is thrown.
  void read_blocks(BlockId first, std::uint64_t count,
                   std::span<std::byte> out);

  /// Write `count` consecutive blocks from `in` in one device call; the same
  /// span, counting and mid-batch fault rules as read_blocks.
  void write_blocks(BlockId first, std::uint64_t count,
                    std::span<const std::byte> in);

  /// Snapshot of the I/O counters.  Returns by value: the counters are
  /// atomics that the background worker may be bumping concurrently.
  /// Virtual so a composite device (ShardedBlockDevice) can report the sum
  /// of its members' counters as the facade total.  With a block cache
  /// attached, the snapshot carries the cache's hit/miss/eviction counters;
  /// base() strips them, so determinism assertions are unaffected.
  [[nodiscard]] virtual IoStats stats() const noexcept;

  /// Zero the counters (including the attached cache's, if any).  Main-thread
  /// only, and only at quiescent points (no async I/O in flight — e.g.
  /// between algorithm runs); a reset racing the worker's increments would
  /// produce torn totals.
  virtual void reset_stats() noexcept;

  /// Attach (or detach, with nullptr) a block cache.  The device consults it
  /// on every transfer: resident reads skip the backend but are still counted
  /// — the cache is invisible to the logical I/O accounting (docs/model.md).
  /// Main-thread only, at quiescent points.  One device per cache: the cache
  /// is keyed by this device's block ids.
  void set_cache(BlockCache* cache) noexcept { cache_ = cache; }
  [[nodiscard]] BlockCache* cache() const noexcept { return cache_; }

  /// True when a forked child process can keep transferring over the
  /// inherited handle while the parent's copy stays usable — the property the
  /// multi-worker layer (em/worker_group) needs to run cooperating processes
  /// against one shared device.  FileBlockDevice qualifies (positional
  /// pread/pwrite on a shared fd and offset-free file growth).
  /// MemoryBlockDevice qualifies because its pages live in MAP_SHARED
  /// anonymous arenas (prepare_fork materializes every page so a child never
  /// needs to extend the page table).  UringBlockDevice qualifies in buffered
  /// mode: the child must not drive the parent's ring, so child_after_fork
  /// pins it to the positional pread/pwrite fallback over the shared fd.
  [[nodiscard]] virtual bool fork_safe() const noexcept { return false; }

  /// Called in the parent, at a quiescent point, immediately before forking
  /// cooperating workers.  A backend uses this to reach the state fork
  /// sharing needs: MemoryBlockDevice materializes all pages into its shared
  /// arenas; UringBlockDevice drains in-flight write-behind so children read
  /// settled bytes.  Default: nothing to prepare.
  virtual void prepare_fork() {}

  /// Called once inside a freshly forked worker, before any transfer.  A
  /// backend uses this to drop resources it must not share with the parent:
  /// UringBlockDevice stops driving the inherited ring and falls back to
  /// positional I/O.  The child _exits without running destructors, so this
  /// must not need a matching teardown.  Default: nothing to do.
  virtual void child_after_fork() noexcept {}

  /// Drain and zero this thread's cache-hit counter.  read_core bumps a
  /// thread_local counter on every cache-served block, so a query thread can
  /// attribute hits to itself exactly even while other threads share the
  /// device: clear before the query, take after.  The device-wide totals in
  /// stats() are unaffected.
  [[nodiscard]] static std::uint64_t take_thread_cache_hits() noexcept;

  /// Fold I/O performed on this device by a cooperating forked worker into
  /// the counters: the child's transfers moved real blocks of the shared
  /// backing store, but its counter increments died with its address space.
  /// `delta` is the child's stats() delta; `per_shard` its shard_stats()
  /// delta (empty for unsharded devices).  The base device adds `delta` to
  /// its own counters; a composite device distributes `per_shard` to its
  /// members instead, preserving the shards-partition-the-total invariant.
  /// Main-thread only, at quiescent points.
  virtual void absorb_stats(const IoStats& delta,
                            std::span<const IoStats> per_shard) noexcept;

  /// Number of member shards behind this device — 1 for a plain device;
  /// ShardedBlockDevice reports its member count.
  [[nodiscard]] virtual std::size_t shard_count() const noexcept { return 1; }

  /// Per-shard counter snapshots.  Empty for an unsharded device (callers
  /// treat "no breakdown" and "one shard" identically); a sharded device
  /// returns one entry per member, summing exactly to stats() minus any
  /// facade-level retries (see ShardedBlockDevice::stats()).
  [[nodiscard]] virtual std::vector<IoStats> shard_stats() const { return {}; }

  /// Total blocks ever grown to (capacity high-water mark).
  [[nodiscard]] std::uint64_t size_blocks() const noexcept {
    return size_blocks_.load(std::memory_order_relaxed);
  }

  /// Blocks currently allocated to live extents.
  [[nodiscard]] std::uint64_t allocated_blocks() const noexcept {
    return allocated_blocks_;
  }

  /// Fault injection: after `remaining` further I/Os succeed, the next I/O
  /// throws a *permanent* DeviceFault (the classic one-shot hook).
  void arm_fault_after(std::uint64_t remaining) {
    arm_fault(FaultSchedule::one_shot_after(remaining));
  }
  /// Arm an arbitrary injection schedule (see FaultSchedule).
  void arm_fault(const FaultSchedule& schedule) {
    const std::lock_guard<std::mutex> lock(fault_mu_);
    schedule_ = schedule;
    fault_countdown_ = schedule.after;
    fault_burst_left_ = schedule.burst;
    fault_attempts_ = 0;
    fault_armed_.store(true, std::memory_order_release);
  }
  void disarm_fault() noexcept {
    fault_armed_.store(false, std::memory_order_release);
  }

  /// Retry policy for transient faults.  Main-thread only, at quiescent
  /// points (no transfers in flight), like arm_fault.  Virtual so a
  /// composite device can forward the policy to its members (where
  /// member-armed faults are retried).
  virtual void set_fault_policy(const FaultPolicy& policy) noexcept {
    fault_policy_ = policy;
  }
  [[nodiscard]] const FaultPolicy& fault_policy() const noexcept {
    return fault_policy_;
  }

  /// Corruption detection: when enabled, every block write records an FNV-1a
  /// checksum of the bytes written in a sidecar page map, and every read of a
  /// block with a recorded checksum re-hashes the returned bytes and throws
  /// CorruptBlock on mismatch.  A read shorter than the recorded write (a
  /// prefix transfer of a block written full) is left unverified — the hash
  /// covers bytes the read did not move.  Blocks of deallocated extents drop
  /// their entries, so recycled blocks never trip stale checksums.
  /// Main-thread only, at quiescent points.
  void set_checksums(bool enabled) noexcept {
    checksums_.store(enabled, std::memory_order_release);
  }
  [[nodiscard]] bool checksums() const noexcept {
    return checksums_.load(std::memory_order_acquire);
  }

  /// Dirty-sum tracking: while enabled, every checksum recorded by a write is
  /// also noted in a dirty set that take_dirty_sums() drains.  A forked
  /// worker enables this right after the fork so its checksum-table updates —
  /// which would otherwise die with its copy-on-write address space — can be
  /// shipped home in the result frame and folded back via merge_sums().
  void set_sum_tracking(bool enabled) noexcept {
    track_sums_.store(enabled, std::memory_order_release);
  }
  /// Drain the dirty set: every (block, len, sum) recorded since tracking was
  /// enabled (or last drained), in block order.
  [[nodiscard]] std::vector<SumEntry> take_dirty_sums();
  /// Fold checksum entries from a cooperating process into the table (last
  /// write wins, like the local write path).
  void merge_sums(std::span<const SumEntry> entries);
  /// The full checksum table in export form — ShardedBlockDevice partitions
  /// this by owning member to write per-member sidecars.
  [[nodiscard]] std::vector<SumEntry> export_sums() const;

  /// Count supervised re-execution I/O: `n` block transfers re-performed by
  /// the worker supervisor after a worker failed (em/worker_group.hpp).  The
  /// transfers themselves were already counted in reads/writes — this mirrors
  /// note_retry's separation of recovery volume from base counts.
  void note_worker_retries(std::uint64_t n) noexcept {
    worker_retries_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Test injector for corruption: flip one bit of a block's stored bytes,
  /// bypassing the I/O counters and the checksum map — exactly what a torn
  /// write or a decayed cell does to a device.  Virtual so a composite
  /// device can route the flip to the owning member's raw bytes.
  virtual void corrupt_bit(BlockId block, std::size_t bit);

  /// Recovery hook: rebuild allocator state on a device whose *contents*
  /// survived a process death (FileBlockDevice reopened over its file).
  /// Grows the device to `size_blocks` and marks exactly the `live` extents
  /// allocated; everything else returns to the free list, and checksum
  /// entries outside the live extents are dropped.  Call on a fresh device
  /// before any allocation.
  void restore(std::uint64_t size_blocks, std::span<const BlockRange> live);

 protected:
  virtual void do_read(BlockId block, std::span<std::byte> out) = 0;
  virtual void do_write(BlockId block, std::span<const std::byte> in) = 0;
  /// Batched transfers; the base implementations loop over do_read/do_write
  /// block by block.  Concrete devices override them with a genuinely
  /// vectored path (single pread/pwrite, single lock acquisition).
  virtual void do_read_blocks(BlockId first, std::uint64_t count,
                              std::span<std::byte> out);
  virtual void do_write_blocks(BlockId first, std::uint64_t count,
                               std::span<const std::byte> in);
  /// Called when the device grows to `new_size_blocks` blocks.
  virtual void do_grow(std::uint64_t new_size_blocks) = 0;
  /// Called by deallocate before an extent returns to the free list.  A
  /// backend with in-flight write-behind (UringBlockDevice) drains writes
  /// overlapping the range here so a recycled extent can never be clobbered
  /// by a stale completion.
  virtual void do_discard(const BlockRange& range) noexcept { (void)range; }
  /// Called once per transient-fault retry with the first untransferred
  /// block of the retried request.  A composite device overrides this to
  /// attribute facade-level retries to the member shard that owns the block.
  virtual void note_retry(BlockId first_failed) noexcept {
    (void)first_failed;
  }
  /// Invalidate any cached copies of [first, first + count) — for subclasses
  /// that mutate storage behind the counting layer (corruption routing).
  void invalidate_cache_range(BlockId first, std::uint64_t count) noexcept;

 private:
  /// Outcome of consulting the fault injector for a `count`-I/O request.
  struct FaultDecision {
    std::uint64_t allowed = 0;  ///< I/Os that may proceed before the fault
    bool fires = false;         ///< a fault fires after `allowed` transfers
    bool transient = false;     ///< whether that fault is retryable
  };

  void check_range(BlockId first, std::uint64_t count, std::size_t span_bytes,
                   const char* op) const;
  /// Run the armed schedule for a `count`-I/O request: how many of the I/Os
  /// may proceed (charging the schedule for them), and whether — and how — a
  /// fault fires on the next attempt.
  [[nodiscard]] FaultDecision fault_check(std::uint64_t count);
  /// Shared transfer cores: validation done by the caller; these run the
  /// fault schedule, the bounded transient retry loop, the counters and
  /// (for reads) checksum verification.
  void read_core(const char* op, BlockId first, std::uint64_t count,
                 std::span<std::byte> out);
  void write_core(const char* op, BlockId first, std::uint64_t count,
                  std::span<const std::byte> in);
  void record_sums(BlockId first, std::uint64_t count,
                   std::span<const std::byte> in);
  void verify_sums(BlockId first, std::uint64_t count,
                   std::span<const std::byte> data) const;
  void backoff_sleep(std::uint64_t attempt) const;

 protected:
  /// Sidecar checksum persistence (FileBlockDevice uses these to survive
  /// clean restarts; a killed process simply loses the map, and unverified
  /// reads are the safe degradation).
  void save_sums(const std::string& path) const;
  void load_sums(const std::string& path);
  /// The sidecar file format, shared with ShardedBlockDevice's per-member
  /// sidecars: count, then (block, len, sum) triples.  Best-effort — a write
  /// failure removes the file, a torn read yields an empty vector; losing a
  /// sidecar only loses verification.  An empty entry set removes the file.
  static void write_sums_file(const std::string& path,
                              std::span<const SumEntry> entries);
  [[nodiscard]] static std::vector<SumEntry> read_sums_file(
      const std::string& path);

 private:
  /// Checksum of one block as last written: FNV-1a over the `len`-byte
  /// prefix that the write actually transferred.
  struct BlockSum {
    std::uint32_t len = 0;
    std::uint64_t sum = 0;
  };

  /// Per-thread cache-hit tally for take_thread_cache_hits(); thread-owned,
  /// so no synchronization.  Shared across BlockDevice instances on purpose —
  /// a query runs against one device at a time, and a sharded facade's
  /// members all credit the same querying thread.
  static thread_local std::uint64_t thread_cache_hits_;

  std::size_t block_bytes_;
  std::atomic<std::uint64_t> size_blocks_{0};
  std::uint64_t allocated_blocks_ = 0;
  // Free extents keyed by first block, value = extent length.  Adjacent
  // extents are coalesced on deallocate.
  std::map<BlockId, std::uint64_t> free_extents_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> worker_retries_{0};
  // Fast path: one relaxed-ish load when disarmed.  The schedule state is
  // mutex-guarded so concurrent transfers charge it exactly once each.
  std::atomic<bool> fault_armed_{false};
  std::mutex fault_mu_;
  FaultSchedule schedule_;
  std::uint64_t fault_countdown_ = 0;
  std::uint64_t fault_burst_left_ = 0;
  std::uint64_t fault_attempts_ = 0;  // attempted I/Os (kEveryNth / kProbabilistic)
  FaultPolicy fault_policy_;
  // Sidecar page map: block -> checksum of its last write.  Guarded by its
  // own mutex (transfers of disjoint blocks run concurrently).
  std::atomic<bool> checksums_{false};
  std::atomic<bool> track_sums_{false};
  mutable std::mutex sum_mu_;
  std::map<BlockId, BlockSum> sums_;
  std::map<BlockId, BlockSum> dirty_sums_;  // guarded by sum_mu_
  BlockCache* cache_ = nullptr;
};

/// RAII ownership of a raw extent outside an EmVector — the recovery and
/// checkpoint layers juggle BlockRanges directly, and this guard keeps them
/// leak-free when an exception unwinds between allocate and hand-off.
class ExtentGuard {
 public:
  ExtentGuard() noexcept = default;
  ExtentGuard(BlockDevice& dev, BlockRange range) noexcept
      : dev_(&dev), range_(range) {}
  ~ExtentGuard() {
    if (dev_ != nullptr) dev_->deallocate(range_);
  }

  ExtentGuard(ExtentGuard&& o) noexcept
      : dev_(std::exchange(o.dev_, nullptr)),
        range_(std::exchange(o.range_, BlockRange{})) {}
  ExtentGuard& operator=(ExtentGuard&& o) noexcept {
    if (this != &o) {
      if (dev_ != nullptr) dev_->deallocate(range_);
      dev_ = std::exchange(o.dev_, nullptr);
      range_ = std::exchange(o.range_, BlockRange{});
    }
    return *this;
  }
  ExtentGuard(const ExtentGuard&) = delete;
  ExtentGuard& operator=(const ExtentGuard&) = delete;

  [[nodiscard]] const BlockRange& range() const noexcept { return range_; }
  /// Transfer the extent out of the guard (it will not be deallocated).
  BlockRange release() noexcept {
    dev_ = nullptr;
    return std::exchange(range_, BlockRange{});
  }

 private:
  BlockDevice* dev_ = nullptr;
  BlockRange range_;
};

/// RAM-backed simulator device.  Blocks are lazily materialized so a large
/// address space costs memory only for blocks actually written.
class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(std::size_t block_bytes);
  ~MemoryBlockDevice() override;

  /// Pages live in MAP_SHARED anonymous arenas, so a forked worker's writes
  /// land in memory the parent sees.  prepare_fork materializes every page
  /// up front — the page *table* (blocks_) is ordinary copy-on-write memory,
  /// so children must never need to install a new page pointer.
  [[nodiscard]] bool fork_safe() const noexcept override { return true; }
  void prepare_fork() override;

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  /// One mmap'd MAP_SHARED | MAP_ANONYMOUS chunk; pages are bump-allocated
  /// from it and returned only when the device is destroyed (like the old
  /// per-page heap allocations, which also lived until destruction).
  struct Arena {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    std::size_t used = 0;
  };

  // Locked copy loops; `mu_` is held shared during transfers (they touch
  // disjoint blocks) and exclusively while do_grow resizes the page table.
  void read_one(BlockId block, std::span<std::byte> out) const;
  void write_one(BlockId block, std::span<const std::byte> in);
  /// Install a shared-arena page for `block` (idempotent).  Serialized by
  /// `arena_mu_`, acquired after the shared transfer lock — first writes to
  /// distinct blocks race on the bump pointer, not on the transfers.
  std::byte* materialize(BlockId block);

  mutable std::shared_mutex mu_;
  std::vector<std::byte*> blocks_;  // nullptr = never written (reads as zero)
  std::mutex arena_mu_;
  std::vector<Arena> arenas_;
};

/// File-backed device for wall-clock experiments and crash-recoverable runs.
/// Uses positional reads and writes on a regular file (pread/pwrite are
/// thread-safe by construction); the file is removed on destruction unless
/// `keep_file` was requested.  With `preserve_contents`, an existing file is
/// opened without truncation (and a checksum sidecar, if one was saved, is
/// reloaded) — pair with restore() to resume a checkpointed run.
class FileBlockDevice final : public BlockDevice {
 public:
  FileBlockDevice(std::string path, std::size_t block_bytes,
                  bool keep_file = false, bool preserve_contents = false);
  ~FileBlockDevice() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string sidecar_path() const { return path_ + ".sums"; }

  /// Positional I/O on a shared fd is fork-safe; growth is idempotent
  /// (ftruncate to an absolute size), so cooperating processes compose.
  [[nodiscard]] bool fork_safe() const noexcept override { return true; }

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;

 private:
  void pread_span(std::uint64_t offset, std::span<std::byte> out);
  void pwrite_span(std::uint64_t offset, std::span<const std::byte> in);

  std::string path_;
  int fd_ = -1;
  bool keep_file_;
};

}  // namespace emsplit

// uring_device.hpp — io_uring-backed file device: the native async backend.
//
// FileBlockDevice costs one blocking syscall per extent transfer.  On the
// batched/async tunings that is already far fewer calls than blocks, but the
// device never holds queue depth > 1: every write blocks until the kernel
// has copied the bytes, every read blocks from submission to completion.
// UringBlockDevice keeps a real submission/completion ring instead:
//
//  * Writes are *write-behind with coalescing*: the bytes are copied into
//    an *open* slot buffer and the call returns — no SQE yet.  A write that
//    exactly extends an open slot's block range appends into the same
//    buffer, so the sequential extent streams every pass emits (run
//    formation, merge output, bucket appends) collapse into slot-sized
//    transfers before the kernel ever sees them.  A slot is *sealed* (its
//    SQE pushed) when its window fills, when a read or conflicting write
//    overlaps it, or on drain; sealed SQEs are handed to the kernel in
//    groups (`submit_batch`) — one io_uring_enter for many large transfers,
//    which on fast backing stores is where the wall-clock goes (per-call
//    overhead, not data movement).  Completions are reaped
//    opportunistically; errors surface on the next transfer, drain, or
//    discard of the affected extent.
//  * Reads first drain any in-flight write that overlaps the requested
//    range (the ring may reorder; a read must see the bytes of the newest
//    enqueued write), then transfer positionally: a read is synchronous by
//    the device contract, so a submit-and-wait enter buys nothing over
//    pread — only direct mode routes reads through the ring (O_DIRECT
//    alignment staging).  Write-after-write to overlapping blocks drains
//    the older write for the same reason.
//  * deallocate() reaches the ring through BlockDevice::do_discard: in-flight
//    writes into the freed extent are drained before the extent can be
//    recycled, so a stale completion can never clobber a new owner.
//
// Everything above the backend is inherited unchanged — counting, fault
// injection, bounded retry, checksums, the block cache.  Writes are counted
// at submission; the model charges block movement, and the ordering rules
// above make the movement indistinguishable from the synchronous backend:
// backend choice is geometry, never output (bit-identical checksums,
// identical logical IoStats at every tuning — the PR-5 contract).
//
// Graceful fallback: when io_uring is unavailable (old kernel, seccomp,
// RLIMIT_MEMLOCK) the constructor quietly degrades to the positional
// pread/pwrite path shared with FileBlockDevice — same file format, same
// sidecar, same semantics, native() == false.  O_DIRECT is opt-in and
// probed: it engages only when the filesystem accepts the flag and
// block_bytes is a multiple of 512 (the transfer alignment O_DIRECT
// requires); transfers then go through 4096-aligned bounce buffers rounded
// to whole blocks, with short-write tails zero-filled (block tails beyond
// the written prefix are unspecified by the device contract).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "em/block_device.hpp"

namespace emsplit {

/// Ring geometry knobs (namespace scope so `= {}` default arguments work;
/// GCC cannot use a nested aggregate's member initializers from a default
/// argument of the enclosing class).
struct UringTuning {
  unsigned ring_entries = 64;  ///< submission queue size (rounded up to 2^k)
  unsigned write_behind = 16;  ///< in-flight write slots
  unsigned submit_batch = 8;   ///< queued SQEs per io_uring_enter
  bool direct = false;         ///< probe O_DIRECT (needs 512 | block_bytes)
};

class UringBlockDevice final : public BlockDevice {
 public:
  using Tuning = UringTuning;

  /// Ring geometry derived from the context's IoTuning.queue_depth, the knob
  /// that already sizes every stream's in-flight window: depth d gives
  /// 8*(d+1) write-behind slots (clamped to [8, 32]).
  [[nodiscard]] static Tuning tuned(std::size_t queue_depth,
                                    bool direct = false) {
    Tuning t;
    const std::size_t slots =
        std::min<std::size_t>(32, std::max<std::size_t>(8, 8 * (queue_depth + 1)));
    t.write_behind = static_cast<unsigned>(slots);
    t.submit_batch = t.write_behind / 2;
    t.ring_entries = 2 * t.write_behind;
    t.direct = direct;
    return t;
  }

  UringBlockDevice(std::string path, std::size_t block_bytes,
                   Tuning tuning = {}, bool keep_file = false,
                   bool preserve_contents = false);
  ~UringBlockDevice() override;

  /// True iff this kernel/process can set up an io_uring at all (one-time
  /// probe; cheap after the first call).
  [[nodiscard]] static bool uring_supported() noexcept;

  /// True when the ring is live; false on the pread/pwrite fallback path.
  [[nodiscard]] bool native() const noexcept { return ring_fd_ >= 0; }
  /// True when transfers bypass the page cache (O_DIRECT engaged).
  [[nodiscard]] bool direct_io() const noexcept { return direct_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string sidecar_path() const { return path_ + ".sums"; }

  /// Buffered mode is fork-safe: children never drive the parent's ring —
  /// child_after_fork pins them to positional pread/pwrite on the shared fd
  /// (the same path the no-ring fallback uses), and prepare_fork drains
  /// write-behind so children read settled bytes.  Direct mode is not: the
  /// positional fallback moves unaligned user spans, which O_DIRECT rejects.
  [[nodiscard]] bool fork_safe() const noexcept override { return !direct_; }
  void prepare_fork() override;
  void child_after_fork() noexcept override;

 protected:
  void do_read(BlockId block, std::span<std::byte> out) override;
  void do_write(BlockId block, std::span<const std::byte> in) override;
  void do_read_blocks(BlockId first, std::uint64_t count,
                      std::span<std::byte> out) override;
  void do_write_blocks(BlockId first, std::uint64_t count,
                       std::span<const std::byte> in) override;
  void do_grow(std::uint64_t new_size_blocks) override;
  void do_discard(const BlockRange& range) noexcept override;

 private:
  struct Slot {
    std::byte* buf = nullptr;    ///< slot buffer (aligned when direct)
    std::size_t buf_bytes = 0;
    BlockId first = 0;           ///< blocks covered by the buffered write
    std::uint64_t count = 0;
    std::uint64_t file_off = 0;
    std::uint32_t len = 0;       ///< total bytes of the write
    std::uint32_t done = 0;      ///< bytes confirmed by completions
    bool open = false;           ///< coalescing window, SQE not yet pushed
    bool in_flight = false;      ///< SQE pushed, completion outstanding
  };

  void setup_ring(unsigned entries);
  void teardown_ring() noexcept;
  /// Push one SQE (caller holds mu_, SQ known non-full).
  void push_sqe(unsigned opcode, std::byte* addr, std::uint32_t len,
                std::uint64_t file_off, std::uint64_t user_data);
  [[nodiscard]] unsigned sq_space() const noexcept;
  /// io_uring_enter submitting everything queued, waiting for >= `wait_for`
  /// completions; returns completions reaped.  `ignore` suppresses write
  /// errors wholly inside that range (discarded extents).
  unsigned enter_and_reap(unsigned wait_for, const BlockRange* ignore);
  void process_cqe(std::uint64_t user_data, std::int32_t res,
                   const BlockRange* ignore);
  void drain_writes(const BlockRange* ignore);
  void wait_overlapping(BlockId first, std::uint64_t count,
                        const BlockRange* ignore = nullptr);
  /// Close a coalescing window: push the slot's SQE (possibly triggering a
  /// batch submit).  The slot moves open -> in_flight.
  void seal_slot(unsigned idx);
  [[nodiscard]] unsigned acquire_slot();
  void rethrow_pending();
  /// Submit one synchronous op (read, or an oversized write) and wait for its
  /// completion, retrying -EINTR/-EAGAIN.  Returns res >= 0; throws on error.
  std::int32_t submit_sync(unsigned opcode, std::byte* addr, std::uint32_t len,
                           std::uint64_t file_off, const char* what);

  void ring_write(BlockId first, std::uint64_t count,
                  std::span<const std::byte> in);
  void ring_read(BlockId first, std::uint64_t count, std::span<std::byte> out);

  std::string path_;
  int fd_ = -1;
  bool keep_file_;
  bool direct_ = false;
  Tuning tuning_;
  /// Set inside a forked worker: transfers take the positional branch and
  /// never touch the inherited ring (whose queues belong to the parent).
  bool forked_child_ = false;

  // Ring state (valid iff ring_fd_ >= 0), all guarded by mu_.
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_base_ = nullptr;
  unsigned sq_entries_ = 0;

  using AlignedBuf = std::unique_ptr<std::byte[], void (*)(std::byte*)>;

  std::mutex mu_;
  std::vector<Slot> slots_;
  std::size_t slot_bytes_ = 0;                  // capacity of each slot buffer
  std::vector<std::byte> slot_storage_;         // buffered mode backing
  AlignedBuf aligned_storage_{nullptr, +[](std::byte*) {}};  // direct backing
  std::vector<unsigned> free_slots_;
  unsigned queued_ = 0;      ///< SQEs pushed since the last enter
  unsigned inflight_ = 0;    ///< sealed write slots awaiting completion
  unsigned open_count_ = 0;  ///< open coalescing windows (no SQE yet)
  std::size_t seal_cursor_ = 0;  ///< round-robin victim for slot starvation
  std::byte* sync_buf_ = nullptr;       ///< direct-mode staging for sync ops
  std::int32_t sync_result_ = 0;        ///< completion res of the sync op
  bool sync_result_valid_ = false;
  std::exception_ptr pending_error_;    ///< first unreported write error
};

}  // namespace emsplit

// thread_pool.hpp — the shared CPU worker pool behind parallel kernels.
//
// One pool serves a whole Context (created by set_cpu_tuning), the CPU-side
// sibling of the IoPipeline.  Its only primitive is run(): execute fn(i) for
// every index i in [0, ntasks), with the calling thread participating, and
// return when all of them have finished.  Task indices are claimed under the
// pool mutex in increasing order, so a batch of shard sorts starts in shard
// order; completion order is of course scheduler-dependent, which is why
// every parallel kernel in this library is written so that *results* never
// depend on which thread ran which index (docs/model.md, "CPU parallelism
// and the determinism contract").
//
// Exceptions thrown by tasks are captured per index; after the batch
// barrier, run() rethrows the one with the smallest task index.  That makes
// error behaviour deterministic too: the surfaced exception is the same one
// a serial left-to-right loop would have hit first.
//
// The pool never touches the block device or the MemoryBudget — I/O stays on
// the main thread (or the IoPipeline worker), and budget reservations are
// made by the caller before dispatch.  Tasks only read and write memory
// handed to them by the caller, and run() is a full happens-before barrier
// in both directions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace emsplit {

class ThreadPool {
 public:
  /// Spawns `workers` threads.  A pool serving CpuTuning{threads} holds
  /// threads - 1 workers: the caller of run() is the remaining lane.
  explicit ThreadPool(std::size_t workers);
  /// Waits out any batch in flight, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }
  /// Execution lanes available to run(): the workers plus the caller.
  [[nodiscard]] std::size_t lanes() const noexcept {
    return workers_.size() + 1;
  }

  /// Run fn(i) for every i in [0, ntasks); the calling thread participates.
  /// Indices are claimed in increasing order.  If any task throws, the
  /// exception with the smallest task index is rethrown after the barrier.
  /// Not reentrant: tasks must not call run() on the same pool.
  void run(std::size_t ntasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claim-and-execute loop shared by workers and the caller.  Returns when
  /// the current batch has no unclaimed tasks left.
  void work_on_batch();

  std::mutex mu_;
  std::condition_variable batch_ready_;  // signalled on run() / stop
  std::condition_variable batch_done_;   // signalled when pending_ hits 0
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t ntasks_ = 0;
  std::size_t next_ = 0;     // next unclaimed task index
  std::size_t pending_ = 0;  // tasks not yet finished
  std::uint64_t generation_ = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn over [0, ntasks) on `pool`, or serially when pool is null (the
/// CpuTuning{threads = 1} configuration has no pool at all).
inline void run_parallel(ThreadPool* pool, std::size_t ntasks,
                         const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < ntasks; ++i) fn(i);
    return;
  }
  pool->run(ntasks, fn);
}

}  // namespace emsplit

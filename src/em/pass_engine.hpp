// pass_engine.hpp — one lifecycle for every linear pass in the stack.
//
// Every algorithm in this repository — merge sort, the Aggarwal–Vitter
// multi-partition, distribution sort, intermixed selection, the §5
// splitters — is analyzed as a sequence of *linear passes*, and that is the
// unit memory, parallelism, checkpointing and cost attribution attach to.
// Before this header each algorithm hand-wove that lifecycle (stream setup,
// budget reservation, pool dispatch, journal publish/resume, phase scoping)
// itself; the pass engine owns it once:
//
//   * PassPlan      — the declarative identity of a job: a display name and
//                     the checkpoint fingerprint its passes publish under.
//   * PassRunner    — runs one pass under a uniform envelope: a PhaseProfile
//                     scope, an IoStats delta (retry-aware — retries travel
//                     in the snapshot next to the base counts), wall time and
//                     thread width, emitted as a PassTrace record to the
//                     context's trace sink.  The envelope performs no I/O of
//                     its own, so a traced run is bit-identical to an
//                     untraced one — the determinism contract (docs/model.md)
//                     threads straight through.
//   * PassChain     — the sort-shaped checkpoint lifecycle: a linear chain of
//                     passes where each pass's output supersedes its
//                     predecessor.  Owns resume, ExtentGuard-protected
//                     publish, and the final take.  Without a journal it
//                     degrades to plain moves — the seed code path.
//   * DistributionCheckpoint — the worklist-shaped lifecycle: one root pass
//                     fans out into independent items (buckets) completed in
//                     any order, each published as it finishes.
//   * LaneScratch   — optional per-kernel scratch behind MemoryBudget::
//                     try_reserve with the serial-fallback convention every
//                     parallel kernel uses: no room (or no pool) → empty
//                     buffer → caller's serial path.
//
// The engine is the single seam future observability / sharding work lands
// on (ROADMAP.md "Open items").
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "em/checkpoint.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/io_stats.hpp"
#include "em/memory_budget.hpp"
#include "em/phase_profile.hpp"

namespace emsplit {

/// The declarative identity of one multi-pass job.
struct PassPlan {
  /// Display name grouping this job's trace records ("sort", "mpart", ...).
  const char* job = "job";
  /// Checkpoint fingerprint the job's passes publish under; 0 when the job
  /// is not checkpointable (only consulted next to a non-null journal).
  std::uint64_t fingerprint = 0;
};

/// One completed (or resumed) pass, as the engine records it.
struct PassTrace {
  std::string job;        ///< PassPlan::job
  std::string pass;       ///< pass label, e.g. "sort/merge-pass"
  std::uint64_t index = 0;  ///< 1-based position within the job
  IoStats io;             ///< I/O delta of the pass, retries included
  std::uint64_t bytes = 0;  ///< io.total() * block size
  double seconds = 0.0;   ///< wall time of the pass
  std::size_t threads = 1;  ///< execution lanes configured during the pass
  bool resumed = false;   ///< true: replayed from the journal, not re-run
  /// Per-shard I/O deltas of the pass, index-aligned with the sharded
  /// device's members and partitioning `io`'s member sum exactly.  Empty on
  /// an unsharded device.
  std::vector<IoStats> shard_io;
  /// Shard skew of the pass: max over members of that member's I/O count,
  /// divided by the mean over members (so 1.0 = perfectly balanced, D =
  /// everything on one member).  0.0 on an unsharded device; 1.0 for a
  /// sharded pass that performed no I/O.
  double balance = 0.0;
  /// Peak data-dependent working set the pass reported through
  /// Context::note_pass_hwm (0 for passes whose footprint is static — the
  /// budget's peak() already covers those).
  std::uint64_t hwm_bytes = 0;
  /// Per-worker deltas of a distributed pass (Context::note_pass_workers),
  /// partitioning `io` exactly the way shard_io partitions the member sum.
  /// Empty for single-process passes.
  std::vector<PassWorkerIo> worker_io;
  /// Structured supervision events of the pass (Context::note_supervision):
  /// worker retries, timeouts, corrupt frames, give-ups, degradations.
  /// Empty on a failure-free pass.
  std::vector<SupervisionEvent> supervision;
};

/// Sink for PassTrace records.  Attach one to a Context (set_pass_trace) and
/// every engine-run pass appends a row; detached (the default) the engine
/// records nothing.  Main-thread only, like PhaseProfile.
class PassTraceLog {
 public:
  void record(PassTrace trace);
  [[nodiscard]] const std::vector<PassTrace>& rows() const noexcept {
    return rows_;
  }
  void reset();

  /// Sum of the base I/O counts over all non-resumed rows.
  [[nodiscard]] IoStats total_io() const noexcept;

 private:
  std::vector<PassTrace> rows_;
};

/// Runs the passes of one job under the uniform envelope.  Construct one per
/// job invocation; `run` executes a pass body and records its trace, whether
/// the body returns or throws (a faulted pass is still accounted).
class PassRunner {
 public:
  PassRunner(Context& ctx, PassPlan plan) : ctx_(&ctx), plan_(plan) {}

  PassRunner(const PassRunner&) = delete;
  PassRunner& operator=(const PassRunner&) = delete;

  [[nodiscard]] Context& ctx() const noexcept { return *ctx_; }
  [[nodiscard]] const PassPlan& plan() const noexcept { return plan_; }

  /// Execute one pass: opens a PhaseProfile scope under `label`, snapshots
  /// the device counters and the clock, runs `fn`, and emits a PassTrace.
  /// The envelope performs no I/O and makes no geometry decision, so wrapped
  /// and unwrapped runs are bit-identical.
  template <typename Fn>
  auto run(const char* label, Fn&& fn) {
    Scope scope(*this, label);
    return std::forward<Fn>(fn)();
  }

  /// Record that the journal already held `passes` completed passes for this
  /// job (one trace row, `resumed = true`), keeping the pass index honest.
  void note_resumed(const char* label, std::uint64_t passes);

 private:
  class Scope {
   public:
    Scope(PassRunner& runner, const char* label)
        : runner_(runner),
          label_(label),
          phase_(runner.ctx_->profile(), label),
          index_(++runner.seq_),
          start_io_(runner.ctx_->io()),
          start_shards_(runner.ctx_->shard_stats()),
          start_(std::chrono::steady_clock::now()) {
      // Stale high-water marks, worker rows or supervision events from
      // outside any pass must not leak into this pass's row.
      (void)runner.ctx_->take_pass_hwm();
      (void)runner.ctx_->take_pass_workers();
      (void)runner.ctx_->take_supervision();
    }

    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PassRunner& runner_;
    const char* label_;
    ScopedPhase phase_;
    std::uint64_t index_;
    IoStats start_io_;
    std::vector<IoStats> start_shards_;
    std::chrono::steady_clock::time_point start_;
  };

  Context* ctx_;
  PassPlan plan_;
  std::uint64_t seq_ = 0;
};

/// Sort-shaped checkpoint lifecycle: passes form a linear chain, each pass's
/// output (an extent + run offsets) superseding its predecessor's.  With a
/// journal attached, each installed pass is published under the plan's
/// fingerprint via an ExtentGuard (a failed journal append frees the pass
/// instead of leaking it), the chain resumes from journaled state on
/// construction, and `take` retires the job.  Without a journal every
/// operation is a plain move — exactly the seed code path.
template <EmRecord T>
class PassChain {
 public:
  /// Offsets travel as the journal stores them; on LP64 this is the same
  /// type as the algorithms' std::vector<std::size_t>.
  using Offsets = std::vector<std::uint64_t>;

  PassChain(PassRunner& runner, const char* resume_label)
      : ctx_(&runner.ctx()),
        ckpt_(ctx_->checkpoint()),
        fp_(runner.plan().fingerprint) {
    if (ckpt_ == nullptr) return;
    if (auto st = ckpt_->resume_sort(fp_)) {
      pass_ = st->pass;
      data_ = EmVector<T>::adopt(*ctx_, st->extent, st->size, /*owning=*/false);
      offsets_ = std::move(st->offsets);
      resumed_ = true;
      runner.note_resumed(resume_label, pass_);
    }
  }

  /// True when journaled state was adopted; the caller skips the passes the
  /// journal already holds (the chain's `data`/`offsets` are the resume
  /// point).
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  [[nodiscard]] const EmVector<T>& data() const noexcept { return data_; }
  /// Mutable head access for in-place passes (e.g. distribution sort's final
  /// segment sort, which rewrites the installed extent block for block).
  [[nodiscard]] EmVector<T>& data_mut() noexcept { return data_; }
  [[nodiscard]] const Offsets& offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::uint64_t pass() const noexcept { return pass_; }

  /// Install the next pass's output as the chain head.  Journaled: the
  /// extent moves vector → guard → journal, and the chain keeps a non-owning
  /// view (journal ownership is what keeps checkpointed blocks alive across
  /// a mid-pass unwind).  Unjournaled: plain moves.
  void install(EmVector<T> next, Offsets offsets) {
    ++pass_;
    if (ckpt_ == nullptr) {
      data_ = std::move(next);
      offsets_ = std::move(offsets);
      return;
    }
    const std::size_t size = next.size();
    ExtentGuard extent(ctx_->device(), next.release_extent());
    ckpt_->publish_sort_pass(fp_, pass_, extent.range(), size, offsets);
    data_ = EmVector<T>::adopt(*ctx_, extent.release(), size, /*owning=*/false);
    offsets_ = std::move(offsets);
  }

  /// Hand the final pass's output to the caller (owning) and retire the job.
  [[nodiscard]] EmVector<T> take() {
    if (ckpt_ == nullptr) return std::move(data_);
    const std::size_t size = data_.size();
    return EmVector<T>::adopt(*ctx_, ckpt_->take_sort_extent(fp_), size,
                              /*owning=*/true);
  }

 private:
  Context* ctx_;
  CheckpointJournal* ckpt_;
  std::uint64_t fp_;
  EmVector<T> data_;
  Offsets offsets_;
  std::uint64_t pass_ = 0;
  bool resumed_ = false;
};

/// One scratch bucket a distribution pass produced for further recursion:
/// `scratch` holds the bucket's records, destined for output records
/// [out_lo, out_lo + scratch.size()), with the enclosed split ranks made
/// relative to the bucket.
template <EmRecord T>
struct PendingBucket {
  EmVector<T> scratch;
  std::vector<std::uint64_t> ranks;
  std::uint64_t out_lo = 0;
};

/// Worklist-shaped checkpoint lifecycle (multi-partition's root): one root
/// pass produces an output extent plus a list of independent pending items;
/// each item's completion is published individually, so a crash repays only
/// the interrupted item.  Requires a journal (the unjournaled partition root
/// never constructs one — it is a single recursive pass).
template <EmRecord T>
class DistributionCheckpoint {
 public:
  DistributionCheckpoint(PassRunner& runner, const char* resume_label)
      : ctx_(&runner.ctx()),
        ckpt_(ctx_->checkpoint()),
        fp_(runner.plan().fingerprint) {
    st_ = ckpt_->resume_part(fp_);
    if (st_.has_value()) {
      std::uint64_t done = 1;  // the root pass itself
      for (const auto& b : st_->buckets) done += b.done ? 1 : 0;
      runner.note_resumed(resume_label, done);
    }
  }

  [[nodiscard]] bool resumed() const noexcept { return st_.has_value(); }

  /// Publish the completed root pass: the output extent, every pending
  /// bucket's extent and the spans realized so far move to the journal in
  /// one entry.  Extents leave their vectors here but reach journal
  /// ownership only inside publish — ExtentGuards cover the window, so a
  /// failed append (or an allocation failure while assembling the entry)
  /// frees every bucket instead of leaking it.
  void publish_root(EmVector<T> out, std::uint64_t n,
                    std::vector<PendingBucket<T>> pending,
                    const std::vector<CkptSpan>& spans) {
    std::vector<ExtentGuard> guards;
    guards.reserve(pending.size() + 1);
    std::vector<CheckpointJournal::PartBucket> buckets;
    buckets.reserve(pending.size());
    for (auto& pb : pending) {
      CheckpointJournal::PartBucket b;
      b.size = pb.scratch.size();
      guards.emplace_back(ctx_->device(), pb.scratch.release_extent());
      b.extent = guards.back().range();
      b.out_lo = pb.out_lo;
      b.ranks = std::move(pb.ranks);
      buckets.push_back(std::move(b));
    }
    CheckpointJournal::PartState fresh;
    guards.emplace_back(ctx_->device(), out.release_extent());
    fresh.out = guards.back().range();
    fresh.n = n;
    fresh.spans = spans;
    fresh.buckets = buckets;
    ckpt_->publish_part_root(fp_, fresh.out, n, std::move(buckets), spans);
    for (auto& g : guards) (void)g.release();  // the journal owns them now
    st_ = std::move(fresh);
  }

  /// The journaled state: output extent, spans realized so far, and the
  /// bucket worklist (completed items flagged `done`).
  [[nodiscard]] const CheckpointJournal::PartState& state() const noexcept {
    return *st_;
  }

  /// Non-owning view over the journal-held output extent.
  [[nodiscard]] EmVector<T> adopt_out() const {
    return EmVector<T>::adopt(*ctx_, st_->out,
                              static_cast<std::size_t>(st_->n),
                              /*owning=*/false);
  }

  /// Non-owning view over pending item `q`'s scratch extent.
  [[nodiscard]] EmVector<T> adopt_item(std::size_t q) const {
    const auto& b = st_->buckets[q];
    return EmVector<T>::adopt(*ctx_, b.extent,
                              static_cast<std::size_t>(b.size),
                              /*owning=*/false);
  }

  /// Publish item `q`'s completion (its realized spans, absolute positions);
  /// the journal frees the item's scratch extent.
  void publish_item_done(std::size_t q, const std::vector<CkptSpan>& spans) {
    ckpt_->publish_part_bucket_done(fp_, q, spans);
  }

  /// Hand the finished output extent to the caller and retire the job.
  [[nodiscard]] BlockRange take_out() { return ckpt_->take_part_out(fp_); }

 private:
  Context* ctx_;
  CheckpointJournal* ckpt_;
  std::uint64_t fp_;
  std::optional<CheckpointJournal::PartState> st_;
};

/// Optional scratch for a parallel kernel, following the serial-fallback
/// convention every pool kernel in the stack uses: the buffer exists only
/// when the budget grants `count * sizeof(X)` bytes next to everything
/// already reserved (callers pass count = 0 when no pool is attached, so no
/// reservation is attempted at all).  An empty buffer means "run the serial
/// path" — a pure execution decision, never geometry.
template <typename X>
class LaneScratch {
 public:
  LaneScratch(Context& ctx, std::size_t count) {
    if (count == 0) return;
    res_ = ctx.budget().try_reserve(count * sizeof(X));
    if (res_.has_value()) buf_.resize(count);
  }

  [[nodiscard]] bool available() const noexcept { return !buf_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::vector<X>& vec() noexcept { return buf_; }
  [[nodiscard]] const std::vector<X>& vec() const noexcept { return buf_; }
  X& operator[](std::size_t i) noexcept { return buf_[i]; }

 private:
  std::optional<MemoryReservation> res_;
  std::vector<X> buf_;
};

/// One PassTrace row as a single-line JSON object — the `--trace=FILE`
/// JSON-lines row and the bench binaries' per-pass tag.  Always emits the
/// per-shard columns (`shards` is `[]` on an unsharded run).
[[nodiscard]] std::string pass_trace_json(const PassTrace& trace);

/// Dump a whole log as JSON-lines, one row per line.  Returns false when the
/// file could not be written (best-effort: losing a trace loses nothing but
/// observability).
bool write_pass_trace_jsonl(const PassTraceLog& log, const std::string& path);

/// Convert an algorithm's span list to the journal's representation.
template <typename Span>
std::vector<CkptSpan> to_ckpt_spans(const std::vector<Span>& spans) {
  std::vector<CkptSpan> out;
  out.reserve(spans.size());
  for (const auto& s : spans) out.push_back({s.lo, s.hi, s.sorted});
  return out;
}

}  // namespace emsplit

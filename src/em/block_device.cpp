#include "em/block_device.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "em/block_cache.hpp"
#include "em/fnv.hpp"
#include "em/posix_io.hpp"

namespace emsplit {

namespace {

/// splitmix64: the probabilistic schedule's per-attempt uniform draw.
double uniform_draw(std::uint64_t seed, std::uint64_t counter) {
  std::uint64_t z = seed + (counter + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::string fault_message(const char* op, BlockId first, std::uint64_t count,
                          std::uint64_t completed, bool transient) {
  return std::string("injected ") + (transient ? "transient" : "permanent") +
         " fault on " + op + ": blocks [" + std::to_string(first) + ", " +
         std::to_string(first + count) + "), " + std::to_string(completed) +
         "/" + std::to_string(count) + " transferred";
}

}  // namespace

BlockDevice::BlockDevice(std::size_t block_bytes) : block_bytes_(block_bytes) {
  if (block_bytes_ == 0) {
    throw std::invalid_argument("BlockDevice: block_bytes must be positive");
  }
}

BlockDevice::~BlockDevice() = default;

thread_local std::uint64_t BlockDevice::thread_cache_hits_ = 0;

std::uint64_t BlockDevice::take_thread_cache_hits() noexcept {
  const std::uint64_t hits = thread_cache_hits_;
  thread_cache_hits_ = 0;
  return hits;
}

IoStats BlockDevice::stats() const noexcept {
  IoStats s{reads_.load(std::memory_order_relaxed),
            writes_.load(std::memory_order_relaxed),
            retries_.load(std::memory_order_relaxed),
            worker_retries_.load(std::memory_order_relaxed)};
  if (cache_ != nullptr) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_evictions = cache_->evictions();
  }
  return s;
}

void BlockDevice::reset_stats() noexcept {
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  worker_retries_.store(0, std::memory_order_relaxed);
  if (cache_ != nullptr) cache_->reset_counters();
}

void BlockDevice::absorb_stats(const IoStats& delta,
                               std::span<const IoStats> per_shard) noexcept {
  (void)per_shard;  // one shard: the facade counters are the shard counters
  reads_.fetch_add(delta.reads, std::memory_order_relaxed);
  writes_.fetch_add(delta.writes, std::memory_order_relaxed);
  retries_.fetch_add(delta.retries, std::memory_order_relaxed);
  worker_retries_.fetch_add(delta.worker_retries, std::memory_order_relaxed);
}

void BlockDevice::invalidate_cache_range(BlockId first,
                                         std::uint64_t count) noexcept {
  if (cache_ != nullptr) cache_->invalidate(first, count);
}

BlockRange BlockDevice::allocate(std::uint64_t count) {
  if (count == 0) return BlockRange{};
  // First fit over the free list.
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= count) {
      BlockRange r{it->first, count};
      const BlockId rest_first = it->first + count;
      const std::uint64_t rest_count = it->second - count;
      free_extents_.erase(it);
      if (rest_count > 0) free_extents_.emplace(rest_first, rest_count);
      allocated_blocks_ += count;
      return r;
    }
  }
  // Nothing fits: grow at the end.
  const std::uint64_t old_size = size_blocks_.load(std::memory_order_relaxed);
  BlockRange r{old_size, count};
  size_blocks_.store(old_size + count, std::memory_order_relaxed);
  do_grow(old_size + count);
  allocated_blocks_ += count;
  return r;
}

void BlockDevice::deallocate(const BlockRange& range) noexcept {
  if (!range.valid() || range.count == 0) return;
  // A write-behind backend must drain in-flight writes into the extent
  // before it becomes reusable, and the cache must forget its copies — a
  // recycled block's first read must see the new owner's bytes.
  do_discard(range);
  invalidate_cache_range(range.first, range.count);
  allocated_blocks_ -= range.count;
  {
    // Drop checksum entries with the extent: a recycled block's first read
    // (before its first write) must not be judged against a dead owner's
    // checksum.
    const std::lock_guard<std::mutex> lock(sum_mu_);
    sums_.erase(sums_.lower_bound(range.first),
                sums_.lower_bound(range.first + range.count));
    dirty_sums_.erase(dirty_sums_.lower_bound(range.first),
                      dirty_sums_.lower_bound(range.first + range.count));
  }
  BlockId first = range.first;
  std::uint64_t count = range.count;
  // Coalesce with the successor extent if adjacent.
  auto next = free_extents_.lower_bound(first);
  if (next != free_extents_.end() && next->first == first + count) {
    count += next->second;
    next = free_extents_.erase(next);
  }
  // Coalesce with the predecessor extent if adjacent.
  if (next != free_extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == first) {
      first = prev->first;
      count += prev->second;
      free_extents_.erase(prev);
    }
  }
  free_extents_.emplace(first, count);
}

void BlockDevice::check_range(BlockId first, std::uint64_t count,
                              std::size_t span_bytes, const char* op) const {
  const std::uint64_t size = size_blocks();
  if (first >= size || count > size - first) {
    throw std::out_of_range(std::string("BlockDevice::") + op +
                            ": block id beyond device size");
  }
  if (span_bytes > count * block_bytes_) {
    throw std::invalid_argument(std::string("BlockDevice::") + op +
                                (count == 1
                                     ? ": buffer larger than one block"
                                     : ": buffer larger than the block range"));
  }
  if (count > 1 && span_bytes <= (count - 1) * block_bytes_) {
    throw std::invalid_argument(
        std::string("BlockDevice::") + op +
        ": buffer must cover all blocks but a suffix of the last");
  }
}

BlockDevice::FaultDecision BlockDevice::fault_check(std::uint64_t count) {
  if (!fault_armed_.load(std::memory_order_acquire)) return {count, false, false};
  const std::lock_guard<std::mutex> lock(fault_mu_);
  if (!fault_armed_.load(std::memory_order_relaxed)) return {count, false, false};
  switch (schedule_.kind) {
    case FaultSchedule::Kind::kOneShot:
      if (fault_countdown_ >= count) {
        fault_countdown_ -= count;
        return {count, false, false};
      } else {
        // The fault fires inside this request: allow the I/Os before it,
        // disarm (one-shot).
        const std::uint64_t allowed = fault_countdown_;
        fault_countdown_ = 0;
        fault_armed_.store(false, std::memory_order_relaxed);
        return {allowed, true, schedule_.transient};
      }
    case FaultSchedule::Kind::kFailThenSucceed:
      if (fault_countdown_ >= count) {
        fault_countdown_ -= count;
        return {count, false, false};
      } else {
        // One faulting *attempt* per consultation; the burst counts attempts,
        // so a retry re-enters here and consumes the next one.
        const std::uint64_t allowed = fault_countdown_;
        fault_countdown_ = 0;
        if (--fault_burst_left_ == 0) {
          fault_armed_.store(false, std::memory_order_relaxed);
        }
        return {allowed, true, schedule_.transient};
      }
    case FaultSchedule::Kind::kEveryNth: {
      if (schedule_.period == 0) return {count, false, false};
      for (std::uint64_t j = 0; j < count; ++j) {
        ++fault_attempts_;
        if (fault_attempts_ % schedule_.period == 0) {
          return {j, true, schedule_.transient};
        }
      }
      return {count, false, false};
    }
    case FaultSchedule::Kind::kProbabilistic: {
      for (std::uint64_t j = 0; j < count; ++j) {
        ++fault_attempts_;
        if (uniform_draw(schedule_.seed, fault_attempts_) <
            schedule_.probability) {
          return {j, true, schedule_.transient};
        }
      }
      return {count, false, false};
    }
  }
  return {count, false, false};
}

void BlockDevice::backoff_sleep(std::uint64_t attempt) const {
  if (fault_policy_.backoff.count() <= 0) return;
  const std::uint64_t shift = std::min<std::uint64_t>(attempt - 1, 20);
  const auto delay = std::min(
      fault_policy_.max_backoff,
      std::chrono::microseconds(fault_policy_.backoff.count() << shift));
  std::this_thread::sleep_for(delay);
}

void BlockDevice::record_sums(BlockId first, std::uint64_t count,
                              std::span<const std::byte> in) {
  const bool track = track_sums_.load(std::memory_order_acquire);
  const std::lock_guard<std::mutex> lock(sum_mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, in.size() - off);
    const BlockSum s{static_cast<std::uint32_t>(len),
                     fnv1a(in.subspan(off, len))};
    sums_[first + i] = s;
    if (track) dirty_sums_[first + i] = s;
  }
}

std::vector<SumEntry> BlockDevice::take_dirty_sums() {
  const std::lock_guard<std::mutex> lock(sum_mu_);
  std::vector<SumEntry> out;
  out.reserve(dirty_sums_.size());
  for (const auto& [block, s] : dirty_sums_) {
    out.push_back(SumEntry{block, s.len, s.sum});
  }
  dirty_sums_.clear();
  return out;
}

void BlockDevice::merge_sums(std::span<const SumEntry> entries) {
  const std::lock_guard<std::mutex> lock(sum_mu_);
  for (const SumEntry& e : entries) {
    sums_[e.block] = BlockSum{e.len, e.sum};
  }
}

std::vector<SumEntry> BlockDevice::export_sums() const {
  const std::lock_guard<std::mutex> lock(sum_mu_);
  std::vector<SumEntry> out;
  out.reserve(sums_.size());
  for (const auto& [block, s] : sums_) {
    out.push_back(SumEntry{block, s.len, s.sum});
  }
  return out;
}

void BlockDevice::verify_sums(BlockId first, std::uint64_t count,
                              std::span<const std::byte> data) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, data.size() - off);
    BlockSum expect;
    {
      const std::lock_guard<std::mutex> lock(sum_mu_);
      const auto it = sums_.find(first + i);
      if (it == sums_.end()) continue;  // never written (or recycled): trusted
      expect = it->second;
    }
    // A read shorter than the recorded write cannot be verified — the hash
    // covers bytes this transfer did not move.
    if (len < expect.len) continue;
    if (fnv1a(data.subspan(off, expect.len)) != expect.sum) {
      throw CorruptBlock(
          "checksum mismatch on block " + std::to_string(first + i) +
              " (torn or corrupted since last write)",
          first + i);
    }
  }
}

void BlockDevice::read_core(const char* op, BlockId first, std::uint64_t count,
                            std::span<std::byte> out) {
  std::uint64_t done = 0;
  std::uint64_t attempt = 0;
  const bool verify = checksums();
  for (;;) {
    const std::uint64_t want = count - done;
    const auto span = out.subspan(static_cast<std::size_t>(done) * block_bytes_);
    const FaultDecision d = fault_check(want);
    if (d.allowed > 0) {
      // The blocks before a mid-batch fault transfer (and count) normally;
      // the faulting block itself moves no bytes.
      const std::size_t bytes =
          d.allowed == want ? span.size()
                            : static_cast<std::size_t>(d.allowed) * block_bytes_;
      const auto sub = span.first(bytes);
      // A cache hit serves the bytes without a backend transfer, but the
      // read is still counted: the model charges block movement into working
      // memory, wherever the bytes came from.  Cached bytes are the write
      // path's own copy, so checksum verification would be a tautology and
      // is skipped (corruption injection invalidates the cached block, so
      // detection is preserved).
      const bool hit =
          cache_ != nullptr && cache_->read(first + done, d.allowed, sub);
      if (!hit) {
        do_read_blocks(first + done, d.allowed, sub);
        if (cache_ != nullptr) cache_->note_read(first + done, d.allowed, sub);
      } else {
        thread_cache_hits_ += d.allowed;
      }
      reads_.fetch_add(d.allowed, std::memory_order_relaxed);
      if (verify && !hit) verify_sums(first + done, d.allowed, sub);
      done += d.allowed;
    }
    if (!d.fires) return;
    // Transient faults are retried (resuming at the first untransferred
    // block, so base counts match the fault-free run); permanent faults and
    // exhausted retry budgets surface with the request attached.
    if (d.transient && attempt < fault_policy_.max_retries) {
      ++attempt;
      retries_.fetch_add(1, std::memory_order_relaxed);
      note_retry(first + done);
      backoff_sleep(attempt);
      continue;
    }
    throw DeviceFault(fault_message(op, first, count, done, d.transient),
                      d.transient, "read", first, count, done);
  }
}

void BlockDevice::write_core(const char* op, BlockId first,
                             std::uint64_t count,
                             std::span<const std::byte> in) {
  std::uint64_t done = 0;
  std::uint64_t attempt = 0;
  const bool track = checksums();
  for (;;) {
    const std::uint64_t want = count - done;
    const auto span = in.subspan(static_cast<std::size_t>(done) * block_bytes_);
    const FaultDecision d = fault_check(want);
    if (d.allowed > 0) {
      const std::size_t bytes =
          d.allowed == want ? span.size()
                            : static_cast<std::size_t>(d.allowed) * block_bytes_;
      const auto sub = span.first(bytes);
      do_write_blocks(first + done, d.allowed, sub);
      writes_.fetch_add(d.allowed, std::memory_order_relaxed);
      if (track) record_sums(first + done, d.allowed, sub);
      if (cache_ != nullptr) cache_->note_write(first + done, d.allowed, sub);
      done += d.allowed;
    }
    if (!d.fires) return;
    if (d.transient && attempt < fault_policy_.max_retries) {
      ++attempt;
      retries_.fetch_add(1, std::memory_order_relaxed);
      note_retry(first + done);
      backoff_sleep(attempt);
      continue;
    }
    throw DeviceFault(fault_message(op, first, count, done, d.transient),
                      d.transient, "write", first, count, done);
  }
}

void BlockDevice::read(BlockId block, std::span<std::byte> out) {
  check_range(block, 1, out.size(), "read");
  read_core("read", block, 1, out);
}

void BlockDevice::write(BlockId block, std::span<const std::byte> in) {
  check_range(block, 1, in.size(), "write");
  write_core("write", block, 1, in);
}

void BlockDevice::read_blocks(BlockId first, std::uint64_t count,
                              std::span<std::byte> out) {
  if (count == 0) {
    if (!out.empty()) {
      throw std::invalid_argument(
          "BlockDevice::read_blocks: non-empty buffer with count == 0");
    }
    return;
  }
  check_range(first, count, out.size(), "read_blocks");
  read_core("read_blocks", first, count, out);
}

void BlockDevice::write_blocks(BlockId first, std::uint64_t count,
                               std::span<const std::byte> in) {
  if (count == 0) {
    if (!in.empty()) {
      throw std::invalid_argument(
          "BlockDevice::write_blocks: non-empty buffer with count == 0");
    }
    return;
  }
  check_range(first, count, in.size(), "write_blocks");
  write_core("write_blocks", first, count, in);
}

void BlockDevice::corrupt_bit(BlockId block, std::size_t bit) {
  if (block >= size_blocks() || bit >= block_bytes_ * 8) {
    throw std::out_of_range("BlockDevice::corrupt_bit: beyond device/block");
  }
  // Uncounted raw access, checksum map deliberately untouched: the stored
  // bytes now disagree with the recorded hash, exactly like real bit rot.
  // Any cached copy is dropped — it holds the pristine bytes, and serving it
  // would mask the corruption from the verifying read.
  invalidate_cache_range(block, 1);
  std::vector<std::byte> buf(block_bytes_);
  do_read_blocks(block, 1, buf);
  buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  do_write_blocks(block, 1, buf);
}

void BlockDevice::restore(std::uint64_t size_blocks,
                          std::span<const BlockRange> live) {
  if (allocated_blocks_ != 0) {
    throw std::logic_error(
        "BlockDevice::restore: device already has live allocations");
  }
  if (cache_ != nullptr) cache_->clear();
  std::vector<BlockRange> sorted(live.begin(), live.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const BlockRange& a, const BlockRange& b) {
              return a.first < b.first;
            });
  std::uint64_t need = size_blocks;
  std::uint64_t total_live = 0;
  for (const auto& r : sorted) {
    if (!r.valid() || r.count == 0) continue;
    need = std::max(need, r.first + r.count);
    total_live += r.count;
  }
  const std::uint64_t old_size = size_blocks_.load(std::memory_order_relaxed);
  if (need > old_size) {
    size_blocks_.store(need, std::memory_order_relaxed);
    do_grow(need);
  }
  // Free list = complement of the live extents; checksums outside the live
  // extents are stale (their owners died with the old process) and dropped.
  free_extents_.clear();
  std::uint64_t cursor = 0;
  for (const auto& r : sorted) {
    if (!r.valid() || r.count == 0) continue;
    if (r.first < cursor) {
      throw std::invalid_argument(
          "BlockDevice::restore: live extents overlap");
    }
    if (r.first > cursor) free_extents_.emplace(cursor, r.first - cursor);
    cursor = r.first + r.count;
  }
  const std::uint64_t total = size_blocks_.load(std::memory_order_relaxed);
  if (cursor < total) free_extents_.emplace(cursor, total - cursor);
  allocated_blocks_ = total_live;
  {
    const std::lock_guard<std::mutex> lock(sum_mu_);
    auto it = sums_.begin();
    std::size_t li = 0;
    while (it != sums_.end()) {
      while (li < sorted.size() &&
             sorted[li].first + sorted[li].count <= it->first) {
        ++li;
      }
      const bool live_block = li < sorted.size() &&
                              it->first >= sorted[li].first &&
                              it->first < sorted[li].first + sorted[li].count;
      it = live_block ? std::next(it) : sums_.erase(it);
    }
  }
}

void BlockDevice::write_sums_file(const std::string& path,
                                  std::span<const SumEntry> entries) {
  if (entries.empty()) {
    std::remove(path.c_str());
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;  // best-effort: losing the sidecar only loses verification
  const std::uint64_t n = entries.size();
  bool ok = std::fwrite(&n, sizeof(n), 1, f) == 1;
  for (const SumEntry& e : entries) {
    if (!ok) break;
    ok = std::fwrite(&e.block, sizeof(e.block), 1, f) == 1 &&
         std::fwrite(&e.len, sizeof(e.len), 1, f) == 1 &&
         std::fwrite(&e.sum, sizeof(e.sum), 1, f) == 1;
  }
  std::fclose(f);
  if (!ok) std::remove(path.c_str());
}

std::vector<SumEntry> BlockDevice::read_sums_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::uint64_t n = 0;
  std::vector<SumEntry> loaded;
  bool ok = std::fread(&n, sizeof(n), 1, f) == 1;
  for (std::uint64_t i = 0; ok && i < n; ++i) {
    SumEntry e;
    ok = std::fread(&e.block, sizeof(e.block), 1, f) == 1 &&
         std::fread(&e.len, sizeof(e.len), 1, f) == 1 &&
         std::fread(&e.sum, sizeof(e.sum), 1, f) == 1;
    if (ok) loaded.push_back(e);
  }
  std::fclose(f);
  if (!ok) return {};  // torn sidecar: start unverified rather than miscarry
  return loaded;
}

void BlockDevice::save_sums(const std::string& path) const {
  write_sums_file(path, export_sums());
}

void BlockDevice::load_sums(const std::string& path) {
  const std::vector<SumEntry> loaded = read_sums_file(path);
  if (loaded.empty()) return;
  const std::lock_guard<std::mutex> lock(sum_mu_);
  sums_.clear();
  for (const SumEntry& e : loaded) {
    sums_.emplace(e.block, BlockSum{e.len, e.sum});
  }
}

void BlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                 std::span<std::byte> out) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, out.size() - off);
    do_read(first + i, out.subspan(off, len));
  }
}

void BlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                  std::span<const std::byte> in) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, in.size() - off);
    do_write(first + i, in.subspan(off, len));
  }
}

// ---------------------------------------------------------------------------
// MemoryBlockDevice
// ---------------------------------------------------------------------------

MemoryBlockDevice::MemoryBlockDevice(std::size_t block_bytes)
    : BlockDevice(block_bytes) {}

MemoryBlockDevice::~MemoryBlockDevice() {
  for (const Arena& a : arenas_) ::munmap(a.base, a.bytes);
}

void MemoryBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  blocks_.resize(new_size_blocks);  // lazily materialized pages
}

std::byte* MemoryBlockDevice::materialize(BlockId block) {
  const std::lock_guard<std::mutex> lock(arena_mu_);
  if (blocks_[block] != nullptr) return blocks_[block];  // lost the race
  if (arenas_.empty() ||
      arenas_.back().used + block_bytes() > arenas_.back().bytes) {
    // MAP_SHARED so a forked worker's writes reach the parent; anonymous
    // mappings come pre-zeroed, matching the sparse-read contract.
    const std::size_t bytes =
        std::max<std::size_t>(std::size_t{1} << 20, block_bytes());
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
    arenas_.push_back(Arena{static_cast<std::byte*>(p), bytes, 0});
  }
  Arena& a = arenas_.back();
  std::byte* page = a.base + a.used;
  a.used += block_bytes();
  blocks_[block] = page;
  return page;
}

void MemoryBlockDevice::prepare_fork() {
  // Exclusive lock: forking happens at a quiescent point, and materializing
  // the full table must not interleave with transfers resizing under us.
  const std::unique_lock<std::shared_mutex> lock(mu_);
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b] == nullptr) materialize(b);
  }
}

void MemoryBlockDevice::read_one(BlockId block,
                                 std::span<std::byte> out) const {
  const std::byte* page = blocks_[block];
  if (page == nullptr) {
    // Reading a never-written block yields zeroes (like a sparse file).
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), page, out.size());
}

void MemoryBlockDevice::write_one(BlockId block,
                                  std::span<const std::byte> in) {
  std::byte* page = blocks_[block];
  if (page == nullptr) page = materialize(block);
  std::memcpy(page, in.data(), in.size());
}

void MemoryBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  read_one(block, out);
}

void MemoryBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  write_one(block, in);
}

void MemoryBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                       std::span<std::byte> out) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes();
    const std::size_t len = std::min(block_bytes(), out.size() - off);
    read_one(first + i, out.subspan(off, len));
  }
}

void MemoryBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                        std::span<const std::byte> in) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes();
    const std::size_t len = std::min(block_bytes(), in.size() - off);
    write_one(first + i, in.subspan(off, len));
  }
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

FileBlockDevice::FileBlockDevice(std::string path, std::size_t block_bytes,
                                 bool keep_file, bool preserve_contents)
    : BlockDevice(block_bytes), path_(std::move(path)), keep_file_(keep_file) {
  const int flags =
      preserve_contents ? (O_RDWR | O_CREAT) : (O_RDWR | O_CREAT | O_TRUNC);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBlockDevice: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (preserve_contents) load_sums(sidecar_path());
}

FileBlockDevice::~FileBlockDevice() {
  if (keep_file_) {
    save_sums(sidecar_path());
  }
  if (fd_ >= 0) ::close(fd_);
  if (!keep_file_) {
    ::unlink(path_.c_str());
    ::unlink(sidecar_path().c_str());
  }
}

void FileBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size_blocks * block_bytes())) !=
      0) {
    throw std::runtime_error("FileBlockDevice: ftruncate failed: " +
                             std::string(std::strerror(errno)));
  }
}

void FileBlockDevice::pread_span(std::uint64_t offset,
                                 std::span<std::byte> out) {
  detail::posix_pread_span(fd_, offset, out, "FileBlockDevice");
}

void FileBlockDevice::pwrite_span(std::uint64_t offset,
                                  std::span<const std::byte> in) {
  detail::posix_pwrite_span(fd_, offset, in, "FileBlockDevice");
}

void FileBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  pread_span(block * block_bytes(), out);
}

void FileBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  pwrite_span(block * block_bytes(), in);
}

void FileBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                     std::span<std::byte> out) {
  (void)count;  // the span covers the whole extent; one positional read
  pread_span(first * block_bytes(), out);
}

void FileBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                      std::span<const std::byte> in) {
  (void)count;
  pwrite_span(first * block_bytes(), in);
}

}  // namespace emsplit

#include "em/block_device.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace emsplit {

BlockDevice::BlockDevice(std::size_t block_bytes) : block_bytes_(block_bytes) {
  if (block_bytes_ == 0) {
    throw std::invalid_argument("BlockDevice: block_bytes must be positive");
  }
}

BlockDevice::~BlockDevice() = default;

BlockRange BlockDevice::allocate(std::uint64_t count) {
  if (count == 0) return BlockRange{};
  // First fit over the free list.
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= count) {
      BlockRange r{it->first, count};
      const BlockId rest_first = it->first + count;
      const std::uint64_t rest_count = it->second - count;
      free_extents_.erase(it);
      if (rest_count > 0) free_extents_.emplace(rest_first, rest_count);
      allocated_blocks_ += count;
      return r;
    }
  }
  // Nothing fits: grow at the end.
  BlockRange r{size_blocks_, count};
  size_blocks_ += count;
  do_grow(size_blocks_);
  allocated_blocks_ += count;
  return r;
}

void BlockDevice::deallocate(const BlockRange& range) noexcept {
  if (!range.valid() || range.count == 0) return;
  allocated_blocks_ -= range.count;
  BlockId first = range.first;
  std::uint64_t count = range.count;
  // Coalesce with the successor extent if adjacent.
  auto next = free_extents_.lower_bound(first);
  if (next != free_extents_.end() && next->first == first + count) {
    count += next->second;
    next = free_extents_.erase(next);
  }
  // Coalesce with the predecessor extent if adjacent.
  if (next != free_extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == first) {
      first = prev->first;
      count += prev->second;
      free_extents_.erase(prev);
    }
  }
  free_extents_.emplace(first, count);
}

void BlockDevice::check_io(BlockId block, std::size_t span_bytes,
                           const char* op) {
  if (block >= size_blocks_) {
    throw std::out_of_range(std::string("BlockDevice::") + op +
                            ": block id beyond device size");
  }
  if (span_bytes > block_bytes_) {
    throw std::invalid_argument(std::string("BlockDevice::") + op +
                                ": buffer larger than one block");
  }
  if (fault_armed_) {
    if (fault_countdown_ == 0) {
      fault_armed_ = false;
      throw DeviceFault(std::string("injected fault on ") + op);
    }
    --fault_countdown_;
  }
}

void BlockDevice::read(BlockId block, std::span<std::byte> out) {
  check_io(block, out.size(), "read");
  do_read(block, out);
  ++stats_.reads;
}

void BlockDevice::write(BlockId block, std::span<const std::byte> in) {
  check_io(block, in.size(), "write");
  do_write(block, in);
  ++stats_.writes;
}

// ---------------------------------------------------------------------------
// MemoryBlockDevice
// ---------------------------------------------------------------------------

MemoryBlockDevice::MemoryBlockDevice(std::size_t block_bytes)
    : BlockDevice(block_bytes) {}

MemoryBlockDevice::~MemoryBlockDevice() = default;

void MemoryBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  blocks_.resize(new_size_blocks);  // lazily materialized pages
}

void MemoryBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  const auto& page = blocks_[block];
  if (page == nullptr) {
    // Reading a never-written block yields zeroes (like a sparse file).
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), page.get(), out.size());
}

void MemoryBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  auto& page = blocks_[block];
  if (page == nullptr) page = std::make_unique<std::byte[]>(block_bytes());
  std::memcpy(page.get(), in.data(), in.size());
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

FileBlockDevice::FileBlockDevice(std::string path, std::size_t block_bytes,
                                 bool keep_file)
    : BlockDevice(block_bytes), path_(std::move(path)), keep_file_(keep_file) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBlockDevice: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
  if (!keep_file_) ::unlink(path_.c_str());
}

void FileBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size_blocks * block_bytes())) !=
      0) {
    throw std::runtime_error("FileBlockDevice: ftruncate failed: " +
                             std::string(std::strerror(errno)));
  }
}

void FileBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  const auto off = static_cast<off_t>(block * block_bytes());
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBlockDevice: pread failed: " +
                               std::string(std::strerror(errno)));
    }
    if (n == 0) {  // hole beyond EOF of a sparse region: zero-fill
      std::memset(out.data() + done, 0, out.size() - done);
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  const auto off = static_cast<off_t>(block * block_bytes());
  std::size_t done = 0;
  while (done < in.size()) {
    const ssize_t n = ::pwrite(fd_, in.data() + done, in.size() - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBlockDevice: pwrite failed: " +
                               std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace emsplit

#include "em/block_device.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace emsplit {

BlockDevice::BlockDevice(std::size_t block_bytes) : block_bytes_(block_bytes) {
  if (block_bytes_ == 0) {
    throw std::invalid_argument("BlockDevice: block_bytes must be positive");
  }
}

BlockDevice::~BlockDevice() = default;

BlockRange BlockDevice::allocate(std::uint64_t count) {
  if (count == 0) return BlockRange{};
  // First fit over the free list.
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= count) {
      BlockRange r{it->first, count};
      const BlockId rest_first = it->first + count;
      const std::uint64_t rest_count = it->second - count;
      free_extents_.erase(it);
      if (rest_count > 0) free_extents_.emplace(rest_first, rest_count);
      allocated_blocks_ += count;
      return r;
    }
  }
  // Nothing fits: grow at the end.
  const std::uint64_t old_size = size_blocks_.load(std::memory_order_relaxed);
  BlockRange r{old_size, count};
  size_blocks_.store(old_size + count, std::memory_order_relaxed);
  do_grow(old_size + count);
  allocated_blocks_ += count;
  return r;
}

void BlockDevice::deallocate(const BlockRange& range) noexcept {
  if (!range.valid() || range.count == 0) return;
  allocated_blocks_ -= range.count;
  BlockId first = range.first;
  std::uint64_t count = range.count;
  // Coalesce with the successor extent if adjacent.
  auto next = free_extents_.lower_bound(first);
  if (next != free_extents_.end() && next->first == first + count) {
    count += next->second;
    next = free_extents_.erase(next);
  }
  // Coalesce with the predecessor extent if adjacent.
  if (next != free_extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == first) {
      first = prev->first;
      count += prev->second;
      free_extents_.erase(prev);
    }
  }
  free_extents_.emplace(first, count);
}

void BlockDevice::check_range(BlockId first, std::uint64_t count,
                              std::size_t span_bytes, const char* op) const {
  const std::uint64_t size = size_blocks();
  if (first >= size || count > size - first) {
    throw std::out_of_range(std::string("BlockDevice::") + op +
                            ": block id beyond device size");
  }
  if (span_bytes > count * block_bytes_) {
    throw std::invalid_argument(std::string("BlockDevice::") + op +
                                (count == 1
                                     ? ": buffer larger than one block"
                                     : ": buffer larger than the block range"));
  }
  if (count > 1 && span_bytes <= (count - 1) * block_bytes_) {
    throw std::invalid_argument(
        std::string("BlockDevice::") + op +
        ": buffer must cover all blocks but a suffix of the last");
  }
}

std::uint64_t BlockDevice::fault_allowance(std::uint64_t count) {
  if (!fault_armed_.load(std::memory_order_acquire)) return count;
  const std::lock_guard<std::mutex> lock(fault_mu_);
  if (!fault_armed_.load(std::memory_order_relaxed)) return count;
  if (fault_countdown_ >= count) {
    fault_countdown_ -= count;
    return count;
  }
  // The fault fires inside this request: allow the I/Os before it, disarm.
  const std::uint64_t allowed = fault_countdown_;
  fault_countdown_ = 0;
  fault_armed_.store(false, std::memory_order_relaxed);
  return allowed;
}

void BlockDevice::read(BlockId block, std::span<std::byte> out) {
  check_range(block, 1, out.size(), "read");
  if (fault_allowance(1) == 0) throw DeviceFault("injected fault on read");
  do_read(block, out);
  reads_.fetch_add(1, std::memory_order_relaxed);
}

void BlockDevice::write(BlockId block, std::span<const std::byte> in) {
  check_range(block, 1, in.size(), "write");
  if (fault_allowance(1) == 0) throw DeviceFault("injected fault on write");
  do_write(block, in);
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void BlockDevice::read_blocks(BlockId first, std::uint64_t count,
                              std::span<std::byte> out) {
  if (count == 0) {
    if (!out.empty()) {
      throw std::invalid_argument(
          "BlockDevice::read_blocks: non-empty buffer with count == 0");
    }
    return;
  }
  check_range(first, count, out.size(), "read_blocks");
  const std::uint64_t allowed = fault_allowance(count);
  if (allowed > 0) {
    // The blocks before a mid-batch fault transfer (and count) normally;
    // the faulting block itself moves no bytes, exactly as in read().
    const std::size_t bytes =
        allowed == count
            ? out.size()
            : static_cast<std::size_t>(allowed) * block_bytes_;
    do_read_blocks(first, allowed, out.first(bytes));
    reads_.fetch_add(allowed, std::memory_order_relaxed);
  }
  if (allowed < count) throw DeviceFault("injected fault on read_blocks");
}

void BlockDevice::write_blocks(BlockId first, std::uint64_t count,
                               std::span<const std::byte> in) {
  if (count == 0) {
    if (!in.empty()) {
      throw std::invalid_argument(
          "BlockDevice::write_blocks: non-empty buffer with count == 0");
    }
    return;
  }
  check_range(first, count, in.size(), "write_blocks");
  const std::uint64_t allowed = fault_allowance(count);
  if (allowed > 0) {
    const std::size_t bytes =
        allowed == count
            ? in.size()
            : static_cast<std::size_t>(allowed) * block_bytes_;
    do_write_blocks(first, allowed, in.first(bytes));
    writes_.fetch_add(allowed, std::memory_order_relaxed);
  }
  if (allowed < count) throw DeviceFault("injected fault on write_blocks");
}

void BlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                 std::span<std::byte> out) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, out.size() - off);
    do_read(first + i, out.subspan(off, len));
  }
}

void BlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                  std::span<const std::byte> in) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes_;
    const std::size_t len = std::min(block_bytes_, in.size() - off);
    do_write(first + i, in.subspan(off, len));
  }
}

// ---------------------------------------------------------------------------
// MemoryBlockDevice
// ---------------------------------------------------------------------------

MemoryBlockDevice::MemoryBlockDevice(std::size_t block_bytes)
    : BlockDevice(block_bytes) {}

MemoryBlockDevice::~MemoryBlockDevice() = default;

void MemoryBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  blocks_.resize(new_size_blocks);  // lazily materialized pages
}

void MemoryBlockDevice::read_one(BlockId block,
                                 std::span<std::byte> out) const {
  const auto& page = blocks_[block];
  if (page == nullptr) {
    // Reading a never-written block yields zeroes (like a sparse file).
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), page.get(), out.size());
}

void MemoryBlockDevice::write_one(BlockId block,
                                  std::span<const std::byte> in) {
  auto& page = blocks_[block];
  if (page == nullptr) page = std::make_unique<std::byte[]>(block_bytes());
  std::memcpy(page.get(), in.data(), in.size());
}

void MemoryBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  read_one(block, out);
}

void MemoryBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  write_one(block, in);
}

void MemoryBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                       std::span<std::byte> out) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes();
    const std::size_t len = std::min(block_bytes(), out.size() - off);
    read_one(first + i, out.subspan(off, len));
  }
}

void MemoryBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                        std::span<const std::byte> in) {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_bytes();
    const std::size_t len = std::min(block_bytes(), in.size() - off);
    write_one(first + i, in.subspan(off, len));
  }
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

FileBlockDevice::FileBlockDevice(std::string path, std::size_t block_bytes,
                                 bool keep_file)
    : BlockDevice(block_bytes), path_(std::move(path)), keep_file_(keep_file) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBlockDevice: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
  if (!keep_file_) ::unlink(path_.c_str());
}

void FileBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size_blocks * block_bytes())) !=
      0) {
    throw std::runtime_error("FileBlockDevice: ftruncate failed: " +
                             std::string(std::strerror(errno)));
  }
}

void FileBlockDevice::pread_span(std::uint64_t offset,
                                 std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBlockDevice: pread failed: " +
                               std::string(std::strerror(errno)));
    }
    if (n == 0) {  // hole beyond EOF of a sparse region: zero-fill
      std::memset(out.data() + done, 0, out.size() - done);
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileBlockDevice::pwrite_span(std::uint64_t offset,
                                  std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const ssize_t n = ::pwrite(fd_, in.data() + done, in.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("FileBlockDevice: pwrite failed: " +
                               std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  pread_span(block * block_bytes(), out);
}

void FileBlockDevice::do_write(BlockId block, std::span<const std::byte> in) {
  pwrite_span(block * block_bytes(), in);
}

void FileBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                     std::span<std::byte> out) {
  (void)count;  // the span covers the whole extent; one positional read
  pread_span(first * block_bytes(), out);
}

void FileBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                      std::span<const std::byte> in) {
  (void)count;
  pwrite_span(first * block_bytes(), in);
}

}  // namespace emsplit

#include "em/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace emsplit {

namespace {

// Entry framing: u32 payload length, u64 FNV-1a of the payload, payload.
// A crash mid-append leaves a torn final entry; the loader detects it by
// length overrun or checksum mismatch and stops there — everything before
// the tear is intact because entries are only ever appended.

constexpr std::uint8_t kSortPass = 1;
constexpr std::uint8_t kSortTaken = 2;
constexpr std::uint8_t kPartRoot = 3;
constexpr std::uint8_t kPartBucketDone = 4;
constexpr std::uint8_t kPartTaken = 5;

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Little-endian-on-the-host payload builder; the journal is a local
/// recovery record, not an interchange format.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void u64(std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(v));
  }
  void u64s(const std::vector<std::uint64_t>& vs) {
    u64(vs.size());
    for (const auto v : vs) u64(v);
  }
  void spans(const std::vector<CkptSpan>& vs) {
    u64(vs.size());
    for (const auto& s : vs) {
      u64(s.lo);
      u64(s.hi);
      u8(s.sorted ? 1 : 0);
    }
  }
  [[nodiscard]] std::span<const std::byte> view() const { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + sizeof(v) > bytes_.size()) return false;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return true;
  }
  bool u64s(std::vector<std::uint64_t>& vs) {
    std::uint64_t n = 0;
    if (!u64(n) || n > (bytes_.size() - pos_) / sizeof(std::uint64_t)) {
      return false;
    }
    vs.resize(n);
    for (auto& v : vs) {
      if (!u64(v)) return false;
    }
    return true;
  }
  bool spans(std::vector<CkptSpan>& vs) {
    std::uint64_t n = 0;
    if (!u64(n) || n > (bytes_.size() - pos_) / 17) return false;
    vs.resize(n);
    for (auto& s : vs) {
      std::uint8_t sorted = 0;
      if (!u64(s.lo) || !u64(s.hi) || !u8(sorted)) return false;
      s.sorted = sorted != 0;
    }
    return true;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

CheckpointJournal::CheckpointJournal(BlockDevice& device, std::string path)
    : dev_(&device), path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("CheckpointJournal: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  load();
}

CheckpointJournal::~CheckpointJournal() {
  // Return every still-owned extent; the file stays (it is the record a
  // restarted process recovers from).
  for (auto& [fp, st] : sorts_) dev_->deallocate(st.extent);
  for (auto& [fp, st] : parts_) {
    dev_->deallocate(st.out);
    for (auto& b : st.buckets) {
      if (!b.done) dev_->deallocate(b.extent);
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

void CheckpointJournal::load() {
  std::vector<std::byte> file;
  {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end > 0) {
      file.resize(static_cast<std::size_t>(end));
      std::size_t done = 0;
      while (done < file.size()) {
        const ssize_t n = ::pread(fd_, file.data() + done, file.size() - done,
                                  static_cast<off_t>(done));
        if (n < 0) {
          if (errno == EINTR) continue;
          throw std::runtime_error("CheckpointJournal: read failed: " +
                                   std::string(std::strerror(errno)));
        }
        if (n == 0) break;
        done += static_cast<std::size_t>(n);
      }
      file.resize(done);
    }
  }

  std::size_t pos = 0;
  std::size_t intact_end = 0;
  while (pos + sizeof(std::uint32_t) + sizeof(std::uint64_t) <= file.size()) {
    std::uint32_t len = 0;
    std::uint64_t sum = 0;
    std::memcpy(&len, file.data() + pos, sizeof(len));
    std::memcpy(&sum, file.data() + pos + sizeof(len), sizeof(sum));
    const std::size_t body = pos + sizeof(len) + sizeof(sum);
    if (body + len > file.size()) break;  // torn tail
    const std::span<const std::byte> payload(file.data() + body, len);
    if (fnv1a(payload) != sum) break;  // torn tail
    pos = body + len;
    intact_end = pos;

    PayloadReader r(payload);
    std::uint8_t tag = 0;
    std::uint64_t fp = 0;
    if (!r.u8(tag) || !r.u64(fp)) continue;  // unknown/short: skip entry
    switch (tag) {
      case kSortPass: {
        SortState st;
        if (r.u64(st.pass) && r.u64(st.extent.first) &&
            r.u64(st.extent.count) && r.u64(st.size) && r.u64s(st.offsets)) {
          sorts_[fp] = std::move(st);
        }
        break;
      }
      case kSortTaken:
        sorts_.erase(fp);
        break;
      case kPartRoot: {
        PartState st;
        std::uint64_t nb = 0;
        bool ok = r.u64(st.out.first) && r.u64(st.out.count) && r.u64(st.n) &&
                  r.spans(st.spans) && r.u64(nb);
        for (std::uint64_t i = 0; ok && i < nb; ++i) {
          PartBucket b;
          ok = r.u64(b.extent.first) && r.u64(b.extent.count) &&
               r.u64(b.size) && r.u64(b.out_lo) && r.u64s(b.ranks);
          if (ok) st.buckets.push_back(std::move(b));
        }
        if (ok) parts_[fp] = std::move(st);
        break;
      }
      case kPartBucketDone: {
        std::uint64_t idx = 0;
        std::vector<CkptSpan> spans;
        const auto it = parts_.find(fp);
        if (r.u64(idx) && r.spans(spans) && it != parts_.end() &&
            idx < it->second.buckets.size()) {
          it->second.buckets[idx].done = true;
          it->second.spans.insert(it->second.spans.end(), spans.begin(),
                                  spans.end());
        }
        break;
      }
      case kPartTaken:
        parts_.erase(fp);
        break;
      default:
        break;  // future tag: ignore
    }
  }

  // Truncate a torn tail so new appends start on an intact boundary.
  if (intact_end < file.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(intact_end)) != 0) {
      throw std::runtime_error("CheckpointJournal: ftruncate failed: " +
                               std::string(std::strerror(errno)));
    }
  }
}

void CheckpointJournal::append_entry(std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t sum = fnv1a(payload);
  std::vector<std::byte> entry;
  entry.reserve(sizeof(len) + sizeof(sum) + payload.size());
  const auto* lp = reinterpret_cast<const std::byte*>(&len);
  entry.insert(entry.end(), lp, lp + sizeof(len));
  const auto* sp = reinterpret_cast<const std::byte*>(&sum);
  entry.insert(entry.end(), sp, sp + sizeof(sum));
  entry.insert(entry.end(), payload.begin(), payload.end());
  std::size_t done = 0;
  while (done < entry.size()) {
    const ssize_t n = ::write(fd_, entry.data() + done, entry.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("CheckpointJournal: append failed: " +
                               std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
  // The journal entry must be durable before the pass it supersedes is
  // recycled — fsync is the write barrier of the recovery protocol.
  ::fsync(fd_);
  if (publishes_left_ != UINT64_MAX && --publishes_left_ == 0) {
    // Crash injection: die as abruptly as SIGKILL, skipping destructors.
    std::_Exit(137);
  }
}

void CheckpointJournal::restore_device() {
  std::vector<BlockRange> live;
  for (const auto& [fp, st] : sorts_) {
    if (st.extent.valid() && st.extent.count > 0) live.push_back(st.extent);
  }
  for (const auto& [fp, st] : parts_) {
    if (st.out.valid() && st.out.count > 0) live.push_back(st.out);
    for (const auto& b : st.buckets) {
      if (!b.done && b.extent.valid() && b.extent.count > 0) {
        live.push_back(b.extent);
      }
    }
  }
  dev_->restore(0, live);
}

std::uint64_t CheckpointJournal::owned_blocks() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [fp, st] : sorts_) total += st.extent.count;
  for (const auto& [fp, st] : parts_) {
    total += st.out.count;
    for (const auto& b : st.buckets) {
      if (!b.done) total += b.extent.count;
    }
  }
  return total;
}

std::optional<CheckpointJournal::SortState> CheckpointJournal::resume_sort(
    std::uint64_t fingerprint) {
  const auto it = sorts_.find(fingerprint);
  if (it == sorts_.end()) return std::nullopt;
  resumed_passes_ += it->second.pass;
  return it->second;
}

void CheckpointJournal::publish_sort_pass(
    std::uint64_t fingerprint, std::uint64_t pass, BlockRange extent,
    std::uint64_t size, const std::vector<std::uint64_t>& offsets) {
  PayloadWriter w;
  w.u8(kSortPass);
  w.u64(fingerprint);
  w.u64(pass);
  w.u64(extent.first);
  w.u64(extent.count);
  w.u64(size);
  w.u64s(offsets);
  append_entry(w.view());

  const auto it = sorts_.find(fingerprint);
  if (it != sorts_.end()) dev_->deallocate(it->second.extent);
  sorts_[fingerprint] = SortState{pass, extent, size, offsets};
}

BlockRange CheckpointJournal::take_sort_extent(std::uint64_t fingerprint) {
  const auto it = sorts_.find(fingerprint);
  if (it == sorts_.end()) {
    throw std::logic_error("CheckpointJournal: no sort state to take");
  }
  PayloadWriter w;
  w.u8(kSortTaken);
  w.u64(fingerprint);
  append_entry(w.view());
  const BlockRange extent = it->second.extent;
  sorts_.erase(it);
  return extent;
}

std::optional<CheckpointJournal::PartState> CheckpointJournal::resume_part(
    std::uint64_t fingerprint) {
  const auto it = parts_.find(fingerprint);
  if (it == parts_.end()) return std::nullopt;
  resumed_passes_ += 1;  // the root distribution pass
  for (const auto& b : it->second.buckets) {
    if (b.done) ++resumed_passes_;
  }
  return it->second;
}

void CheckpointJournal::publish_part_root(std::uint64_t fingerprint,
                                          BlockRange out, std::uint64_t n,
                                          std::vector<PartBucket> buckets,
                                          const std::vector<CkptSpan>& spans) {
  PayloadWriter w;
  w.u8(kPartRoot);
  w.u64(fingerprint);
  w.u64(out.first);
  w.u64(out.count);
  w.u64(n);
  w.spans(spans);
  w.u64(buckets.size());
  for (const auto& b : buckets) {
    w.u64(b.extent.first);
    w.u64(b.extent.count);
    w.u64(b.size);
    w.u64(b.out_lo);
    w.u64s(b.ranks);
  }
  append_entry(w.view());

  PartState st;
  st.out = out;
  st.n = n;
  st.spans = spans;
  st.buckets = std::move(buckets);
  parts_[fingerprint] = std::move(st);
}

void CheckpointJournal::publish_part_bucket_done(
    std::uint64_t fingerprint, std::uint64_t bucket,
    const std::vector<CkptSpan>& spans) {
  const auto it = parts_.find(fingerprint);
  if (it == parts_.end() || bucket >= it->second.buckets.size()) {
    throw std::logic_error("CheckpointJournal: unknown partition bucket");
  }
  PayloadWriter w;
  w.u8(kPartBucketDone);
  w.u64(fingerprint);
  w.u64(bucket);
  w.spans(spans);
  append_entry(w.view());

  PartBucket& b = it->second.buckets[bucket];
  if (!b.done) {
    dev_->deallocate(b.extent);
    b.done = true;
  }
  it->second.spans.insert(it->second.spans.end(), spans.begin(), spans.end());
}

BlockRange CheckpointJournal::take_part_out(std::uint64_t fingerprint) {
  const auto it = parts_.find(fingerprint);
  if (it == parts_.end()) {
    throw std::logic_error("CheckpointJournal: no partition state to take");
  }
  PayloadWriter w;
  w.u8(kPartTaken);
  w.u64(fingerprint);
  append_entry(w.view());
  const BlockRange out = it->second.out;
  for (const auto& b : it->second.buckets) {
    if (!b.done) dev_->deallocate(b.extent);
  }
  parts_.erase(it);
  return out;
}

}  // namespace emsplit

// worker_group.cpp — forked rounds over pipes, and the inline fallback.
#include "em/worker_group.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>

namespace emsplit {

namespace {

// Frame tag so a torn pipe is distinguishable from a protocol bug.
constexpr std::uint64_t kFrameMagic = 0x454D'5750'524Bull;

#if defined(__SANITIZE_THREAD__)
constexpr bool kThreadSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kThreadSanitizer = true;
#else
constexpr bool kThreadSanitizer = false;
#endif
#else
constexpr bool kThreadSanitizer = false;
#endif

bool write_full(int fd, const void* p, std::size_t n) noexcept {
  const char* b = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t k = ::write(fd, b, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    b += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

/// Reads until `n` bytes or EOF; returns the bytes actually read.
std::size_t read_full(int fd, void* p, std::size_t n) noexcept {
  char* b = static_cast<char*>(p);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::read(fd, b + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      return got;
    }
    if (k == 0) return got;
    got += static_cast<std::size_t>(k);
  }
  return got;
}

void put_stats(WireWriter& w, const IoStats& s) {
  w.u64(s.reads);
  w.u64(s.writes);
  w.u64(s.retries);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_evictions);
}

template <typename ReadU64>
IoStats get_stats(ReadU64&& rd) {
  IoStats s;
  s.reads = rd();
  s.writes = rd();
  s.retries = rd();
  s.cache_hits = rd();
  s.cache_misses = rd();
  s.cache_evictions = rd();
  return s;
}

/// One worker's frame as the parent decodes it.  `status` 0 = payload is the
/// body's blob; 1 = the body threw and payload is the message.  nullopt =
/// the pipe ended before a complete frame — the worker died.
struct Frame {
  std::uint64_t status = 0;
  IoStats io;
  std::vector<IoStats> shards;
  double busy = 0.0;
  std::vector<std::byte> payload;
};

std::optional<Frame> read_frame(int fd) {
  const auto rd_u64 = [&]() -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    if (read_full(fd, &v, sizeof(v)) != sizeof(v)) return std::nullopt;
    return v;
  };
  const auto magic = rd_u64();
  if (!magic || *magic != kFrameMagic) return std::nullopt;
  Frame f;
  const auto status = rd_u64();
  if (!status) return std::nullopt;
  f.status = *status;
  bool ok = true;
  const auto rd = [&]() -> std::uint64_t {
    const auto v = rd_u64();
    if (!v) {
      ok = false;
      return 0;
    }
    return *v;
  };
  f.io = get_stats(rd);
  const std::uint64_t nshards = rd();
  if (!ok || nshards > 4096) return std::nullopt;
  f.shards.reserve(static_cast<std::size_t>(nshards));
  for (std::uint64_t i = 0; i < nshards; ++i) f.shards.push_back(get_stats(rd));
  double busy = 0.0;
  if (read_full(fd, &busy, sizeof(busy)) != sizeof(busy)) return std::nullopt;
  f.busy = busy;
  const std::uint64_t len = rd();
  if (!ok || len > (1ull << 34)) return std::nullopt;
  f.payload.resize(static_cast<std::size_t>(len));
  if (read_full(fd, f.payload.data(), f.payload.size()) != f.payload.size()) {
    return std::nullopt;
  }
  return f;
}

/// Child side of one round.  Never returns; never runs destructors (_exit):
/// the device handle, its backing file and the parent's journal must survive
/// this process untouched.
[[noreturn]] void child_main(int fd, Context& parent, std::size_t w,
                             std::uint64_t round_no,
                             const WorkerGroup::RoundBody& body) {
  const WorkerTuning wt = parent.worker_tuning();
  if (wt.kill_round == round_no && wt.kill_worker == w) ::_exit(137);
  BlockDevice& dev = parent.device();
  // The block cache is coordinator state: this child's copy is copy-on-write
  // and its hits would double-count against the parent's live counters when
  // the delta is absorbed.  Detach before the first snapshot.
  dev.set_cache(nullptr);
  IoStats io0;
  std::vector<IoStats> sh0;
  WireWriter frame;
  frame.u64(kFrameMagic);
  try {
    io0 = dev.stats();
    sh0 = dev.shard_stats();
    Context cctx(dev, parent.mem_bytes());
    // Same stream geometry as the parent (stream_blocks() ignores `async`),
    // but one lane and no background thread: a freshly forked child of a
    // multithreaded parent must not rely on inherited thread state.
    IoTuning io = parent.io_tuning();
    io.async = false;
    cctx.set_io_tuning(io);
    CpuTuning cpu = parent.cpu_tuning();
    cpu.threads = 1;
    cctx.set_cpu_tuning(cpu);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::byte> payload = body(cctx, w);
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    frame.u64(0);
    put_stats(frame, dev.stats() - io0);
    std::vector<IoStats> shd = dev.shard_stats();
    frame.u64(shd.size());
    for (std::size_t i = 0; i < shd.size(); ++i) {
      put_stats(frame, shd[i] - sh0[i]);
    }
    frame.f64(busy);
    frame.pod_span<std::byte>(payload);
  } catch (const std::exception& e) {
    frame = WireWriter{};
    frame.u64(kFrameMagic);
    frame.u64(1);
    put_stats(frame, dev.stats() - io0);
    std::vector<IoStats> shd = dev.shard_stats();
    frame.u64(shd.size());
    for (std::size_t i = 0; i < shd.size(); ++i) {
      put_stats(frame, i < sh0.size() ? shd[i] - sh0[i] : shd[i]);
    }
    frame.f64(0.0);
    const std::string msg = e.what();
    frame.pod_span<char>(std::span<const char>(msg.data(), msg.size()));
  } catch (...) {
    ::_exit(2);
  }
  const std::vector<std::byte> buf = frame.take();
  ::_exit(write_full(fd, buf.data(), buf.size()) ? 0 : 3);
}

}  // namespace

WorkerGroup::WorkerGroup(Context& ctx)
    : ctx_(&ctx), workers_(ctx.worker_tuning().workers) {
  if (workers_ == 0) {
    throw std::invalid_argument("WorkerGroup: workers must be >= 1");
  }
  BlockDevice& dev = ctx.device();
  forked_ = dev.fork_safe() && !dev.checksums() && !kThreadSanitizer &&
            std::getenv("EMSPLIT_WORKERS_INLINE") == nullptr;
}

RoundOutcome WorkerGroup::round(const char* label, const RoundBody& body) {
  ++round_no_;
  (void)label;
  return forked_ ? round_forked(body) : round_inline(body);
}

RoundOutcome WorkerGroup::round_forked(const RoundBody& body) {
  BlockDevice& dev = ctx_->device();
  struct Child {
    pid_t pid = -1;
    int rfd = -1;
  };
  std::vector<Child> kids;
  kids.reserve(workers_);
  const auto abort_spawn = [&kids]() noexcept {
    for (const Child& c : kids) {
      if (c.rfd >= 0) ::close(c.rfd);
      if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
    }
  };
  for (std::size_t w = 0; w < workers_; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      abort_spawn();
      throw std::runtime_error("WorkerGroup: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      abort_spawn();
      throw std::runtime_error("WorkerGroup: fork() failed");
    }
    if (pid == 0) {
      // Only this worker's write end stays open in the child; stray handles
      // on siblings' pipes would keep their EOFs from ever arriving.
      for (const Child& c : kids) ::close(c.rfd);
      ::close(fds[0]);
      child_main(fds[1], *ctx_, w, round_no_, body);
    }
    ::close(fds[1]);
    kids.push_back({pid, fds[0]});
  }

  // Barrier: drain every pipe to a full frame (or EOF), then reap every
  // child.  Draining in worker order is fine — frames are buffered by the
  // kernel and a blocked writer simply waits its turn.
  std::vector<std::optional<Frame>> frames(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    frames[w] = read_frame(kids[w].rfd);
    ::close(kids[w].rfd);
  }
  std::vector<int> status(workers_, 0);
  for (std::size_t w = 0; w < workers_; ++w) {
    ::waitpid(kids[w].pid, &status[w], 0);
  }

  // The children's transfers moved real blocks of the shared device; fold
  // every reported delta back into the parent's counters — including a
  // failed worker's (its I/O happened too).
  RoundOutcome out;
  out.payloads.resize(workers_);
  out.rows.resize(workers_);
  double max_busy = 0.0;
  for (std::size_t w = 0; w < workers_; ++w) {
    if (!frames[w]) continue;
    dev.absorb_stats(frames[w]->io, frames[w]->shards);
    out.rows[w] = PassWorkerIo{w, frames[w]->io, frames[w]->busy, 0.0};
    max_busy = std::max(max_busy, frames[w]->busy);
  }
  for (std::size_t w = 0; w < workers_; ++w) {
    if (frames[w] && frames[w]->status == 0) {
      out.rows[w].barrier_seconds = max_busy - out.rows[w].seconds;
      out.payloads[w] = std::move(frames[w]->payload);
    }
  }
  for (std::size_t w = 0; w < workers_; ++w) {
    if (!frames[w]) {
      std::string how = "no status";
      if (WIFEXITED(status[w])) {
        how = "exit " + std::to_string(WEXITSTATUS(status[w]));
      } else if (WIFSIGNALED(status[w])) {
        how = "signal " + std::to_string(WTERMSIG(status[w]));
      }
      throw WorkerDied(w, "worker " + std::to_string(w) + " died in round " +
                              std::to_string(round_no_) + " (" + how + ")");
    }
  }
  for (std::size_t w = 0; w < workers_; ++w) {
    if (frames[w]->status != 0) {
      std::string msg(reinterpret_cast<const char*>(frames[w]->payload.data()),
                      frames[w]->payload.size());
      throw std::runtime_error("worker " + std::to_string(w) + ": " + msg);
    }
  }
  return out;
}

RoundOutcome WorkerGroup::round_inline(const RoundBody& body) {
  const WorkerTuning wt = ctx_->worker_tuning();
  BlockDevice& dev = ctx_->device();
  RoundOutcome out;
  out.payloads.resize(workers_);
  out.rows.resize(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    if (wt.kill_round == round_no_ && wt.kill_worker == w) {
      throw WorkerDied(w, "worker " + std::to_string(w) +
                              " killed inline in round " +
                              std::to_string(round_no_));
    }
    const IoStats io0 = dev.stats();
    const auto t0 = std::chrono::steady_clock::now();
    out.payloads[w] = body(*ctx_, w);
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Sequential execution: the barrier is free by construction.
    out.rows[w] = PassWorkerIo{w, dev.stats() - io0, busy, 0.0};
  }
  return out;
}

}  // namespace emsplit

// worker_group.cpp — forked rounds over pipes, the round supervisor, and the
// inline fallback.
#include "em/worker_group.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>

#include "em/fnv.hpp"

namespace emsplit {

namespace {

// Frame tag so a torn pipe is distinguishable from a protocol bug.
constexpr std::uint64_t kFrameMagic = 0x454D'5750'524Bull;
// Frame header: magic, body length, FNV-1a of the body.  The length lets the
// parent drain frames incrementally (poll-driven hang detection needs to
// know when a frame is complete without blocking), and the checksum makes a
// corrupt frame detectable instead of silently absorbed.
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);
constexpr std::uint64_t kMaxBodyBytes = 1ull << 34;

#if defined(__SANITIZE_THREAD__)
constexpr bool kThreadSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kThreadSanitizer = true;
#else
constexpr bool kThreadSanitizer = false;
#endif
#else
constexpr bool kThreadSanitizer = false;
#endif

bool write_full(int fd, const void* p, std::size_t n) noexcept {
  const char* b = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t k = ::write(fd, b, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    b += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

void put_stats(WireWriter& w, const IoStats& s) {
  w.u64(s.reads);
  w.u64(s.writes);
  w.u64(s.retries);
  w.u64(s.worker_retries);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_evictions);
}

IoStats get_stats(WireReader& r) {
  IoStats s;
  s.reads = r.u64();
  s.writes = r.u64();
  s.retries = r.u64();
  s.worker_retries = r.u64();
  s.cache_hits = r.u64();
  s.cache_misses = r.u64();
  s.cache_evictions = r.u64();
  return s;
}

/// One worker's frame body as the parent decodes it.  `status` 0 = payload
/// is the body's blob; 1 = the body threw and payload is the message.
struct Frame {
  std::uint64_t status = 0;
  IoStats io;
  std::vector<IoStats> shards;
  double busy = 0.0;
  std::uint64_t peak_bytes = 0;
  std::vector<SumEntry> sums;
  std::vector<std::byte> payload;
};

std::optional<Frame> parse_body(std::span<const std::byte> body) {
  try {
    WireReader r(body);
    Frame f;
    f.status = r.u64();
    f.io = get_stats(r);
    const std::uint64_t nshards = r.u64();
    if (nshards > 4096) return std::nullopt;
    f.shards.reserve(static_cast<std::size_t>(nshards));
    for (std::uint64_t i = 0; i < nshards; ++i) f.shards.push_back(get_stats(r));
    f.busy = r.f64();
    f.peak_bytes = r.u64();
    f.sums = r.pod_vec<SumEntry>();
    f.payload = r.pod_vec<std::byte>();
    if (!r.done()) return std::nullopt;
    return f;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Child side of one round.  Never returns; never runs destructors (_exit):
/// the device handle, its backing file and the parent's journal must survive
/// this process untouched.
[[noreturn]] void child_main(int fd, Context& parent, std::size_t w,
                             std::uint64_t round_no,
                             const WorkerGroup::RoundBody& body) {
  const WorkerTuning wt = parent.worker_tuning();
  if (wt.kill_round == round_no && wt.kill_worker == w) ::_exit(137);
  BlockDevice& dev = parent.device();
  // Drop what must not be shared with the parent (e.g. the inherited uring's
  // queues) before the first transfer.
  dev.child_after_fork();
  // The block cache is coordinator state: this child's copy is copy-on-write
  // and its hits would double-count against the parent's live counters when
  // the delta is absorbed.  Detach before the first snapshot.
  dev.set_cache(nullptr);
  // Checksum-table updates from this child's writes die with its address
  // space unless shipped home — track them from here on and put the dirty
  // entries in the frame for the parent to merge.
  dev.set_sum_tracking(true);
  IoStats io0;
  std::vector<IoStats> sh0;
  WireWriter frame;
  try {
    io0 = dev.stats();
    sh0 = dev.shard_stats();
    // Each worker plans against (and is budgeted) M / mem_workers, so any
    // W <= mem_workers keeps the aggregate in-flight footprint <= M.  The
    // model floor M >= 2B still applies per worker.
    const std::size_t wmem = std::max(parent.mem_bytes() / wt.mem_workers,
                                      2 * dev.block_bytes());
    Context cctx(dev, wmem);
    // Same stream geometry as the parent (stream_blocks() ignores `async`),
    // but one lane and no background thread: a freshly forked child of a
    // multithreaded parent must not rely on inherited thread state.
    IoTuning io = parent.io_tuning();
    io.async = false;
    cctx.set_io_tuning(io);
    CpuTuning cpu = parent.cpu_tuning();
    cpu.threads = 1;
    cctx.set_cpu_tuning(cpu);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::byte> payload = body(cctx, w);
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    frame.u64(0);
    put_stats(frame, dev.stats() - io0);
    std::vector<IoStats> shd = dev.shard_stats();
    frame.u64(shd.size());
    for (std::size_t i = 0; i < shd.size(); ++i) {
      put_stats(frame, shd[i] - sh0[i]);
    }
    frame.f64(busy);
    frame.u64(cctx.budget().peak());
    const std::vector<SumEntry> sums = dev.take_dirty_sums();
    frame.pod_span<SumEntry>(sums);
    frame.pod_span<std::byte>(payload);
  } catch (const std::exception& e) {
    frame = WireWriter{};
    frame.u64(1);
    put_stats(frame, dev.stats() - io0);
    std::vector<IoStats> shd = dev.shard_stats();
    frame.u64(shd.size());
    for (std::size_t i = 0; i < shd.size(); ++i) {
      put_stats(frame, i < sh0.size() ? shd[i] - sh0[i] : shd[i]);
    }
    frame.f64(0.0);
    frame.u64(0);
    // Writes performed before the throw recorded checksums — ship them, the
    // blocks really changed.
    const std::vector<SumEntry> sums = dev.take_dirty_sums();
    frame.pod_span<SumEntry>(sums);
    const std::string msg = e.what();
    frame.pod_span<char>(std::span<const char>(msg.data(), msg.size()));
  } catch (...) {
    ::_exit(2);
  }
  std::vector<std::byte> bodybuf = frame.take();
  WireWriter head;
  head.u64(kFrameMagic);
  head.u64(bodybuf.size());
  head.u64(fnv1a(bodybuf));
  const std::vector<std::byte> headbuf = head.take();
  // Corruption injection: flip one body byte *after* the header checksum is
  // computed — exactly what a torn pipe or a flaky transport would deliver.
  if (wt.corrupt_round == round_no && wt.corrupt_worker == w &&
      !bodybuf.empty()) {
    bodybuf.back() ^= std::byte{1};
  }
  // Hang injection: the work is done and the frame built, but it never
  // leaves — proving the supervisor's re-execution of *completed* units is
  // safe (the unit schedule is idempotent).
  if (wt.hang_round == round_no && wt.hang_worker == w) {
    for (;;) ::pause();
  }
  const bool ok = write_full(fd, headbuf.data(), headbuf.size()) &&
                  write_full(fd, bodybuf.data(), bodybuf.size());
  ::_exit(ok ? 0 : 3);
}

/// Incremental receive state of one worker's frame.
struct Rx {
  std::vector<std::byte> buf;
  bool open = true;       ///< fd still registered with poll
  bool complete = false;  ///< header + full body received
  bool timed_out = false;  ///< SIGKILLed past the round deadline
  bool bad_header = false;  ///< magic or length invalid

  /// Expected total frame size, or 0 while the header is incomplete.
  [[nodiscard]] std::size_t expect() const noexcept {
    if (buf.size() < kHeaderBytes) return 0;
    std::uint64_t magic = 0;
    std::uint64_t len = 0;
    std::memcpy(&magic, buf.data(), sizeof(magic));
    std::memcpy(&len, buf.data() + sizeof(magic), sizeof(len));
    if (magic != kFrameMagic || len > kMaxBodyBytes) return SIZE_MAX;
    return kHeaderBytes + static_cast<std::size_t>(len);
  }
};

std::string exit_detail(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "no status";
}

}  // namespace

WorkerGroup::WorkerGroup(Context& ctx)
    : ctx_(&ctx), workers_(ctx.worker_tuning().workers) {
  if (workers_ == 0) {
    throw std::invalid_argument("WorkerGroup: workers must be >= 1");
  }
  BlockDevice& dev = ctx.device();
  forked_ = dev.fork_safe() && !kThreadSanitizer &&
            std::getenv("EMSPLIT_WORKERS_INLINE") == nullptr;
}

RoundOutcome WorkerGroup::round(const char* label, const RoundBody& body) {
  ++round_no_;
  (void)label;
  RoundOutcome out = forked_ ? round_forked(body) : round_inline(body);
  // Elastic degradation, applied strictly *between* rounds: callers capture
  // workers() when they build a round body, so the width must only change
  // after the current round's outcome is in hand — the next body then plans
  // its unit ownership (unit_begin in dist_plan.hpp) against the new width.
  // W-invariance makes the narrower group produce bit-identical output.
  const WorkerTuning wt = ctx_->worker_tuning();
  if (wt.degrade_after > 0 && failures_ >= wt.degrade_after && workers_ > 1) {
    workers_ = std::max<std::size_t>(1, workers_ / 2);
    failures_ = 0;
    ctx_->note_supervision(SupervisionEvent{
        round_no_, workers_, "degrade",
        "re-planning remaining rounds at " + std::to_string(workers_) +
            " workers"});
  }
  return out;
}

void WorkerGroup::recover_worker(std::size_t w, const RoundBody& body,
                                 RoundOutcome& out) {
  const WorkerTuning wt = ctx_->worker_tuning();
  BlockDevice& dev = ctx_->device();
  for (std::uint64_t attempt = 1; attempt <= wt.max_worker_retries;
       ++attempt) {
    if (wt.retry_backoff.count() > 0) {
      const std::uint64_t shift = std::min<std::uint64_t>(attempt - 1, 20);
      std::this_thread::sleep_for(wt.retry_backoff * (std::uint64_t{1} << shift));
    }
    ctx_->note_supervision(SupervisionEvent{
        round_no_, w, "retry", "attempt " + std::to_string(attempt)});
    const IoStats io0 = dev.stats();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      out.payloads[w] = body(*ctx_, w);
    } catch (const std::exception& e) {
      if (attempt == wt.max_worker_retries) {
        ctx_->note_supervision(
            SupervisionEvent{round_no_, w, "give-up", e.what()});
        throw WorkerDied(
            w, "worker " + std::to_string(w) + " failed round " +
                   std::to_string(round_no_) + " after " +
                   std::to_string(attempt) + " retries: " + e.what());
      }
      continue;
    }
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // The re-executed transfers just landed in the parent's base counters —
    // exactly replacing the counters the lost frame would have reported, so
    // base I/O matches the fault-free run.  Their volume is additionally
    // attributed to worker_retries, like device retries next to base counts.
    IoStats delta = dev.stats() - io0;
    const std::uint64_t redone = delta.reads + delta.writes;
    delta.worker_retries += redone;
    dev.note_worker_retries(redone);
    out.rows[w] = PassWorkerIo{w, delta, busy, 0.0, 0};
    return;
  }
}

RoundOutcome WorkerGroup::round_forked(const RoundBody& body) {
  const WorkerTuning wt = ctx_->worker_tuning();
  BlockDevice& dev = ctx_->device();
  // Let the backend reach the state fork sharing needs (materialize shared
  // pages, settle write-behind) before any child exists.
  dev.prepare_fork();
  struct Child {
    pid_t pid = -1;
    int rfd = -1;
  };
  std::vector<Child> kids;
  kids.reserve(workers_);
  const auto abort_spawn = [&kids]() noexcept {
    for (const Child& c : kids) {
      if (c.rfd >= 0) ::close(c.rfd);
      if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
    }
  };
  for (std::size_t w = 0; w < workers_; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      abort_spawn();
      throw std::runtime_error("WorkerGroup: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      abort_spawn();
      throw std::runtime_error("WorkerGroup: fork() failed");
    }
    if (pid == 0) {
      // Only this worker's write end stays open in the child; stray handles
      // on siblings' pipes would keep their EOFs from ever arriving.
      for (const Child& c : kids) ::close(c.rfd);
      ::close(fds[0]);
      child_main(fds[1], *ctx_, w, round_no_, body);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    kids.push_back({pid, fds[0]});
  }

  // Barrier: poll-driven drain of every pipe to a complete frame (or EOF).
  // With a worker_timeout set, the whole round has one deadline; children
  // whose frames are incomplete at expiry are SIGKILLed and treated as
  // crashes.  Without one, this blocks exactly like the classic drain.
  std::vector<Rx> rx(workers_);
  const bool deadline_armed = wt.worker_timeout > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              deadline_armed ? wt.worker_timeout : 0.0));
  std::size_t open = workers_;
  while (open > 0) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> owner;
    pfds.reserve(open);
    owner.reserve(open);
    for (std::size_t w = 0; w < workers_; ++w) {
      if (!rx[w].open) continue;
      pfds.push_back(pollfd{kids[w].rfd, POLLIN, 0});
      owner.push_back(w);
    }
    int timeout_ms = -1;
    if (deadline_armed) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::max<long long>(left.count(), 0));
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed: fall through, EOF-less workers fail below
    }
    if (rc == 0) {
      // Deadline expired: every incomplete worker is hung.  SIGKILL them —
      // the reaped status makes the timeout visible, and a worker that was
      // merely slow costs only a re-execution (the units are idempotent).
      for (std::size_t w = 0; w < workers_; ++w) {
        if (!rx[w].open) continue;
        ::kill(kids[w].pid, SIGKILL);
        rx[w].timed_out = true;
        ::close(kids[w].rfd);
        rx[w].open = false;
        --open;
      }
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t w = owner[i];
      Rx& r = rx[w];
      bool eof = false;
      for (;;) {
        std::byte chunk[65536];
        const ssize_t k = ::read(kids[w].rfd, chunk, sizeof(chunk));
        if (k > 0) {
          r.buf.insert(r.buf.end(), chunk, chunk + k);
          const std::size_t want = r.expect();
          if (want == SIZE_MAX) {
            r.bad_header = true;
          } else if (want > 0 && r.buf.size() >= want) {
            r.complete = r.buf.size() == want;  // trailing bytes = corrupt
            if (!r.complete) r.bad_header = true;
          }
          if (r.bad_header || r.complete) break;
          continue;
        }
        if (k < 0 && errno == EINTR) continue;
        if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        eof = true;  // EOF (k == 0) or a hard error: the channel is finished
        break;
      }
      // Done with this channel once a full frame arrived, the framing broke,
      // or the writer closed its end (an incomplete buffer then is a death,
      // classified below).  A drained-but-unfinished channel stays open.
      if (r.complete || r.bad_header || eof ||
          (pfds[i].revents & (POLLHUP | POLLERR)) != 0) {
        ::close(kids[w].rfd);
        r.open = false;
        --open;
      }
    }
  }
  // Close any fd still open (poll failure path).
  for (std::size_t w = 0; w < workers_; ++w) {
    if (rx[w].open) {
      ::close(kids[w].rfd);
      rx[w].open = false;
    }
  }
  std::vector<int> status(workers_, 0);
  for (std::size_t w = 0; w < workers_; ++w) {
    ::waitpid(kids[w].pid, &status[w], 0);
  }

  // Decode: a worker either produced a verified frame, or failed in one of
  // three ways — timeout, corrupt frame (header checksum mismatch / torn
  // framing), or death (EOF before a complete frame).
  struct Failure {
    std::string kind;
    std::string detail;
  };
  std::vector<std::optional<Frame>> frames(workers_);
  std::vector<std::optional<Failure>> fails(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    const Rx& r = rx[w];
    if (r.timed_out) {
      fails[w] = Failure{"timeout",
                         "no frame within the round deadline; SIGKILLed"};
      continue;
    }
    if (!r.complete || r.bad_header) {
      if (r.bad_header) {
        fails[w] = Failure{"corrupt-frame", "torn or invalid framing"};
      } else {
        fails[w] = Failure{"death", exit_detail(status[w])};
      }
      continue;
    }
    std::uint64_t declared_sum = 0;
    std::memcpy(&declared_sum, r.buf.data() + 2 * sizeof(std::uint64_t),
                sizeof(declared_sum));
    const std::span<const std::byte> bodyspan(r.buf.data() + kHeaderBytes,
                                              r.buf.size() - kHeaderBytes);
    if (fnv1a(bodyspan) != declared_sum) {
      fails[w] = Failure{"corrupt-frame", "frame checksum mismatch"};
      continue;
    }
    frames[w] = parse_body(bodyspan);
    if (!frames[w]) {
      fails[w] = Failure{"corrupt-frame", "frame body undecodable"};
    }
  }

  // The children's transfers moved real blocks of the shared device; fold
  // every *verified* frame's delta back into the parent's counters —
  // including a status-1 worker's (its I/O happened too) — and merge the
  // checksum-table updates its writes recorded.  A corrupt frame's numbers
  // cannot be trusted and are discarded whole; the supervisor re-executes
  // that worker's units instead, which regenerates both counters and sums.
  RoundOutcome out;
  out.payloads.resize(workers_);
  out.rows.resize(workers_);
  double max_busy = 0.0;
  for (std::size_t w = 0; w < workers_; ++w) {
    if (!frames[w]) continue;
    dev.absorb_stats(frames[w]->io, frames[w]->shards);
    if (!frames[w]->sums.empty()) dev.merge_sums(frames[w]->sums);
    out.rows[w] = PassWorkerIo{w, frames[w]->io, frames[w]->busy, 0.0,
                               frames[w]->peak_bytes};
    max_busy = std::max(max_busy, frames[w]->busy);
  }
  for (std::size_t w = 0; w < workers_; ++w) {
    if (frames[w] && frames[w]->status == 0) {
      out.rows[w].barrier_seconds = max_busy - out.rows[w].seconds;
      out.payloads[w] = std::move(frames[w]->payload);
    }
  }
  // Supervision: each failed worker costs one failure event; with no retry
  // budget the failure is fatal (the seed behavior), otherwise the worker's
  // units re-execute inline under recover_worker.
  for (std::size_t w = 0; w < workers_; ++w) {
    if (!fails[w]) continue;
    ++failures_;
    ctx_->note_supervision(
        SupervisionEvent{round_no_, w, fails[w]->kind, fails[w]->detail});
    if (wt.max_worker_retries == 0) {
      throw WorkerDied(w, "worker " + std::to_string(w) + " died in round " +
                              std::to_string(round_no_) + " (" +
                              fails[w]->detail + ")");
    }
    recover_worker(w, body, out);
  }
  for (std::size_t w = 0; w < workers_; ++w) {
    if (frames[w] && frames[w]->status != 0) {
      std::string msg(reinterpret_cast<const char*>(frames[w]->payload.data()),
                      frames[w]->payload.size());
      throw std::runtime_error("worker " + std::to_string(w) + ": " + msg);
    }
  }
  return out;
}

RoundOutcome WorkerGroup::round_inline(const RoundBody& body) {
  const WorkerTuning wt = ctx_->worker_tuning();
  BlockDevice& dev = ctx_->device();
  RoundOutcome out;
  out.payloads.resize(workers_);
  out.rows.resize(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    // Inline rounds have no process to kill, hang or corrupt a pipe on; all
    // three injections are simulated as a pre-body failure of this worker,
    // so the supervisor's recovery path is exercised mode-independently.
    const char* injected = nullptr;
    if (wt.kill_round == round_no_ && wt.kill_worker == w) {
      injected = "death";
    } else if (wt.hang_round == round_no_ && wt.hang_worker == w) {
      injected = "timeout";
    } else if (wt.corrupt_round == round_no_ && wt.corrupt_worker == w) {
      injected = "corrupt-frame";
    }
    if (injected != nullptr) {
      ++failures_;
      ctx_->note_supervision(SupervisionEvent{
          round_no_, w, injected, "injected inline failure"});
      if (wt.max_worker_retries == 0) {
        throw WorkerDied(w, "worker " + std::to_string(w) +
                                " killed inline in round " +
                                std::to_string(round_no_));
      }
      recover_worker(w, body, out);
      continue;
    }
    const IoStats io0 = dev.stats();
    const auto t0 = std::chrono::steady_clock::now();
    out.payloads[w] = body(*ctx_, w);
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Sequential execution: the barrier is free by construction.
    out.rows[w] = PassWorkerIo{w, dev.stats() - io0, busy, 0.0, 0};
  }
  return out;
}

}  // namespace emsplit

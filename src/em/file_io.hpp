// file_io.hpp — streaming import/export between flat record files and
// external vectors.
//
// The CLI and examples move datasets between the host filesystem and a
// block device.  These helpers stream block-sized pieces, so a dataset
// never has to fit in host memory and the device-side cost stays the
// expected ceil(n/B) I/Os.  The file format is the natural one: a raw
// array of trivially copyable records, no header (the record type is the
// schema; the record count is the file size divided by the record size).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {

namespace detail {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

inline FileHandle open_file(const std::string& path, const char* mode) {
  FileHandle f(std::fopen(path.c_str(), mode));
  if (f == nullptr) {
    throw std::runtime_error("file_io: cannot open " + path);
  }
  return f;
}

}  // namespace detail

/// Number of whole records of type T in `path`.
template <EmRecord T>
[[nodiscard]] std::size_t file_record_count(const std::string& path) {
  auto f = detail::open_file(path, "rb");
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    throw std::runtime_error("file_io: cannot seek " + path);
  }
  const long bytes = std::ftell(f.get());
  if (bytes < 0) throw std::runtime_error("file_io: cannot tell " + path);
  if (static_cast<std::size_t>(bytes) % sizeof(T) != 0) {
    throw std::runtime_error("file_io: " + path +
                             " is not a whole number of records");
  }
  return static_cast<std::size_t>(bytes) / sizeof(T);
}

namespace detail {

/// Host staging size (in blocks of records) for file transfers: one batch of
/// the current tuning, clamped so staging plus the stream's own buffers
/// still fit the budget.
template <EmRecord T>
[[nodiscard]] std::size_t file_stage_blocks(const Context& ctx) {
  const std::size_t mem_blocks = ctx.mem_bytes() / ctx.block_bytes();
  const std::size_t spare =
      mem_blocks > ctx.stream_blocks() ? mem_blocks - ctx.stream_blocks() : 1;
  return std::max<std::size_t>(
      1, std::min(ctx.io_tuning().batch_blocks, spare));
}

}  // namespace detail

/// Stream a flat record file onto the device as a new EmVector.
/// Host memory use: one batch of staging blocks plus the writer's buffers,
/// both budgeted.  The writer inherits the context's batching/async tuning.
template <EmRecord T>
[[nodiscard]] EmVector<T> import_file(Context& ctx, const std::string& path) {
  const std::size_t n = file_record_count<T>(path);
  auto f = detail::open_file(path, "rb");
  EmVector<T> vec(ctx, n);
  const std::size_t b = ctx.block_records<T>();
  const std::size_t stage = detail::file_stage_blocks<T>(ctx) * b;
  auto res = ctx.budget().reserve(stage * sizeof(T));
  std::vector<T> buf(stage);
  StreamWriter<T> writer(vec);
  std::size_t remaining = n;
  while (remaining > 0) {
    const std::size_t take = std::min(stage, remaining);
    if (std::fread(buf.data(), sizeof(T), take, f.get()) != take) {
      throw std::runtime_error("file_io: short read from " + path);
    }
    for (std::size_t i = 0; i < take; ++i) writer.push(buf[i]);
    remaining -= take;
  }
  writer.finish();
  return vec;
}

/// Stream an EmVector into a flat record file (overwriting it).
template <EmRecord T>
void export_file(const EmVector<T>& vec, const std::string& path) {
  auto f = detail::open_file(path, "wb");
  Context& ctx = vec.context();
  const std::size_t b = vec.block_records();
  const std::size_t stage = detail::file_stage_blocks<T>(ctx) * b;
  auto res = ctx.budget().reserve(stage * sizeof(T));
  std::vector<T> buf(stage);
  StreamReader<T> reader(vec);
  while (!reader.done()) {
    std::size_t filled = 0;
    while (filled < stage && !reader.done()) buf[filled++] = reader.next();
    if (std::fwrite(buf.data(), sizeof(T), filled, f.get()) != filled) {
      throw std::runtime_error("file_io: short write to " + path);
    }
  }
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("file_io: flush failed for " + path);
  }
}

}  // namespace emsplit

// context.hpp — bundles the machine parameters of one EM computation.
//
// A Context owns the memory budget (capacity M bytes) and references the
// block device (block size B bytes).  Algorithms receive a Context& and
// derive per-record-type capacities from it:
//
//   ctx.block_records<T>()  — the model's B, in records of type T
//   ctx.mem_records<T>()    — the model's M, in records of type T
//
// The model requires M >= 2B; the constructor enforces it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "em/block_device.hpp"
#include "em/io_pipeline.hpp"
#include "em/memory_budget.hpp"
#include "em/phase_profile.hpp"
#include "em/thread_pool.hpp"

namespace emsplit {

class CheckpointJournal;
class PassTraceLog;

/// Knobs for the batched / asynchronous I/O subsystem (docs/model.md,
/// "I/O batching and asynchrony").  The default — one block per call, no
/// read-ahead, synchronous — reproduces the classic single-buffered streams
/// exactly, I/O count for I/O count.
struct IoTuning {
  /// Blocks the stream classes move per device call (read_blocks /
  /// write_blocks batching).  Only takes effect for record types whose size
  /// divides the block size (otherwise per-block tail padding makes
  /// multi-block record spans discontiguous and streams fall back to 1).
  std::size_t batch_blocks = 1;
  /// Extra in-flight batches per stream — the read-ahead / write-behind
  /// depth.  Each stream's budgeted footprint is
  /// batch_blocks * (1 + queue_depth) blocks whether or not async is on.
  std::size_t queue_depth = 0;
  /// Service queued batches on the background I/O worker so transfers
  /// overlap with computation.  Pointless without queue_depth >= 1.  Never
  /// changes I/O counts for fully consumed streams (the determinism
  /// contract): geometry derives from stream_blocks(), which ignores this
  /// flag.
  bool async = false;
};

/// Knobs for the CPU side (docs/model.md, "CPU parallelism and the
/// determinism contract").  The split mirrors IoTuning's: `sort_shards` is
/// *geometry* — it shapes how an in-memory chunk is cut into independently
/// sorted shards, deterministically — while `threads` is pure *execution
/// width* and never affects outputs or IoStats.  Any thread count replays
/// the same shard geometry bit for bit.
struct CpuTuning {
  /// Execution lanes for parallel kernels: the caller plus threads - 1 pool
  /// workers.  threads = 1 (the default) runs everything on the calling
  /// thread with no pool at all, reproducing the classic serial library.
  std::size_t threads = 1;
  /// Shards per in-memory chunk sort (run formation, segment sorts,
  /// partition leaves).  A geometry knob like batch_blocks: shards > 1 sorts
  /// shard-wise and merges, which is still bit-identical to one std::sort
  /// under a total order (and under any comparator for a fixed shard count).
  /// Defaults to 1 so the default path is the seed path, instruction for
  /// instruction.
  std::size_t sort_shards = 1;
};

/// Knobs for the multi-process worker layer (em/worker_group.hpp,
/// docs/model.md "Multi-worker partitioning and the PEM model").  Like
/// shards and batch_blocks, `workers` is geometry, never output: the
/// distributed passes decompose into work units whose shape depends only on
/// (n, B, M, tuning); W merely assigns units to processes, so every W
/// produces bit-identical bytes and identical logical IoStats totals.
struct WorkerTuning {
  /// Cooperating workers per distributed pass.  0 (the default) disables the
  /// distributed path entirely — algorithms run the classic single-process
  /// code.  1 runs the distributed protocol with a single worker (same
  /// schedule as any other W; useful as the parity baseline).
  std::size_t workers = 0;
  /// Crash injection for the resume tests: worker `kill_worker` dies
  /// (`_exit(137)` when forked, WorkerDied when inline) at the start of
  /// distributed round `kill_round` (1-based).  kill_round = 0 disarms.
  std::size_t kill_worker = 0;
  std::uint64_t kill_round = 0;
  /// Round supervision (em/worker_group.hpp, "Worker supervision" in
  /// docs/model.md).  0 — the default and the seed behavior — makes any
  /// worker failure fatal to the pass (WorkerDied; a journaled caller
  /// resumes).  N >= 1 lets the supervisor re-execute a failed worker's unit
  /// schedule inline up to N times per worker per round, with exponential
  /// backoff starting at `retry_backoff`.  Re-executed I/O is attributed to
  /// IoStats::worker_retries; base counts stay identical to the fault-free
  /// run (the units are idempotent by the W-invariance contract).
  std::uint64_t max_worker_retries = 0;
  std::chrono::microseconds retry_backoff{0};
  /// Per-round deadline in seconds for forked workers (0 = no deadline, the
  /// seed's blocking drain).  A worker whose frame has not fully arrived by
  /// the deadline is SIGKILLed and treated as a crash — recoverable when
  /// max_worker_retries > 0.  A spurious timeout is safe: the unit schedule
  /// is idempotent, so re-execution merely costs worker_retries.
  double worker_timeout = 0.0;
  /// Elastic degradation: after this many worker failures within one group
  /// (counted across rounds), remaining rounds re-plan at half the workers
  /// (floor, min 1) — output-transparent by W-invariance.  0 disables.
  std::uint64_t degrade_after = 0;
  /// Hang injection: worker `hang_worker` completes its round body, then
  /// sleeps forever *before* writing its frame in round `hang_round` —
  /// proving completed work is safely re-executable.  hang_round = 0 disarms.
  std::size_t hang_worker = 0;
  std::uint64_t hang_round = 0;
  /// Frame-corruption injection: worker `corrupt_worker`'s result frame for
  /// round `corrupt_round` has one payload byte flipped after the integrity
  /// checksum is computed.  corrupt_round = 0 disarms.
  std::size_t corrupt_worker = 0;
  std::uint64_t corrupt_round = 0;
  /// Memory-partitioning width: each distributed worker plans against and is
  /// budgeted M / mem_workers bytes, so any W <= mem_workers keeps the
  /// aggregate in-flight footprint <= M.  A *geometry* knob (it shapes unit
  /// sizes), deliberately separate from `workers` so W itself stays
  /// execution-only: every W at fixed mem_workers is bit-identical.  1 — the
  /// default — reproduces the seed plan (workers share the full budget).
  std::size_t mem_workers = 1;
};

/// One structured supervision event from a distributed round — appended to
/// the owning pass's PassTrace row and the JSONL trace.  `kind` is one of
/// "death" (child died / pipe EOF before a complete frame), "timeout" (a
/// worker was SIGKILLed past the round deadline), "corrupt-frame" (a frame
/// failed its integrity check), "retry" (a failed worker's units were
/// re-executed), "give-up" (retries exhausted; the failure became fatal), or
/// "degrade" (the group re-planned at half the workers).
struct SupervisionEvent {
  std::uint64_t round = 0;
  std::size_t worker = 0;
  std::string kind;
  std::string detail;
};

/// One worker's contribution to a distributed pass — the per-worker analogue
/// of a PassTrace row's per-shard deltas.  `seconds` is the worker's busy
/// time inside the round body; `barrier_seconds` the time it waited at the
/// closing barrier for the slowest peer (max busy − own busy).
struct PassWorkerIo {
  std::size_t worker = 0;
  IoStats io;
  double seconds = 0.0;
  double barrier_seconds = 0.0;
  /// The worker's peak MemoryBudget reservation inside its round bodies —
  /// what the M/mem_workers partitioning contract is asserted against
  /// (summed over any mem_workers concurrent workers it stays <= M).  0 when
  /// unknown (inline rounds run against the coordinator's own budget).
  std::uint64_t peak_bytes = 0;
};

class Context {
 public:
  /// `mem_bytes` is the internal-memory capacity M (in bytes); the block
  /// size B comes from the device.
  Context(BlockDevice& device, std::size_t mem_bytes)
      : device_(&device), budget_(mem_bytes) {
    if (mem_bytes < 2 * device.block_bytes()) {
      throw std::invalid_argument(
          "Context: the EM model requires M >= 2B (mem_bytes >= 2 * "
          "block_bytes)");
    }
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] BlockDevice& device() const noexcept { return *device_; }
  [[nodiscard]] MemoryBudget& budget() noexcept { return budget_; }
  [[nodiscard]] const MemoryBudget& budget() const noexcept { return budget_; }

  [[nodiscard]] std::size_t mem_bytes() const noexcept {
    return budget_.capacity();
  }
  [[nodiscard]] std::size_t block_bytes() const noexcept {
    return device_->block_bytes();
  }

  /// B in records of type T: floor(block_bytes / sizeof(T)).  A block stores
  /// whole records only; when the record size does not divide the block size
  /// the tail of each block is unused (the device supports prefix transfers
  /// at the same one-I/O cost).
  template <typename T>
  [[nodiscard]] std::size_t block_records() const {
    static_assert(sizeof(T) > 0);
    const std::size_t b = block_bytes() / sizeof(T);
    if (b == 0) {
      throw std::invalid_argument(
          "Context::block_records: record larger than one block");
    }
    return b;
  }

  /// M in records of type T.
  template <typename T>
  [[nodiscard]] std::size_t mem_records() const {
    return mem_bytes() / sizeof(T);
  }

  /// Snapshot of the underlying device's I/O statistics.
  [[nodiscard]] IoStats io() const noexcept { return device_->stats(); }

  /// Member-device count behind the context's device (1 for a plain device).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return device_->shard_count();
  }

  /// Per-shard counter snapshots (empty for an unsharded device).
  [[nodiscard]] std::vector<IoStats> shard_stats() const {
    return device_->shard_stats();
  }

  /// Configure I/O batching / asynchrony.  Throws if batch_blocks is 0 or a
  /// reader/writer pair of batched streams could not fit in M (the model
  /// needs at least input + output streaming to make progress).  Switching
  /// async off drains and joins the worker; only call at quiescent points
  /// (no live streams).
  void set_io_tuning(const IoTuning& tuning) {
    if (tuning.batch_blocks == 0) {
      throw std::invalid_argument(
          "Context::set_io_tuning: batch_blocks must be positive");
    }
    const std::size_t per_stream =
        tuning.batch_blocks * (1 + tuning.queue_depth);
    if (2 * per_stream * block_bytes() > mem_bytes()) {
      throw std::invalid_argument(
          "Context::set_io_tuning: a reader/writer stream pair would exceed "
          "M (shrink batch_blocks or queue_depth)");
    }
    tuning_ = tuning;
    if (tuning_.async) {
      if (pipeline_ == nullptr) pipeline_ = std::make_unique<IoPipeline>();
    } else {
      pipeline_.reset();
    }
  }
  [[nodiscard]] const IoTuning& io_tuning() const noexcept { return tuning_; }

  /// The background I/O worker, or nullptr when running synchronously.
  [[nodiscard]] IoPipeline* pipeline() const noexcept {
    return pipeline_.get();
  }

  /// Blocks of memory one stream's buffers occupy under the current tuning.
  /// Deliberately independent of the async flag: sync and async runs at the
  /// same tuning see identical geometry (fan-ins, chunk sizes) and therefore
  /// perform bit-identical I/O counts.
  [[nodiscard]] std::size_t stream_blocks() const noexcept {
    return tuning_.batch_blocks * (1 + tuning_.queue_depth);
  }

  /// Configure CPU parallelism.  Throws if either knob is 0.  threads > 1
  /// spawns (or resizes) the shared worker pool; threads = 1 tears it down.
  /// Only call at quiescent points (no parallel kernel in flight).
  void set_cpu_tuning(const CpuTuning& tuning) {
    if (tuning.threads == 0) {
      throw std::invalid_argument(
          "Context::set_cpu_tuning: threads must be positive");
    }
    if (tuning.sort_shards == 0) {
      throw std::invalid_argument(
          "Context::set_cpu_tuning: sort_shards must be positive");
    }
    cpu_tuning_ = tuning;
    if (tuning.threads > 1) {
      if (cpu_pool_ == nullptr || cpu_pool_->lanes() != tuning.threads) {
        cpu_pool_.reset();
        cpu_pool_ = std::make_unique<ThreadPool>(tuning.threads - 1);
      }
    } else {
      cpu_pool_.reset();
    }
  }
  [[nodiscard]] const CpuTuning& cpu_tuning() const noexcept {
    return cpu_tuning_;
  }

  /// The shared CPU worker pool, or nullptr when threads = 1.
  [[nodiscard]] ThreadPool* cpu_pool() const noexcept {
    return cpu_pool_.get();
  }

  /// Execution lanes parallel kernels may use (>= 1).  Never part of any
  /// geometry decision — see CpuTuning.
  [[nodiscard]] std::size_t cpu_lanes() const noexcept {
    return cpu_tuning_.threads;
  }

  /// Shards per in-memory chunk sort (geometry; >= 1).
  [[nodiscard]] std::size_t sort_shards() const noexcept {
    return cpu_tuning_.sort_shards;
  }

  /// Optional per-phase I/O attribution (see phase_profile.hpp).  Null by
  /// default; benches attach one to explain where the scans go.
  void set_profile(PhaseProfile* profile) noexcept { profile_ = profile; }
  [[nodiscard]] PhaseProfile* profile() const noexcept { return profile_; }

  /// Retry policy for transient device faults (docs/model.md, "Failure
  /// model, retries, and recovery").  Forwarded to the device, where the
  /// retry loop lives — so it covers every transfer, the async I/O worker's
  /// included.  Only call at quiescent points (no transfers in flight).
  void set_fault_policy(const FaultPolicy& policy) noexcept {
    fault_policy_ = policy;
    device_->set_fault_policy(policy);
  }
  [[nodiscard]] const FaultPolicy& fault_policy() const noexcept {
    return fault_policy_;
  }

  /// Optional checkpoint journal (see checkpoint.hpp).  Null by default —
  /// algorithms then run exactly the seed code path.  When attached, the
  /// long passes (external sort, multi-partition) publish pass boundaries to
  /// it and consult it on entry to resume an interrupted run.  Non-owning.
  void set_checkpoint(CheckpointJournal* journal) noexcept {
    checkpoint_ = journal;
  }
  [[nodiscard]] CheckpointJournal* checkpoint() const noexcept {
    return checkpoint_;
  }

  /// Optional structured pass-trace sink (see pass_engine.hpp).  Null by
  /// default — the engine then records nothing.  When attached, every
  /// engine-run pass appends one PassTrace row (name, I/Os, bytes, wall
  /// time, retries, threads).  Non-owning; main-thread only.
  void set_pass_trace(PassTraceLog* log) noexcept { pass_trace_ = log; }
  [[nodiscard]] PassTraceLog* pass_trace() const noexcept {
    return pass_trace_;
  }

  /// Optional shared block cache (see block_cache.hpp).  Attaches to (or, on
  /// nullptr, detaches from) the context's device, which consults it in
  /// read_core and feeds it in write_core.  The cache charges its memory to
  /// this context's budget and registers itself as the budget's reclaimer —
  /// algorithms reserving all of M shrink it automatically.  Non-owning;
  /// main-thread only, at quiescent points.
  void set_block_cache(BlockCache* cache) noexcept {
    device_->set_cache(cache);
  }
  [[nodiscard]] BlockCache* block_cache() const noexcept {
    return device_->cache();
  }

  /// Configure the multi-process worker layer.  Throws on absurd widths; 0
  /// disables the distributed path (the default and the seed behavior).
  /// Main-thread only, at quiescent points (no distributed round in flight).
  void set_worker_tuning(const WorkerTuning& tuning) {
    if (tuning.workers > 64) {
      throw std::invalid_argument(
          "Context::set_worker_tuning: workers must be <= 64");
    }
    if (tuning.mem_workers == 0) {
      throw std::invalid_argument(
          "Context::set_worker_tuning: mem_workers must be >= 1");
    }
    if (tuning.worker_timeout < 0.0) {
      throw std::invalid_argument(
          "Context::set_worker_tuning: worker_timeout must be >= 0");
    }
    worker_tuning_ = tuning;
  }
  [[nodiscard]] const WorkerTuning& worker_tuning() const noexcept {
    return worker_tuning_;
  }
  /// Cooperating workers per distributed pass (0 = classic path).
  [[nodiscard]] std::size_t workers() const noexcept {
    return worker_tuning_.workers;
  }

  /// Per-worker trace channel, the multi-process sibling of note_pass_hwm:
  /// a distributed round deposits its per-worker deltas here and the pass
  /// engine's scope collects them into the pass's trace row on exit.
  /// Appending, so a pass of several rounds accumulates; take resets.
  void note_pass_workers(std::vector<PassWorkerIo> rows) {
    pass_workers_.insert(pass_workers_.end(),
                         std::make_move_iterator(rows.begin()),
                         std::make_move_iterator(rows.end()));
  }
  [[nodiscard]] std::vector<PassWorkerIo> take_pass_workers() noexcept {
    return std::exchange(pass_workers_, {});
  }

  /// Supervision-event channel, same shape as note_pass_workers: the worker
  /// supervisor deposits structured events (retry / timeout / corrupt-frame /
  /// give-up / degrade) here and the pass engine's scope collects them into
  /// the pass's trace row on exit.
  void note_supervision(SupervisionEvent event) {
    supervision_.push_back(std::move(event));
  }
  [[nodiscard]] std::vector<SupervisionEvent> take_supervision() noexcept {
    return std::exchange(supervision_, {});
  }

  /// In-pass memory high-water-mark channel.  A pass that tracks its own
  /// peak working set (e.g. the distribution sort's in-place final pass,
  /// whose segment groups are data-dependent) publishes the max here; the
  /// pass engine's scope collects it into the pass's trace row on exit.
  /// Monotonic max within a pass; take_pass_hwm() resets for the next one.
  void note_pass_hwm(std::uint64_t bytes) noexcept {
    if (bytes > pass_hwm_) pass_hwm_ = bytes;
  }
  [[nodiscard]] std::uint64_t take_pass_hwm() noexcept {
    const std::uint64_t v = pass_hwm_;
    pass_hwm_ = 0;
    return v;
  }

 private:
  BlockDevice* device_;
  MemoryBudget budget_;
  PhaseProfile* profile_ = nullptr;
  CheckpointJournal* checkpoint_ = nullptr;
  PassTraceLog* pass_trace_ = nullptr;
  FaultPolicy fault_policy_;
  IoTuning tuning_;
  CpuTuning cpu_tuning_;
  WorkerTuning worker_tuning_;
  std::uint64_t pass_hwm_ = 0;
  std::vector<PassWorkerIo> pass_workers_;
  std::vector<SupervisionEvent> supervision_;
  std::unique_ptr<IoPipeline> pipeline_;
  std::unique_ptr<ThreadPool> cpu_pool_;
};

}  // namespace emsplit

// context.hpp — bundles the machine parameters of one EM computation.
//
// A Context owns the memory budget (capacity M bytes) and references the
// block device (block size B bytes).  Algorithms receive a Context& and
// derive per-record-type capacities from it:
//
//   ctx.block_records<T>()  — the model's B, in records of type T
//   ctx.mem_records<T>()    — the model's M, in records of type T
//
// The model requires M >= 2B; the constructor enforces it.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "em/block_device.hpp"
#include "em/memory_budget.hpp"
#include "em/phase_profile.hpp"

namespace emsplit {

class Context {
 public:
  /// `mem_bytes` is the internal-memory capacity M (in bytes); the block
  /// size B comes from the device.
  Context(BlockDevice& device, std::size_t mem_bytes)
      : device_(&device), budget_(mem_bytes) {
    if (mem_bytes < 2 * device.block_bytes()) {
      throw std::invalid_argument(
          "Context: the EM model requires M >= 2B (mem_bytes >= 2 * "
          "block_bytes)");
    }
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] BlockDevice& device() const noexcept { return *device_; }
  [[nodiscard]] MemoryBudget& budget() noexcept { return budget_; }
  [[nodiscard]] const MemoryBudget& budget() const noexcept { return budget_; }

  [[nodiscard]] std::size_t mem_bytes() const noexcept {
    return budget_.capacity();
  }
  [[nodiscard]] std::size_t block_bytes() const noexcept {
    return device_->block_bytes();
  }

  /// B in records of type T: floor(block_bytes / sizeof(T)).  A block stores
  /// whole records only; when the record size does not divide the block size
  /// the tail of each block is unused (the device supports prefix transfers
  /// at the same one-I/O cost).
  template <typename T>
  [[nodiscard]] std::size_t block_records() const {
    static_assert(sizeof(T) > 0);
    const std::size_t b = block_bytes() / sizeof(T);
    if (b == 0) {
      throw std::invalid_argument(
          "Context::block_records: record larger than one block");
    }
    return b;
  }

  /// M in records of type T.
  template <typename T>
  [[nodiscard]] std::size_t mem_records() const {
    return mem_bytes() / sizeof(T);
  }

  /// Live I/O statistics of the underlying device.
  [[nodiscard]] const IoStats& io() const noexcept { return device_->stats(); }

  /// Optional per-phase I/O attribution (see phase_profile.hpp).  Null by
  /// default; benches attach one to explain where the scans go.
  void set_profile(PhaseProfile* profile) noexcept { profile_ = profile; }
  [[nodiscard]] PhaseProfile* profile() const noexcept { return profile_; }

 private:
  BlockDevice* device_;
  MemoryBudget budget_;
  PhaseProfile* profile_ = nullptr;
};

}  // namespace emsplit

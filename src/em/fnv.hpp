// fnv.hpp — FNV-1a, the repo's one checksum.
//
// Used for per-block integrity sums (block_device.cpp), worker result-frame
// integrity (worker_group.cpp), and output fingerprints in tests.  One shared
// definition so a sum recorded by one layer is verifiable by another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace emsplit {

/// FNV-1a over a byte span.
inline std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace emsplit

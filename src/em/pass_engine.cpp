// pass_engine.cpp — trace sink and the pass envelope's record step.
#include "em/pass_engine.hpp"

namespace emsplit {

void PassTraceLog::record(PassTrace trace) {
  rows_.push_back(std::move(trace));
}

void PassTraceLog::reset() { rows_.clear(); }

IoStats PassTraceLog::total_io() const noexcept {
  IoStats total;
  for (const PassTrace& t : rows_) {
    if (!t.resumed) total += t.io.base();
  }
  return total;
}

PassRunner::Scope::~Scope() {
  PassTraceLog* log = runner_.ctx_->pass_trace();
  if (log == nullptr) return;
  PassTrace t;
  t.job = runner_.plan_.job;
  t.pass = label_;
  t.index = index_;
  t.io = runner_.ctx_->io() - start_io_;
  t.bytes = t.io.total() * runner_.ctx_->block_bytes();
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t.threads = runner_.ctx_->cpu_lanes();
  t.resumed = false;
  log->record(std::move(t));
}

void PassRunner::note_resumed(const char* label, std::uint64_t passes) {
  if (passes == 0) return;
  seq_ += passes;
  PassTraceLog* log = ctx_->pass_trace();
  if (log == nullptr) return;
  PassTrace t;
  t.job = plan_.job;
  t.pass = label;
  t.index = seq_;
  t.threads = ctx_->cpu_lanes();
  t.resumed = true;
  log->record(std::move(t));
}

}  // namespace emsplit

// pass_engine.cpp — trace sink, the pass envelope's record step, and the
// JSON-lines export behind `--trace=FILE`.
#include "em/pass_engine.hpp"

#include <algorithm>
#include <cstdio>

namespace emsplit {

void PassTraceLog::record(PassTrace trace) {
  rows_.push_back(std::move(trace));
}

void PassTraceLog::reset() { rows_.clear(); }

IoStats PassTraceLog::total_io() const noexcept {
  IoStats total;
  for (const PassTrace& t : rows_) {
    if (!t.resumed) total += t.io.base();
  }
  return total;
}

PassRunner::Scope::~Scope() {
  PassTraceLog* log = runner_.ctx_->pass_trace();
  if (log == nullptr) return;
  PassTrace t;
  t.job = runner_.plan_.job;
  t.pass = label_;
  t.index = index_;
  t.io = runner_.ctx_->io() - start_io_;
  t.bytes = t.io.total() * runner_.ctx_->block_bytes();
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t.threads = runner_.ctx_->cpu_lanes();
  t.resumed = false;
  t.hwm_bytes = runner_.ctx_->take_pass_hwm();
  t.worker_io = runner_.ctx_->take_pass_workers();
  t.supervision = runner_.ctx_->take_supervision();
  // Per-shard breakdown: the delta of each member's counters over the pass.
  // The member count is fixed for the device's lifetime, so the two
  // snapshots always align.
  const std::vector<IoStats> now = runner_.ctx_->shard_stats();
  if (!now.empty() && now.size() == start_shards_.size()) {
    t.shard_io.reserve(now.size());
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (std::size_t i = 0; i < now.size(); ++i) {
      t.shard_io.push_back(now[i] - start_shards_[i]);
      const std::uint64_t tot = t.shard_io.back().total();
      sum += tot;
      max = std::max(max, tot);
    }
    t.balance = sum == 0 ? 1.0
                         : static_cast<double>(max) *
                               static_cast<double>(now.size()) /
                               static_cast<double>(sum);
  }
  log->record(std::move(t));
}

void PassRunner::note_resumed(const char* label, std::uint64_t passes) {
  if (passes == 0) return;
  seq_ += passes;
  PassTraceLog* log = ctx_->pass_trace();
  if (log == nullptr) return;
  PassTrace t;
  t.job = plan_.job;
  t.pass = label;
  t.index = seq_;
  t.threads = ctx_->cpu_lanes();
  t.resumed = true;
  log->record(std::move(t));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string pass_trace_json(const PassTrace& t) {
  std::string s = "{\"job\":\"";
  append_escaped(s, t.job);
  s += "\",\"pass\":\"";
  append_escaped(s, t.pass);
  s += "\",\"index\":" + std::to_string(t.index);
  s += ",\"reads\":" + std::to_string(t.io.reads);
  s += ",\"writes\":" + std::to_string(t.io.writes);
  s += ",\"retries\":" + std::to_string(t.io.retries);
  s += ",\"worker_retries\":" + std::to_string(t.io.worker_retries);
  s += ",\"cache_hits\":" + std::to_string(t.io.cache_hits);
  s += ",\"cache_misses\":" + std::to_string(t.io.cache_misses);
  s += ",\"bytes\":" + std::to_string(t.bytes);
  s += ",\"hwm_bytes\":" + std::to_string(t.hwm_bytes);
  s += ",\"seconds\":";
  append_double(s, t.seconds);
  s += ",\"threads\":" + std::to_string(t.threads);
  s += ",\"resumed\":";
  s += t.resumed ? "true" : "false";
  s += ",\"balance\":";
  append_double(s, t.balance);
  s += ",\"shards\":[";
  for (std::size_t i = 0; i < t.shard_io.size(); ++i) {
    if (i > 0) s += ',';
    const IoStats& m = t.shard_io[i];
    s += "{\"reads\":" + std::to_string(m.reads) +
         ",\"writes\":" + std::to_string(m.writes) +
         ",\"retries\":" + std::to_string(m.retries) + "}";
  }
  s += "],\"workers\":[";
  for (std::size_t i = 0; i < t.worker_io.size(); ++i) {
    if (i > 0) s += ',';
    const PassWorkerIo& w = t.worker_io[i];
    s += "{\"id\":" + std::to_string(w.worker) +
         ",\"reads\":" + std::to_string(w.io.reads) +
         ",\"writes\":" + std::to_string(w.io.writes) +
         ",\"retries\":" + std::to_string(w.io.retries) +
         ",\"worker_retries\":" + std::to_string(w.io.worker_retries) +
         ",\"peak_bytes\":" + std::to_string(w.peak_bytes) + ",\"seconds\":";
    append_double(s, w.seconds);
    s += ",\"barrier_seconds\":";
    append_double(s, w.barrier_seconds);
    s += "}";
  }
  s += "],\"supervision\":[";
  for (std::size_t i = 0; i < t.supervision.size(); ++i) {
    if (i > 0) s += ',';
    const SupervisionEvent& e = t.supervision[i];
    s += "{\"round\":" + std::to_string(e.round) +
         ",\"worker\":" + std::to_string(e.worker) + ",\"kind\":\"";
    append_escaped(s, e.kind);
    s += "\",\"detail\":\"";
    append_escaped(s, e.detail);
    s += "\"}";
  }
  s += "]}";
  return s;
}

bool write_pass_trace_jsonl(const PassTraceLog& log, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const PassTrace& t : log.rows()) {
    const std::string line = pass_trace_json(t) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      ok = false;
      break;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace emsplit

#include "em/io_pipeline.hpp"

namespace emsplit {

IoPipeline::IoPipeline() : worker_([this] { worker_loop(); }) {}

IoPipeline::~IoPipeline() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_one();
  worker_.join();
}

IoPipeline::Ticket IoPipeline::submit(std::function<void()> job) {
  Ticket ticket = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    queue_.emplace_back(ticket, std::move(job));
  }
  work_ready_.notify_one();
  return ticket;
}

void IoPipeline::wait(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return completed_ >= ticket; });
  const auto it = errors_.find(ticket);
  if (it != errors_.end()) {
    const std::exception_ptr err = it->second;
    errors_.erase(it);
    std::rethrow_exception(err);
  }
}

void IoPipeline::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const Ticket last = next_ticket_ - 1;
  job_done_.wait(lock, [&] { return completed_ >= last; });
}

void IoPipeline::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // stop only once the queue is drained
      continue;
    }
    auto [ticket, job] = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err != nullptr) errors_.emplace(ticket, err);
    completed_ = ticket;
    job_done_.notify_all();
  }
}

}  // namespace emsplit

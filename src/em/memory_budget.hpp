// memory_budget.hpp — enforcement of the EM model's M-word memory budget.
//
// The external-memory model allows an algorithm at most M words of internal
// memory.  Every in-memory buffer that holds *records* (stream block buffers,
// chunk sort arrays, splitter tables, per-group selection state, ...) is
// reserved against a MemoryBudget before use, and released via RAII.  Tests
// assert that `peak() <= capacity()` after each algorithm run, which turns
// the paper's "memory of size M" precondition into a checked invariant
// instead of a comment.
//
// Host-side bookkeeping that the model traditionally does not charge
// (allocation tables, the recursion stack, I/O counters) is not reserved;
// DESIGN.md §4 discusses this convention.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace emsplit {

/// Thrown when a reservation would exceed the configured capacity.  An
/// algorithm that triggers this has violated the EM model's preconditions —
/// it is a bug, not an environmental condition.
class BudgetExceeded : public std::logic_error {
 public:
  explicit BudgetExceeded(const std::string& what) : std::logic_error(what) {}
};

class MemoryReservation;

/// Tracks reserved bytes against a fixed capacity, with a peak high-water
/// mark.  All reservations are made on the main thread: CPU pool tasks
/// (em/thread_pool.hpp) receive their scratch from the caller, which sizes
/// it with try_reserve() before dispatch and falls back to the serial code
/// path when the budget has no room for per-thread state.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::size_t available() const noexcept {
    return capacity_ - used_;
  }

  /// Reserve `bytes`; throws BudgetExceeded if the budget cannot hold them.
  [[nodiscard]] MemoryReservation reserve(std::size_t bytes);

  /// Reserve `bytes` if they fit, nullopt otherwise.  For *optional* state —
  /// parallel kernels use it for per-thread scratch and degrade to their
  /// serial loop when M is too tight, rather than failing the run.
  [[nodiscard]] std::optional<MemoryReservation> try_reserve(
      std::size_t bytes);

  void reset_peak() noexcept { peak_ = used_; }

 private:
  friend class MemoryReservation;

  void acquire(std::size_t bytes);
  void release(std::size_t bytes) noexcept;

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  // Live reservation sizes (size -> count), reported by BudgetExceeded to
  // make over-budget bugs self-diagnosing.
  std::map<std::size_t, std::size_t> live_;
};

/// Move-only RAII handle for a slice of the budget.
class MemoryReservation {
 public:
  MemoryReservation() noexcept = default;
  MemoryReservation(MemoryBudget& budget, std::size_t bytes)
      : budget_(&budget), bytes_(bytes) {
    budget_->acquire(bytes_);
  }
  ~MemoryReservation() { release(); }

  MemoryReservation(MemoryReservation&& o) noexcept
      : budget_(o.budget_), bytes_(o.bytes_) {
    o.budget_ = nullptr;
    o.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& o) noexcept {
    if (this != &o) {
      release();
      budget_ = o.budget_;
      bytes_ = o.bytes_;
      o.budget_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Explicitly release before destruction (idempotent).
  void release() noexcept {
    if (budget_ != nullptr) {
      budget_->release(bytes_);
      budget_ = nullptr;
      bytes_ = 0;
    }
  }

 private:
  MemoryBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace emsplit

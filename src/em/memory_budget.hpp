// memory_budget.hpp — enforcement of the EM model's M-word memory budget.
//
// The external-memory model allows an algorithm at most M words of internal
// memory.  Every in-memory buffer that holds *records* (stream block buffers,
// chunk sort arrays, splitter tables, per-group selection state, ...) is
// reserved against a MemoryBudget before use, and released via RAII.  Tests
// assert that `peak() <= capacity()` after each algorithm run, which turns
// the paper's "memory of size M" precondition into a checked invariant
// instead of a comment.
//
// Host-side bookkeeping that the model traditionally does not charge
// (allocation tables, the recursion stack, I/O counters) is not reserved;
// DESIGN.md §4 discusses this convention.
//
// Reservations are internally synchronized: the block cache
// (em/block_cache.hpp) charges its entries from I/O worker threads while the
// main thread reserves algorithm state.  A *reclaimer* callback lets a
// scavenging consumer (the block cache, the service's bucket-scan cache)
// hold otherwise-idle budget: when a reservation finds the budget short, the
// registered reclaimers are asked — outside the budget lock, in registration
// order — to give bytes back before the reservation is refused.
//
// A *release listener* is the inverse hook: a single callback invoked after
// every release() that frees bytes, outside the budget lock.  The splitter
// service registers one to wake admission-queued queries the moment budget
// becomes available, replacing its former 500µs sleep-poll (docs/model.md,
// "The query hot path").  The listener must be noexcept and must not touch
// the budget re-entrantly beyond try_reserve/notify.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace emsplit {

/// Thrown when a reservation would exceed the configured capacity.  An
/// algorithm that triggers this has violated the EM model's preconditions —
/// it is a bug, not an environmental condition.
class BudgetExceeded : public std::logic_error {
 public:
  explicit BudgetExceeded(const std::string& what) : std::logic_error(what) {}
};

class MemoryReservation;

/// Tracks reserved bytes against a fixed capacity, with a peak high-water
/// mark.  Algorithm reservations are made on the main thread; CPU pool tasks
/// (em/thread_pool.hpp) receive their scratch from the caller, which sizes
/// it with try_reserve() before dispatch and falls back to the serial code
/// path when the budget has no room for per-thread state.  The counters are
/// mutex-guarded so the block cache may additionally charge and release
/// entries from I/O worker threads.
class MemoryBudget {
 public:
  /// Asked to release at least the given number of bytes back to the budget;
  /// returns how many bytes it actually released.  Called without the budget
  /// lock held — the reclaimer may release() reservations freely, but must
  /// not create new ones.
  using Reclaimer = std::function<std::size_t(std::size_t)>;

  explicit MemoryBudget(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  [[nodiscard]] std::size_t peak() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }
  [[nodiscard]] std::size_t available() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return capacity_ - used_;
  }

  /// Register a scavenger that is asked to release budget when a reservation
  /// falls short; returns a token for remove_reclaimer().  Reclaimers are
  /// consulted in registration order until the shortfall is covered.
  /// Register/remove at quiescent points (cache attach/detach).
  [[nodiscard]] std::uint64_t add_reclaimer(Reclaimer reclaimer) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = ++next_reclaimer_id_;
    reclaimers_.emplace_back(id, std::move(reclaimer));
    return id;
  }
  void remove_reclaimer(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = reclaimers_.begin(); it != reclaimers_.end(); ++it) {
      if (it->first == id) {
        reclaimers_.erase(it);
        return;
      }
    }
  }

  /// Register (or clear, with nullptr) the callback invoked after every
  /// release() that returns bytes to the budget.  One listener; called
  /// outside the budget lock and must be noexcept (release() is).
  void set_release_listener(std::function<void()> listener) {
    const std::lock_guard<std::mutex> lock(mu_);
    release_listener_ = std::move(listener);
  }

  /// Reserve `bytes`; throws BudgetExceeded if the budget cannot hold them
  /// even after asking the reclaimer to give back what it holds.
  [[nodiscard]] MemoryReservation reserve(std::size_t bytes);

  /// Reserve `bytes` if they fit, nullopt otherwise.  For *optional* state —
  /// parallel kernels use it for per-thread scratch and degrade to their
  /// serial loop when M is too tight, rather than failing the run.  With
  /// `allow_reclaim` (the default) a shortfall first asks the reclaimer to
  /// release scavenged bytes, so optional state sees the same budget it
  /// would without a cache attached; the cache's own growth passes false —
  /// a scavenger never steals from itself.
  [[nodiscard]] std::optional<MemoryReservation> try_reserve(
      std::size_t bytes, bool allow_reclaim = true);

  void reset_peak() noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    peak_ = used_;
  }

 private:
  friend class MemoryReservation;

  void acquire(std::size_t bytes);
  void release(std::size_t bytes) noexcept;
  /// Commit `bytes` if they fit right now (caller holds `mu_`).
  bool commit_locked(std::size_t bytes) noexcept;
  [[nodiscard]] std::string over_budget_message(std::size_t bytes) const;

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  // Live reservation sizes (size -> count), reported by BudgetExceeded to
  // make over-budget bugs self-diagnosing.
  std::map<std::size_t, std::size_t> live_;
  std::vector<std::pair<std::uint64_t, Reclaimer>> reclaimers_;
  std::uint64_t next_reclaimer_id_ = 0;
  std::function<void()> release_listener_;
  mutable std::mutex mu_;
};

/// Move-only RAII handle for a slice of the budget.
class MemoryReservation {
 public:
  MemoryReservation() noexcept = default;
  MemoryReservation(MemoryBudget& budget, std::size_t bytes)
      : budget_(&budget), bytes_(bytes) {
    budget_->acquire(bytes_);
  }
  ~MemoryReservation() { release(); }

  MemoryReservation(MemoryReservation&& o) noexcept
      : budget_(o.budget_), bytes_(o.bytes_) {
    o.budget_ = nullptr;
    o.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& o) noexcept {
    if (this != &o) {
      release();
      budget_ = o.budget_;
      bytes_ = o.bytes_;
      o.budget_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Explicitly release before destruction (idempotent).
  void release() noexcept {
    if (budget_ != nullptr) {
      budget_->release(bytes_);
      budget_ = nullptr;
      bytes_ = 0;
    }
  }

 private:
  friend class MemoryBudget;
  struct Adopt {};  // tag: the bytes were already committed by the budget
  MemoryReservation(MemoryBudget& budget, std::size_t bytes, Adopt) noexcept
      : budget_(&budget), bytes_(bytes) {}

  MemoryBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace emsplit

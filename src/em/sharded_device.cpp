#include "em/sharded_device.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace emsplit {

namespace {

/// Validates the member list before the base subobject needs a block size.
std::size_t facade_block_bytes(
    const std::vector<std::unique_ptr<BlockDevice>>& members) {
  if (members.empty()) {
    throw std::invalid_argument(
        "ShardedBlockDevice: needs at least one member device");
  }
  if (members.front() == nullptr) {
    throw std::invalid_argument("ShardedBlockDevice: null member device");
  }
  return members.front()->block_bytes();
}

/// Re-throw a member-level DeviceFault on the *logical* request it broke:
/// the shard and its local failure stay in the message, the structured range
/// is the caller's [first, first + count), and completed() is the number of
/// blocks of that logical request known to have transferred.
[[noreturn]] void rethrow_logical(const DeviceFault& df, std::size_t shard,
                                  const char* op, BlockId first,
                                  std::uint64_t count,
                                  std::uint64_t completed) {
  throw DeviceFault("shard " + std::to_string(shard) + ": " + df.what() +
                        " (logical blocks [" + std::to_string(first) + ", " +
                        std::to_string(first + count) + "))",
                    df.transient(), op, first, count, completed);
}

}  // namespace

ShardedBlockDevice::ShardedBlockDevice(
    std::vector<std::unique_ptr<BlockDevice>> members,
    std::size_t stripe_blocks)
    : BlockDevice(facade_block_bytes(members)),
      members_(std::move(members)),
      stripe_blocks_(stripe_blocks) {
  if (stripe_blocks_ == 0) {
    throw std::invalid_argument(
        "ShardedBlockDevice: stripe_blocks must be positive");
  }
  for (const auto& m : members_) {
    if (m == nullptr) {
      throw std::invalid_argument("ShardedBlockDevice: null member device");
    }
    if (m->block_bytes() != block_bytes()) {
      throw std::invalid_argument(
          "ShardedBlockDevice: members disagree on block size");
    }
    if (m->size_blocks() != 0 || m->allocated_blocks() != 0) {
      // Members must be fresh: the facade owns their whole address space
      // (growth happens only through do_grow, so each member stays a dense
      // array of its stripes).
      throw std::invalid_argument(
          "ShardedBlockDevice: member device already has blocks");
    }
  }
  facade_retries_by_shard_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    facade_retries_by_shard_[i].store(0, std::memory_order_relaxed);
  }
  // Parallel member submission is on by default only where it can win: with
  // several members AND more than one hardware thread.  On a single-core
  // host the per-sub-batch worker handoff is pure overhead (the dispatch is
  // geometry either way — logical I/O and bytes are identical), so the
  // default there is the serial walk.  Callers can force either path with
  // set_parallel_io().
  set_parallel_io(members_.size() > 1 &&
                  std::thread::hardware_concurrency() > 1);
}

ShardedBlockDevice::~ShardedBlockDevice() { flush_member_sidecars(); }

void ShardedBlockDevice::flush_member_sidecars() {
  if (!preserve_sidecars_) return;
  // Partition the facade's checksum table (logical ids) by owning member and
  // persist each member's share.  Runs before the member destructors: a
  // FileBlockDevice member will still manage its *own* ".sums" sidecar (an
  // empty one — facade checksums never reach member tables), which is why
  // these files use a distinct suffix.
  const std::vector<SumEntry> all = export_sums();
  std::vector<std::vector<SumEntry>> by_member(members_.size());
  for (const SumEntry& e : all) {
    by_member[locate(e.block).shard].push_back(e);
  }
  for (std::size_t i = 0; i < members_.size() && i < sidecar_paths_.size();
       ++i) {
    write_sums_file(sidecar_paths_[i], by_member[i]);
  }
  // One snapshot per flush: later deallocations (and the destructor) must
  // not rewrite what was just persisted.
  preserve_sidecars_ = false;
}

void ShardedBlockDevice::set_member_sidecars(std::vector<std::string> paths,
                                             bool preserve) {
  if (paths.size() != members_.size()) {
    throw std::invalid_argument(
        "ShardedBlockDevice::set_member_sidecars: one path per member");
  }
  sidecar_paths_ = std::move(paths);
  preserve_sidecars_ = preserve;
  std::vector<SumEntry> merged;
  for (const std::string& p : sidecar_paths_) {
    const std::vector<SumEntry> loaded = read_sums_file(p);
    merged.insert(merged.end(), loaded.begin(), loaded.end());
  }
  if (!merged.empty()) merge_sums(merged);
}

IoStats ShardedBlockDevice::stats() const noexcept {
  IoStats total{};
  for (const auto& m : members_) total += m->stats();
  // The facade's own counters contribute its logical-fault retries and the
  // block cache's counters (the cache attaches at the facade: it sees
  // logical block ids, members see post-translation ones).  A cache hit is a
  // logical read the members never saw — add it back, so logical totals are
  // identical with the cache on or off; shard rows partition the *member*
  // transfers (plus attributed retries), not the hits served above them.
  const IoStats own = BlockDevice::stats();
  total.retries += own.retries;
  total.worker_retries += own.worker_retries;
  total.reads += own.cache_hits;
  total.cache_hits += own.cache_hits;
  total.cache_misses += own.cache_misses;
  total.cache_evictions += own.cache_evictions;
  return total;
}

void ShardedBlockDevice::reset_stats() noexcept {
  BlockDevice::reset_stats();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    members_[i]->reset_stats();
    facade_retries_by_shard_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<IoStats> ShardedBlockDevice::shard_stats() const {
  std::vector<IoStats> out;
  out.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    IoStats s = members_[i]->stats();
    s.retries +=
        facade_retries_by_shard_[i].load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

bool ShardedBlockDevice::fork_safe() const noexcept {
  for (const auto& m : members_) {
    if (!m->fork_safe()) return false;
  }
  return true;
}

void ShardedBlockDevice::absorb_stats(
    const IoStats& delta, std::span<const IoStats> per_shard) noexcept {
  if (per_shard.size() == members_.size()) {
    // Member-wise fold keeps shard rows partitioning the facade total: the
    // child's row i already carries the facade retries it attributed to
    // shard i, so landing the whole row in member i's counters preserves
    // both the per-shard sums and the total.
    IoStats rest = delta;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i]->absorb_stats(per_shard[i], {});
      rest = rest - per_shard[i];
    }
    (void)rest;  // any cache counters in `rest` have no cross-process meaning
    return;
  }
  // No per-shard breakdown (or a geometry mismatch): fall back to member 0
  // so at least the totals stay honest.
  if (!members_.empty()) members_[0]->absorb_stats(delta, {});
}

void ShardedBlockDevice::set_fault_policy(const FaultPolicy& policy) noexcept {
  BlockDevice::set_fault_policy(policy);
  for (const auto& m : members_) m->set_fault_policy(policy);
}

void ShardedBlockDevice::set_member_fault_policy(std::size_t i,
                                                 const FaultPolicy& policy) {
  if (i >= members_.size()) {
    throw std::out_of_range(
        "ShardedBlockDevice::set_member_fault_policy: no such member");
  }
  members_[i]->set_fault_policy(policy);
}

void ShardedBlockDevice::note_retry(BlockId first_failed) noexcept {
  facade_retries_by_shard_[locate(first_failed).shard].fetch_add(
      1, std::memory_order_relaxed);
}

void ShardedBlockDevice::corrupt_bit(BlockId block, std::size_t bit) {
  if (block >= size_blocks() || bit >= block_bytes() * 8) {
    throw std::out_of_range(
        "ShardedBlockDevice::corrupt_bit: beyond device/block");
  }
  const Location loc = locate(block);
  members_[loc.shard]->corrupt_bit(loc.block, bit);
}

void ShardedBlockDevice::set_parallel_io(bool enabled) {
  if (enabled && members_.size() > 1) {
    if (!pipelines_.empty()) return;
    pipelines_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      pipelines_.push_back(std::make_unique<IoPipeline>());
    }
  } else {
    pipelines_.clear();  // each destructor drains and joins its worker
  }
}

ShardedBlockDevice::Location ShardedBlockDevice::locate(
    BlockId block) const noexcept {
  const std::uint64_t sb = stripe_blocks_;
  const std::uint64_t d = members_.size();
  const std::uint64_t stripe = block / sb;
  return {static_cast<std::size_t>(stripe % d),
          (stripe / d) * sb + block % sb};
}

void ShardedBlockDevice::do_read(BlockId block, std::span<std::byte> out) {
  const Location loc = locate(block);
  try {
    members_[loc.shard]->read(loc.block, out);
  } catch (const DeviceFault& df) {
    rethrow_logical(df, loc.shard, "read", block, 1, df.completed());
  }
}

void ShardedBlockDevice::do_write(BlockId block,
                                  std::span<const std::byte> in) {
  const Location loc = locate(block);
  try {
    members_[loc.shard]->write(loc.block, in);
  } catch (const DeviceFault& df) {
    rethrow_logical(df, loc.shard, "write", block, 1, df.completed());
  }
}

void ShardedBlockDevice::do_read_blocks(BlockId first, std::uint64_t count,
                                        std::span<std::byte> out) {
  const auto segs = split(first, count, out.size());
  run_segments(/*is_read=*/true, first, count, segs, out.data(), nullptr);
}

void ShardedBlockDevice::do_write_blocks(BlockId first, std::uint64_t count,
                                         std::span<const std::byte> in) {
  const auto segs = split(first, count, in.size());
  run_segments(/*is_read=*/false, first, count, segs, nullptr, in.data());
}

void ShardedBlockDevice::do_grow(std::uint64_t new_size_blocks) {
  const std::uint64_t sb = stripe_blocks_;
  const std::uint64_t d = members_.size();
  const std::uint64_t stripes = (new_size_blocks + sb - 1) / sb;
  for (std::uint64_t i = 0; i < d; ++i) {
    // Stripes s < stripes with s % d == i.
    const std::uint64_t my_stripes = (stripes + d - 1 - i) / d;
    const std::uint64_t need = my_stripes * sb;
    const std::uint64_t have = members_[i]->size_blocks();
    if (need <= have) continue;
    const BlockRange r = members_[i]->allocate(need - have);
    if (r.first != have) {
      // Unreachable while the facade owns the member (it never deallocates
      // member blocks, so member free lists stay empty).
      throw std::logic_error(
          "ShardedBlockDevice: member grew non-contiguously");
    }
  }
}

std::vector<ShardedBlockDevice::Segment> ShardedBlockDevice::split(
    BlockId first, std::uint64_t count, std::size_t span_bytes) const {
  const std::size_t block = block_bytes();
  const std::uint64_t sb = stripe_blocks_;
  const std::uint64_t d = members_.size();
  std::vector<Segment> segs;
  BlockId l = first;
  std::uint64_t left = count;
  std::size_t off = 0;
  while (left > 0) {
    const std::uint64_t stripe = l / sb;
    const std::size_t mi = static_cast<std::size_t>(stripe % d);
    const BlockId mfirst = (stripe / d) * sb + l % sb;
    const std::uint64_t run = std::min(sb - l % sb, left);
    // The last logical block may be a prefix transfer; every earlier block
    // is full, so only the final segment can be short.
    const std::size_t len = (left == run)
                                ? span_bytes - off
                                : static_cast<std::size_t>(run) * block;
    if (!segs.empty() && segs.back().shard == mi &&
        segs.back().mfirst + segs.back().count == mfirst) {
      // Member-contiguous with the previous segment (always the case for
      // d == 1): extend instead of issuing a second member call.
      segs.back().count += run;
      segs.back().len += len;
    } else {
      segs.push_back(Segment{mi, mfirst, l, run, off, len});
    }
    l += run;
    left -= run;
    off += len;
  }
  return segs;
}

void ShardedBlockDevice::run_segments(bool is_read, BlockId first,
                                      std::uint64_t count,
                                      const std::vector<Segment>& segs,
                                      std::byte* read_base,
                                      const std::byte* write_base) {
  const char* op = is_read ? "read_blocks" : "write_blocks";
  const auto xfer = [&](const Segment& s) {
    if (is_read) {
      members_[s.shard]->read_blocks(
          s.mfirst, s.count, std::span<std::byte>(read_base + s.off, s.len));
    } else {
      members_[s.shard]->write_blocks(
          s.mfirst, s.count,
          std::span<const std::byte>(write_base + s.off, s.len));
    }
  };

  std::vector<std::vector<const Segment*>> by_member(members_.size());
  for (const auto& s : segs) by_member[s.shard].push_back(&s);
  std::size_t involved = 0;
  for (const auto& v : by_member) involved += v.empty() ? 0u : 1u;

  if (pipelines_.empty() || involved <= 1) {
    // Serial path: logical order, on the calling thread.  `done` is exact —
    // everything before the faulting segment transferred in full.
    std::uint64_t done = 0;
    for (const auto& s : segs) {
      try {
        xfer(s);
      } catch (const DeviceFault& df) {
        rethrow_logical(df, s.shard, op, first, count, done + df.completed());
      }
      done += s.count;
    }
    return;
  }

  // Parallel path: one job per involved member, each walking that member's
  // segments in logical order.  Segments touch disjoint member blocks and
  // disjoint sub-spans of the caller's buffer, so the jobs share nothing but
  // the device pointers; `done` has one slot per member, written only by its
  // own job and read only after every wait() below has synchronized.
  std::vector<std::uint64_t> done(members_.size(), 0);
  std::vector<std::pair<std::size_t, IoPipeline::Ticket>> tickets;
  tickets.reserve(involved);
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    if (by_member[mi].empty()) continue;
    tickets.emplace_back(
        mi, pipelines_[mi]->submit([&xfer, &by_member, &done, mi] {
          for (const Segment* s : by_member[mi]) {
            try {
              xfer(*s);
            } catch (const DeviceFault& df) {
              done[mi] += df.completed();
              throw;
            }
            done[mi] += s->count;
          }
        }));
  }
  // Wait for every member — even after a failure — so the buffer and the
  // segment list stay valid for all in-flight jobs.  The surfaced fault is
  // the lowest-indexed faulting member, which keeps the error deterministic
  // regardless of worker interleaving.
  std::exception_ptr first_error;
  std::size_t fault_shard = 0;
  for (const auto& [mi, ticket] : tickets) {
    try {
      pipelines_[mi]->wait(ticket);
    } catch (...) {
      if (first_error == nullptr) {
        first_error = std::current_exception();
        fault_shard = mi;
      }
    }
  }
  if (first_error == nullptr) return;
  std::uint64_t total_done = 0;
  for (const std::uint64_t d : done) total_done += d;
  try {
    std::rethrow_exception(first_error);
  } catch (const DeviceFault& df) {
    rethrow_logical(df, fault_shard, op, first, count, total_done);
  }
  // Non-DeviceFault errors propagate from the rethrow above unchanged.
}

}  // namespace emsplit

// io_pipeline.hpp — the background I/O worker behind async streams.
//
// A single worker thread executes submitted jobs strictly in FIFO order.
// Streams use it for read-ahead and write-behind: a job is one batched
// device transfer into (or out of) a buffer the stream owns exclusively
// until the matching wait() returns.  FIFO execution means a completed-
// ticket watermark is enough to implement wait(), and — more importantly —
// that the device sees transfers in exactly the order they were submitted,
// which keeps the I/O counters' totals identical to the synchronous path.
//
// Exceptions thrown by a job (DeviceFault from fault injection, real I/O
// errors from FileBlockDevice) are captured per ticket and rethrown by the
// wait() for that ticket, so the stream layer surfaces them on the main
// thread with its usual strong exception safety.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace emsplit {

class IoPipeline {
 public:
  /// Monotonic job id; 0 is never issued (streams use it as "no ticket").
  using Ticket = std::uint64_t;

  IoPipeline();
  /// Drains every queued job, then joins the worker.
  ~IoPipeline();

  IoPipeline(const IoPipeline&) = delete;
  IoPipeline& operator=(const IoPipeline&) = delete;

  /// Enqueue `job` for the worker; returns immediately.
  [[nodiscard]] Ticket submit(std::function<void()> job);

  /// Block until the job behind `ticket` has run; rethrows anything it threw.
  void wait(Ticket ticket);

  /// Block until every submitted job has run.  Errors stay parked with their
  /// tickets (drain() is used at teardown, where they are deliberately
  /// dropped with the stream that owned them).
  void drain();

  /// Parked errors not yet claimed by a wait().  Tests assert this returns
  /// to zero after a fault surfaces — exactly-once delivery means the error
  /// is consumed by the rethrow, not left to double-report.
  [[nodiscard]] std::size_t pending_errors() {
    const std::lock_guard<std::mutex> lock(mu_);
    return errors_.size();
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;    // signalled on submit / stop
  std::condition_variable job_done_;      // signalled when completed_ moves
  std::deque<std::pair<Ticket, std::function<void()>>> queue_;
  std::map<Ticket, std::exception_ptr> errors_;
  Ticket next_ticket_ = 1;
  Ticket completed_ = 0;  // FIFO: every ticket <= completed_ has run
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace emsplit

#include "em/memory_budget.hpp"

#include <algorithm>

namespace emsplit {

MemoryReservation MemoryBudget::reserve(std::size_t bytes) {
  return MemoryReservation(*this, bytes);
}

void MemoryBudget::acquire(std::size_t bytes) {
  if (bytes > capacity_ - used_) {
    std::string held = " live reservations:";
    for (const auto& [size, count] : live_) {
      held += " " + std::to_string(count) + "x" + std::to_string(size);
    }
    throw BudgetExceeded("MemoryBudget: reserving " + std::to_string(bytes) +
                         " bytes over capacity " + std::to_string(capacity_) +
                         " with " + std::to_string(used_) + " already used;" +
                         held);
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++live_[bytes];
}

void MemoryBudget::release(std::size_t bytes) noexcept {
  used_ -= bytes;
  const auto it = live_.find(bytes);
  if (it != live_.end() && --it->second == 0) live_.erase(it);
}

}  // namespace emsplit

#include "em/memory_budget.hpp"

#include <algorithm>
#include <utility>

namespace emsplit {

MemoryReservation MemoryBudget::reserve(std::size_t bytes) {
  return MemoryReservation(*this, bytes);
}

std::optional<MemoryReservation> MemoryBudget::try_reserve(std::size_t bytes,
                                                           bool allow_reclaim) {
  // Up to two rounds: a plain attempt, then one more after the reclaimers
  // have been asked to shed the shortfall.
  for (int round = 0; round < 2; ++round) {
    std::vector<Reclaimer> reclaimers;
    std::size_t shortfall = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (commit_locked(bytes)) {
        return MemoryReservation(*this, bytes, MemoryReservation::Adopt{});
      }
      if (!allow_reclaim || reclaimers_.empty() || round > 0) {
        return std::nullopt;
      }
      reclaimers.reserve(reclaimers_.size());
      for (const auto& [id, r] : reclaimers_) reclaimers.push_back(r);
      shortfall = bytes - (capacity_ - used_);
    }
    std::size_t got = 0;
    for (const Reclaimer& r : reclaimers) {
      got += r(shortfall - std::min(shortfall, got));
      if (got >= shortfall) break;
    }
    if (got == 0) return std::nullopt;
  }
  return std::nullopt;
}

void MemoryBudget::acquire(std::size_t bytes) {
  for (int round = 0; round < 2; ++round) {
    std::vector<Reclaimer> reclaimers;
    std::size_t shortfall = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (commit_locked(bytes)) return;
      if (reclaimers_.empty() || round > 0) {
        throw BudgetExceeded(over_budget_message(bytes));
      }
      reclaimers.reserve(reclaimers_.size());
      for (const auto& [id, r] : reclaimers_) reclaimers.push_back(r);
      shortfall = bytes - (capacity_ - used_);
    }
    std::size_t got = 0;
    for (const Reclaimer& r : reclaimers) {
      got += r(shortfall - std::min(shortfall, got));
      if (got >= shortfall) break;
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  throw BudgetExceeded(over_budget_message(bytes));
}

bool MemoryBudget::commit_locked(std::size_t bytes) noexcept {
  if (bytes > capacity_ - used_) return false;
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++live_[bytes];
  return true;
}

std::string MemoryBudget::over_budget_message(std::size_t bytes) const {
  std::string msg = "MemoryBudget: reserving ";
  msg += std::to_string(bytes);
  msg += " bytes over capacity ";
  msg += std::to_string(capacity_);
  msg += " with ";
  msg += std::to_string(used_);
  msg += " already used; live reservations:";
  for (const auto& [size, count] : live_) {
    msg += ' ';
    msg += std::to_string(count);
    msg += 'x';
    msg += std::to_string(size);
  }
  return msg;
}

void MemoryBudget::release(std::size_t bytes) noexcept {
  std::function<void()> listener;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    used_ -= bytes;
    const auto it = live_.find(bytes);
    if (it != live_.end() && --it->second == 0) live_.erase(it);
    if (bytes > 0 && release_listener_) listener = release_listener_;
  }
  // Outside the lock: the listener (admission wakeup) may try_reserve.
  if (listener) listener();
}

}  // namespace emsplit

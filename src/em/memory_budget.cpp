#include "em/memory_budget.hpp"

#include <algorithm>

namespace emsplit {

MemoryReservation MemoryBudget::reserve(std::size_t bytes) {
  return MemoryReservation(*this, bytes);
}

std::optional<MemoryReservation> MemoryBudget::try_reserve(std::size_t bytes) {
  if (bytes > available()) return std::nullopt;
  return MemoryReservation(*this, bytes);
}

void MemoryBudget::acquire(std::size_t bytes) {
  if (bytes > capacity_ - used_) {
    std::string msg = "MemoryBudget: reserving ";
    msg += std::to_string(bytes);
    msg += " bytes over capacity ";
    msg += std::to_string(capacity_);
    msg += " with ";
    msg += std::to_string(used_);
    msg += " already used; live reservations:";
    for (const auto& [size, count] : live_) {
      msg += ' ';
      msg += std::to_string(count);
      msg += 'x';
      msg += std::to_string(size);
    }
    throw BudgetExceeded(msg);
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++live_[bytes];
}

void MemoryBudget::release(std::size_t bytes) noexcept {
  used_ -= bytes;
  const auto it = live_.find(bytes);
  if (it != live_.end() && --it->second == 0) live_.erase(it);
}

}  // namespace emsplit

// io_stats.hpp — exact I/O accounting for the external-memory model.
//
// Every block transfer performed through a BlockDevice increments one of the
// counters here.  The EM cost model of Aggarwal & Vitter (CACM'88) charges one
// unit per block read or written and nothing for CPU work, so these counters
// *are* the cost measure every experiment in this repository reports.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace emsplit {

/// Running totals of block transfers on one device.
///
/// `reads` / `writes` count block-granular operations; a request that spans
/// `k` blocks counts as `k`.  All algorithm-facing formulas in the paper are
/// expressed in these units.
///
/// This is a plain value type — a snapshot.  The live counters inside
/// BlockDevice are relaxed atomics (the async I/O worker increments them
/// concurrently with the main thread); `BlockDevice::stats()` folds them into
/// an IoStats by value.
struct IoStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Transient-fault retry attempts (docs/model.md, "Failure model, retries,
  /// and recovery").  Deliberately *not* part of total(): a retried request
  /// re-issues only the blocks the fault prevented, so the base counts of a
  /// retried run are identical to the fault-free run and the paper's bounds
  /// stay stated in reads + writes alone.
  std::uint64_t retries = 0;
  /// Block I/O re-performed by the worker supervisor after a worker process
  /// died, hung past its deadline, or returned a corrupt result frame
  /// (em/worker_group.hpp).  Like `retries`, deliberately *not* part of
  /// total(): the supervisor re-executes the failed worker's unit schedule
  /// inline, so its reads/writes land in the base counters exactly replacing
  /// the counters the dead worker's frame would have reported — base counts
  /// of a supervised run are identical to the fault-free run, and this field
  /// records the re-executed volume separately.
  std::uint64_t worker_retries = 0;
  /// Block-cache traffic on this device (em/block_cache.hpp).  A cache hit is
  /// a *logical* read whose blocks were served from the budget-charged cache
  /// instead of the backend — the read is still counted in `reads` (the model
  /// charges block movement into working memory, wherever the bytes came
  /// from), so the base counts of a cached run are identical to the uncached
  /// run; hits/misses/evictions only explain where the wall-clock went.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Service-layer bucket-scan cache traffic (service/splitter_index.hpp).
  /// A bucket-cache hit is a *logical* read whose blocks were served from a
  /// decoded per-epoch bucket payload instead of the device — like
  /// `cache_hits`, the read is still counted in `reads` (per-query reads are
  /// geometry, wherever the bytes came from), so base counts with the bucket
  /// cache on equal the uncached run's; this field only explains the
  /// wall-clock.  Counted in blocks, like everything else here.
  std::uint64_t bucket_hits = 0;

  /// Combined I/O count — the quantity the paper's bounds are stated in.
  [[nodiscard]] std::uint64_t total() const noexcept { return reads + writes; }

  /// The snapshot with retries and cache counters zeroed — what determinism
  /// assertions compare.
  [[nodiscard]] IoStats base() const noexcept { return IoStats{reads, writes}; }

  IoStats& operator+=(const IoStats& o) noexcept {
    reads += o.reads;
    writes += o.writes;
    retries += o.retries;
    worker_retries += o.worker_retries;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    bucket_hits += o.bucket_hits;
    return *this;
  }
  friend IoStats operator-(IoStats a, const IoStats& b) noexcept {
    a.reads -= b.reads;
    a.writes -= b.writes;
    a.retries -= b.retries;
    a.worker_retries -= b.worker_retries;
    a.cache_hits -= b.cache_hits;
    a.cache_misses -= b.cache_misses;
    a.cache_evictions -= b.cache_evictions;
    a.bucket_hits -= b.bucket_hits;
    return a;
  }
  friend bool operator==(const IoStats&, const IoStats&) = default;
};

std::ostream& operator<<(std::ostream& os, const IoStats& s);

/// Measures the I/Os performed between construction and `delta()`.  Used by
/// tests to assert per-phase I/O bounds and by the bench harness to attribute
/// cost to individual algorithm stages.  `Source` is anything with a
/// `stats()` member returning an IoStats snapshot (e.g. BlockDevice).
template <typename Source>
class ScopedIoDelta {
 public:
  explicit ScopedIoDelta(const Source& source) noexcept
      : source_(&source), start_(source.stats()) {}

  /// I/Os performed on the tracked device since construction.
  [[nodiscard]] IoStats delta() const noexcept {
    return source_->stats() - start_;
  }

 private:
  const Source* source_;
  IoStats start_;
};

}  // namespace emsplit

// stream.hpp — buffered sequential access over EmVector.
//
// StreamReader / StreamWriter are the scan primitives of the library: one
// in-memory block buffer each (reserved against the memory budget), element
// granularity on top, block granularity underneath.  Reading n records costs
// ceil(n/B) I/Os; writing likewise.  All linear passes in the paper's
// algorithms are built from these two classes.
//
// Bulk helpers at the bottom load / store whole record ranges for chunk-at-a-
// time processing (run formation, in-memory chunk sorts); their buffers are
// reserved by the caller.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "em/em_vector.hpp"

namespace emsplit {

/// Sequential reader over a record range [first, last) of an EmVector.
///
/// Holds one block buffer of B records reserved against the budget.  Several
/// readers may be live at once (k-way merge); each costs B records of memory.
template <EmRecord T>
class StreamReader {
 public:
  explicit StreamReader(const EmVector<T>& vec)
      : StreamReader(vec, 0, vec.size()) {}

  /// Reader over records [first, last) of `vec`.
  StreamReader(const EmVector<T>& vec, std::size_t first, std::size_t last)
      : vec_(&vec),
        block_records_(vec.block_records()),
        pos_(first),
        end_(last),
        reservation_(vec.context().budget().reserve(block_records_ *
                                                    sizeof(T))),
        buffer_(block_records_) {
    assert(first <= last && last <= vec.size());
    buffered_block_ = kNoBlock;
  }

  /// Records remaining.
  [[nodiscard]] std::size_t remaining() const noexcept { return end_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == end_; }
  /// Absolute record index of the next element.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Next record without consuming it.
  [[nodiscard]] const T& peek() {
    assert(!done());
    fill();
    return buffer_[pos_ % block_records_];
  }

  /// Consume and return the next record.
  T next() {
    const T v = peek();
    ++pos_;
    return v;
  }

  /// Skip forward `n` records without reading the blocks in between.
  void skip(std::size_t n) {
    assert(n <= remaining());
    pos_ += n;
  }

 private:
  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

  void fill() {
    const std::size_t blk = pos_ / block_records_;
    if (blk != buffered_block_) {
      vec_->read_block(blk, std::span<T>(buffer_));
      buffered_block_ = blk;
    }
  }

  const EmVector<T>* vec_;
  std::size_t block_records_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t buffered_block_;
  MemoryReservation reservation_;
  std::vector<T> buffer_;
};

/// Sequential writer appending records into an EmVector starting at record 0.
///
/// Call finish() when done: it flushes the partial last block and sets the
/// vector's logical size.  Destruction without finish() flushes as well (so
/// exceptions don't lose the budget) but only finish() publishes the size.
template <EmRecord T>
class StreamWriter {
 public:
  explicit StreamWriter(EmVector<T>& vec)
      : vec_(&vec),
        block_records_(vec.block_records()),
        reservation_(vec.context().budget().reserve(block_records_ *
                                                    sizeof(T))),
        buffer_(block_records_) {}

  ~StreamWriter() = default;
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Records written so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  void push(const T& v) {
    assert(count_ < vec_->capacity());
    buffer_[count_ % block_records_] = v;
    ++count_;
    if (count_ % block_records_ == 0) {
      vec_->write_block(count_ / block_records_ - 1, std::span<const T>(buffer_));
    }
  }

  /// Flush the trailing partial block and publish the logical size.
  void finish() {
    if (finished_) return;
    if (count_ % block_records_ != 0) {
      vec_->write_block(count_ / block_records_, std::span<const T>(buffer_));
    }
    vec_->set_size(count_);
    finished_ = true;
  }

 private:
  EmVector<T>* vec_;
  std::size_t block_records_;
  std::size_t count_ = 0;
  bool finished_ = false;
  MemoryReservation reservation_;
  std::vector<T> buffer_;
};

/// Sequential writer into an arbitrary record range [start, start + n) of an
/// EmVector that may be written concurrently by neighbouring RangeWriters.
///
/// Interior blocks are written with plain one-I/O writes; the partial edge
/// blocks at the two ends are flushed with an atomic read-merge-write so
/// that records owned by an adjacent range in the same block survive.  The
/// edge read happens at flush time (never cached earlier), so any number of
/// single-threaded writers may interleave on a shared edge block without
/// lost updates.  Used by multi-partition to let distribution passes write
/// final partitions straight into the output vector.
template <EmRecord T>
class RangeWriter {
 public:
  RangeWriter(EmVector<T>& vec, std::size_t start)
      : vec_(&vec),
        block_records_(vec.block_records()),
        pos_(start),
        reservation_(vec.context().budget().reserve(block_records_ *
                                                    sizeof(T))),
        buffer_(block_records_) {}

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  void push(const T& v) {
    assert(pos_ < vec_->capacity());
    buffer_[pos_ % block_records_] = v;
    ++pos_;
    ++count_;
    if (pos_ % block_records_ == 0) flush_block(pos_ / block_records_ - 1);
  }

  /// Flush the trailing partial block (idempotent).  Does not touch the
  /// vector's logical size — the caller owns that.
  void finish() {
    if (finished_) return;
    if (pos_ % block_records_ != 0 && count_ > 0) {
      flush_block(pos_ / block_records_);
    }
    finished_ = true;
  }

 private:
  void flush_block(std::size_t blk) {
    // Records this flush owns: the intersection of the writer's range so far
    // ([start, pos)) with this block.  A block not fully covered is merged
    // with the device copy read *now* (never cached), so adjacent writers
    // interleaving on a shared edge block cannot lose each other's records.
    const std::size_t blk_first = blk * block_records_;
    const std::size_t start = pos_ - count_;
    const std::size_t range_lo = std::max(start, blk_first);
    const std::size_t range_hi = pos_;  // <= blk_first + block_records_
    if (range_lo == blk_first && range_hi == blk_first + block_records_) {
      vec_->write_block(blk, std::span<const T>(buffer_));
      return;
    }
    // The merge copy is a transient reservation: flushes are sequential, so
    // at most one exists at a time even with many writers alive.
    auto merge_res =
        vec_->context().budget().reserve(block_records_ * sizeof(T));
    std::vector<T> merged(block_records_);
    vec_->read_block(blk, merged);
    for (std::size_t r = range_lo; r < range_hi; ++r) {
      merged[r - blk_first] = buffer_[r % block_records_];
    }
    vec_->write_block(blk, std::span<const T>(merged));
  }

  EmVector<T>* vec_;
  std::size_t block_records_;
  std::size_t pos_;
  std::size_t count_ = 0;
  bool finished_ = false;
  MemoryReservation reservation_;
  std::vector<T> buffer_;
};

// ---------------------------------------------------------------------------
// Bulk helpers (chunk-at-a-time processing).
// ---------------------------------------------------------------------------

/// Load records [first, first + out.size()) of `vec` into `out`.
/// Costs the number of blocks the range touches.  The caller is responsible
/// for having reserved `out`'s bytes against the budget; the transfer block
/// buffer is reserved here.
template <EmRecord T>
void load_range(const EmVector<T>& vec, std::size_t first, std::span<T> out) {
  assert(first + out.size() <= vec.size());
  const std::size_t b = vec.block_records();
  auto res = vec.context().budget().reserve(b * sizeof(T));
  std::vector<T> blockbuf(b);
  std::size_t i = 0;
  while (i < out.size()) {
    const std::size_t blk = (first + i) / b;
    const std::size_t off = (first + i) % b;
    const std::size_t take = std::min(b - off, out.size() - i);
    vec.read_block(blk, std::span<T>(blockbuf));
    for (std::size_t j = 0; j < take; ++j) out[i + j] = blockbuf[off + j];
    i += take;
  }
}

/// Store `in` into `vec` at record offset `first` (block-aligned offsets give
/// pure writes; unaligned edges need a read-modify-write of the edge blocks).
template <EmRecord T>
void store_range(EmVector<T>& vec, std::size_t first, std::span<const T> in) {
  assert(first + in.size() <= vec.capacity());
  const std::size_t b = vec.block_records();
  auto res = vec.context().budget().reserve(b * sizeof(T));
  std::vector<T> blockbuf(b);
  std::size_t i = 0;
  while (i < in.size()) {
    const std::size_t blk = (first + i) / b;
    const std::size_t off = (first + i) % b;
    const std::size_t take = std::min(b - off, in.size() - i);
    if (take < b) {
      // Edge block: preserve surrounding records already on the device, but
      // only if there is live data in this block outside the stored range.
      const bool has_live_prefix = off > 0;
      const bool has_live_suffix =
          blk * b + take + off < vec.size() && off + take < b;
      if (has_live_prefix || has_live_suffix) vec.read_block(blk, blockbuf);
    }
    for (std::size_t j = 0; j < take; ++j) blockbuf[off + j] = in[i + j];
    vec.write_block(blk, std::span<const T>(blockbuf));
    i += take;
  }
}

/// Materialize an in-memory sequence as a new EmVector (test/workload
/// convenience; costs ceil(n/B) writes).
template <EmRecord T>
[[nodiscard]] EmVector<T> materialize(Context& ctx, std::span<const T> data) {
  EmVector<T> vec(ctx, data.size());
  StreamWriter<T> w(vec);
  for (const T& v : data) w.push(v);
  w.finish();
  return vec;
}

/// Read a whole EmVector back into host memory (test convenience).
template <EmRecord T>
[[nodiscard]] std::vector<T> to_host(const EmVector<T>& vec) {
  std::vector<T> out;
  out.reserve(vec.size());
  StreamReader<T> r(vec);
  while (!r.done()) out.push_back(r.next());
  return out;
}

}  // namespace emsplit

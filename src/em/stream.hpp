// stream.hpp — buffered sequential access over EmVector.
//
// StreamReader / StreamWriter are the scan primitives of the library:
// element granularity on top, block granularity underneath.  Reading n
// records costs ceil(n/B) I/Os; writing likewise — regardless of the I/O
// tuning below.
//
// The context's IoTuning shapes how those I/Os are issued:
//
//   * batch_blocks > 1 — streams move groups of consecutive blocks per
//     device call (read_blocks / write_blocks).  Same I/Os counted, far
//     fewer calls/syscalls.  Requires the record size to divide the block
//     size (otherwise per-block tail padding breaks multi-block record
//     spans and streams quietly fall back to one-block batches).
//   * queue_depth > 0 with async — groups are serviced by the context's
//     background worker: readers keep up to queue_depth prefetches in
//     flight, writers flush behind.  Each stream owns
//     batch_blocks * (1 + queue_depth) blocks of budgeted buffer memory —
//     the same footprint whether async is on or off, so geometry and I/O
//     counts never depend on the async flag (docs/model.md).
//
// Count determinism under async holds for streams that are consumed
// sequentially to the end (every algorithm converted to the async path is).
// A reader that skips past or abandons in-flight prefetches keeps those
// already-issued reads in the totals — the device really moved the blocks.
//
// Bulk helpers at the bottom load / store whole record ranges for chunk-at-
// a-time processing (run formation, in-memory chunk sorts); their buffers
// are reserved by the caller, and with batching they coalesce whole aligned
// extents into single device calls.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "em/em_vector.hpp"
#include "em/io_pipeline.hpp"

namespace emsplit {

namespace detail {

/// Per-stream transfer geometry derived from the context's IoTuning at
/// stream construction.  `footprint_records` is what the budget charges —
/// tuning-defined, independent of the async flag and of the padded-layout
/// fallback, so a given tuning always reserves the same memory.
template <EmRecord T>
struct StreamShape {
  explicit StreamShape(const EmVector<T>& vec)
      : block_records(vec.block_records()),
        batch_blocks(vec.contiguous_layout()
                         ? vec.context().io_tuning().batch_blocks
                         : 1),
        depth(vec.context().io_tuning().queue_depth),
        group_records(batch_blocks * block_records),
        footprint_records(vec.context().stream_blocks() * block_records) {}

  std::size_t block_records;
  std::size_t batch_blocks;  ///< blocks per device call (1 on padded layouts)
  std::size_t depth;         ///< in-flight groups beyond the current one
  std::size_t group_records;
  std::size_t footprint_records;
};

}  // namespace detail

/// Sequential reader over a record range [first, last) of an EmVector.
///
/// Buffers stream_blocks() blocks against the budget.  Several readers may
/// be live at once (k-way merge); each costs that much memory.
template <EmRecord T>
class StreamReader {
 public:
  explicit StreamReader(const EmVector<T>& vec)
      : StreamReader(vec, 0, vec.size()) {}

  /// Reader over records [first, last) of `vec`.
  StreamReader(const EmVector<T>& vec, std::size_t first, std::size_t last)
      : vec_(&vec),
        shape_(vec),
        pipe_(shape_.depth > 0 ? vec.context().pipeline() : nullptr),
        pos_(first),
        end_(last),
        reservation_(vec.context().budget().reserve(shape_.footprint_records *
                                                    sizeof(T))) {
    assert(first <= last && last <= vec.size());
    buffers_.resize(1 + shape_.depth);
    for (auto& buf : buffers_) buf.records.resize(shape_.group_records);
  }

  ~StreamReader() { abandon_inflight(); }

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;
  StreamReader& operator=(StreamReader&&) = delete;
  StreamReader(StreamReader&& o) noexcept
      : vec_(o.vec_),
        shape_(o.shape_),
        pipe_(o.pipe_),
        pos_(o.pos_),
        end_(o.end_),
        reservation_(std::move(o.reservation_)),
        buffers_(std::move(o.buffers_)),
        inflight_(std::move(o.inflight_)),
        cur_(o.cur_),
        cur_valid_(o.cur_valid_),
        next_block_(o.next_block_) {
    // In-flight jobs capture raw buffer pointers, which survive the move of
    // `buffers_`; only neuter the source so its destructor does nothing.
    o.inflight_.clear();
    o.cur_valid_ = false;
  }

  /// Records remaining.
  [[nodiscard]] std::size_t remaining() const noexcept { return end_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == end_; }
  /// Absolute record index of the next element.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Next record without consuming it.
  [[nodiscard]] const T& peek() {
    assert(!done());
    fill();
    const Buffer& buf = buffers_[cur_];
    return buf.records[pos_ - buf.first_block * shape_.block_records];
  }

  /// Consume and return the next record.
  T next() {
    const T v = peek();
    ++pos_;
    return v;
  }

  /// Skip forward `n` records without reading the blocks in between.  Groups
  /// already prefetched stay counted (the device moved those blocks); the
  /// next peek() re-primes the pipeline at the new position.
  void skip(std::size_t n) {
    assert(n <= remaining());
    pos_ += n;
  }

  /// The resident records from the current position to the end of the
  /// buffered group (never empty unless done()).  Fills the buffer if
  /// needed.  Batch consumers (parallel classification, quintet formation)
  /// process this span in place — data-parallel over the same blocks a
  /// record-at-a-time loop would have read, so I/O counts cannot differ —
  /// then retire it with consume().  The span is invalidated by any other
  /// call on the reader.
  [[nodiscard]] std::span<const T> peek_span() {
    assert(!done());
    fill();
    const Buffer& buf = buffers_[cur_];
    const std::size_t off = pos_ - buf.first_block * shape_.block_records;
    const std::size_t avail =
        std::min(group_span(buf.first_block, buf.nblocks) - off, end_ - pos_);
    return std::span<const T>(buf.records.data() + off, avail);
  }

  /// Consume `n` records previously exposed by peek_span().
  void consume(std::size_t n) {
    assert(n <= remaining());
    pos_ += n;
  }

 private:
  struct Buffer {
    std::vector<T> records;
    std::size_t first_block = 0;
    std::size_t nblocks = 0;
    IoPipeline::Ticket ticket = 0;
  };

  [[nodiscard]] std::size_t last_block() const noexcept {
    return (end_ - 1) / shape_.block_records;
  }
  [[nodiscard]] std::size_t group_at(std::size_t blk) const noexcept {
    return std::min(shape_.batch_blocks, last_block() - blk + 1);
  }

  void fill() {
    const std::size_t blk = pos_ / shape_.block_records;
    if (cur_valid_) {
      const Buffer& buf = buffers_[cur_];
      if (blk >= buf.first_block && blk < buf.first_block + buf.nblocks) {
        return;
      }
    }
    advance_to(blk);
  }

  /// Number of records a group starting at `blk` transfers: full blocks
  /// except possibly a prefix of the vector's last block.
  [[nodiscard]] std::size_t group_span(std::size_t blk,
                                       std::size_t nblocks) const {
    const std::size_t cap = vec_->size() - blk * shape_.block_records;
    return std::min(nblocks * shape_.block_records, cap);
  }

  void read_into(Buffer& buf, std::size_t blk) {
    buf.first_block = blk;
    buf.nblocks = group_at(blk);
    vec_->read_blocks(
        blk, buf.nblocks,
        std::span<T>(buf.records).first(group_span(blk, buf.nblocks)));
  }

  void advance_to(std::size_t blk) {
    IoPipeline* pipe = pipe_;
    if (shape_.depth == 0 || pipe == nullptr) {
      cur_ = 0;
      read_into(buffers_[0], blk);
      cur_valid_ = true;
      return;
    }
    // Async path.  The group we need is normally the oldest prefetch; if a
    // skip() jumped elsewhere, retire the stale prefetches and re-prime.
    if (!inflight_.empty() && buffers_[inflight_.front()].first_block != blk) {
      abandon_inflight();
    }
    if (inflight_.empty()) {
      cur_ = 0;
      read_into(buffers_[0], blk);
      next_block_ = blk + buffers_[0].nblocks;
    } else {
      const std::size_t bi = inflight_.front();
      inflight_.pop_front();
      pipe->wait(buffers_[bi].ticket);
      buffers_[bi].ticket = 0;
      cur_ = bi;
    }
    cur_valid_ = true;
    top_up(*pipe);
  }

  void top_up(IoPipeline& pipe) {
    while (inflight_.size() < shape_.depth && next_block_ <= last_block()) {
      const std::size_t bi = free_buffer();
      Buffer& buf = buffers_[bi];
      buf.first_block = next_block_;
      buf.nblocks = group_at(next_block_);
      // Capture raw pointers, not `this`: buffers are heap storage that
      // stays put if the reader itself is moved while jobs are in flight.
      const EmVector<T>* vec = vec_;
      const std::size_t blk = buf.first_block;
      const std::size_t nblocks = buf.nblocks;
      const std::span<T> dst(buf.records.data(), group_span(blk, nblocks));
      buf.ticket = pipe.submit(
          [vec, blk, nblocks, dst] { vec->read_blocks(blk, nblocks, dst); });
      inflight_.push_back(bi);
      next_block_ += nblocks;
    }
  }

  [[nodiscard]] std::size_t free_buffer() const {
    // 1 + depth buffers, at most depth in flight plus the current one: a
    // free buffer always exists.
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      if (cur_valid_ && i == cur_) continue;
      if (std::find(inflight_.begin(), inflight_.end(), i) ==
          inflight_.end()) {
        return i;
      }
    }
    assert(false && "StreamReader: no free buffer");
    return 0;
  }

  void abandon_inflight() noexcept {
    if (inflight_.empty()) return;
    IoPipeline* pipe = pipe_;
    for (const std::size_t bi : inflight_) {
      if (pipe == nullptr) break;
      try {
        pipe->wait(buffers_[bi].ticket);
      } catch (...) {
        // Reads into buffers we are dropping; the error is irrelevant.
      }
    }
    inflight_.clear();
  }

  const EmVector<T>* vec_;
  detail::StreamShape<T> shape_;
  // Snapshotted at construction: the destructor must not reach back through
  // vec_->context() (the target vector may be moved from before the stream
  // dies, e.g. `return {std::move(out), ...}` above a live writer).
  IoPipeline* pipe_;
  std::size_t pos_;
  std::size_t end_;
  MemoryReservation reservation_;
  std::vector<Buffer> buffers_;
  std::deque<std::size_t> inflight_;
  std::size_t cur_ = 0;
  bool cur_valid_ = false;
  std::size_t next_block_ = 0;
};

/// Sequential writer appending records into an EmVector starting at record 0.
///
/// Call finish() when done: it flushes the partial last group, waits for any
/// write-behind still in flight and sets the vector's logical size.
/// Destruction without finish() waits out in-flight writes as well (so
/// exceptions don't lose the budget or race the buffers) but only finish()
/// publishes the size.
template <EmRecord T>
class StreamWriter {
 public:
  explicit StreamWriter(EmVector<T>& vec)
      : vec_(&vec),
        shape_(vec),
        pipe_(shape_.depth > 0 ? vec.context().pipeline() : nullptr),
        reservation_(vec.context().budget().reserve(shape_.footprint_records *
                                                    sizeof(T))) {
    buffers_.resize(1 + shape_.depth);
    for (auto& buf : buffers_) buf.records.resize(shape_.group_records);
  }

  ~StreamWriter() { drain_noexcept(); }
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Records written so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  void push(const T& v) {
    assert(count_ < vec_->capacity());
    buffers_[cur_].records[count_ - group_first_] = v;
    ++count_;
    if (count_ - group_first_ == shape_.group_records) {
      flush_group(shape_.batch_blocks);
      group_first_ = count_;
      rotate();
    }
  }

  /// Flush the trailing partial group, wait out write-behind, publish the
  /// logical size.
  ///
  /// On a device fault this throws exactly once: the fault surfaces from
  /// whichever wait() (or synchronous flush) first observes it and is then
  /// consumed.  `group_first_` advances past the final flush *before* the
  /// drain, so a caller that catches the fault and retries finish() drains
  /// the remaining write-behind without ever re-writing the final group.
  void finish() {
    if (finished_) return;
    const std::size_t filled = count_ - group_first_;
    if (filled > 0) {
      // Whole blocks plus possibly one partial block, still one device
      // call.  Like the classic writer, the partial block is written with a
      // full-block span whose tail holds unspecified bytes.
      flush_group((filled + shape_.block_records - 1) / shape_.block_records);
      group_first_ = count_;
    }
    drain();
    vec_->set_size(count_);
    finished_ = true;
  }

 private:
  struct Buffer {
    std::vector<T> records;
    IoPipeline::Ticket ticket = 0;
    bool pending = false;
  };

  void flush_group(std::size_t nblocks) {
    Buffer& buf = buffers_[cur_];
    const std::size_t first_block = group_first_ / shape_.block_records;
    const std::size_t nrec = nblocks * shape_.block_records;
    IoPipeline* pipe = pipe_;
    if (shape_.depth > 0 && pipe != nullptr) {
      EmVector<T>* vec = vec_;
      const std::span<const T> src(buf.records.data(), nrec);
      buf.ticket = pipe->submit([vec, first_block, nblocks, src] {
        vec->write_blocks(first_block, nblocks, src);
      });
      buf.pending = true;
    } else {
      vec_->write_blocks(first_block, nblocks,
                         std::span<const T>(buf.records).first(nrec));
    }
  }

  void rotate() {
    if (shape_.depth == 0 || pipe_ == nullptr) return;
    cur_ = (cur_ + 1) % buffers_.size();
    Buffer& buf = buffers_[cur_];
    if (buf.pending) {
      buf.pending = false;  // cleared first: wait() may throw
      pipe_->wait(buf.ticket);
    }
  }

  void drain() {
    // Ticket order, so the oldest in-flight fault is the one that surfaces
    // (each buffer's pending flag is cleared before its wait: a throw leaves
    // the remaining buffers for the destructor — or a retried finish() — to
    // wait out, and the surfaced error is consumed by the rethrow, so it can
    // never be reported twice).
    for (auto* buf : pending_by_ticket()) {
      buf->pending = false;
      if (pipe_ != nullptr) pipe_->wait(buf->ticket);
    }
  }

  void drain_noexcept() noexcept {
    for (auto& buf : buffers_) {
      if (!buf.pending) continue;
      buf.pending = false;
      if (pipe_ == nullptr) continue;
      try {
        pipe_->wait(buf.ticket);
      } catch (...) {
        // Teardown without finish(): the write's fate no longer matters,
        // only that the buffer is safe to free.
      }
    }
  }

  [[nodiscard]] std::vector<Buffer*> pending_by_ticket() {
    std::vector<Buffer*> pending;
    for (auto& buf : buffers_) {
      if (buf.pending) pending.push_back(&buf);
    }
    std::sort(pending.begin(), pending.end(),
              [](const Buffer* a, const Buffer* b) {
                return a->ticket < b->ticket;
              });
    return pending;
  }

  EmVector<T>* vec_;
  detail::StreamShape<T> shape_;
  IoPipeline* pipe_;  // snapshotted; see StreamReader::pipe_
  std::size_t count_ = 0;
  std::size_t group_first_ = 0;  // record index where the current group starts
  std::size_t cur_ = 0;
  bool finished_ = false;
  MemoryReservation reservation_;
  std::vector<Buffer> buffers_;
};

/// Sequential writer into an arbitrary record range [start, start + n) of an
/// EmVector that may be written concurrently by neighbouring RangeWriters.
///
/// Interior blocks are written with plain (batched, possibly write-behind)
/// block writes; the partial edge blocks at the two ends are flushed with an
/// atomic read-merge-write so that records owned by an adjacent range in the
/// same block survive.  The edge read happens at flush time (never cached
/// earlier) and always synchronously on the calling thread — a shared edge
/// block is partial for *both* neighbours, so it is never covered by anyone's
/// async interior writes.  Used by multi-partition to let distribution passes
/// write final partitions straight into the output vector.
template <EmRecord T>
class RangeWriter {
 public:
  RangeWriter(EmVector<T>& vec, std::size_t start)
      : vec_(&vec),
        shape_(vec),
        pipe_(shape_.depth > 0 ? vec.context().pipeline() : nullptr),
        start_(start),
        pos_(start),
        reservation_(vec.context().budget().reserve(shape_.footprint_records *
                                                    sizeof(T))) {
    buffers_.resize(1 + shape_.depth);
    for (auto& buf : buffers_) buf.records.resize(shape_.group_records);
    // Groups are anchored at the block grid so interior flushes stay aligned.
    group_first_ = (start / shape_.block_records) * shape_.block_records;
  }

  ~RangeWriter() { drain_noexcept(); }
  RangeWriter(const RangeWriter&) = delete;
  RangeWriter& operator=(const RangeWriter&) = delete;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  void push(const T& v) {
    assert(pos_ < vec_->capacity());
    buffers_[cur_].records[pos_ - group_first_] = v;
    ++pos_;
    ++count_;
    if (pos_ - group_first_ == shape_.group_records) {
      flush_group();
      group_first_ = pos_;
      rotate();
    }
  }

  /// Flush the trailing partial group and wait out write-behind (idempotent).
  /// Does not touch the vector's logical size — the caller owns that.
  /// Like StreamWriter::finish(), a worker fault surfaces exactly once, and
  /// a retried finish() resumes the drain without re-writing the final group.
  void finish() {
    if (finished_) return;
    if (count_ > 0 && pos_ > group_first_) {
      flush_group();
      group_first_ = pos_;
    }
    drain();
    finished_ = true;
  }

 private:
  struct Buffer {
    std::vector<T> records;
    IoPipeline::Ticket ticket = 0;
    bool pending = false;
  };

  /// Flush the records this group owns: [max(start, group_first), pos).
  /// Partial edge blocks merge synchronously; whole interior blocks go out
  /// as one batched (possibly async) write.
  void flush_group() {
    const std::size_t b = shape_.block_records;
    Buffer& buf = buffers_[cur_];
    std::size_t lo = std::max(start_, group_first_);
    const std::size_t hi = pos_;
    if (lo % b != 0) {  // partial head block (only ever the first group's)
      const std::size_t head_end = std::min(hi, (lo / b + 1) * b);
      merge_flush(lo, head_end, buf);
      lo = head_end;
    }
    const std::size_t hi_full = hi - hi % b;
    if (lo < hi_full) {
      const std::size_t nblocks = (hi_full - lo) / b;
      const std::span<const T> src(buf.records.data() + (lo - group_first_),
                                   hi_full - lo);
      emit(lo / b, nblocks, src);
    }
    if (hi % b != 0 && hi_full >= lo) {  // partial tail block (finish only)
      merge_flush(std::max(lo, hi_full), hi, buf);
    }
  }

  /// Read-merge-write of one partial block, records [range_lo, range_hi).
  void merge_flush(std::size_t range_lo, std::size_t range_hi,
                   const Buffer& buf) {
    const std::size_t b = shape_.block_records;
    const std::size_t blk = range_lo / b;
    const std::size_t blk_first = blk * b;
    // The merge copy is a transient reservation: flushes are sequential, so
    // at most one exists at a time even with many writers alive.
    auto merge_res = vec_->context().budget().reserve(b * sizeof(T));
    std::vector<T> merged(b);
    vec_->read_block(blk, merged);
    for (std::size_t r = range_lo; r < range_hi; ++r) {
      merged[r - blk_first] = buf.records[r - group_first_];
    }
    vec_->write_block(blk, std::span<const T>(merged));
  }

  void emit(std::size_t first_block, std::size_t nblocks,
            std::span<const T> src) {
    IoPipeline* pipe = pipe_;
    Buffer& buf = buffers_[cur_];
    if (shape_.depth > 0 && pipe != nullptr) {
      EmVector<T>* vec = vec_;
      buf.ticket = pipe->submit([vec, first_block, nblocks, src] {
        vec->write_blocks(first_block, nblocks, src);
      });
      buf.pending = true;
    } else {
      vec_->write_blocks(first_block, nblocks, src);
    }
  }

  void rotate() {
    if (shape_.depth == 0 || pipe_ == nullptr) return;
    cur_ = (cur_ + 1) % buffers_.size();
    Buffer& buf = buffers_[cur_];
    if (buf.pending) {
      buf.pending = false;
      pipe_->wait(buf.ticket);
    }
  }

  void drain() {
    // Ticket order with pending cleared before each wait — the same
    // exactly-once fault-surfacing protocol as StreamWriter::drain().
    for (auto* buf : pending_by_ticket()) {
      buf->pending = false;
      if (pipe_ != nullptr) pipe_->wait(buf->ticket);
    }
  }

  void drain_noexcept() noexcept {
    for (auto& buf : buffers_) {
      if (!buf.pending) continue;
      buf.pending = false;
      if (pipe_ == nullptr) continue;
      try {
        pipe_->wait(buf.ticket);
      } catch (...) {
      }
    }
  }

  [[nodiscard]] std::vector<Buffer*> pending_by_ticket() {
    std::vector<Buffer*> pending;
    for (auto& buf : buffers_) {
      if (buf.pending) pending.push_back(&buf);
    }
    std::sort(pending.begin(), pending.end(),
              [](const Buffer* a, const Buffer* b) {
                return a->ticket < b->ticket;
              });
    return pending;
  }

  EmVector<T>* vec_;
  detail::StreamShape<T> shape_;
  IoPipeline* pipe_;  // snapshotted; see StreamReader::pipe_
  std::size_t start_;
  std::size_t pos_;
  std::size_t count_ = 0;
  std::size_t group_first_ = 0;  // record index where the current group starts
  std::size_t cur_ = 0;
  bool finished_ = false;
  MemoryReservation reservation_;
  std::vector<Buffer> buffers_;
};

// ---------------------------------------------------------------------------
// Bulk helpers (chunk-at-a-time processing).
// ---------------------------------------------------------------------------

/// Load records [first, first + out.size()) of `vec` into `out`.
/// Costs the number of blocks the range touches.  The caller is responsible
/// for having reserved `out`'s bytes against the budget.  On contiguous
/// layouts with batching enabled, whole aligned extents transfer straight
/// into `out` in a single device call (no staging memory at all); otherwise
/// a one-block staging buffer is reserved here.
template <EmRecord T>
void load_range(const EmVector<T>& vec, std::size_t first, std::span<T> out) {
  assert(first + out.size() <= vec.size());
  const std::size_t b = vec.block_records();
  const bool batched = vec.context().io_tuning().batch_blocks > 1 &&
                       vec.contiguous_layout();
  std::size_t i = 0;
  if (batched && first % b == 0 && out.size() >= b) {
    // Aligned bulk prefix: one call for all whole blocks.
    const std::size_t nblocks = out.size() / b;
    vec.read_blocks(first / b, nblocks, out.first(nblocks * b));
    i = nblocks * b;
    if (i == out.size()) return;
  }
  auto res = vec.context().budget().reserve(b * sizeof(T));
  std::vector<T> blockbuf(b);
  while (i < out.size()) {
    const std::size_t blk = (first + i) / b;
    const std::size_t off = (first + i) % b;
    const std::size_t take = std::min(b - off, out.size() - i);
    vec.read_block(blk, std::span<T>(blockbuf));
    for (std::size_t j = 0; j < take; ++j) out[i + j] = blockbuf[off + j];
    i += take;
  }
}

/// Store `in` into `vec` at record offset `first` (block-aligned offsets give
/// pure writes; unaligned edges need a read-modify-write of the edge blocks).
/// Same batching as load_range: aligned whole-block extents go out in one
/// device call directly from `in`.
template <EmRecord T>
void store_range(EmVector<T>& vec, std::size_t first, std::span<const T> in) {
  assert(first + in.size() <= vec.capacity());
  const std::size_t b = vec.block_records();
  const bool batched = vec.context().io_tuning().batch_blocks > 1 &&
                       vec.contiguous_layout();
  std::size_t i = 0;
  if (batched && first % b == 0 && in.size() >= b) {
    const std::size_t nblocks = in.size() / b;
    vec.write_blocks(first / b, nblocks, in.first(nblocks * b));
    i = nblocks * b;
    if (i == in.size()) return;
  }
  auto res = vec.context().budget().reserve(b * sizeof(T));
  std::vector<T> blockbuf(b);
  while (i < in.size()) {
    const std::size_t blk = (first + i) / b;
    const std::size_t off = (first + i) % b;
    const std::size_t take = std::min(b - off, in.size() - i);
    if (take < b) {
      // Edge block: preserve surrounding records already on the device, but
      // only if there is live data in this block outside the stored range.
      const bool has_live_prefix = off > 0;
      const bool has_live_suffix =
          blk * b + take + off < vec.size() && off + take < b;
      if (has_live_prefix || has_live_suffix) vec.read_block(blk, blockbuf);
    }
    for (std::size_t j = 0; j < take; ++j) blockbuf[off + j] = in[i + j];
    vec.write_block(blk, std::span<const T>(blockbuf));
    i += take;
  }
}

/// Materialize an in-memory sequence as a new EmVector (test/workload
/// convenience; costs ceil(n/B) writes).
template <EmRecord T>
[[nodiscard]] EmVector<T> materialize(Context& ctx, std::span<const T> data) {
  EmVector<T> vec(ctx, data.size());
  StreamWriter<T> w(vec);
  for (const T& v : data) w.push(v);
  w.finish();
  return vec;
}

/// Read a whole EmVector back into host memory (test convenience).
template <EmRecord T>
[[nodiscard]] std::vector<T> to_host(const EmVector<T>& vec) {
  std::vector<T> out;
  out.reserve(vec.size());
  StreamReader<T> r(vec);
  while (!r.done()) out.push_back(r.next());
  return out;
}

}  // namespace emsplit

// reduction.hpp — the §3 reduction, as executable code.
//
// The paper's Theorem 3 lower bound for approximate K-partitioning comes
// from a reduction: any left-grounded approximate K-partitioning algorithm
// (partitions of size at most b) yields a *precise* (N/b)-partitioning after
// a single O(N/B) stitch pass.  Since precise partitioning is provably hard
// (Lemma 5), the approximate problem inherits the bound.
//
// This file implements the reduction's forward direction so the bench
// harness (experiment E11) can demonstrate it: stitch the variable-size
// partitions P_1, ..., P_K into exact b-size pieces using the running
// remainder R exactly as in the paper's two-step recipe.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/partitioning.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "select/base_case.hpp"

namespace emsplit {

/// Precise (N/b)-partitioning of `input` (N must be a multiple of b) built
/// from a left-grounded approximate K-partitioning plus a linear stitch.
/// Cost: F(N, K, b) + O(N/B) I/Os, demonstrating that the approximate
/// problem is at least as hard as the precise one.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] ApproxPartitioning<T> precise_partition_via_reduction(
    Context& ctx, const EmVector<T>& input, std::uint64_t b, Less less = {}) {
  const std::uint64_t n = input.size();
  if (b == 0 || n % b != 0) {
    throw std::invalid_argument(
        "precise_partition_via_reduction: b must be positive and divide N");
  }
  const std::uint64_t num_parts = n / b;

  // Step 1: left-grounded approximate partitioning with K = ceil(N/b)
  // partitions of size at most b.
  const ApproxSpec spec{.k = num_parts, .a = 0, .b = b};
  auto approx = approx_partitioning<T, Less>(ctx, input, spec, less);

  // Step 2: stitch.  Process P_1, ..., P_K in order, appending to the
  // remainder R; whenever |R| >= b, split R at its b-th smallest element
  // (R1 = exact next precise partition, R2 = carried remainder).  Each
  // element is appended once and carried O(1) amortized times: O(N/B).
  ApproxPartitioning<T> out;
  out.data = EmVector<T>(ctx, static_cast<std::size_t>(n));
  out.bounds.push_back(0);
  StreamWriter<T> writer(out.data);

  EmVector<T> remainder(ctx, 0);  // starts empty
  for (std::size_t i = 0; i + 1 < approx.bounds.size(); ++i) {
    const std::uint64_t lo = approx.bounds[i];
    const std::uint64_t hi = approx.bounds[i + 1];
    // R := R ++ P_i.
    EmVector<T> merged(ctx,
                       static_cast<std::size_t>(remainder.size() + (hi - lo)));
    {
      StreamWriter<T> wm(merged);
      {
        StreamReader<T> rr(remainder);
        while (!rr.done()) wm.push(rr.next());
      }
      {
        StreamReader<T> rp(approx.data, static_cast<std::size_t>(lo),
                           static_cast<std::size_t>(hi));
        while (!rp.done()) wm.push(rp.next());
      }
      wm.finish();
    }
    remainder = std::move(merged);

    while (remainder.size() >= b) {
      if (remainder.size() == b) {
        // R is exactly one precise partition.
        StreamReader<T> rr(remainder);
        while (!rr.done()) writer.push(rr.next());
        remainder = EmVector<T>(ctx, 0);
        out.bounds.push_back(writer.count());
        break;
      }
      // Split R at its b-th smallest: R1 emitted, R2 carried.
      const T pivot = select_rank<T, Less>(ctx, remainder, b, less);
      EmVector<T> rest(ctx, remainder.size() - static_cast<std::size_t>(b));
      {
        StreamReader<T> rr(remainder);
        StreamWriter<T> wr(rest);
        while (!rr.done()) {
          const T e = rr.next();
          if (!less(pivot, e)) {
            writer.push(e);
          } else {
            wr.push(e);
          }
        }
        wr.finish();
      }
      remainder = std::move(rest);
      out.bounds.push_back(writer.count());
    }
  }
  if (remainder.size() != 0) {
    throw std::logic_error(
        "precise_partition_via_reduction: leftover records (b does not "
        "divide N?)");
  }
  writer.finish();
  if (out.bounds.size() != num_parts + 1) {
    throw std::logic_error(
        "precise_partition_via_reduction: wrong partition count");
  }
  return out;
}

}  // namespace emsplit
